//! # tabula-par — morsel-driven deterministic parallel execution
//!
//! A `std`-only parallel execution layer for the cube pipeline: a scoped
//! worker pool with per-worker work-stealing deques, plus three
//! primitives — [`Pool::par_map`], [`Pool::par_chunks`] and
//! [`Pool::par_fold_merge`] — that every hot stage (finest-cuboid scan,
//! lattice rollup, dry-run classification, group-by, per-cell sampling,
//! SamGraph join) is built on.
//!
//! ## Determinism contract
//!
//! Results are **byte-identical across any thread count**, including 1:
//!
//! * work is decomposed into *morsels* whose boundaries depend only on the
//!   input size (default [`DEFAULT_MORSEL_ROWS`] rows), never on the
//!   thread count;
//! * each morsel is processed sequentially by exactly one worker;
//! * partial results are combined in ascending morsel order on the calling
//!   thread.
//!
//! The thread count therefore only decides *who* runs a morsel and *when*
//! — never what is computed. This matters beyond hash-map equality:
//! floating-point accumulation (e.g. [`SumCount`-style] states) is not
//! associative, so the merge sequence itself must be pinned. Because the
//! serial path (`TABULA_THREADS=1`) executes the same morsels in the same
//! merge order inline, it is bit-for-bit the parallel result.
//!
//! ## Configuration
//!
//! The process-wide thread count comes from the `TABULA_THREADS`
//! environment variable (`0` or unset = `available_parallelism`), read
//! once at first use and overridable at runtime with [`set_threads`] —
//! the benchmark harness uses that to measure serial-vs-parallel speedup
//! inside one process.
//!
//! ## Instrumentation
//!
//! The pool reports into the global [`tabula_obs`] registry:
//! `par.tasks` / `par.steals` counters, `par.morsel_ns` and
//! `par.queue_depth` histograms, and a `par.threads` gauge — so
//! `BENCH_*.json` summaries can show scheduler behaviour next to stage
//! wall times.
//!
//! [`SumCount`-style]: https://en.wikipedia.org/wiki/Floating-point_arithmetic#Accuracy_problems

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use tabula_obs as obs;

/// Default morsel granularity: ~64k rows, the classic morsel-driven size —
/// big enough to amortize scheduling, small enough to load-balance.
pub const DEFAULT_MORSEL_ROWS: usize = 1 << 16;

/// Runtime override of the thread count (0 = fall back to env/auto).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Thread count resolved from the `TABULA_THREADS` environment variable,
/// cached after the first read (usize::MAX = not yet read).
static ENV_THREADS: AtomicUsize = AtomicUsize::new(usize::MAX);

fn env_threads() -> usize {
    let cached = ENV_THREADS.load(Ordering::Relaxed);
    if cached != usize::MAX {
        return cached;
    }
    let parsed = std::env::var("TABULA_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
    ENV_THREADS.store(parsed, Ordering::Relaxed);
    parsed
}

fn auto_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The effective worker-thread count: runtime override, else
/// `TABULA_THREADS`, else `available_parallelism`.
pub fn threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        return o;
    }
    match env_threads() {
        0 => auto_threads(),
        n => n,
    }
}

/// Override the process-wide thread count at runtime (`0` = back to the
/// `TABULA_THREADS` / auto default). Results are unaffected by
/// construction — only wall time changes.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Handle on the parallel execution layer: a thread count plus the obs
/// instruments. Cheap to construct; worker threads are scoped per call
/// (no idle threads linger between stages).
#[derive(Debug, Clone)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::global()
    }
}

/// Per-worker state: the owned deque workers pop from the front of and
/// victims steal from the back of.
struct Deque {
    tasks: Mutex<VecDeque<usize>>,
}

impl Pool {
    /// The pool at the process-wide thread count (see [`threads`]).
    pub fn global() -> Self {
        Pool { threads: threads() }
    }

    /// A pool with an explicit thread count (`0` = `available_parallelism`).
    pub fn with_threads(n: usize) -> Self {
        Pool { threads: if n == 0 { auto_threads() } else { n } }
    }

    /// Worker threads this pool schedules onto.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute `tasks` independent tasks, returning their results in task
    /// order. The scheduling unit is the task index; distribution is
    /// block-cyclic into per-worker deques with back-steals when a worker
    /// drains its own.
    pub fn run<R, F>(&self, tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if tasks == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(tasks);
        let metrics = obs::global();
        metrics.gauge("par.threads").set(self.threads as i64);
        let task_counter = metrics.counter("par.tasks");
        if workers <= 1 {
            // Serial path: same tasks, same order, same results.
            task_counter.add(tasks as u64);
            return (0..tasks).map(f).collect();
        }
        let steal_counter = metrics.counter("par.steals");
        let morsel_ns = metrics.histogram("par.morsel_ns");
        let queue_depth = metrics.histogram("par.queue_depth");

        // Block distribution: worker w owns a contiguous run of tasks, so
        // neighbouring morsels (likely touching neighbouring data) stay on
        // one core until stealing kicks in.
        let deques: Vec<Deque> = (0..workers)
            .map(|w| {
                let lo = tasks * w / workers;
                let hi = tasks * (w + 1) / workers;
                Deque { tasks: Mutex::new((lo..hi).collect()) }
            })
            .collect();

        let produced: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let deques = &deques;
                    let f = &f;
                    let task_counter = &task_counter;
                    let steal_counter = &steal_counter;
                    let morsel_ns = &morsel_ns;
                    let queue_depth = &queue_depth;
                    scope.spawn(move || {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            // Own deque first (front), then steal (back).
                            let mut task = {
                                let mut q = deques[w].tasks.lock().unwrap();
                                queue_depth.record(q.len() as u64);
                                q.pop_front()
                            };
                            if task.is_none() {
                                for v in 1..workers {
                                    let victim = (w + v) % workers;
                                    if let Some(t) = deques[victim].tasks.lock().unwrap().pop_back()
                                    {
                                        steal_counter.inc();
                                        task = Some(t);
                                        break;
                                    }
                                }
                            }
                            let Some(i) = task else { break };
                            let start = Instant::now();
                            local.push((i, f(i)));
                            morsel_ns.record_duration(start.elapsed());
                            task_counter.inc();
                        }
                        local
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        let mut out: Vec<Option<R>> = Vec::new();
        out.resize_with(tasks, || None);
        for (i, r) in produced.into_iter().flatten() {
            out[i] = Some(r);
        }
        out.into_iter().map(|r| r.expect("every task produced a result")).collect()
    }

    /// Map `f` over `items` in parallel, preserving order.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.run(items.len(), |i| f(&items[i]))
    }

    /// Morsel-driven iteration over `0..len`: split into `morsel`-sized
    /// ranges (boundaries independent of thread count), run `f` per range,
    /// return the per-morsel results in range order.
    pub fn par_chunks<R, F>(&self, len: usize, morsel: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let morsel = morsel.max(1);
        let n_morsels = len.div_ceil(morsel);
        self.run(n_morsels, |i| {
            let lo = i * morsel;
            f(lo..(lo + morsel).min(len))
        })
    }

    /// Morsel-driven accumulate-then-merge over `0..len`: `fold` builds
    /// one accumulator per morsel, `merge` combines them **in ascending
    /// morsel order** on the calling thread (the ordered merge that keeps
    /// non-associative accumulation deterministic). Returns `None` for an
    /// empty range.
    pub fn par_fold_merge<A, F, M>(
        &self,
        len: usize,
        morsel: usize,
        fold: F,
        mut merge: M,
    ) -> Option<A>
    where
        A: Send,
        F: Fn(Range<usize>) -> A + Sync,
        M: FnMut(A, A) -> A,
    {
        let mut partials = self.par_chunks(len, morsel, fold).into_iter();
        let first = partials.next()?;
        Some(partials.fold(first, &mut merge))
    }
}

/// [`Pool::par_map`] on the process-wide pool.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    Pool::global().par_map(items, f)
}

/// [`Pool::par_chunks`] on the process-wide pool with the default morsel.
pub fn par_chunks<R: Send>(len: usize, f: impl Fn(Range<usize>) -> R + Sync) -> Vec<R> {
    Pool::global().par_chunks(len, DEFAULT_MORSEL_ROWS, f)
}

/// [`Pool::par_fold_merge`] on the process-wide pool with the default
/// morsel.
pub fn par_fold_merge<A: Send>(
    len: usize,
    fold: impl Fn(Range<usize>) -> A + Sync,
    merge: impl FnMut(A, A) -> A,
) -> Option<A> {
    Pool::global().par_fold_merge(len, DEFAULT_MORSEL_ROWS, fold, merge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let pool = Pool::with_threads(threads);
            assert_eq!(pool.par_map(&items, |&x| x * x), expect, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_boundaries_are_thread_count_independent() {
        let serial = Pool::with_threads(1).par_chunks(1000, 64, |r| r);
        for threads in [2, 5, 16] {
            let pool = Pool::with_threads(threads);
            assert_eq!(pool.par_chunks(1000, 64, |r| r), serial, "threads={threads}");
        }
        // Boundaries tile the range exactly.
        assert_eq!(serial.first().unwrap().start, 0);
        assert_eq!(serial.last().unwrap().end, 1000);
        for w in serial.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn fold_merge_is_bitwise_deterministic_for_floats() {
        // Sums crafted so that association order changes the bits.
        let values: Vec<f64> = (0..100_000).map(|i| 1.0 + (i as f64) * 1e-9).collect();
        let fold = |r: Range<usize>| values[r].iter().sum::<f64>();
        let reference =
            Pool::with_threads(1).par_fold_merge(values.len(), 1024, fold, |a, b| a + b).unwrap();
        for threads in [2, 4, 32] {
            let got = Pool::with_threads(threads)
                .par_fold_merge(values.len(), 1024, fold, |a, b| a + b)
                .unwrap();
            assert_eq!(got.to_bits(), reference.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn empty_inputs() {
        let pool = Pool::with_threads(4);
        assert!(pool.run(0, |i| i).is_empty());
        assert!(pool.par_map::<u8, u8, _>(&[], |&x| x).is_empty());
        assert!(pool.par_chunks(0, 16, |r| r).is_empty());
        assert!(pool.par_fold_merge(0, 16, |_| 0u8, |a, _| a).is_none());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let ran = AtomicU64::new(0);
        let pool = Pool::with_threads(7);
        let out = pool.run(500, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(ran.load(Ordering::Relaxed), 500);
        assert_eq!(out, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn thread_knobs_resolve() {
        set_threads(3);
        assert_eq!(threads(), 3);
        assert_eq!(Pool::global().threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
        assert!(Pool::with_threads(0).threads() >= 1);
    }

    #[test]
    fn pool_reports_task_metrics() {
        let before = obs::global().counter("par.tasks").get();
        Pool::with_threads(2).run(64, |i| i);
        let after = obs::global().counter("par.tasks").get();
        assert!(after >= before + 64);
    }
}
