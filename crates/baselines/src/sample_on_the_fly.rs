//! The **SampleOnTheFly** baseline: no pre-built state; every query scans
//! the raw table, extracts the exact answer population, and runs the
//! accuracy-loss-aware greedy sampler (Algorithm 1) online. Deterministic
//! accuracy — but the full-table work on every interaction is exactly the
//! data-system cost Tabula amortizes away.

use crate::{Approach, ApproachAnswer};
use std::sync::Arc;
use std::time::Instant;
use tabula_core::loss::AccuracyLoss;
use tabula_storage::{Predicate, Table};

/// SampleOnTheFly over a given loss function.
#[derive(Debug, Clone)]
pub struct SampleOnTheFly<L> {
    table: Arc<Table>,
    loss: L,
    theta: f64,
}

impl<L: AccuracyLoss> SampleOnTheFly<L> {
    /// Create the baseline (no initialization work happens).
    pub fn new(table: Arc<Table>, loss: L, theta: f64) -> Self {
        SampleOnTheFly { table, loss, theta }
    }

    /// The loss threshold queries are sampled to.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

impl<L: AccuracyLoss> Approach for SampleOnTheFly<L> {
    fn name(&self) -> &'static str {
        "SampleOnTheFly"
    }

    fn memory_bytes(&self) -> usize {
        0
    }

    fn query(&self, pred: &Predicate) -> ApproachAnswer {
        let start = Instant::now();
        let raw = pred.filter(&self.table).expect("workload predicates reference valid columns");
        let rows = self.loss.sample_greedy(&self.table, &raw, self.theta);
        ApproachAnswer { rows, data_system_time: start.elapsed() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabula_core::loss::{HeatmapLoss, Metric};
    use tabula_data::{TaxiConfig, TaxiGenerator};

    #[test]
    fn guarantees_theta_on_the_exact_population() {
        let t = Arc::new(TaxiGenerator::new(TaxiConfig { rows: 4_000, seed: 2 }).generate());
        let pickup = t.schema().index_of("pickup").unwrap();
        let loss = HeatmapLoss::new(pickup, Metric::Euclidean);
        let theta = 0.02;
        let fly = SampleOnTheFly::new(Arc::clone(&t), loss.clone(), theta);
        assert_eq!(fly.memory_bytes(), 0);
        for payment in ["cash", "credit", "dispute"] {
            let pred = Predicate::eq("payment_type", payment);
            let ans = fly.query(&pred);
            let raw = pred.filter(&t).unwrap();
            let achieved = loss.loss(&t, &raw, &ans.rows);
            assert!(achieved <= theta + 1e-12, "{payment}: {achieved}");
            assert!(ans.rows.len() < raw.len());
        }
    }
}
