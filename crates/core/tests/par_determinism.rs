//! Integration test: the parallel execution layer must be invisible in
//! the results. A `SamplingCube` built under `TABULA_THREADS` ∈ {1, 2, 8}
//! is byte-identical — same cube table, same samples, same global sample,
//! same build accounting — because morsel boundaries, merge order and
//! per-cell sampling depend only on the input, never on scheduling.

use std::sync::Arc;
use tabula_core::cube::{SampleProvenance, SamplingCube};
use tabula_core::loss::{HeatmapLoss, MeanLoss, Metric};
use tabula_core::{refresh, RefreshConfig, SamplingCubeBuilder};
use tabula_data::{meters_to_norm, TaxiConfig, TaxiGenerator, Workload, CUBED_ATTRIBUTES};
use tabula_storage::cube::CellKey;
use tabula_storage::{RowId, Table, TableBuilder};

fn build(table: &Arc<Table>, threads: usize) -> SamplingCube {
    // The runtime override steers every Pool::global() call in the build
    // (finest scan, rollup, dry-run classify, group-by, semi-join,
    // SamGraph); the builder's own knob covers the real-run pool.
    tabula_par::set_threads(threads);
    let fare = table.schema().index_of("fare_amount").unwrap();
    let cube = SamplingCubeBuilder::new(
        Arc::clone(table),
        &CUBED_ATTRIBUTES[..4],
        MeanLoss::new(fare),
        0.05,
    )
    .seed(13)
    .parallelism(threads)
    .build()
    .expect("cube build succeeds");
    tabula_par::set_threads(0);
    cube
}

/// Everything observable about a cube, in a canonical order.
struct Fingerprint {
    cells: Vec<(CellKey, Vec<RowId>)>,
    global_sample: Vec<RowId>,
    iceberg_cells: usize,
    samples_after_selection: usize,
}

fn fingerprint(cube: &SamplingCube) -> Fingerprint {
    let mut cells: Vec<(CellKey, Vec<RowId>)> =
        cube.cube_table().map(|(k, id)| (k.clone(), cube.sample(id).as_ref().clone())).collect();
    cells.sort_by(|a, b| a.0.codes.cmp(&b.0.codes));
    Fingerprint {
        cells,
        global_sample: cube.global_sample().as_ref().clone(),
        iceberg_cells: cube.stats().iceberg_cells,
        samples_after_selection: cube.stats().samples_after_selection,
    }
}

#[test]
fn cube_is_identical_for_one_two_and_eight_threads() {
    let table = Arc::new(TaxiGenerator::new(TaxiConfig { rows: 8_000, seed: 31 }).generate());
    let baseline = fingerprint(&build(&table, 1));
    assert!(!baseline.cells.is_empty(), "seeded build must materialize iceberg cells");
    for threads in [2usize, 8] {
        let got = fingerprint(&build(&table, threads));
        assert_eq!(
            baseline.iceberg_cells, got.iceberg_cells,
            "iceberg cell count differs between 1 and {threads} threads"
        );
        assert_eq!(
            baseline.samples_after_selection, got.samples_after_selection,
            "sample count after selection differs between 1 and {threads} threads"
        );
        assert_eq!(
            baseline.global_sample, got.global_sample,
            "global sample differs between 1 and {threads} threads"
        );
        assert_eq!(
            baseline.cells.len(),
            got.cells.len(),
            "cube table size differs between 1 and {threads} threads"
        );
        for ((cell_a, sample_a), (cell_b, sample_b)) in baseline.cells.iter().zip(&got.cells) {
            assert_eq!(cell_a, cell_b, "cube-table keys differ at {threads} threads");
            assert_eq!(sample_a, sample_b, "sample of {cell_a} differs at {threads} threads");
        }
    }
}

/// The heat-map loss exercises the *sample-dependent* SamGraph join path
/// (per-row states are distances to the candidate sample, so candidates
/// are ranked by signature and re-folded per pair) — a different
/// parallel code path than the state-reuse join the mean loss takes.
/// Both must be scheduling-invariant.
#[test]
fn sample_dependent_selection_path_is_identical_across_thread_counts() {
    let table = Arc::new(TaxiGenerator::new(TaxiConfig { rows: 6_000, seed: 41 }).generate());
    let pickup = table.schema().index_of("pickup").unwrap();
    let build_heatmap = |threads: usize| {
        tabula_par::set_threads(threads);
        let cube = SamplingCubeBuilder::new(
            Arc::clone(&table),
            &CUBED_ATTRIBUTES[..4],
            HeatmapLoss::new(pickup, Metric::Euclidean),
            meters_to_norm(500.0),
        )
        .seed(13)
        .parallelism(threads)
        .build()
        .expect("heatmap cube build succeeds");
        tabula_par::set_threads(0);
        cube
    };
    let baseline = fingerprint(&build_heatmap(1));
    assert!(!baseline.cells.is_empty(), "θ must produce iceberg cells");
    for threads in [2usize, 8] {
        let got = fingerprint(&build_heatmap(threads));
        assert_eq!(baseline.global_sample, got.global_sample);
        assert_eq!(baseline.iceberg_cells, got.iceberg_cells);
        assert_eq!(
            baseline.samples_after_selection, got.samples_after_selection,
            "sample-dependent selection differs between 1 and {threads} threads"
        );
        assert_eq!(baseline.cells, got.cells, "cube differs at {threads} threads");
    }
}

/// An appends-only extension of `base`: same schema, every base row in
/// order, then every row of `extra`.
fn extend(base: &Table, extra: &Table) -> Arc<Table> {
    let mut b = TableBuilder::new(base.schema().clone());
    for i in 0..base.len() {
        b.push_row(&base.row(i)).expect("base row");
    }
    for i in 0..extra.len() {
        b.push_row(&extra.row(i)).expect("extra row");
    }
    Arc::new(b.finish())
}

/// Determinism must survive an `incremental` refresh too: the refreshed
/// cube — reused cells, resampled cells, redrawn global sample — is
/// byte-identical whatever the thread count of either the base build or
/// the refresh.
#[test]
fn refreshed_cube_is_identical_across_thread_counts() {
    let base = Arc::new(TaxiGenerator::new(TaxiConfig { rows: 6_000, seed: 31 }).generate());
    let extra = TaxiGenerator::new(TaxiConfig { rows: 1_500, seed: 77 }).generate();
    let extended = extend(&base, &extra);
    let fare = base.schema().index_of("fare_amount").unwrap();
    let refresh_at = |threads: usize| {
        let cube = build(&base, threads);
        tabula_par::set_threads(threads);
        let config = RefreshConfig { seed: 99, parallelism: threads, ..RefreshConfig::default() };
        let (refreshed, stats) =
            refresh(&cube, Arc::clone(&extended), &MeanLoss::new(fare), config)
                .expect("refresh succeeds");
        tabula_par::set_threads(0);
        (fingerprint(&refreshed), stats)
    };
    let (baseline, stats) = refresh_at(1);
    assert_eq!(stats.appended_rows, extra.len());
    assert!(!baseline.cells.is_empty(), "refresh must keep iceberg cells");
    for threads in [2usize, 8] {
        let (got, got_stats) = refresh_at(threads);
        assert_eq!(
            (stats.reused_cells, stats.resampled_cells, stats.retired_cells),
            (got_stats.reused_cells, got_stats.resampled_cells, got_stats.retired_cells),
            "refresh accounting differs between 1 and {threads} threads"
        );
        assert_eq!(
            baseline.global_sample, got.global_sample,
            "refreshed global sample differs between 1 and {threads} threads"
        );
        assert_eq!(baseline.iceberg_cells, got.iceberg_cells);
        assert_eq!(baseline.cells, got.cells, "refreshed cube differs at {threads} threads");
    }
}

/// The chunked vectorized build kernels (bit-packed group-by keys, packed
/// finest-cuboid aggregation, packed rollup) must be as invisible as the
/// thread count: a cube built under `TABULA_KERNELS=scalar` is
/// byte-identical to one built with the vectorized kernels, at any thread
/// count — float bits included, because both kernels fold rows and merge
/// parents in the same canonical order.
#[test]
fn cube_is_identical_across_kernel_modes_and_thread_counts() {
    use tabula_storage::{set_kernel_mode, KernelMode};
    let table = Arc::new(TaxiGenerator::new(TaxiConfig { rows: 8_000, seed: 31 }).generate());
    let prev = tabula_storage::kernel_mode();
    set_kernel_mode(KernelMode::ForceScalar);
    let baseline = fingerprint(&build(&table, 1));
    assert!(!baseline.cells.is_empty());
    for (mode, threads) in [
        (KernelMode::ForceScalar, 8usize),
        (KernelMode::ForceVectorized, 1),
        (KernelMode::ForceVectorized, 8),
        (KernelMode::Auto, 2),
    ] {
        set_kernel_mode(mode);
        let got = fingerprint(&build(&table, threads));
        assert_eq!(baseline.iceberg_cells, got.iceberg_cells, "{mode:?} x{threads}");
        assert_eq!(baseline.global_sample, got.global_sample, "{mode:?} x{threads}");
        assert_eq!(baseline.cells, got.cells, "cube differs under {mode:?} x{threads}");
    }
    set_kernel_mode(prev);
}

/// The compressed-storage invariant: the cube is a pure function of the
/// data — not of the column encoding, the kernel family, or the thread
/// count. Sweep `TABULA_ENCODING={off,force,auto}` ×
/// `TABULA_KERNELS={scalar,auto}` × threads={1,4}; every build must be
/// byte-identical to the plain scalar single-threaded baseline, float
/// bits included. The table is regenerated under each encoding mode so
/// the freeze path (where encoding happens) is part of the sweep.
#[test]
fn cube_is_identical_across_encoding_modes_kernels_and_threads() {
    use tabula_storage::{set_encoding_mode, set_kernel_mode, EncodingMode, KernelMode};
    let prev_enc = tabula_storage::encoding_mode();
    let prev_kern = tabula_storage::kernel_mode();
    set_encoding_mode(EncodingMode::Off);
    set_kernel_mode(KernelMode::ForceScalar);
    let baseline = {
        let table = Arc::new(TaxiGenerator::new(TaxiConfig { rows: 8_000, seed: 47 }).generate());
        fingerprint(&build(&table, 1))
    };
    assert!(!baseline.cells.is_empty());
    for enc in [EncodingMode::Off, EncodingMode::Force, EncodingMode::Auto] {
        set_encoding_mode(enc);
        let table = Arc::new(TaxiGenerator::new(TaxiConfig { rows: 8_000, seed: 47 }).generate());
        for (kern, threads) in
            [(KernelMode::ForceScalar, 4usize), (KernelMode::Auto, 1), (KernelMode::Auto, 4)]
        {
            set_kernel_mode(kern);
            let got = fingerprint(&build(&table, threads));
            assert_eq!(baseline.iceberg_cells, got.iceberg_cells, "{enc:?} {kern:?} x{threads}");
            assert_eq!(baseline.global_sample, got.global_sample, "{enc:?} {kern:?} x{threads}");
            assert_eq!(
                baseline.cells, got.cells,
                "cube differs under encoding={enc:?} kernels={kern:?} x{threads}"
            );
        }
    }
    set_kernel_mode(prev_kern);
    set_encoding_mode(prev_enc);
}

#[test]
fn provenance_counters_are_thread_count_independent() {
    let table = Arc::new(TaxiGenerator::new(TaxiConfig { rows: 6_000, seed: 23 }).generate());
    let attrs: Vec<&str> = CUBED_ATTRIBUTES[..4].to_vec();
    let queries =
        Workload::new(&attrs).generate(&table, 120, 0xACE).expect("workload generation succeeds");
    let mut tallies: Vec<(u64, u64)> = Vec::new();
    for threads in [1usize, 2, 8] {
        // A private registry per cube keeps the provenance counters from
        // accumulating across the three builds (they are registry-backed).
        let registry = tabula_obs::Registry::new();
        let cube = build(&table, threads).with_registry(&registry);
        let (mut local, mut global) = (0u64, 0u64);
        for q in &queries {
            match cube.query_cell(&q.cell).provenance {
                SampleProvenance::Local(_) => local += 1,
                SampleProvenance::Global => global += 1,
                SampleProvenance::EmptyDomain => unreachable!("query_cell never misses"),
            }
        }
        assert_eq!(cube.provenance_counters().total(), queries.len() as u64);
        tallies.push((local, global));
    }
    assert_eq!(tallies[0], tallies[1], "provenance split differs between 1 and 2 threads");
    assert_eq!(tallies[0], tallies[2], "provenance split differs between 1 and 8 threads");
}
