//! Dependency-free `#[derive(Serialize, Deserialize)]` for the vendored
//! serde shim. No `syn`/`quote` (crates.io is unreachable in this build
//! environment); the item is parsed directly from the `proc_macro` token
//! stream and the impls are emitted as source strings.
//!
//! Supported shapes — exactly what this workspace derives on:
//! * structs with named fields (including `#[serde(skip)]` fields, which
//!   are omitted on serialize and `Default`-filled on deserialize);
//! * tuple structs (single-field ones serialize transparently as the inner
//!   value, wider ones as arrays);
//! * enums with unit, tuple and struct variants, externally tagged
//!   (`"Variant"` / `{"Variant": ...}`) like real serde's default.
//!
//! Generics, lifetimes and other `#[serde(...)]` attributes are rejected
//! with a compile error rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String, // identifier for named fields, index for tuple fields
    skip: bool,
}

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ------------------------------------------------------------------ parse

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes, visibility, and doc comments until the
    // `struct` / `enum` keyword.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            Some(_) => i += 1,
            None => panic!("serde shim derive: no struct/enum found"),
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are not supported (type {name})");
        }
    }
    if kind == "struct" {
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        Item::Struct { name, fields }
    } else {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("serde shim derive: expected enum body, got {other:?}"),
        };
        Item::Enum { name, variants: parse_variants(body) }
    }
}

/// Split a token stream on commas that sit outside `<...>` nesting.
/// (Generic argument lists are punct sequences, not groups, so plain
/// comma-splitting would cut `Map<String, u32>` in half.)
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts = vec![Vec::new()];
    let mut angle = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts.last_mut().unwrap().push(tt);
    }
    if parts.last().is_some_and(Vec::is_empty) {
        parts.pop();
    }
    parts
}

/// Whether an attribute's tokens (`#` already consumed, `part[j]` is the
/// bracket group) mark a `#[serde(skip)]` field; rejects any other
/// `#[serde(...)]` content.
fn attr_is_serde_skip(group: &proc_macro::Group) -> bool {
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => match inner.get(1) {
            Some(TokenTree::Group(args)) => {
                let txt = args.stream().to_string();
                if txt.trim() == "skip" {
                    true
                } else {
                    panic!(
                        "serde shim derive: unsupported attribute #[serde({txt})] — \
                         only #[serde(skip)] is implemented"
                    );
                }
            }
            _ => false,
        },
        _ => false,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut out = Vec::new();
    for part in split_top_level(stream) {
        let mut skip = false;
        let mut j = 0;
        // Attributes.
        while let Some(TokenTree::Punct(p)) = part.get(j) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = part.get(j + 1) {
                if attr_is_serde_skip(g) {
                    skip = true;
                }
            }
            j += 2;
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = part.get(j) {
            if id.to_string() == "pub" {
                j += 1;
                if let Some(TokenTree::Group(g)) = part.get(j) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        j += 1;
                    }
                }
            }
        }
        let name = match part.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => continue, // trailing comma artifacts
        };
        out.push(Field { name, skip });
    }
    out
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut out = Vec::new();
    for part in split_top_level(stream) {
        let mut j = 0;
        while let Some(TokenTree::Punct(p)) = part.get(j) {
            if p.as_char() != '#' {
                break;
            }
            j += 2; // attribute
        }
        let name = match part.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => continue,
        };
        j += 1;
        let fields = match part.get(j) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        out.push(Variant { name, fields });
    }
    out
}

// -------------------------------------------------------------- serialize

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_owned(),
                Fields::Named(fs) => ser_named_fields(fs, "self.", ""),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Arr(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(\"{vname}\".to_owned()),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_owned()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Arr(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({binds}) => {{\n\
                                     let mut m = ::std::collections::BTreeMap::new();\n\
                                     m.insert(\"{vname}\".to_owned(), {payload});\n\
                                     ::serde::Value::Obj(m)\n\
                                 }}",
                                binds = binds.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let binds: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
                            let payload = ser_named_fields(fs, "", "");
                            format!(
                                "{name}::{vname} {{ {binds} }} => {{\n\
                                     let payload = {payload};\n\
                                     let mut m = ::std::collections::BTreeMap::new();\n\
                                     m.insert(\"{vname}\".to_owned(), payload);\n\
                                     ::serde::Value::Obj(m)\n\
                                 }}",
                                binds = binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

/// `{"f1": ..., "f2": ...}` construction. `prefix` is `self.` for struct
/// impls and empty for enum-variant bindings (where fields are bound by
/// name). Skipped fields are not emitted.
fn ser_named_fields(fields: &[Field], prefix: &str, deref: &str) -> String {
    let mut s = String::from("{ let mut m = ::std::collections::BTreeMap::new();\n");
    for f in fields {
        if f.skip {
            continue;
        }
        let fname = &f.name;
        s.push_str(&format!(
            "m.insert(\"{fname}\".to_owned(), \
             ::serde::Serialize::to_value({deref}&{prefix}{fname}));\n"
        ));
    }
    s.push_str("::serde::Value::Obj(m) }");
    s
}

// ------------------------------------------------------------ deserialize

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Named(fs) => de_named_fields(name, name, fs),
                Fields::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "match v {{\n\
                             ::serde::Value::Arr(items) if items.len() == {n} => \
                                 Ok({name}({items})),\n\
                             other => Err(::serde::DeError::expected(\
                                 \"{n}-element array\", other, \"{name}\")),\n\
                         }}",
                        items = items.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms
                            .push_str(&format!("\"{vname}\" => return Ok({name}::{vname}),\n"));
                        // A unit variant may also round-trip through the
                        // tagged-object form if hand-written JSON uses it.
                        payload_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                    }
                    Fields::Tuple(1) => payload_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(payload)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => match payload {{\n\
                                 ::serde::Value::Arr(items) if items.len() == {n} => \
                                     Ok({name}::{vname}({items})),\n\
                                 other => Err(::serde::DeError::expected(\
                                     \"{n}-element array\", other, \"{name}::{vname}\")),\n\
                             }},\n",
                            items = items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let ctor = de_named_fields_from(&format!("{name}::{vname}"), "payload", fs);
                        payload_arms.push_str(&format!("\"{vname}\" => {{ {ctor} }},\n"));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if let ::serde::Value::Str(s) = v {{\n\
                             match s.as_str() {{\n{unit_arms}\
                                 _ => {{}}\n\
                             }}\n\
                         }}\n\
                         let m = v.as_obj().ok_or_else(|| ::serde::DeError::expected(\
                             \"variant tag\", v, \"{name}\"))?;\n\
                         let (tag, payload) = m.iter().next().ok_or_else(|| \
                             ::serde::DeError(\"empty variant object for {name}\"\
                             .to_owned()))?;\n\
                         match tag.as_str() {{\n{payload_arms}\
                             other => Err(::serde::DeError(format!(\
                                 \"unknown {name} variant {{other}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// Construct `ctor { f1: ..., skip: Default::default() }` from the object
/// in `v`.
fn de_named_fields(type_name: &str, ctor: &str, fields: &[Field]) -> String {
    format!(
        "{{ let m = v.as_obj().ok_or_else(|| ::serde::DeError::expected(\
             \"object\", v, \"{type_name}\"))?;\n{}\n}}",
        de_named_fields_body(ctor, fields)
    )
}

fn de_named_fields_from(ctor: &str, source: &str, fields: &[Field]) -> String {
    format!(
        "{{ let m = {source}.as_obj().ok_or_else(|| ::serde::DeError::expected(\
             \"object\", {source}, \"{ctor}\"))?;\n{}\n}}",
        de_named_fields_body(ctor, fields)
    )
}

fn de_named_fields_body(ctor: &str, fields: &[Field]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let fname = &f.name;
            if f.skip {
                format!("{fname}: ::std::default::Default::default(),")
            } else {
                format!(
                    "{fname}: ::serde::Deserialize::from_value(\
                         m.get(\"{fname}\").unwrap_or(&::serde::Value::Null))\
                         .map_err(|e| e.in_field(\"{fname}\"))?,"
                )
            }
        })
        .collect();
    format!("Ok({ctor} {{\n{}\n}})", inits.join("\n"))
}
