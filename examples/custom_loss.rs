//! Declaring custom accuracy-loss functions — both ways the system
//! supports:
//!
//! 1. **SQL** (`CREATE AGGREGATE`): a scalar expression over algebraic
//!    aggregates of `Raw` and `Sam`, exactly the paper's Section II DDL.
//! 2. **Rust** (implementing [`AccuracyLoss`]): full control, including
//!    custom greedy engines; here a "range-coverage" loss that keeps the
//!    sample's min *and* max close to the raw data's.
//!
//! ```bash
//! cargo run --release --example custom_loss
//! ```

use std::sync::Arc;
use tabula::core::loss::expr::NumericState;
use tabula::core::loss::AccuracyLoss;
use tabula::core::sampling::{run_incremental_greedy, IncrementalEval};
use tabula::core::SamplingCubeBuilder;
use tabula::data::{TaxiConfig, TaxiGenerator, CUBED_ATTRIBUTES};
use tabula::sql::{QueryResult, Session};
use tabula::storage::{Predicate, RowId, Table};

/// A hand-written loss: `max(|min(Raw) − min(Sam)|, |max(Raw) − max(Sam)|)`
/// over one numeric column — the sample must preserve the data's extremes
/// (useful when the dashboard draws axis ranges from the sample).
#[derive(Clone)]
struct RangeCoverageLoss {
    attr: usize,
}

impl RangeCoverageLoss {
    fn value(&self, table: &Table, row: RowId) -> f64 {
        table.column(self.attr).as_f64_slice().expect("numeric attr")[row as usize]
    }
}

impl AccuracyLoss for RangeCoverageLoss {
    type State = NumericState;
    type SampleCtx = NumericState;

    fn name(&self) -> &'static str {
        "range_coverage"
    }

    fn state_depends_on_sample(&self) -> bool {
        false
    }

    fn prepare(&self, table: &Table, sample: &[RowId]) -> NumericState {
        let mut s = NumericState::default();
        for &r in sample {
            s.add(self.value(table, r));
        }
        s
    }

    fn fold(&self, _ctx: &NumericState, state: &mut NumericState, table: &Table, row: RowId) {
        state.add(self.value(table, row));
    }

    fn finish(&self, ctx: &NumericState, state: &NumericState) -> f64 {
        if state.count == 0 {
            return 0.0;
        }
        if ctx.count == 0 {
            return f64::INFINITY;
        }
        (state.min - ctx.min).abs().max((state.max - ctx.max).abs())
    }

    // Without this override the trait falls back to the literal
    // (quadratic) Algorithm 1, which is fine for tiny cells but not for a
    // 60 k-row table. Custom losses whose value derives from small
    // aggregate states get an O(1)-per-candidate engine in a few lines:
    fn sample_greedy(&self, table: &Table, raw: &[RowId], theta: f64) -> Vec<RowId> {
        struct Eval {
            values: Vec<f64>,
            raw: NumericState,
            sample: NumericState,
        }
        impl Eval {
            fn loss_of(&self, sample: &NumericState) -> f64 {
                if sample.count == 0 {
                    return f64::INFINITY;
                }
                (self.raw.min - sample.min).abs().max((self.raw.max - sample.max).abs())
            }
        }
        impl IncrementalEval for Eval {
            fn current(&self) -> f64 {
                self.loss_of(&self.sample)
            }
            fn loss_if_added(&self, idx: usize) -> f64 {
                let mut s = self.sample;
                s.add(self.values[idx]);
                self.loss_of(&s)
            }
            fn add(&mut self, idx: usize) {
                self.sample.add(self.values[idx]);
            }
        }
        let values: Vec<f64> = raw.iter().map(|&r| self.value(table, r)).collect();
        let mut raw_state = NumericState::default();
        for &v in &values {
            raw_state.add(v);
        }
        run_incremental_greedy(
            Eval { values, raw: raw_state, sample: NumericState::default() },
            raw,
            theta,
        )
    }
}

fn main() {
    let table = Arc::new(TaxiGenerator::new(TaxiConfig { rows: 40_000, seed: 5 }).generate());

    // --- Way 1: SQL ---------------------------------------------------
    let mut session = Session::new().with_seed(11);
    session.register_table("nyctaxi", Arc::clone(&table));
    session
        .execute(
            "CREATE AGGREGATE spread_loss(Raw, Sam) RETURN decimal_value AS \
             BEGIN ABS(MAX(Raw) - MAX(Sam)) + ABS(MIN(Raw) - MIN(Sam)) END",
        )
        .unwrap();
    let created = session
        .execute(
            "CREATE TABLE spread_cube AS \
             SELECT payment_type, rate_code, SAMPLING(*, 1.0) AS sample \
             FROM nyctaxi GROUPBY CUBE(payment_type, rate_code) \
             HAVING spread_loss(fare_amount, Sam_global) > 1.0",
        )
        .unwrap();
    if let QueryResult::CubeCreated { name, stats } = created {
        println!(
            "[SQL] cube {name}: {} cells, {} icebergs, built in {:.2?}",
            stats.total_cells, stats.iceberg_cells, stats.total
        );
    }
    let answer = session.execute("SELECT sample FROM spread_cube WHERE rate_code = 'jfk'").unwrap();
    if let QueryResult::Sample { table: sample, provenance } = answer {
        let fares = sample.column_by_name("fare_amount").unwrap().as_f64_slice().unwrap();
        let max = fares.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "[SQL] jfk sample via {provenance:?}: {} tuples, max fare ${max:.2} \
             (within $1 of the raw max, guaranteed)",
            sample.len()
        );
    }

    // --- Way 2: Rust --------------------------------------------------
    let fare = table.schema().index_of("fare_amount").unwrap();
    let loss = RangeCoverageLoss { attr: fare };
    let theta = 0.5; // dollars
    let cube =
        SamplingCubeBuilder::new(Arc::clone(&table), &CUBED_ATTRIBUTES[..4], loss.clone(), theta)
            .build()
            .unwrap();
    println!(
        "[Rust] range-coverage cube: {} cells, {} icebergs, {} persisted samples",
        cube.stats().total_cells,
        cube.stats().iceberg_cells,
        cube.persisted_samples()
    );
    // Verify the guarantee on a few populations.
    for payment in ["cash", "credit", "dispute"] {
        let pred = Predicate::eq("payment_type", payment);
        let raw = pred.filter(&table).unwrap();
        let ans = cube.query(&pred).unwrap();
        let achieved = loss.loss(&table, &raw, &ans.rows);
        println!(
            "[Rust] {payment}: sample {} tuples, range error ${achieved:.3} ≤ ${theta}",
            ans.len()
        );
        assert!(achieved <= theta + 1e-9);
    }
}
