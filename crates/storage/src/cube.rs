//! The OLAP CUBE operator, its cuboid lattice, and the algebraic rollup.
//!
//! A *cuboid* is one `GROUP BY` over a subset of the cubed attributes,
//! identified here by a bitmask ([`CuboidMask`]); the CUBE over `n`
//! attributes is the set of all `2ⁿ` cuboids. A *cell* is one group of one
//! cuboid, identified by a [`CellKey`] that assigns a concrete code or `*`
//! (`None`) to every cubed attribute.
//!
//! For a mergeable (algebraic) aggregate state the whole lattice is
//! computed from a **single scan** of the raw data: the scan builds the
//! finest cuboid (all attributes), and every coarser cuboid is derived by
//! merging the states of an already-computed parent cuboid — the classic
//! data-cube optimization the paper leans on for its dry-run stage.
//!
//! Both halves run on the morsel-driven pool (`tabula-par`): the scan is
//! partition-parallel hash aggregation (per-morsel partial tables merged in
//! ascending morsel order), and the rollup proceeds level-synchronously —
//! all cuboids of one arity derive from their (already finished) parents
//! in parallel. Results are byte-identical for any `TABULA_THREADS`.
//!
//! Both halves are **vectorized** (see [`crate::kernel`]): when the
//! bit-packed key of the cubed attributes fits 64 bits (`Σ ⌈log₂ cᵢ⌉ ≤ 64`,
//! true for any realistic dashboard cube), the scan aggregates chunk-wise
//! directly on packed `u64` code buffers — probe a slot per key, then fold
//! rows into a dense state vector — and the rollup squeezes the removed
//! attribute's bit field out of each parent key without re-decoding.
//! Every derivation scans its parent in ascending-key order (for packed
//! keys that *is* lexicographic order of the code tuples), so per-cell
//! merge sequences — and therefore floating-point bits — depend only on
//! cube content, never on hash-map layout, kernel mode, or thread count.

use crate::agg::AggState;
use crate::encoding::RunsView;
use crate::fx::FxHashMap;
use crate::kernel;
use crate::packed::{KeyLayout, PackedCodes, PackedKeyBuf};
use crate::table::{Cat, RowId, Table};
use crate::Result;
use serde::{Deserialize, Serialize};
use tabula_par::{Pool, DEFAULT_MORSEL_ROWS};

/// Identifies a cuboid: bit `i` set means cubed attribute `i` is on the
/// grouping list. The all-bits mask is the finest cuboid; `0` is the `ALL`
/// pseudo-cuboid (no grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CuboidMask(pub u32);

impl CuboidMask {
    /// The finest cuboid over `n` attributes (all bits set).
    pub fn finest(n: usize) -> Self {
        assert!(n <= 31, "at most 31 cubed attributes supported");
        CuboidMask(((1u64 << n) - 1) as u32)
    }

    /// The `ALL` cuboid (no grouping attributes).
    pub fn all_cuboid() -> Self {
        CuboidMask(0)
    }

    /// Whether attribute `i` is on this cuboid's grouping list.
    #[inline]
    pub fn contains(self, i: usize) -> bool {
        self.0 & (1 << i) != 0
    }

    /// Number of grouping attributes.
    #[inline]
    pub fn arity(self) -> u32 {
        self.0.count_ones()
    }

    /// Indices of the grouping attributes, ascending.
    pub fn attrs(self) -> Vec<usize> {
        (0..32).filter(|&i| self.contains(i)).collect()
    }

    /// Whether `self`'s grouping list is a subset of `other`'s (i.e.
    /// `other` is a descendant cuboid that can derive `self`).
    #[inline]
    pub fn is_subset_of(self, other: CuboidMask) -> bool {
        self.0 & other.0 == self.0
    }

    /// Enumerate every cuboid of an `n`-attribute cube, coarsest last.
    pub fn enumerate(n: usize) -> Vec<CuboidMask> {
        let mut masks: Vec<CuboidMask> = (0..(1u64 << n)).map(|m| CuboidMask(m as u32)).collect();
        masks.sort_by_key(|m| std::cmp::Reverse(m.arity()));
        masks
    }

    /// One immediate parent (this mask plus one more attribute from the
    /// `n`-attribute universe), if any — the cuboid this one is derived
    /// from during rollup.
    pub fn a_parent(self, n: usize) -> Option<CuboidMask> {
        (0..n).find(|&i| !self.contains(i)).map(|i| CuboidMask(self.0 | (1 << i)))
    }
}

impl std::fmt::Display for CuboidMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 == 0 {
            return write!(f, "ALL");
        }
        let attrs = self.attrs();
        let names: Vec<String> = attrs.iter().map(|a| format!("a{a}")).collect();
        write!(f, "{}", names.join(","))
    }
}

/// Identifies one cube cell: for every cubed attribute either a concrete
/// dictionary code or `None` (the `*` / `(null)` of the paper's tables).
///
/// `Hash`/`PartialEq` are hand-written hot-path implementations: cube
/// construction and query serving probe hash maps keyed by `CellKey`
/// millions of times, and the derived impls hash every `Option`
/// discriminant byte-by-byte. The manual hash feeds the hasher one word
/// for the presence mask plus one word per present code — the same
/// sequence the serving layer's stack-allocated compiled cell hashes, so
/// the two key forms are interchangeable in Fx-hashed tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellKey {
    /// Per-attribute assignment, aligned with the cubed-attribute order.
    pub codes: Vec<Option<u32>>,
}

impl PartialEq for CellKey {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.codes == other.codes
    }
}

impl Eq for CellKey {}

impl std::hash::Hash for CellKey {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Keys the cube builds carry ≤ 32 codes (the `CuboidMask`
        // ceiling), but `CellKey` is a public (de)serializable type, so
        // over-long keys must hash without shift overflow: `i & 31`
        // aliases presence bits past position 31 onto the low word —
        // a possible collision there, never a panic. Equal keys still
        // hash equal (eq compares the full code vector).
        let mut mask = 0u32;
        for (i, c) in self.codes.iter().enumerate() {
            if c.is_some() {
                mask |= 1 << (i & 31);
            }
        }
        state.write_u32(mask);
        for c in self.codes.iter().flatten() {
            state.write_u32(*c);
        }
    }
}

impl CellKey {
    /// Build from per-attribute assignments.
    pub fn new(codes: Vec<Option<u32>>) -> Self {
        CellKey { codes }
    }

    /// Build the cell of cuboid `mask` obtained by projecting a finest-key
    /// (`full`, one code per attribute) onto the mask.
    pub fn project(mask: CuboidMask, full: &[u32]) -> Self {
        CellKey {
            codes: full.iter().enumerate().map(|(i, &c)| mask.contains(i).then_some(c)).collect(),
        }
    }

    /// The cuboid this cell belongs to.
    #[inline]
    pub fn mask(&self) -> CuboidMask {
        let mut m = 0u32;
        for (i, c) in self.codes.iter().enumerate() {
            if c.is_some() {
                m |= 1 << i;
            }
        }
        CuboidMask(m)
    }

    /// The compact key (codes of the present attributes, ascending attr
    /// order) used inside per-cuboid hash maps.
    pub fn compact(&self) -> Vec<u32> {
        self.codes.iter().filter_map(|c| *c).collect()
    }

    /// Reassemble a cell key from a cuboid mask and a compact key.
    pub fn from_compact(mask: CuboidMask, n: usize, compact: &[u32]) -> Self {
        let mut it = compact.iter();
        CellKey {
            codes: (0..n)
                .map(|i| {
                    if mask.contains(i) {
                        // Arity of `compact` always equals mask arity.
                        Some(*it.next().expect("compact key arity mismatch"))
                    } else {
                        None
                    }
                })
                .collect(),
        }
    }

    /// Whether this cell is an ancestor of (or equal to) the finest key
    /// `full` — i.e. `full`'s row group is contained in this cell's group.
    #[inline]
    pub fn covers(&self, full: &[u32]) -> bool {
        self.codes.iter().zip(full).all(|(c, &f)| c.is_none_or(|c| c == f))
    }
}

impl std::fmt::Display for CellKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.codes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match c {
                Some(code) => write!(f, "{code}")?,
                None => write!(f, "*")?,
            }
        }
        write!(f, "⟩")
    }
}

/// The cuboid lattice of an `n`-attribute cube (paper Fig. 5a): vertices
/// are cuboids, edges connect a cuboid to each immediate parent.
#[derive(Debug, Clone)]
pub struct Lattice {
    /// Number of cubed attributes.
    pub n: usize,
}

impl Lattice {
    /// Lattice over `n` attributes.
    pub fn new(n: usize) -> Self {
        assert!((1..=31).contains(&n));
        Lattice { n }
    }

    /// Total number of cuboids, `2ⁿ`.
    pub fn num_cuboids(&self) -> usize {
        1 << self.n
    }

    /// Every cuboid, finest first.
    pub fn cuboids(&self) -> Vec<CuboidMask> {
        CuboidMask::enumerate(self.n)
    }

    /// The immediate parents of `mask` (one extra grouping attribute).
    pub fn parents(&self, mask: CuboidMask) -> Vec<CuboidMask> {
        (0..self.n).filter(|&i| !mask.contains(i)).map(|i| CuboidMask(mask.0 | (1 << i))).collect()
    }

    /// The immediate children of `mask` (one fewer grouping attribute).
    pub fn children(&self, mask: CuboidMask) -> Vec<CuboidMask> {
        (0..self.n).filter(|&i| mask.contains(i)).map(|i| CuboidMask(mask.0 & !(1 << i))).collect()
    }
}

/// A fully-computed cube of aggregate states.
#[derive(Debug, Clone)]
pub struct CubeResult<S> {
    /// Number of cubed attributes.
    pub n: usize,
    /// Per-cuboid state maps, keyed by compact cell keys.
    pub cuboids: FxHashMap<CuboidMask, FxHashMap<Vec<u32>, S>>,
}

impl<S> CubeResult<S> {
    /// Look up a cell's state.
    pub fn cell_state(&self, key: &CellKey) -> Option<&S> {
        self.cuboids.get(&key.mask())?.get(&key.compact())
    }

    /// Iterate every `(cell, state)` of every cuboid.
    pub fn iter_cells(&self) -> impl Iterator<Item = (CellKey, &S)> + '_ {
        self.cuboids.iter().flat_map(move |(mask, groups)| {
            groups
                .iter()
                .map(move |(compact, s)| (CellKey::from_compact(*mask, self.n, compact), s))
        })
    }

    /// Total number of cells across all cuboids.
    pub fn total_cells(&self) -> usize {
        self.cuboids.values().map(|g| g.len()).sum()
    }
}

/// Build the finest cuboid with a single scan.
///
/// `make` creates an empty state; `fold` accounts one row into a state.
///
/// The scan is partition-parallel: morsels of [`DEFAULT_MORSEL_ROWS`] rows
/// each build a partial hash table, merged in ascending morsel order — so
/// per-cell fold/merge sequences (and therefore floating-point bits and
/// hash-map insertion order) are independent of the thread count.
pub fn finest_cuboid<S, M, F>(
    table: &Table,
    cols: &[usize],
    make: M,
    fold: F,
) -> Result<FxHashMap<Vec<u32>, S>>
where
    S: AggState,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, RowId) + Sync,
{
    let cats: Vec<Cat<'_>> = cols.iter().map(|&c| table.cat(c)).collect::<Result<_>>()?;
    let started = std::time::Instant::now();
    let cards: Vec<usize> = cats.iter().map(|c| c.cardinality()).collect();
    let layout = if kernel::vectorize() { KeyLayout::from_cardinalities(&cards) } else { None };
    // Run-aligned scan: only when every grouping column exposes RLE runs
    // — checked *before* `codes()`, which would force a decode.
    let run_views: Option<Vec<RunsView<'_, u32>>> = cats.iter().map(|c| c.runs()).collect();
    let metrics = tabula_obs::global();
    let out = match (&layout, run_views) {
        (Some(layout), Some(runs)) if !runs.is_empty() => {
            metrics.counter("cube.kernel.runs").inc();
            finest_runs(table, layout, &runs, &make, &fold)
        }
        (Some(layout), _) => {
            let code_slices: Vec<&[u32]> = cats.iter().map(|c| c.codes()).collect();
            metrics.counter("cube.kernel.vectorized").inc();
            finest_vectorized(table, layout, &code_slices, &make, &fold)
        }
        (None, _) => {
            let code_slices: Vec<&[u32]> = cats.iter().map(|c| c.codes()).collect();
            metrics.counter("cube.kernel.scalar").inc();
            finest_scalar(table, cols.len(), &code_slices, &make, &fold)
        }
    };
    metrics.counter("cube.scan_rows").add(table.len() as u64);
    metrics.counter("cube.kernel_ns").add(started.elapsed().as_nanos() as u64);
    Ok(out)
}

/// Row-at-a-time reference scan: per-morsel slice-keyed hash aggregation.
fn finest_scalar<S, M, F>(
    table: &Table,
    width: usize,
    code_slices: &[&[u32]],
    make: &M,
    fold: &F,
) -> FxHashMap<Vec<u32>, S>
where
    S: AggState,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, RowId) + Sync,
{
    let pool = Pool::global();
    let partials = pool.par_chunks(table.len(), DEFAULT_MORSEL_ROWS, |range| {
        let mut groups: FxHashMap<Vec<u32>, S> = FxHashMap::default();
        let mut packed = PackedCodes::new(width);
        packed.fill_range(code_slices, range.clone());
        for (i, row) in range.enumerate() {
            let key = packed.key(i);
            match groups.get_mut(key) {
                Some(s) => fold(s, row as RowId),
                None => {
                    let mut s = make();
                    fold(&mut s, row as RowId);
                    groups.insert(key.to_vec(), s);
                }
            }
        }
        groups
    });
    merge_partial_states(partials)
}

/// Chunked scan on bit-packed `u64` keys.
///
/// Each chunk runs in two passes: a *probe* pass maps the chunk's packed
/// keys to dense slot indices (inserting new slots in first-seen order),
/// then a *fold* pass updates the slot states in row order — the
/// accumulators advance per-chunk, not per-row-with-hash-lookup. Per-key
/// fold order (ascending rows within a morsel), morsel merge order, and
/// final first-seen insertion order are all identical to
/// [`finest_scalar`], so the two kernels produce byte-identical maps.
fn finest_vectorized<S, M, F>(
    table: &Table,
    layout: &KeyLayout,
    code_slices: &[&[u32]],
    make: &M,
    fold: &F,
) -> FxHashMap<Vec<u32>, S>
where
    S: AggState,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, RowId) + Sync,
{
    let chunk = kernel::chunk_rows();
    let pool = Pool::global();
    let partials: Vec<(Vec<u64>, Vec<S>)> =
        pool.par_chunks(table.len(), DEFAULT_MORSEL_ROWS, |range| {
            let mut slots: FxHashMap<u64, u32> = FxHashMap::default();
            let mut keys: Vec<u64> = Vec::new();
            let mut states: Vec<S> = Vec::new();
            let mut packed = PackedKeyBuf::new();
            let mut slot_ix: Vec<u32> = Vec::with_capacity(chunk);
            let mut start = range.start;
            while start < range.end {
                let end = range.end.min(start + chunk);
                packed.fill_range(layout, code_slices, start..end);
                slot_ix.clear();
                for &k in packed.keys() {
                    let slot = match slots.get(&k) {
                        Some(&s) => s,
                        None => {
                            let s = keys.len() as u32;
                            slots.insert(k, s);
                            keys.push(k);
                            states.push(make());
                            s
                        }
                    };
                    slot_ix.push(slot);
                }
                for (i, &slot) in slot_ix.iter().enumerate() {
                    fold(&mut states[slot as usize], (start + i) as RowId);
                }
                start = end;
            }
            (keys, states)
        });
    merge_packed_partials(layout, partials)
}

/// Run-aligned scan over RLE-encoded grouping columns: per morsel, walk
/// the columns' runs in lockstep and split the morsel into maximal
/// segments on which every grouping code is constant — one key encode and
/// one slot probe per *segment* instead of per row. Rows still fold one
/// at a time in ascending order (a per-run shortcut would change float
/// bits), so per-state fold sequences, first-seen slot order, and the
/// morsel merge are all identical to [`finest_vectorized`] /
/// [`finest_scalar`]: the three kernels produce byte-identical maps.
fn finest_runs<S, M, F>(
    table: &Table,
    layout: &KeyLayout,
    runs: &[RunsView<'_, u32>],
    make: &M,
    fold: &F,
) -> FxHashMap<Vec<u32>, S>
where
    S: AggState,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, RowId) + Sync,
{
    let pool = Pool::global();
    let partials: Vec<(Vec<u64>, Vec<S>)> =
        pool.par_chunks(table.len(), DEFAULT_MORSEL_ROWS, |range| {
            let mut slots: FxHashMap<u64, u32> = FxHashMap::default();
            let mut keys: Vec<u64> = Vec::new();
            let mut states: Vec<S> = Vec::new();
            // Per-column cursor at the run containing the morsel start.
            let mut cursors: Vec<usize> = runs
                .iter()
                .map(|rv| rv.ends.partition_point(|&e| (e as usize) <= range.start))
                .collect();
            let mut scratch = vec![0u32; runs.len()];
            let mut pos = range.start;
            while pos < range.end {
                let mut seg_end = range.end;
                for (ci, rv) in runs.iter().enumerate() {
                    scratch[ci] = rv.values[cursors[ci]];
                    seg_end = seg_end.min(rv.ends[cursors[ci]] as usize);
                }
                let k = layout.encode(&scratch);
                let slot = match slots.get(&k) {
                    Some(&s) => s,
                    None => {
                        let s = keys.len() as u32;
                        slots.insert(k, s);
                        keys.push(k);
                        states.push(make());
                        s
                    }
                };
                let state = &mut states[slot as usize];
                for row in pos..seg_end {
                    fold(state, row as RowId);
                }
                for (ci, rv) in runs.iter().enumerate() {
                    if rv.ends[cursors[ci]] as usize == seg_end {
                        cursors[ci] += 1;
                    }
                }
                pos = seg_end;
            }
            (keys, states)
        });
    merge_packed_partials(layout, partials)
}

/// Slot-level ordered merge in ascending morsel order, then one decode at
/// the end — the scan itself never touches `Vec<u32>` keys.
fn merge_packed_partials<S: AggState>(
    layout: &KeyLayout,
    partials: Vec<(Vec<u64>, Vec<S>)>,
) -> FxHashMap<Vec<u32>, S> {
    let mut slots: FxHashMap<u64, u32> = FxHashMap::default();
    let mut keys: Vec<u64> = Vec::new();
    let mut states: Vec<S> = Vec::new();
    for (pkeys, pstates) in partials {
        for (k, s) in pkeys.into_iter().zip(pstates) {
            match slots.get(&k) {
                Some(&slot) => states[slot as usize].merge(&s),
                None => {
                    slots.insert(k, keys.len() as u32);
                    keys.push(k);
                    states.push(s);
                }
            }
        }
    }
    let mut out: FxHashMap<Vec<u32>, S> = FxHashMap::default();
    out.reserve(keys.len());
    for (k, s) in keys.into_iter().zip(states) {
        out.insert(layout.decode(k), s);
    }
    out
}

/// Merge per-morsel partial state maps in morsel order. Insertion order of
/// the output (first occurrence across the ordered morsel sequence) and
/// per-key merge order are both deterministic.
fn merge_partial_states<S: AggState>(
    partials: Vec<FxHashMap<Vec<u32>, S>>,
) -> FxHashMap<Vec<u32>, S> {
    let mut iter = partials.into_iter();
    let Some(mut out) = iter.next() else {
        return FxHashMap::default();
    };
    for partial in iter {
        for (key, state) in partial {
            match out.get_mut(&key) {
                Some(s) => s.merge(&state),
                None => {
                    out.insert(key, state);
                }
            }
        }
    }
    out
}

/// Compute every cuboid of the cube by algebraic rollup: one raw scan for
/// the finest cuboid, then each coarser cuboid derived by merging an
/// already-computed immediate parent.
pub fn compute_cube<S, M, F>(
    table: &Table,
    cols: &[usize],
    make: M,
    fold: F,
) -> Result<CubeResult<S>>
where
    S: AggState,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, RowId) + Sync,
{
    let n = cols.len();
    let finest = finest_cuboid(table, cols, &make, fold)?;
    Ok(rollup_from_finest(n, finest, &make))
}

/// Position, within the parent's compact key, of the attribute rolled
/// away when deriving `mask` from `parent`.
fn removed_index(parent: CuboidMask, mask: CuboidMask) -> usize {
    let removed_attr = parent.0 & !mask.0;
    debug_assert_eq!(removed_attr.count_ones(), 1);
    (parent.0 & (removed_attr - 1)).count_ones() as usize
}

/// Derive the full lattice from a precomputed finest cuboid.
///
/// The rollup is **level-synchronous**: all cuboids of one arity depend
/// only on cuboids of arity+1, so each level's (independent) derivations
/// run in parallel on the morsel pool. Every child is derived from a
/// single parent by one sequential pass over the parent's cells in
/// **ascending lexicographic key order** — a canonical order, so per-cell
/// merge sequences (and their float bits) are a function of cube content
/// alone: independent of thread count, hash-map layout, and kernel mode.
///
/// When the bit-packed key of the observed per-position cardinalities fits
/// 64 bits, the whole lattice is rolled up on packed `u64` keys: each
/// parent key maps to its child key by [`KeyLayout::squeeze`] (two shifts
/// and a mask — no decode), and sorting packed entries by `u64` *is* the
/// lexicographic order the scalar path sorts by.
pub fn rollup_from_finest<S, M>(n: usize, finest: FxHashMap<Vec<u32>, S>, make: &M) -> CubeResult<S>
where
    S: AggState,
    M: Fn() -> S + Sync,
{
    let mut entries: Vec<(Vec<u32>, S)> = finest.into_iter().collect();
    entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    // Observed cardinality bound per position (max code + 1): enough for
    // an injective packing of every key the rollup will ever see.
    let mut cards = vec![0usize; n];
    for (key, _) in &entries {
        for (i, &c) in key.iter().enumerate() {
            cards[i] = cards[i].max(c as usize + 1);
        }
    }
    let layout = if kernel::vectorize() { KeyLayout::from_cardinalities(&cards) } else { None };
    match layout {
        Some(layout) => rollup_packed(n, entries, layout, make),
        None => rollup_scalar(n, entries, make),
    }
}

/// Lattice rollup on bit-packed `u64` keys.
fn rollup_packed<S, M>(
    n: usize,
    entries: Vec<(Vec<u32>, S)>,
    layout: KeyLayout,
    make: &M,
) -> CubeResult<S>
where
    S: AggState,
    M: Fn() -> S + Sync,
{
    let finest: Vec<(u64, S)> =
        entries.into_iter().map(|(key, s)| (layout.encode(&key), s)).collect();
    // Lex-sorted tuples pack to ascending u64 keys (attr 0 sits highest).
    debug_assert!(finest.windows(2).all(|w| w[0].0 < w[1].0));
    let mut packed: FxHashMap<CuboidMask, (KeyLayout, Vec<(u64, S)>)> = FxHashMap::default();
    packed.insert(CuboidMask::finest(n), (layout, finest));
    let pool = Pool::global();
    for arity in (0..n as u32).rev() {
        let masks: Vec<CuboidMask> =
            (0..(1u64 << n) as u32).map(CuboidMask).filter(|m| m.arity() == arity).collect();
        let derived: Vec<(KeyLayout, Vec<(u64, S)>)> = pool.par_map(&masks, |&mask| {
            let parent = mask.a_parent(n).expect("every non-finest cuboid has a parent");
            let removed_idx = removed_index(parent, mask);
            let (playout, pentries) = &packed[&parent];
            let clayout = playout.without_attr(removed_idx);
            let mut slots: FxHashMap<u64, u32> = FxHashMap::default();
            let mut out: Vec<(u64, S)> = Vec::new();
            for (pkey, state) in pentries {
                let ckey = playout.squeeze(*pkey, removed_idx);
                match slots.get(&ckey) {
                    Some(&slot) => out[slot as usize].1.merge(state),
                    None => {
                        slots.insert(ckey, out.len() as u32);
                        let mut s = make();
                        s.merge(state);
                        out.push((ckey, s));
                    }
                }
            }
            out.sort_unstable_by_key(|e| e.0);
            (clayout, out)
        });
        for (mask, d) in masks.into_iter().zip(derived) {
            packed.insert(mask, d);
        }
    }
    let mut cuboids: FxHashMap<CuboidMask, FxHashMap<Vec<u32>, S>> = FxHashMap::default();
    for (mask, (l, es)) in packed {
        let mut groups: FxHashMap<Vec<u32>, S> = FxHashMap::default();
        groups.reserve(es.len());
        for (k, s) in es {
            groups.insert(l.decode(k), s);
        }
        cuboids.insert(mask, groups);
    }
    CubeResult { n, cuboids }
}

/// Reference rollup on compact `Vec<u32>` keys (packed key over 64 bits,
/// or `TABULA_KERNELS=scalar`). Scans parents in the same ascending
/// lexicographic order as [`rollup_packed`], so both produce identical
/// states.
fn rollup_scalar<S, M>(n: usize, entries: Vec<(Vec<u32>, S)>, make: &M) -> CubeResult<S>
where
    S: AggState,
    M: Fn() -> S + Sync,
{
    let mut sorted: FxHashMap<CuboidMask, Vec<(Vec<u32>, S)>> = FxHashMap::default();
    sorted.insert(CuboidMask::finest(n), entries);
    let pool = Pool::global();
    for arity in (0..n as u32).rev() {
        let masks: Vec<CuboidMask> =
            (0..(1u64 << n) as u32).map(CuboidMask).filter(|m| m.arity() == arity).collect();
        let derived: Vec<Vec<(Vec<u32>, S)>> = pool.par_map(&masks, |&mask| {
            let parent = mask.a_parent(n).expect("every non-finest cuboid has a parent");
            let removed_idx = removed_index(parent, mask);
            let pentries = &sorted[&parent];
            let mut slots: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
            let mut out: Vec<(Vec<u32>, S)> = Vec::new();
            for (pkey, state) in pentries {
                let mut ckey = Vec::with_capacity(pkey.len() - 1);
                ckey.extend_from_slice(&pkey[..removed_idx]);
                ckey.extend_from_slice(&pkey[removed_idx + 1..]);
                match slots.get(&ckey) {
                    Some(&slot) => out[slot as usize].1.merge(state),
                    None => {
                        slots.insert(ckey.clone(), out.len() as u32);
                        let mut s = make();
                        s.merge(state);
                        out.push((ckey, s));
                    }
                }
            }
            out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            out
        });
        for (mask, d) in masks.into_iter().zip(derived) {
            sorted.insert(mask, d);
        }
    }
    let mut cuboids: FxHashMap<CuboidMask, FxHashMap<Vec<u32>, S>> = FxHashMap::default();
    for (mask, es) in sorted {
        let mut groups: FxHashMap<Vec<u32>, S> = FxHashMap::default();
        groups.reserve(es.len());
        for (k, s) in es {
            groups.insert(k, s);
        }
        cuboids.insert(mask, groups);
    }
    CubeResult { n, cuboids }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::SumCount;
    use crate::schema::{Field, Schema};
    use crate::table::TableBuilder;
    use crate::types::ColumnType;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("payment", ColumnType::Str),
            Field::new("passengers", ColumnType::Int64),
            Field::new("fare", ColumnType::Float64),
        ]);
        let mut b = TableBuilder::new(schema);
        let data: [(&str, i64, f64); 6] = [
            ("cash", 1, 5.0),
            ("credit", 2, 9.0),
            ("cash", 1, 7.0),
            ("dispute", 3, 12.0),
            ("cash", 2, 3.0),
            ("credit", 2, 4.0),
        ];
        for (p, n, f) in data {
            b.push_row(&[p.into(), n.into(), f.into()]).unwrap();
        }
        b.finish()
    }

    fn fare_cube(t: &Table) -> CubeResult<SumCount> {
        let fares = t.column(2).as_f64_slice().unwrap().to_vec();
        compute_cube(t, &[0, 1], SumCount::default, move |s, row| s.add(fares[row as usize]))
            .unwrap()
    }

    #[test]
    fn mask_basics() {
        let m = CuboidMask::finest(3);
        assert_eq!(m.0, 0b111);
        assert_eq!(m.arity(), 3);
        assert_eq!(m.attrs(), vec![0, 1, 2]);
        assert!(CuboidMask(0b101).is_subset_of(m));
        assert!(!m.is_subset_of(CuboidMask(0b101)));
        assert_eq!(CuboidMask::enumerate(2).len(), 4);
        assert_eq!(CuboidMask::enumerate(2)[0], CuboidMask(0b11));
        assert_eq!(CuboidMask(0b01).a_parent(2), Some(CuboidMask(0b11)));
        assert_eq!(CuboidMask(0b11).a_parent(2), None);
    }

    #[test]
    fn cell_key_round_trips() {
        let key = CellKey::project(CuboidMask(0b101), &[7, 8, 9]);
        assert_eq!(key.codes, vec![Some(7), None, Some(9)]);
        assert_eq!(key.mask(), CuboidMask(0b101));
        assert_eq!(key.compact(), vec![7, 9]);
        let back = CellKey::from_compact(CuboidMask(0b101), 3, &[7, 9]);
        assert_eq!(back, key);
        assert!(key.covers(&[7, 123, 9]));
        assert!(!key.covers(&[6, 123, 9]));
    }

    #[test]
    fn lattice_edges() {
        let l = Lattice::new(3);
        assert_eq!(l.num_cuboids(), 8);
        assert_eq!(l.parents(CuboidMask(0b001)), vec![CuboidMask(0b011), CuboidMask(0b101)]);
        assert_eq!(l.children(CuboidMask(0b011)), vec![CuboidMask(0b010), CuboidMask(0b001)]);
        assert!(l.parents(CuboidMask::finest(3)).is_empty());
        assert!(l.children(CuboidMask::all_cuboid()).is_empty());
    }

    #[test]
    fn cube_all_cell_equals_full_table() {
        let t = table();
        let cube = fare_cube(&t);
        let all = cube.cell_state(&CellKey::new(vec![None, None])).unwrap();
        assert_eq!(all.count, 6);
        assert!((all.sum - 40.0).abs() < 1e-9);
    }

    #[test]
    fn cube_cells_match_direct_group_by() {
        let t = table();
        let cube = fare_cube(&t);
        // ⟨cash, *⟩: rows 0, 2, 4 → fares 5 + 7 + 3.
        let cash = cube.cell_state(&CellKey::new(vec![Some(0), None])).unwrap();
        assert_eq!(cash.count, 3);
        assert!((cash.sum - 15.0).abs() < 1e-9);
        // ⟨*, 2⟩: passengers code for value 2 is 1 → rows 1, 4, 5.
        let two = cube.cell_state(&CellKey::new(vec![None, Some(1)])).unwrap();
        assert_eq!(two.count, 3);
        assert!((two.sum - 16.0).abs() < 1e-9);
        // Finest cell ⟨credit, 2⟩ = codes (1, 1): rows 1, 5.
        let fine = cube.cell_state(&CellKey::new(vec![Some(1), Some(1)])).unwrap();
        assert_eq!(fine.count, 2);
        assert!((fine.sum - 13.0).abs() < 1e-9);
    }

    #[test]
    fn total_cells_counts_every_cuboid() {
        let t = table();
        let cube = fare_cube(&t);
        // Finest groups: (cash,1),(credit,2),(dispute,3),(cash,2) = 4;
        // payment cuboid: 3; passengers cuboid: 3; ALL: 1.
        assert_eq!(cube.total_cells(), 4 + 3 + 3 + 1);
        assert_eq!(cube.iter_cells().count(), cube.total_cells());
    }

    #[test]
    fn rollup_sums_are_consistent_across_cuboids() {
        let t = table();
        let cube = fare_cube(&t);
        // Every cuboid's states must sum to the full table's totals.
        for (mask, groups) in &cube.cuboids {
            let total: f64 = groups.values().map(|s| s.sum).sum();
            let count: u64 = groups.values().map(|s| s.count).sum();
            assert!((total - 40.0).abs() < 1e-9, "mask {mask:?}");
            assert_eq!(count, 6, "mask {mask:?}");
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(CuboidMask::all_cuboid().to_string(), "ALL");
        assert_eq!(CuboidMask(0b101).to_string(), "a0,a2");
        let key = CellKey::new(vec![Some(1), None]);
        assert_eq!(key.to_string(), "⟨1, *⟩");
    }

    /// The run-aligned finest scan must be *byte-identical* (float bits
    /// included) to the vectorized and scalar kernels: folds happen per
    /// row in ascending order in all three, so per-state addition
    /// sequences match exactly. Kernels are invoked directly — no global
    /// mode is touched.
    #[test]
    fn run_aligned_finest_scan_is_byte_identical() {
        let schema = Schema::new(vec![
            Field::new("a", ColumnType::Str),
            Field::new("b", ColumnType::Int64),
            Field::new("m", ColumnType::Float64),
        ]);
        let mut b = TableBuilder::new(schema);
        for row in 0..1300usize {
            let blk = row / 71;
            b.push_row(&[
                ["n", "s", "e", "w"][blk % 4].into(),
                ((blk % 6) as i64).into(),
                ((row % 13) as f64 * 0.1 + 0.01).into(),
            ])
            .unwrap();
        }
        let t = b.finish();
        let mut cols: Vec<crate::column::Column> = Vec::new();
        for i in 0..3 {
            let mut c = t.column(i).clone();
            c.encode_for_freeze(crate::encoding::EncodingMode::Force);
            cols.push(c);
        }
        let t = Table::from_columns(t.schema().clone(), cols).unwrap();
        let fares: Vec<f64> = t.column(2).as_f64_slice().unwrap().to_vec();
        let fold = move |s: &mut SumCount, row: RowId| s.add(fares[row as usize]);
        let cats: Vec<Cat<'_>> = (0..2).map(|c| t.cat(c).unwrap()).collect();
        let runs: Vec<RunsView<'_, u32>> = cats.iter().map(|c| c.runs().unwrap()).collect();
        let cards: Vec<usize> = cats.iter().map(|c| c.cardinality()).collect();
        let layout = KeyLayout::from_cardinalities(&cards).unwrap();
        let aligned = finest_runs(&t, &layout, &runs, &SumCount::default, &fold);
        let code_slices: Vec<&[u32]> = cats.iter().map(|c| c.codes()).collect();
        let vectorized = finest_vectorized(&t, &layout, &code_slices, &SumCount::default, &fold);
        let scalar = finest_scalar(&t, 2, &code_slices, &SumCount::default, &fold);
        for reference in [&vectorized, &scalar] {
            assert_eq!(aligned.len(), reference.len());
            for (k, s) in &aligned {
                let r = &reference[k];
                assert_eq!(s.count, r.count, "key {k:?}");
                assert_eq!(s.sum.to_bits(), r.sum.to_bits(), "key {k:?}");
            }
        }
    }

    #[test]
    fn finest_cuboid_respects_values() {
        let t = table();
        let finest = finest_cuboid(&t, &[0], SumCount::default, |s, _row| s.add(1.0)).unwrap();
        assert_eq!(finest.len(), 3);
        assert_eq!(finest[&vec![0]].count, 3);
    }
}
