//! Cross-approach invariants from the paper's evaluation, checked on the
//! synthetic workload (no wall-clock assertions — those belong to the
//! benchmark harness; these are the *semantic* relationships).

use std::sync::Arc;
use tabula::baselines::{Approach, PoiSam, SampleFirst, SampleOnTheFly, SnappyLike};
use tabula::core::loss::{AccuracyLoss, HeatmapLoss, HistogramLoss, Metric};
use tabula::core::{MaterializationMode, SamplingCubeBuilder};
use tabula::data::{meters_to_norm, TaxiConfig, TaxiGenerator, Workload, CUBED_ATTRIBUTES};
use tabula::storage::{Predicate, Table};

fn taxi(rows: usize, seed: u64) -> Arc<Table> {
    Arc::new(TaxiGenerator::new(TaxiConfig { rows, seed }).generate())
}

#[test]
fn samfly_always_meets_theta_poisam_usually_does() {
    let t = taxi(10_000, 11);
    let pickup = t.schema().index_of("pickup").unwrap();
    let loss = HeatmapLoss::new(pickup, Metric::Euclidean);
    let theta = meters_to_norm(1_000.0);
    let fly = SampleOnTheFly::new(Arc::clone(&t), loss.clone(), theta);
    let poisam = PoiSam::new(Arc::clone(&t), loss.clone(), theta, 2);

    let workload = Workload::new(&CUBED_ATTRIBUTES[..4]);
    let queries = workload.generate(&t, 25, 77).unwrap();
    let mut poi_ratios = Vec::new();
    for q in &queries {
        let raw = q.predicate.filter(&t).unwrap();
        let fly_ans = fly.query(&q.predicate);
        let fly_loss = loss.loss(&t, &raw, &fly_ans.rows);
        assert!(fly_loss <= theta + 1e-9, "SamFly violated θ on [{}]", q.description);

        let poi_ans = poisam.query(&q.predicate);
        let poi_loss = loss.loss(&t, &raw, &poi_ans.rows);
        // POIsam's guarantee holds only against its random pre-sample, so
        // the true loss often lands slightly above θ — but the *magnitude*
        // of the excess stays small (the paper reports 1–5 %).
        assert!(poi_loss <= theta * 2.0, "[{}]: {poi_loss}", q.description);
        poi_ratios.push(poi_loss / theta);
    }
    let avg_ratio = poi_ratios.iter().sum::<f64>() / poi_ratios.len() as f64;
    assert!(avg_ratio <= 1.25, "POIsam's average loss is {avg_ratio:.3}×θ");
}

#[test]
fn memory_ordering_matches_the_paper() {
    // FullSamCube ≥ PartSamCube ≥ Tabula* ≥ Tabula (sample-table bytes),
    // and online approaches hold nothing.
    let t = taxi(8_000, 12);
    let fare = t.schema().index_of("fare_amount").unwrap();
    let loss = HistogramLoss::new(fare);
    let theta = 0.1; // tight enough ($0.10) to force a real iceberg set
    let attrs = &CUBED_ATTRIBUTES[..4];
    let build = |mode| {
        SamplingCubeBuilder::new(Arc::clone(&t), attrs, loss.clone(), theta)
            .mode(mode)
            .seed(3)
            .build()
            .unwrap()
            .memory_breakdown()
    };
    let full = build(MaterializationMode::FullSamCube);
    let part = build(MaterializationMode::PartSamCube);
    let star = build(MaterializationMode::TabulaStar);
    let tabula = build(MaterializationMode::Tabula);
    assert!(
        full.sample_table_bytes >= part.sample_table_bytes,
        "full {} < part {}",
        full.sample_table_bytes,
        part.sample_table_bytes
    );
    assert!(part.sample_table_bytes >= star.sample_table_bytes);
    assert!(star.sample_table_bytes >= tabula.sample_table_bytes);
    assert!(star.sample_table_bytes > 0, "θ must produce iceberg cells");

    let fly = SampleOnTheFly::new(Arc::clone(&t), loss.clone(), theta);
    let poisam = PoiSam::new(Arc::clone(&t), loss, theta, 5);
    assert_eq!(fly.memory_bytes(), 0);
    assert_eq!(poisam.memory_bytes(), 0);
}

#[test]
fn sample_first_answers_shrink_with_budget_and_lose_accuracy() {
    let t = taxi(20_000, 13);
    let small = SampleFirst::with_rows(Arc::clone(&t), 200, 1).named("small");
    let large = SampleFirst::with_rows(Arc::clone(&t), 5_000, 1).named("large");
    assert!(small.memory_bytes() < large.memory_bytes());

    let pred = Predicate::eq("rate_code", "jfk");
    let raw = pred.filter(&t).unwrap();
    let s_ans = small.query(&pred);
    let l_ans = large.query(&pred);
    assert!(s_ans.rows.len() < l_ans.rows.len());
    // The heat-map loss of SampleFirst's answers degrades as the budget
    // shrinks (the paper omits SampleFirst from its loss plots because it
    // is ~20× worse).
    let pickup = t.schema().index_of("pickup").unwrap();
    let loss = HeatmapLoss::new(pickup, Metric::Euclidean);
    let l_small = loss.loss(&t, &raw, &s_ans.rows);
    let l_large = loss.loss(&t, &raw, &l_ans.rows);
    assert!(l_small >= l_large);
}

#[test]
fn snappy_fallback_rate_drops_with_looser_bounds() {
    let t = taxi(15_000, 14);
    let attrs = &CUBED_ATTRIBUTES[..4];
    let workload = Workload::new(attrs);
    let queries = workload.generate(&t, 40, 5).unwrap();
    let fallbacks = |bound: f64| -> usize {
        let snappy = SnappyLike::build(Arc::clone(&t), attrs, "fare_amount", 40, bound, 6).unwrap();
        queries.iter().filter(|q| snappy.query_avg(&q.predicate).fell_back_to_raw).count()
    };
    let tight = fallbacks(0.005);
    let loose = fallbacks(0.20);
    assert!(tight > loose, "tight {tight} vs loose {loose}");
}

#[test]
fn tabula_returns_global_sample_for_non_iceberg_hits() {
    // The paper's Table II explanation: Tabula's visualization time is the
    // highest because non-iceberg queries get the ~1000-tuple global
    // sample rather than a ~100-tuple local sample.
    let t = taxi(10_000, 15);
    let pickup = t.schema().index_of("pickup").unwrap();
    let loss = HeatmapLoss::new(pickup, Metric::Euclidean);
    let cube = SamplingCubeBuilder::new(
        Arc::clone(&t),
        &CUBED_ATTRIBUTES[..5],
        loss,
        meters_to_norm(1_000.0),
    )
    .seed(2)
    .build()
    .unwrap();
    let global_answer = cube.query(&Predicate::all()).unwrap();
    if matches!(global_answer.provenance, tabula::core::SampleProvenance::Global) {
        assert_eq!(global_answer.len(), cube.stats().global_sample_size);
        assert!(global_answer.len() > 900, "Serfling default ≈ 1060 tuples");
    }
}
