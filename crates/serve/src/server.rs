//! The concurrent query server: compiled predicates in front of a frozen
//! index in front of a sharded answer cache.
//!
//! One [`Server`] wraps one cube *generation* at a time. The read path
//! takes a single `RwLock` read acquisition (to clone the generation
//! `Arc`), then runs entirely on immutable data: compile the predicate on
//! the stack, probe the cache, on a miss probe the frozen index and
//! materialize. Each generation carries the cache epoch it was installed
//! under — the bump and the pointer swap happen inside the same
//! write-lock critical section, and every cache probe and insert passes
//! the *generation's* epoch rather than re-reading the cache clock. That
//! pins each answer to the generation that computed it: an in-flight
//! query that races with a refresh can only insert under its own (old)
//! generation's epoch, which no reader of the new generation can match,
//! so no stale cached answer survives the swap.
//!
//! Answers are byte-identical to [`SamplingCube::query`] at any thread
//! count and cache size: the index probe replicates the cube table lookup
//! exactly, the cache stores exactly what a miss computed, and provenance
//! accounting stays exact (a cache hit tallies `serve_cache_hit`, every
//! other outcome tallies the same counter the cube itself would).

use crate::cache::{AnswerCache, CacheLookup, CachedAnswer};
use crate::compile::{compile_predicate, CompiledCell};
use crate::index::{IndexLayout, ServeIndex};
use std::sync::{Arc, RwLock};
use std::time::Instant;
use tabula_core::incremental::{refresh, RefreshConfig, RefreshStats};
use tabula_core::loss::AccuracyLoss;
use tabula_core::{Result, SampleProvenance, SamplingCube, SnapshotInfo};
use tabula_obs::metrics::{Counter, Histogram, Registry};
use tabula_obs::trace::{QueryTrace, Stage, TraceProvenance, Tracer};
use tabula_obs::window::WindowedHistogram;
use tabula_storage::{Predicate, RowId, Table};

/// Counter: answers served from the cache.
pub const SERVE_HITS: &str = "serve.hits";
/// Counter: answers computed through the index (cache miss or bypass).
pub const SERVE_MISSES: &str = "serve.misses";
/// Counter: cache entries evicted for capacity.
pub const SERVE_EVICTIONS: &str = "serve.evictions";
/// Histogram: nanoseconds spent probing the frozen index on misses.
pub const SERVE_PROBE_NS: &str = "serve.probe_ns";
/// Histogram + 60 s sliding window: end-to-end nanoseconds per served query.
pub const SERVE_QUERY_NS: &str = "serve.query_ns";

/// Pre-resolved serving metrics.
#[derive(Debug, Clone)]
struct ServeMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    probe_ns: Arc<Histogram>,
    query_ns: Arc<Histogram>,
    query_window: Arc<WindowedHistogram>,
}

impl ServeMetrics {
    fn in_registry(registry: &Registry) -> Self {
        ServeMetrics {
            hits: registry.counter(SERVE_HITS),
            misses: registry.counter(SERVE_MISSES),
            evictions: registry.counter(SERVE_EVICTIONS),
            probe_ns: registry.histogram(SERVE_PROBE_NS),
            query_ns: registry.histogram(SERVE_QUERY_NS),
            query_window: registry.window(SERVE_QUERY_NS),
        }
    }
}

/// One immutable cube generation: the cube plus its frozen index, a
/// pre-materialized empty answer table, and the cache epoch the
/// generation was installed under.
#[derive(Debug)]
struct Generation {
    cube: Arc<SamplingCube>,
    index: ServeIndex,
    attrs: Vec<String>,
    cols: Vec<usize>,
    empty: Arc<Table>,
    /// Cache epoch this generation is valid under. Stamped inside the
    /// same write-lock critical section that swaps the generation in, so
    /// answers computed from this generation can only ever be cached and
    /// matched under this epoch — never under a later generation's.
    epoch: u64,
}

impl Generation {
    fn build(cube: Arc<SamplingCube>, epoch: u64) -> Result<Self> {
        let index = ServeIndex::build(&cube)?;
        let attrs = cube.attrs().to_vec();
        let cols = cube.cubed_cols().to_vec();
        let empty = Arc::new(cube.table().take(&[]));
        Ok(Generation { cube, index, attrs, cols, empty, epoch })
    }
}

/// A served answer: the cube answer plus its materialized table.
#[derive(Debug, Clone)]
pub struct ServeAnswer {
    /// Sample row ids into the generation's raw table.
    pub rows: Arc<Vec<RowId>>,
    /// Which cube path originally produced the rows.
    pub provenance: SampleProvenance,
    /// The materialized sample table (what ships to the dashboard).
    pub table: Arc<Table>,
    /// Whether this answer came from the cache.
    pub cached: bool,
}

/// The concurrent serving layer over a [`SamplingCube`].
///
/// Shared-reference querying: `&Server` is `Sync`, so clients on any
/// number of threads call [`Server::query`] concurrently.
#[derive(Debug)]
pub struct Server {
    generation: RwLock<Arc<Generation>>,
    cache: AnswerCache,
    metrics: ServeMetrics,
    registry: Arc<Registry>,
    tracer: Arc<Tracer>,
}

impl Server {
    /// Serve `cube` with cache settings from the environment
    /// (`TABULA_CACHE_MB`, `TABULA_CACHE_BYPASS`), metrics in the
    /// process-wide registry.
    pub fn new(cube: Arc<SamplingCube>) -> Result<Self> {
        Server::with_cache(cube, AnswerCache::from_env(), Arc::clone(tabula_obs::global()))
    }

    /// Serve `cube` with metrics (and refreshed generations' provenance)
    /// homed in `registry`, cache from the environment.
    pub fn in_registry(cube: Arc<SamplingCube>, registry: &Arc<Registry>) -> Result<Self> {
        Server::with_cache(cube, AnswerCache::from_env(), Arc::clone(registry))
    }

    /// Full-control constructor.
    pub fn with_cache(
        cube: Arc<SamplingCube>,
        cache: AnswerCache,
        registry: Arc<Registry>,
    ) -> Result<Self> {
        let generation = Arc::new(Generation::build(cube, cache.epoch())?);
        Ok(Server {
            generation: RwLock::new(generation),
            cache,
            metrics: ServeMetrics::in_registry(&registry),
            registry,
            tracer: Arc::clone(Tracer::global()),
        })
    }

    /// Replace the process-global [`Tracer`] with a private one (benches
    /// and tests isolate their traces this way).
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = tracer;
        self
    }

    /// The tracer whose policy governs [`query`](Self::query).
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The currently served cube generation.
    pub fn cube(&self) -> Arc<SamplingCube> {
        Arc::clone(&self.generation.read().unwrap().cube)
    }

    /// The answer cache (for diagnostics).
    pub fn cache(&self) -> &AnswerCache {
        &self.cache
    }

    /// The registry this server's metrics live in — the ingest pipeline
    /// homes its own counters and freshness windows here so one scrape
    /// (`\metrics`, Prometheus) covers serving and ingestion together.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Cache epoch of the currently served generation. Advances exactly
    /// once per [`install`](Self::install) — observers (tests, the ingest
    /// pipeline) use it to count generation swaps and to verify that the
    /// answer cache is invalidated once per published generation.
    pub fn epoch(&self) -> u64 {
        self.generation.read().unwrap().epoch
    }

    /// Materialized cells in the current generation's frozen index.
    pub fn indexed_cells(&self) -> usize {
        self.generation.read().unwrap().index.cells()
    }

    /// Serve one dashboard query.
    ///
    /// Identical semantics to [`SamplingCube::query`] followed by
    /// [`materialize`](tabula_core::QueryAnswer::materialize): same rows,
    /// same provenance, same errors — just faster on repeats.
    ///
    /// Tracing is governed by this server's [`Tracer`]: deciding costs one
    /// relaxed atomic load; when the trace is enabled the full per-stage
    /// breakdown lands in the tracer's flight recorder.
    pub fn query(&self, pred: &Predicate) -> Result<ServeAnswer> {
        let mut trace = self.tracer.begin();
        let result = self.query_traced(pred, &mut trace);
        self.tracer.finish(trace);
        result
    }

    /// [`query`](Self::query) with a caller-owned [`QueryTrace`] — the SQL
    /// executor threads its own trace through here so `EXPLAIN ANALYZE`
    /// can show the breakdown. The caller finishes the trace.
    pub fn query_traced(&self, pred: &Predicate, trace: &mut QueryTrace) -> Result<ServeAnswer> {
        let wall = Instant::now();
        let result = self.query_inner(pred, trace);
        let elapsed = wall.elapsed();
        self.metrics.query_ns.record_duration(elapsed);
        self.metrics.query_window.record_duration(elapsed);
        result
    }

    fn query_inner(&self, pred: &Predicate, trace: &mut QueryTrace) -> Result<ServeAnswer> {
        let generation = Arc::clone(&self.generation.read().unwrap());
        let cube = &generation.cube;
        if trace.is_enabled() {
            trace.set_label(format!("{pred:?}"));
            trace.set_epoch(generation.epoch);
        }
        let stage = trace.stage_start();
        let compiled = compile_predicate(cube.table(), &generation.attrs, &generation.cols, pred)?;
        trace.stage(Stage::Compile, stage, 0, 0);
        let Some(cell) = compiled else {
            // EmptyDomain short-circuit: nothing to probe, nothing to cache.
            cube.provenance_counters().record_cell_miss();
            trace.set_provenance(TraceProvenance::EmptyDomain);
            return Ok(ServeAnswer {
                rows: Arc::new(Vec::new()),
                provenance: SampleProvenance::EmptyDomain,
                table: Arc::clone(&generation.empty),
                cached: false,
            });
        };
        if trace.is_enabled() {
            trace.set_cell(cell.describe());
        }
        let stage = trace.stage_start();
        let lookup = self.cache.get(&cell, generation.epoch);
        match lookup {
            CacheLookup::Hit(hit) => {
                trace.stage(
                    Stage::CacheProbe,
                    stage,
                    hit.rows.len() as u64,
                    hit.heap_bytes() as u64,
                );
                trace.set_provenance(TraceProvenance::CacheHit);
                self.metrics.hits.inc();
                cube.provenance_counters().record_serve_cache_hit();
                Ok(ServeAnswer {
                    rows: hit.rows,
                    provenance: hit.provenance,
                    table: hit.table,
                    cached: true,
                })
            }
            lookup => {
                trace.stage(Stage::CacheProbe, stage, 0, 0);
                self.metrics.misses.inc();
                let answer = self.compute(&generation, &cell, trace);
                if !matches!(lookup, CacheLookup::Bypass) {
                    let evicted = self.cache.insert(
                        cell,
                        CachedAnswer {
                            rows: Arc::clone(&answer.rows),
                            provenance: answer.provenance,
                            table: Arc::clone(&answer.table),
                        },
                        generation.epoch,
                    );
                    if evicted > 0 {
                        self.metrics.evictions.add(evicted as u64);
                    }
                }
                Ok(answer)
            }
        }
    }

    /// Probe the frozen index and materialize — the cache-miss path.
    fn compute(
        &self,
        generation: &Generation,
        cell: &CompiledCell,
        trace: &mut QueryTrace,
    ) -> ServeAnswer {
        let cube = &generation.cube;
        let stage = trace.stage_start();
        let start = Instant::now();
        let probed = generation.index.probe(cell);
        self.metrics.probe_ns.record_duration(start.elapsed());
        trace.stage(Stage::IndexProbe, stage, 0, 0);
        let (rows, provenance) = match probed {
            Some(sample_id) => {
                cube.provenance_counters().record_local_hit();
                trace.set_provenance(match generation.index.layout(cell.mask()) {
                    IndexLayout::Direct => TraceProvenance::LocalDirect,
                    _ => TraceProvenance::LocalSorted,
                });
                (Arc::clone(cube.sample(sample_id)), SampleProvenance::Local(sample_id))
            }
            None => {
                cube.provenance_counters().record_global_hit();
                trace.set_provenance(TraceProvenance::GlobalSample);
                (Arc::clone(cube.global_sample()), SampleProvenance::Global)
            }
        };
        let stage = trace.stage_start();
        let table = Arc::new(cube.table().take(&rows));
        trace.stage(Stage::Materialize, stage, rows.len() as u64, table.heap_bytes() as u64);
        ServeAnswer { rows, provenance, table, cached: false }
    }

    /// Install a new cube generation: freeze its index, then — inside
    /// one write-lock critical section — bump the cache epoch, stamp the
    /// generation with it, and swap it in. The atomic pairing is what
    /// keeps the cache sound: queries pin the (generation, epoch) pair
    /// they observed, so an answer computed against the old generation
    /// can never be cached or served as a new-generation answer.
    pub fn install(&self, cube: Arc<SamplingCube>) -> Result<()> {
        // Index freezing is the expensive part; do it before taking the
        // lock so readers keep serving the old generation meanwhile.
        let mut generation = Generation::build(cube, 0)?;
        let mut slot = self.generation.write().unwrap();
        generation.epoch = self.cache.advance_epoch();
        *slot = Arc::new(generation);
        Ok(())
    }

    /// Freeze the currently served generation into a snapshot file at
    /// `path`, stamping the generation's cache epoch into the manifest.
    /// Returns the bytes written.
    pub fn save_snapshot(&self, path: &std::path::Path) -> Result<u64> {
        let (cube, epoch) = {
            let g = self.generation.read().unwrap();
            (Arc::clone(&g.cube), g.epoch)
        };
        cube.write_snapshot(path, epoch)
    }

    /// Install a generation thawed from a snapshot file. The `ServeIndex`
    /// is **rebuilt** from the thawed cube (it is a deterministic pure
    /// function of cube content, see DESIGN.md §11) and the live cache
    /// epoch still advances monotonically — previously cached answers are
    /// invalidated exactly as for [`install`](Self::install). The returned
    /// [`SnapshotInfo`] carries the manifest epoch as provenance of the
    /// generation that wrote the file; it does not reset the local clock.
    pub fn install_snapshot(&self, path: &std::path::Path) -> Result<SnapshotInfo> {
        let (cube, info) = SamplingCube::from_snapshot(path)?;
        self.install(Arc::new(cube.with_registry(&self.registry)))?;
        Ok(info)
    }

    /// Incrementally refresh the served cube against `new_table` (the
    /// current table with rows appended) and install the result. Cached
    /// answers from the previous generation are invalidated atomically
    /// with the swap.
    pub fn refresh<L: AccuracyLoss>(
        &self,
        new_table: Arc<Table>,
        loss: &L,
        config: RefreshConfig,
    ) -> Result<RefreshStats> {
        let old = self.cube();
        let (new_cube, stats) = refresh(&old, new_table, loss, config)?;
        self.install(Arc::new(new_cube.with_registry(&self.registry)))?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabula_core::builder::{MaterializationMode, SamplingCubeBuilder};
    use tabula_core::loss::MeanLoss;
    use tabula_data::example_dcm_table;
    use tabula_storage::CmpOp;

    fn cube(registry: &Arc<Registry>) -> Arc<SamplingCube> {
        let t = Arc::new(example_dcm_table());
        let fare = t.schema().index_of("fare").unwrap();
        Arc::new(
            SamplingCubeBuilder::new(Arc::clone(&t), &["D", "C", "M"], MeanLoss::new(fare), 0.10)
                .seed(1)
                .mode(MaterializationMode::Tabula)
                .build()
                .unwrap()
                .with_registry(registry),
        )
    }

    fn server(registry: &Arc<Registry>) -> Server {
        Server::with_cache(cube(registry), AnswerCache::new(4 << 20, 4), Arc::clone(registry))
            .unwrap()
    }

    #[test]
    fn serves_byte_identical_answers_to_the_cube() {
        let registry = Arc::new(Registry::new());
        let srv = server(&registry);
        let cube = srv.cube();
        let preds = [
            Predicate::eq("M", "dispute"),
            Predicate::eq("M", "cash"),
            Predicate::eq("D", "[5,10)").and("M", CmpOp::Eq, "credit"),
            Predicate::all(),
            Predicate::eq("M", "bitcoin"), // out of domain
        ];
        for pred in &preds {
            let direct = cube.query(pred).unwrap();
            // Cold then warm: both must equal the direct answer.
            for pass in 0..2 {
                let served = srv.query(pred).unwrap();
                assert_eq!(served.rows, direct.rows, "{pred:?} pass {pass}");
                assert_eq!(served.provenance, direct.provenance);
                assert_eq!(served.table.len(), direct.rows.len());
            }
        }
        // Second passes were cache hits (except EmptyDomain, never cached).
        let snap = registry.snapshot();
        assert_eq!(snap.counter(SERVE_HITS), 4);
        assert_eq!(snap.counter(SERVE_MISSES), 4);
    }

    #[test]
    fn provenance_accounting_stays_exact_with_cache_hits() {
        let registry = Arc::new(Registry::new());
        let srv = server(&registry);
        let counters = srv.cube().provenance_counters().clone();
        let queries = 30u64;
        for i in 0..queries {
            let m = ["cash", "credit", "dispute"][(i % 3) as usize];
            srv.query(&Predicate::eq("M", m)).unwrap();
        }
        assert_eq!(counters.total(), queries);
        assert!(counters.serve_cache_hits() >= queries - 6, "repeats must hit the cache");
    }

    #[test]
    fn bypass_cache_still_serves_identical_answers() {
        let registry = Arc::new(Registry::new());
        let srv =
            Server::with_cache(cube(&registry), AnswerCache::new(0, 1), Arc::clone(&registry))
                .unwrap();
        let cube = srv.cube();
        let pred = Predicate::eq("M", "dispute");
        let direct = cube.query(&pred).unwrap();
        for _ in 0..3 {
            let served = srv.query(&pred).unwrap();
            assert_eq!(served.rows, direct.rows);
            assert!(!served.cached);
        }
        assert_eq!(registry.snapshot().counter(SERVE_HITS), 0);
    }

    #[test]
    fn concurrent_clients_get_identical_answers() {
        let registry = Arc::new(Registry::new());
        let srv = server(&registry);
        let cube = srv.cube();
        let preds: Vec<Predicate> =
            ["cash", "credit", "dispute", "free"].iter().map(|m| Predicate::eq("M", *m)).collect();
        let direct: Vec<_> = preds.iter().map(|p| cube.query(p).unwrap()).collect();
        std::thread::scope(|s| {
            for t in 0..8usize {
                let srv = &srv;
                let preds = &preds;
                let direct = &direct;
                s.spawn(move || {
                    for i in 0..100 {
                        let j = (t + i) % preds.len();
                        let served = srv.query(&preds[j]).unwrap();
                        assert_eq!(served.rows, direct[j].rows);
                        assert_eq!(served.provenance, direct[j].provenance);
                    }
                });
            }
        });
    }

    #[test]
    fn install_invalidates_cached_answers() {
        let registry = Arc::new(Registry::new());
        let srv = server(&registry);
        let pred = Predicate::eq("M", "dispute");
        srv.query(&pred).unwrap();
        assert!(srv.query(&pred).unwrap().cached);
        // Reinstall the same cube: epoch bump must force recomputation.
        let same = srv.cube();
        srv.install(same).unwrap();
        assert!(!srv.query(&pred).unwrap().cached);
        assert!(srv.query(&pred).unwrap().cached);
    }

    #[test]
    fn generation_epoch_tracks_cache_epoch_across_installs() {
        let registry = Arc::new(Registry::new());
        let srv = server(&registry);
        for _ in 0..3 {
            let generation = Arc::clone(&srv.generation.read().unwrap());
            assert_eq!(generation.epoch, srv.cache.epoch());
            srv.install(srv.cube()).unwrap();
        }
    }

    #[test]
    fn late_insert_from_superseded_generation_is_never_served() {
        // Deterministic replay of the refresh race: a query reads
        // generation N, the install (swap + epoch bump) lands, and only
        // then does the query's cache insert run. The entry carries N's
        // epoch, so readers of generation N+1 must recompute, never see
        // the stale answer.
        let registry = Arc::new(Registry::new());
        let srv = server(&registry);
        let pred = Predicate::eq("M", "dispute");
        // An in-flight query pins generation N and computes its answer...
        let stalled = Arc::clone(&srv.generation.read().unwrap());
        let cell = compile_predicate(stalled.cube.table(), &stalled.attrs, &stalled.cols, &pred)
            .unwrap()
            .unwrap();
        let answer = srv.compute(&stalled, &cell, &mut QueryTrace::disabled());
        // ...the refresh installs generation N+1 before the insert...
        srv.install(srv.cube()).unwrap();
        srv.cache.insert(
            cell,
            CachedAnswer {
                rows: Arc::clone(&answer.rows),
                provenance: answer.provenance,
                table: Arc::clone(&answer.table),
            },
            stalled.epoch,
        );
        // ...and the next query must miss the cache and recompute.
        assert!(!srv.query(&pred).unwrap().cached);
        assert!(srv.query(&pred).unwrap().cached);
    }

    #[test]
    fn traced_query_records_stages_and_provenance() {
        let registry = Arc::new(Registry::new());
        let tracer = Arc::new(Tracer::new(1, u64::MAX / 2_000_000, 16));
        let srv = server(&registry).with_tracer(Arc::clone(&tracer));
        let pred = Predicate::eq("M", "dispute");

        // Cold: compile → cache probe (miss) → index probe → materialize.
        srv.query(&pred).unwrap();
        let cold = tracer.recorder().recent().pop().unwrap();
        let stages: Vec<Stage> = cold.stages.iter().map(|s| s.stage).collect();
        assert_eq!(
            stages,
            vec![Stage::Compile, Stage::CacheProbe, Stage::IndexProbe, Stage::Materialize]
        );
        assert!(cold.stages.iter().all(|s| s.ns >= 1));
        assert!(matches!(
            cold.provenance,
            TraceProvenance::LocalDirect | TraceProvenance::LocalSorted
        ));
        assert!(cold.cell.starts_with("cell{"), "{}", cold.cell);
        assert_eq!(cold.epoch, srv.cache.epoch());

        // Warm: the cache hit must not record index or materialize stages.
        srv.query(&pred).unwrap();
        let warm = tracer.recorder().recent().pop().unwrap();
        let stages: Vec<Stage> = warm.stages.iter().map(|s| s.stage).collect();
        assert_eq!(stages, vec![Stage::Compile, Stage::CacheProbe]);
        assert_eq!(warm.provenance, TraceProvenance::CacheHit);
        assert!(warm.rows > 0, "cache hits report rows touched");
        assert!(warm.bytes > 0, "cache hits report bytes touched");
    }

    #[test]
    fn empty_domain_trace_has_no_probe_stages() {
        let registry = Arc::new(Registry::new());
        let tracer = Arc::new(Tracer::new(1, 1_000, 16));
        let srv = server(&registry).with_tracer(Arc::clone(&tracer));
        srv.query(&Predicate::eq("M", "bitcoin")).unwrap();
        let t = tracer.recorder().recent().pop().unwrap();
        assert_eq!(t.provenance, TraceProvenance::EmptyDomain);
        let stages: Vec<Stage> = t.stages.iter().map(|s| s.stage).collect();
        assert_eq!(stages, vec![Stage::Compile]);
    }

    #[test]
    fn global_fallback_trace_says_global_sample() {
        let registry = Arc::new(Registry::new());
        let tracer = Arc::new(Tracer::new(1, 1_000, 16));
        let srv = server(&registry).with_tracer(Arc::clone(&tracer));
        // "free" exists in the domain but is too rare to be materialized
        // in every cuboid; find a pred whose answer is Global.
        let cube = srv.cube();
        for m in ["free", "cash", "credit", "dispute"] {
            let pred = Predicate::eq("M", m);
            if cube.query(&pred).unwrap().provenance == SampleProvenance::Global {
                srv.query(&pred).unwrap();
                let t = tracer.recorder().recent().pop().unwrap();
                assert_eq!(t.provenance, TraceProvenance::GlobalSample);
                return;
            }
        }
        // The DCM example materializes every M cell: fall back to the
        // serving invariant that local hits trace as local.
        srv.query(&Predicate::eq("M", "cash")).unwrap();
        let t = tracer.recorder().recent().pop().unwrap();
        assert!(matches!(
            t.provenance,
            TraceProvenance::LocalDirect | TraceProvenance::LocalSorted
        ));
    }

    #[test]
    fn disabled_tracer_records_nothing_but_windows_still_fill() {
        let registry = Arc::new(Registry::new());
        let tracer = Arc::new(Tracer::new(0, 1_000, 16));
        let srv = server(&registry).with_tracer(Arc::clone(&tracer));
        for _ in 0..5 {
            srv.query(&Predicate::eq("M", "cash")).unwrap();
        }
        assert!(tracer.recorder().is_empty());
        let snap = registry.snapshot();
        assert_eq!(snap.histograms[SERVE_QUERY_NS].count, 5);
        assert_eq!(snap.windows[SERVE_QUERY_NS].hist.count, 5);
    }

    /// Pins the snapshot contract for serve-layer state (DESIGN.md §11):
    /// the `ServeIndex` and the answer-cache epoch are NOT persisted —
    /// the index is rebuilt from the thawed cube (and must cover exactly
    /// the same cells), and installing a snapshot advances the live cache
    /// epoch so answers cached before the install can never be served
    /// after it. The manifest epoch is returned as provenance only.
    #[test]
    fn snapshot_install_rebuilds_index_and_invalidates_cache() {
        let registry = Arc::new(Registry::new());
        let srv = server(&registry);
        let pred = Predicate::eq("M", "cash");
        let before = srv.query(&pred).unwrap();
        assert!(srv.query(&pred).unwrap().cached, "second query must be a cache hit");

        let dir = std::env::temp_dir().join(format!("tabula-serve-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gen.tabsnap");
        srv.save_snapshot(&path).unwrap();

        let cells_before = srv.indexed_cells();
        let info = srv.install_snapshot(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        // Index is rebuilt, not loaded — and covers the same cells.
        assert_eq!(srv.indexed_cells(), cells_before);
        assert_eq!(info.cells, cells_before);
        assert_eq!(srv.cube().materialized_cells(), cells_before);
        // The pre-install cached answer is unreachable: the first query
        // against the new generation is a miss, then hits again.
        let after = srv.query(&pred).unwrap();
        assert!(!after.cached, "install must invalidate the cache");
        assert_eq!(after.rows, before.rows, "thawed generation answers identically");
        assert!(srv.query(&pred).unwrap().cached);
    }
}
