//! **Figure 8** — sampling-cube initialization time, broken into the
//! paper's three stages (dry run / real run / sample selection), as the
//! accuracy-loss threshold θ shrinks — for the heat-map (8a), statistical
//! mean (8b) and regression (8c) loss functions — and as the number of
//! cubed attributes grows at fixed θ (8d, histogram loss).
//!
//! ```bash
//! cargo run --release -p tabula-bench --bin fig08_init_time -- heatmap
//! cargo run --release -p tabula-bench --bin fig08_init_time -- mean
//! cargo run --release -p tabula-bench --bin fig08_init_time -- regression
//! cargo run --release -p tabula-bench --bin fig08_init_time -- attrs
//! cargo run --release -p tabula-bench --bin fig08_init_time        # all four
//! ```

use std::sync::Arc;
use tabula_bench::{default_rows, fmt_duration, taxi_table, SEED};
use tabula_core::loss::{HeatmapLoss, HistogramLoss, MeanLoss, Metric, RegressionLoss};
use tabula_core::{AccuracyLoss, SamplingCubeBuilder};
use tabula_data::{meters_to_norm, CUBED_ATTRIBUTES};
use tabula_storage::Table;

fn build_and_report<L: AccuracyLoss>(
    table: &Arc<Table>,
    attrs: &[&str],
    loss: L,
    theta: f64,
    theta_label: &str,
) {
    let cube = SamplingCubeBuilder::new(Arc::clone(table), attrs, loss, theta)
        .seed(SEED)
        .build()
        .expect("build succeeds");
    let s = cube.stats();
    println!(
        "{theta_label:>12} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9} {:>8}",
        fmt_duration(s.dry_run),
        fmt_duration(s.real_run),
        fmt_duration(s.selection),
        fmt_duration(s.total),
        s.total_cells,
        s.iceberg_cells,
        s.samples_after_selection,
    );
}

fn header(title: &str) {
    println!("\n=== {title} ===");
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9} {:>8}",
        "theta", "dry run", "real run", "SamS", "total", "cells", "icebergs", "samples"
    );
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let rows = default_rows();
    let table = taxi_table(rows);
    let attrs5: Vec<&str> = CUBED_ATTRIBUTES[..5].to_vec();
    println!("# Figure 8 | rows = {rows} | attributes = 5 (a–c) / 4–7 (d)");

    let pickup = table.schema().index_of("pickup").unwrap();
    let fare = table.schema().index_of("fare_amount").unwrap();
    let tip = table.schema().index_of("tip_amount").unwrap();

    if which == "all" || which == "heatmap" {
        header("Fig 8a: init time vs θ — geospatial heatmap-aware loss");
        for meters in [2000.0, 1000.0, 500.0, 250.0] {
            build_and_report(
                &table,
                &attrs5,
                HeatmapLoss::new(pickup, Metric::Euclidean),
                meters_to_norm(meters),
                &format!("{meters}m"),
            );
        }
    }
    if which == "all" || which == "mean" {
        header("Fig 8b: init time vs θ — statistical mean loss");
        for pct in [10.0, 5.0, 2.5, 1.0] {
            build_and_report(
                &table,
                &attrs5,
                MeanLoss::new(fare),
                pct / 100.0,
                &format!("{pct}%"),
            );
        }
    }
    if which == "all" || which == "regression" {
        header("Fig 8c: init time vs θ — linear regression loss");
        for degrees in [10.0, 5.0, 2.5, 1.0] {
            build_and_report(
                &table,
                &attrs5,
                RegressionLoss::new(fare, tip),
                degrees,
                &format!("{degrees}°"),
            );
        }
    }
    if which == "all" || which == "attrs" {
        header("Fig 8d: init time vs #attributes — histogram loss, θ = $0.5");
        for n in 4..=7 {
            let attrs: Vec<&str> = CUBED_ATTRIBUTES[..n].to_vec();
            build_and_report(
                &table,
                &attrs,
                HistogramLoss::new(fare),
                0.5,
                &format!("{n} attrs"),
            );
        }
    }
}
