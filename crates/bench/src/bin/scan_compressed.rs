//! Micro-benchmark of the **compressed column storage** layer (ISSUE:
//! predicate & aggregation pushdown on encoded runs): the same scans and
//! group-bys over a plain table and its force-encoded twin, across
//! clustering factors, plus the snapshot size / load-time effect of
//! persisting encoded blocks.
//!
//! Three lanes per clustering factor (`run_len` = expected run length of
//! the clustered columns):
//!
//! * `scan` — a two-term predicate (`Str` equality and a float range)
//!   timed via [`Predicate::filter`]: plain columns take the vectorized
//!   kernel, encoded columns the run/frame pushdown kernels. Outputs are
//!   asserted identical; ns/row and physical bytes/row come from
//!   [`Predicate::filter_with_stats`].
//! * `group_by` — hash grouping on the two categorical columns: decoded
//!   kernels vs the run-aligned segment walk.
//! * `snapshot` (clustered table only) — cube snapshot bytes with plain
//!   vs encoded blocks, and the encoded cold-load wall time.
//!
//! `BENCH_scan_compressed.json` records every row; the `encoding` CI job
//! gates on the clustered-scan speedup (≥ 2×) and the snapshot size
//! reduction (≥ 30%).
//!
//! ```bash
//! cargo run --release -p tabula-bench --bin scan_compressed
//! TABULA_BENCH_ROWS=1000000 cargo run --release -p tabula-bench --bin scan_compressed
//! ```

use serde::Value;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;
use tabula_bench::write_run_summary;
use tabula_core::builder::{MaterializationMode, SamplingCubeBuilder};
use tabula_core::loss::MeanLoss;
use tabula_core::SamplingCube;
use tabula_storage::{
    group_by, set_encoding_mode, CmpOp, ColumnType, EncodingMode, Field, GroupedRows, Predicate,
    RowId, Schema, Table, TableBuilder,
};

/// Enough rows for stable ns/row and visible run structure at the largest
/// clustering factor. `TABULA_BENCH_ROWS` overrides.
const DEFAULT_SCAN_ROWS: usize = 200_000;

fn bench_rows() -> usize {
    std::env::var("TABULA_BENCH_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SCAN_ROWS)
}

/// A synthetic table whose categorical and float columns repeat in runs
/// of `run_len` (`run_len = 1` is fully scattered): `v` (Str, 8 values),
/// `k` (Int64, 16 values), `x` (Float64, 32 values), and a scattered
/// measure `m`. Built with encoding off — the caller derives the encoded
/// twin explicitly.
fn plain_table(rows: usize, run_len: usize) -> Arc<Table> {
    set_encoding_mode(EncodingMode::Off);
    let schema = Schema::new(vec![
        Field::new("v", ColumnType::Str),
        Field::new("k", ColumnType::Int64),
        Field::new("x", ColumnType::Float64),
        Field::new("m", ColumnType::Float64),
    ]);
    let mut b = TableBuilder::new(schema);
    for i in 0..rows {
        let cluster = i / run_len;
        // A cheap deterministic scatter for the measure column.
        let noise = ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40) as f64;
        b.push_row(&[
            format!("v{}", cluster % 8).into(),
            ((cluster % 16) as i64).into(),
            ((cluster % 32) as f64 * 1.5).into(),
            (noise / 256.0).into(),
        ])
        .expect("synthetic rows conform to schema");
    }
    Arc::new(b.finish())
}

/// The force-encoded twin: same rows, every column frozen under
/// [`EncodingMode::Force`].
fn encoded_twin(t: &Table) -> Arc<Table> {
    let cols = (0..t.schema().fields().len())
        .map(|i| {
            let mut c = t.column(i).clone();
            c.encode_for_freeze(EncodingMode::Force);
            c
        })
        .collect();
    Arc::new(Table::from_columns(t.schema().clone(), cols).expect("twin columns are consistent"))
}

/// Best-of-`reps` wall time of `f`, after one untimed warmup run.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (u64, R) {
    let mut out = f();
    let mut best = u64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        out = f();
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    (best, out)
}

/// Canonical byte image of a grouping: sorted `(key, members)` pairs.
fn grouping_bytes(groups: &GroupedRows) -> Vec<u8> {
    let mut entries: Vec<(&Vec<u32>, &Vec<RowId>)> = groups.groups.iter().collect();
    entries.sort();
    let mut out = Vec::new();
    for (k, m) in entries {
        for c in k.iter() {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&u64::MAX.to_le_bytes());
        for r in m.iter() {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out.extend_from_slice(&u64::MAX.to_le_bytes());
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn result_row(
    bench: &str,
    run_len: usize,
    rows: usize,
    plain_ns: u64,
    encoded_ns: u64,
    plain_bytes: u64,
    encoded_bytes: u64,
    kernel: &str,
) -> Value {
    let per_row = |ns: u64| ns as f64 / rows as f64;
    let speedup = plain_ns as f64 / encoded_ns.max(1) as f64;
    println!(
        "{bench:<9} run_len={run_len:<5} {:>11.2} {:>13.2} {:>8.2}x {:>11.3} {:>13.3}  {kernel}",
        per_row(plain_ns),
        per_row(encoded_ns),
        speedup,
        plain_bytes as f64 / rows as f64,
        encoded_bytes as f64 / rows as f64,
    );
    let mut row = BTreeMap::new();
    row.insert("bench".to_owned(), Value::Str(bench.to_owned()));
    row.insert("run_len".to_owned(), Value::Int(run_len as i128));
    row.insert("rows".to_owned(), Value::Int(rows as i128));
    row.insert("plain_ns_per_row".to_owned(), Value::Float(per_row(plain_ns)));
    row.insert("encoded_ns_per_row".to_owned(), Value::Float(per_row(encoded_ns)));
    row.insert("speedup".to_owned(), Value::Float(speedup));
    row.insert("plain_bytes_per_row".to_owned(), Value::Float(plain_bytes as f64 / rows as f64));
    row.insert(
        "encoded_bytes_per_row".to_owned(),
        Value::Float(encoded_bytes as f64 / rows as f64),
    );
    row.insert("encoded_kernel".to_owned(), Value::Str(kernel.to_owned()));
    Value::Obj(row)
}

fn main() {
    let rows = bench_rows();
    let reps = 5;
    // Kernel time, not scheduler time: pin to one worker.
    tabula_par::set_threads(1);

    println!("# scan_compressed | rows = {rows} | threads = 1 | best of {reps}");
    println!(
        "{:<9} {:<13} {:>11} {:>13} {:>9} {:>11} {:>13}",
        "bench", "", "plain ns/r", "encoded ns/r", "speedup", "plain B/r", "encoded B/r"
    );

    let mut results = Vec::new();
    let mut clustered_scan_speedup = 0.0f64;
    for run_len in [1usize, 64, 1024] {
        let plain = plain_table(rows, run_len);
        let encoded = encoded_twin(&plain);
        // Warm the categorical indexes outside every timed region.
        for t in [&plain, &encoded] {
            let _ = t.cat(0);
            let _ = t.cat(1);
        }
        let pred = Predicate::all().and("v".to_owned(), CmpOp::Eq, plain.value(0, 0)).and(
            "x".to_owned(),
            CmpOp::Ge,
            tabula_storage::Value::Float64(1.0),
        );

        let (plain_ns, plain_ids) = time_best(reps, || pred.filter(&plain).expect("plain filter"));
        let (enc_ns, enc_ids) = time_best(reps, || pred.filter(&encoded).expect("encoded filter"));
        assert_eq!(plain_ids, enc_ids, "run_len={run_len}: encoded scan diverges from plain");
        let (_, plain_stats) = pred.filter_with_stats(&plain).expect("plain stats");
        let (_, enc_stats) = pred.filter_with_stats(&encoded).expect("encoded stats");
        let speedup = plain_ns as f64 / enc_ns.max(1) as f64;
        if run_len == 1024 {
            clustered_scan_speedup = speedup;
        }
        results.push(result_row(
            "scan",
            run_len,
            rows,
            plain_ns,
            enc_ns,
            plain_stats.bytes_scanned,
            enc_stats.bytes_scanned,
            enc_stats.kernel.name(),
        ));

        let cols = [0usize, 1];
        let (plain_ns, plain_groups) =
            time_best(reps, || group_by(&plain, &cols).expect("plain group_by"));
        let (enc_ns, enc_groups) =
            time_best(reps, || group_by(&encoded, &cols).expect("encoded group_by"));
        assert_eq!(
            grouping_bytes(&plain_groups),
            grouping_bytes(&enc_groups),
            "run_len={run_len}: encoded grouping diverges from plain"
        );
        results.push(result_row("group_by", run_len, rows, plain_ns, enc_ns, 0, 0, "runs"));
    }

    // Snapshot lane: cube over the clustered twins; encoded blocks persist
    // verbatim, so the size delta is the column-payload compression.
    let plain = plain_table(rows, 1024);
    let encoded = encoded_twin(&plain);
    let m = plain.schema().index_of("m").expect("measure column");
    let cube_over = |t: &Arc<Table>| {
        SamplingCubeBuilder::new(Arc::clone(t), &["v", "k"], MeanLoss::new(m), 0.10)
            .seed(1)
            .mode(MaterializationMode::Tabula)
            .build()
            .expect("cube build succeeds")
    };
    let plain_bytes = cube_over(&plain).snapshot_bytes(1).expect("plain snapshot");
    let encoded_bytes = cube_over(&encoded).snapshot_bytes(1).expect("encoded snapshot");
    let reduction = 1.0 - encoded_bytes.len() as f64 / plain_bytes.len() as f64;
    let (load_ns, _) = time_best(reps, || {
        SamplingCube::from_snapshot_bytes(encoded_bytes.clone()).expect("encoded snapshot loads")
    });
    println!(
        "snapshot  run_len=1024  plain {} B, encoded {} B ({:.1}% smaller), encoded load {:.2} ms",
        plain_bytes.len(),
        encoded_bytes.len(),
        reduction * 100.0,
        load_ns as f64 / 1e6,
    );

    tabula_par::set_threads(0);

    let registry = tabula_obs::Registry::new();
    match write_run_summary(
        "scan_compressed",
        &registry.snapshot(),
        &[
            ("results", Value::Arr(results)),
            ("scan_rows", Value::Int(rows as i128)),
            ("clustered_scan_speedup", Value::Float(clustered_scan_speedup)),
            ("snapshot_plain_bytes", Value::Int(plain_bytes.len() as i128)),
            ("snapshot_encoded_bytes", Value::Int(encoded_bytes.len() as i128)),
            ("snapshot_reduction", Value::Float(reduction)),
            ("encoded_load_ms", Value::Float(load_ns as f64 / 1e6)),
        ],
    ) {
        Ok(path) => println!("summary written to {}", path.display()),
        Err(e) => eprintln!("cannot write summary: {e}"),
    }
}
