//! Criterion micro-benchmark: the stages of sampling-cube initialization
//! — dry run (single-scan algebraic cube + iceberg lookup) and the full
//! pipeline — across table sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use tabula_bench::{taxi_table, SEED};
use tabula_core::dryrun::dry_run;
use tabula_core::loss::MeanLoss;
use tabula_core::serfling::draw_global_sample;
use tabula_core::{AccuracyLoss, SamplingCubeBuilder};
use tabula_data::CUBED_ATTRIBUTES;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("cube_build");
    group.sample_size(10);
    for rows in [5_000usize, 20_000, 50_000] {
        let table = taxi_table(rows);
        let fare = table.schema().index_of("fare_amount").unwrap();
        let loss = MeanLoss::new(fare);
        let cols: Vec<usize> =
            CUBED_ATTRIBUTES[..5].iter().map(|a| table.schema().index_of(a).unwrap()).collect();
        let global = draw_global_sample(&table, 1060, SEED);
        let ctx = loss.prepare(&table, &global);

        group.bench_with_input(BenchmarkId::new("dry_run_mean_5attrs", rows), &rows, |b, _| {
            b.iter(|| black_box(dry_run(&table, &cols, &loss, &ctx, 0.05).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("full_build_mean_5attrs", rows), &rows, |b, _| {
            b.iter(|| {
                black_box(
                    SamplingCubeBuilder::new(
                        Arc::clone(&table),
                        &CUBED_ATTRIBUTES[..5],
                        loss.clone(),
                        0.05,
                    )
                    .seed(SEED)
                    .build()
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
