//! Renderings of a [`MetricsSnapshot`]: JSON and Prometheus text exposition.
//!
//! Both are written with plain `std` string building — the obs crate stays
//! dependency-free so it can sit below every other crate in the workspace.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\":{},\"sum_ns\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
        h.count,
        h.sum_ns,
        h.mean_ns(),
        h.p50(),
        h.p95(),
        h.p99(),
        h.max_ns,
    )
}

impl MetricsSnapshot {
    /// Render the snapshot as a compact JSON object with `counters`, `gauges`
    /// and `histograms` sections. Histogram values are summarized (count, sum,
    /// mean, p50/p95/p99, max) rather than dumping raw buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(k), v);
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(k), v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, v)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(k), histogram_json(v));
        }
        out.push_str("}}");
        out
    }

    /// Render the snapshot in the Prometheus text exposition format.
    ///
    /// Metric names are sanitized (`.` and `-` become `_`) and prefixed with
    /// `tabula_`; histograms are exposed as summaries with `quantile` labels
    /// plus `_sum` (in seconds) and `_count` series.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let name = prom_name(k);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (k, v) in &self.gauges {
            let name = prom_name(k);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (k, h) in &self.histograms {
            let name = prom_name(k);
            let _ = writeln!(out, "# TYPE {name} summary");
            for (q, v) in [(0.5, h.p50()), (0.95, h.p95()), (0.99, h.p99())] {
                let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {}", ns_to_secs(v));
            }
            let _ = writeln!(out, "{name}_sum {}", ns_to_secs(h.sum_ns));
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }
}

fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("tabula_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn ns_to_secs(ns: u64) -> String {
    format!("{:.9}", ns as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use crate::metrics::Registry;

    #[test]
    fn json_contains_all_sections() {
        let r = Registry::new();
        r.counter("query.local_hit").add(3);
        r.gauge("cube.cells").set(128);
        r.histogram("query.latency").record(1500);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"query.local_hit\":3"), "{json}");
        assert!(json.contains("\"cube.cells\":128"), "{json}");
        assert!(json.contains("\"query.latency\":{\"count\":1"), "{json}");
        assert!(json.contains("\"max_ns\":1500"), "{json}");
        // Must be parseable by the workspace JSON parser shape: balanced braces.
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
    }

    #[test]
    fn prometheus_text_format() {
        let r = Registry::new();
        r.counter("query.global_hit").add(7);
        r.histogram("query.latency").record(2_000_000_000);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE tabula_query_global_hit counter"), "{text}");
        assert!(text.contains("tabula_query_global_hit 7"), "{text}");
        assert!(text.contains("# TYPE tabula_query_latency summary"), "{text}");
        assert!(text.contains("tabula_query_latency_count 1"), "{text}");
        assert!(text.contains("quantile=\"0.99\""), "{text}");
        assert!(text.contains("tabula_query_latency_sum 2.000000000"), "{text}");
    }
}
