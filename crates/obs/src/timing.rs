//! Phase timing accumulator, shared by the viz pipeline and benchmarks.
//!
//! Re-homed here from `tabula-viz` so every layer can accumulate phase times
//! without depending on the visualization crate.

use std::time::{Duration, Instant};

/// Accumulates total elapsed time and invocation count for one named phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTimer {
    total: Duration,
    count: u64,
}

impl PhaseTimer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn record(&mut self, elapsed: Duration) {
        self.total += elapsed;
        self.count += 1;
    }

    /// Time a closure and record its duration, returning the closure's value.
    pub fn timed<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(start.elapsed());
        out
    }

    pub fn total(&self) -> Duration {
        self.total
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean duration per observation ([`Duration::ZERO`] when empty).
    ///
    /// Computed in u128 nanoseconds: the obvious `total / count as u32`
    /// truncates `count` and panics on zero, and overflows `as_nanos() as u64`
    /// arithmetic after ~584 years of accumulated time. Dividing the exact
    /// nanosecond total sidesteps both.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let mean_ns = self.total.as_nanos() / self.count as u128;
        // A mean can never exceed the (u64-representable in practice) total.
        Duration::from_nanos(u64::try_from(mean_ns).unwrap_or(u64::MAX))
    }

    /// Merge another timer's observations into this one.
    pub fn merge(&mut self, other: &PhaseTimer) {
        self.total += other.total;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(PhaseTimer::new().mean(), Duration::ZERO);
    }

    #[test]
    fn mean_is_exact_nanosecond_division() {
        let mut t = PhaseTimer::new();
        t.record(Duration::from_nanos(10));
        t.record(Duration::from_nanos(21));
        assert_eq!(t.count(), 2);
        assert_eq!(t.total(), Duration::from_nanos(31));
        assert_eq!(t.mean(), Duration::from_nanos(15));
    }

    /// Regression test for the u32 truncation bug: with more than u32::MAX
    /// pretend-observations the old `self.total / self.count as u32` cast
    /// wrapped the divisor (here to 1), inflating the mean by ~4.3 billion×.
    #[test]
    fn mean_survives_counts_beyond_u32() {
        let mut t = PhaseTimer::new();
        t.total = Duration::from_secs(u32::MAX as u64 + 1);
        t.count = u32::MAX as u64 + 1; // would truncate to 1 as u32... (old bug)
        assert_eq!(t.mean(), Duration::from_secs(1));
    }

    #[test]
    fn timed_records_and_returns() {
        let mut t = PhaseTimer::new();
        let v = t.timed(|| 99);
        assert_eq!(v, 99);
        assert_eq!(t.count(), 1);
        assert!(t.total() > Duration::ZERO);
    }

    #[test]
    fn merge_combines() {
        let mut a = PhaseTimer::new();
        let mut b = PhaseTimer::new();
        a.record(Duration::from_millis(2));
        b.record(Duration::from_millis(4));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), Duration::from_millis(3));
    }
}
