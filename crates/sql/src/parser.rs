//! Recursive-descent parser for the Tabula SQL dialect.

use crate::ast::{DropKind, LossRef, ShowKind, Statement, WhereTerm};
use crate::lexer::{tokenize, Token};
use crate::{Result, SqlError};
use tabula_core::loss::expr::{AggFn, Expr, Side};
use tabula_storage::{CmpOp, Value};

/// Parse one statement (a trailing semicolon is allowed).
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.accept_semicolons();
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn accept_kw(&mut self, word: &str) -> bool {
        if self.peek().is_kw(word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, word: &str) -> Result<()> {
        if self.accept_kw(word) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected keyword {word}, found {:?}", self.peek())))
        }
    }

    fn expect(&mut self, token: Token) -> Result<()> {
        if *self.peek() == token {
            self.pos += 1;
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected {token:?}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            other => Err(SqlError::Parse(format!("expected identifier, found {other:?}"))),
        }
    }

    fn number(&mut self) -> Result<f64> {
        match self.next() {
            Token::Number(n) => Ok(n),
            other => Err(SqlError::Parse(format!("expected number, found {other:?}"))),
        }
    }

    fn accept_semicolons(&mut self) {
        while *self.peek() == Token::Semicolon {
            self.pos += 1;
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if *self.peek() == Token::Eof {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("trailing input: {:?}", self.peek())))
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.accept_kw("CREATE") {
            if self.accept_kw("TABLE") {
                return self.create_cube();
            }
            if self.accept_kw("AGGREGATE") {
                return self.create_aggregate();
            }
            return Err(SqlError::Parse("expected TABLE or AGGREGATE after CREATE".into()));
        }
        if self.accept_kw("SELECT") {
            return self.select();
        }
        if self.accept_kw("DROP") {
            let kind = if self.accept_kw("CUBE") {
                DropKind::Cube
            } else if self.accept_kw("AGGREGATE") {
                DropKind::Aggregate
            } else {
                return Err(SqlError::Parse("expected CUBE or AGGREGATE after DROP".into()));
            };
            let name = self.ident()?;
            return Ok(Statement::Drop { kind, name });
        }
        if self.accept_kw("SHOW") {
            let kind = if self.accept_kw("CUBES") {
                ShowKind::Cubes
            } else if self.accept_kw("TABLES") {
                ShowKind::Tables
            } else if self.accept_kw("AGGREGATES") {
                ShowKind::Aggregates
            } else {
                return Err(SqlError::Parse(
                    "expected CUBES, TABLES or AGGREGATES after SHOW".into(),
                ));
            };
            return Ok(Statement::Show(kind));
        }
        if self.accept_kw("EXPLAIN") {
            if self.accept_kw("ANALYZE") {
                let inner = self.statement()?;
                if !matches!(inner, Statement::SelectSample { .. } | Statement::SelectRaw { .. }) {
                    return Err(SqlError::Parse("EXPLAIN ANALYZE takes a SELECT statement".into()));
                }
                return Ok(Statement::ExplainAnalyze(Box::new(inner)));
            }
            self.expect_kw("CUBE")?;
            let name = self.ident()?;
            return Ok(Statement::ExplainCube(name));
        }
        Err(SqlError::Parse(format!(
            "expected CREATE, SELECT, DROP, SHOW or EXPLAIN, found {:?}",
            self.peek()
        )))
    }

    /// `CREATE TABLE name AS SELECT a, b, SAMPLING(*, θ) AS sample FROM src
    /// GROUPBY CUBE(a, b) HAVING loss(attr[, attr], Sam_global) > θ`
    fn create_cube(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_kw("AS")?;
        self.expect_kw("SELECT")?;

        let mut cubed_attrs = Vec::new();
        // Attribute list until SAMPLING.
        loop {
            if self.peek().is_kw("SAMPLING") {
                break;
            }
            cubed_attrs.push(self.ident()?);
            self.expect(Token::Comma)?;
        }
        self.expect_kw("SAMPLING")?;
        self.expect(Token::LParen)?;
        self.expect(Token::Star)?;
        self.expect(Token::Comma)?;
        let theta_sampling = self.number()?;
        self.expect(Token::RParen)?;
        self.expect_kw("AS")?;
        self.expect_kw("sample")?;
        self.expect_kw("FROM")?;
        let source = self.ident()?;

        // Accept both the paper's `GROUPBY` and standard `GROUP BY`.
        if self.accept_kw("GROUPBY") {
        } else {
            self.expect_kw("GROUP")?;
            self.expect_kw("BY")?;
        }
        self.expect_kw("CUBE")?;
        self.expect(Token::LParen)?;
        let mut cube_attrs = Vec::new();
        loop {
            cube_attrs.push(self.ident()?);
            if !matches!(self.peek(), Token::Comma) {
                break;
            }
            self.pos += 1;
        }
        self.expect(Token::RParen)?;
        if cube_attrs != cubed_attrs {
            return Err(SqlError::Parse(format!(
                "CUBE attribute list {cube_attrs:?} must match the SELECT list {cubed_attrs:?}"
            )));
        }

        self.expect_kw("HAVING")?;
        let loss_name = self.ident()?;
        self.expect(Token::LParen)?;
        let mut target_attrs = vec![self.ident()?];
        while matches!(self.peek(), Token::Comma) {
            self.pos += 1;
            let ident = self.ident()?;
            if ident.eq_ignore_ascii_case("Sam_global") {
                // End of target attributes.
                self.expect(Token::RParen)?;
                self.expect(Token::Gt)?;
                let theta_having = self.number()?;
                if (theta_having - theta_sampling).abs() > 1e-12 {
                    return Err(SqlError::Parse(format!(
                        "SAMPLING threshold {theta_sampling} and HAVING threshold \
                         {theta_having} must agree"
                    )));
                }
                return Ok(Statement::CreateCube {
                    name,
                    source,
                    cubed_attrs,
                    theta: theta_sampling,
                    loss: LossRef { name: loss_name, target_attrs },
                });
            }
            target_attrs.push(ident);
        }
        Err(SqlError::Parse(
            "HAVING loss(...) must end with Sam_global as its last argument".into(),
        ))
    }

    /// `CREATE AGGREGATE name(Raw, Sam) RETURN decimal_value AS BEGIN expr END`
    fn create_aggregate(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect(Token::LParen)?;
        self.expect_kw("Raw")?;
        self.expect(Token::Comma)?;
        self.expect_kw("Sam")?;
        self.expect(Token::RParen)?;
        self.expect_kw("RETURN")?;
        self.expect_kw("decimal_value")?;
        self.expect_kw("AS")?;
        self.expect_kw("BEGIN")?;
        let body = self.scalar_expr()?;
        self.expect_kw("END")?;
        Ok(Statement::CreateAggregate { name, body })
    }

    /// `SELECT sample FROM cube WHERE ...` or `SELECT * FROM table WHERE ...`
    fn select(&mut self) -> Result<Statement> {
        if self.accept_kw("sample") {
            self.expect_kw("FROM")?;
            let cube = self.ident()?;
            let conditions = self.where_clause()?;
            return Ok(Statement::SelectSample { cube, conditions });
        }
        self.expect(Token::Star)?;
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let conditions = self.where_clause()?;
        Ok(Statement::SelectRaw { table, conditions })
    }

    fn where_clause(&mut self) -> Result<Vec<WhereTerm>> {
        let mut terms = Vec::new();
        if !self.accept_kw("WHERE") {
            return Ok(terms);
        }
        loop {
            let column = self.ident()?;
            let op = match self.next() {
                Token::Eq => CmpOp::Eq,
                Token::Ne => CmpOp::Ne,
                Token::Lt => CmpOp::Lt,
                Token::Le => CmpOp::Le,
                Token::Gt => CmpOp::Gt,
                Token::Ge => CmpOp::Ge,
                other => {
                    return Err(SqlError::Parse(format!(
                        "expected comparison operator, found {other:?}"
                    )))
                }
            };
            let value = match self.next() {
                Token::Number(n) => {
                    // Integral literals compare against Int64 categorical
                    // columns; keep them integral when exact.
                    if n.fract() == 0.0 && n.abs() < i64::MAX as f64 {
                        Value::Int64(n as i64)
                    } else {
                        Value::Float64(n)
                    }
                }
                Token::Str(s) => Value::Str(s),
                Token::Minus => Value::Float64(-self.number()?),
                other => return Err(SqlError::Parse(format!("expected literal, found {other:?}"))),
            };
            terms.push(WhereTerm { column, op, value });
            if !self.accept_kw("AND") {
                break;
            }
        }
        Ok(terms)
    }

    // --- scalar expression grammar for CREATE AGGREGATE bodies ---
    // expr   := term (('+' | '-') term)*
    // term   := factor (('*' | '/') factor)*
    // factor := NUMBER | '-' factor | ABS '(' expr ')'
    //         | AGGFN '(' (Raw | Sam) ')' | '(' expr ')'

    fn scalar_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.scalar_term()?;
        loop {
            match self.peek() {
                Token::Plus => {
                    self.pos += 1;
                    let rhs = self.scalar_term()?;
                    lhs = Expr::Add(Box::new(lhs), Box::new(rhs));
                }
                Token::Minus => {
                    self.pos += 1;
                    let rhs = self.scalar_term()?;
                    lhs = Expr::Sub(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn scalar_term(&mut self) -> Result<Expr> {
        let mut lhs = self.scalar_factor()?;
        loop {
            match self.peek() {
                Token::Star => {
                    self.pos += 1;
                    let rhs = self.scalar_factor()?;
                    lhs = Expr::Mul(Box::new(lhs), Box::new(rhs));
                }
                Token::Slash => {
                    self.pos += 1;
                    let rhs = self.scalar_factor()?;
                    lhs = Expr::Div(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn scalar_factor(&mut self) -> Result<Expr> {
        match self.next() {
            Token::Number(n) => Ok(Expr::Const(n)),
            Token::Minus => Ok(Expr::Neg(Box::new(self.scalar_factor()?))),
            Token::LParen => {
                let e = self.scalar_expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                if name.eq_ignore_ascii_case("ABS") {
                    self.expect(Token::LParen)?;
                    let e = self.scalar_expr()?;
                    self.expect(Token::RParen)?;
                    return Ok(Expr::Abs(Box::new(e)));
                }
                let agg = match name.to_ascii_uppercase().as_str() {
                    "AVG" => AggFn::Avg,
                    "SUM" => AggFn::Sum,
                    "COUNT" => AggFn::Count,
                    "MIN" => AggFn::Min,
                    "MAX" => AggFn::Max,
                    "STDDEV" | "STD_DEV" => AggFn::StdDev,
                    other => {
                        return Err(SqlError::Parse(format!(
                            "unknown function {other} in loss expression"
                        )))
                    }
                };
                self.expect(Token::LParen)?;
                let side_name = self.ident()?;
                let side = if side_name.eq_ignore_ascii_case("Raw") {
                    Side::Raw
                } else if side_name.eq_ignore_ascii_case("Sam") {
                    Side::Sam
                } else {
                    return Err(SqlError::Parse(format!(
                        "aggregate argument must be Raw or Sam, found {side_name}"
                    )));
                };
                self.expect(Token::RParen)?;
                Ok(Expr::Agg(agg, side))
            }
            other => {
                Err(SqlError::Parse(format!("unexpected token in loss expression: {other:?}")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query_1() {
        let stmt = parse(
            "CREATE TABLE SamplingCube AS \
             SELECT D, C, M, SAMPLING(*, 0.1) AS sample \
             FROM nyctaxi GROUPBY CUBE(D, C, M) \
             HAVING heatmap_loss(pickup, Sam_global) > 0.1;",
        )
        .unwrap();
        assert_eq!(
            stmt,
            Statement::CreateCube {
                name: "SamplingCube".into(),
                source: "nyctaxi".into(),
                cubed_attrs: vec!["D".into(), "C".into(), "M".into()],
                theta: 0.1,
                loss: LossRef { name: "heatmap_loss".into(), target_attrs: vec!["pickup".into()] },
            }
        );
    }

    #[test]
    fn parses_group_by_spelling_and_multi_attr_loss() {
        let stmt = parse(
            "CREATE TABLE c AS SELECT a, SAMPLING(*, 2.5) AS sample FROM t \
             GROUP BY CUBE(a) HAVING regression_loss(fare, tip, Sam_global) > 2.5",
        )
        .unwrap();
        match stmt {
            Statement::CreateCube { loss, theta, .. } => {
                assert_eq!(loss.target_attrs, vec!["fare".to_owned(), "tip".to_owned()]);
                assert_eq!(theta, 2.5);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mismatched_thresholds_and_lists_are_rejected() {
        let err = parse(
            "CREATE TABLE c AS SELECT a, SAMPLING(*, 0.1) AS sample FROM t \
             GROUPBY CUBE(a) HAVING loss(x, Sam_global) > 0.2",
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::Parse(_)));
        let err = parse(
            "CREATE TABLE c AS SELECT a, b, SAMPLING(*, 0.1) AS sample FROM t \
             GROUPBY CUBE(a) HAVING loss(x, Sam_global) > 0.1",
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::Parse(_)));
    }

    #[test]
    fn parses_paper_query_2() {
        let stmt = parse("SELECT sample FROM SamplingCube WHERE D = '[0,5)' AND C = 1").unwrap();
        match stmt {
            Statement::SelectSample { cube, conditions } => {
                assert_eq!(cube, "SamplingCube");
                assert_eq!(conditions.len(), 2);
                assert_eq!(conditions[0].value, Value::Str("[0,5)".into()));
                assert_eq!(conditions[1].value, Value::Int64(1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_create_aggregate_function_1() {
        let stmt = parse(
            "CREATE AGGREGATE my_loss(Raw, Sam) RETURN decimal_value AS \
             BEGIN ABS((AVG(Raw) - AVG(Sam)) / AVG(Raw)) END",
        )
        .unwrap();
        match stmt {
            Statement::CreateAggregate { name, body } => {
                assert_eq!(name, "my_loss");
                assert_eq!(body, Expr::mean_relative_error());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_arithmetic_precedence() {
        let stmt = parse(
            "CREATE AGGREGATE l(Raw, Sam) RETURN decimal_value AS \
             BEGIN AVG(Raw) + 2 * MAX(Sam) - MIN(Raw) / 4 END",
        )
        .unwrap();
        let Statement::CreateAggregate { body, .. } = stmt else { panic!() };
        // ((AVG(Raw) + (2 * MAX(Sam))) - (MIN(Raw) / 4))
        use tabula_core::loss::expr::{AggFn::*, Expr::*, Side::*};
        assert_eq!(
            body,
            Sub(
                Box::new(Add(
                    Box::new(Agg(Avg, Raw)),
                    Box::new(Mul(Box::new(Const(2.0)), Box::new(Agg(Max, Sam)))),
                )),
                Box::new(Div(Box::new(Agg(Min, Raw)), Box::new(Const(4.0)))),
            )
        );
    }

    #[test]
    fn parses_raw_select() {
        let stmt =
            parse("SELECT * FROM nyctaxi WHERE payment_type = 'cash' AND fare_amount >= 10.5")
                .unwrap();
        match stmt {
            Statement::SelectRaw { table, conditions } => {
                assert_eq!(table, "nyctaxi");
                assert_eq!(conditions[1].op, CmpOp::Ge);
                assert_eq!(conditions[1].value, Value::Float64(10.5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn negative_literals_in_where() {
        let stmt = parse("SELECT * FROM t WHERE x < -2.5").unwrap();
        let Statement::SelectRaw { conditions, .. } = stmt else { panic!() };
        assert_eq!(conditions[0].value, Value::Float64(-2.5));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(matches!(
            parse("SELECT sample FROM c WHERE a = 1 garbage"),
            Err(SqlError::Parse(_))
        ));
        assert!(matches!(parse("DROP TABLE x"), Err(SqlError::Parse(_))));
        assert!(matches!(parse("SHOW SAMPLES"), Err(SqlError::Parse(_))));
    }

    #[test]
    fn management_statements_parse() {
        assert_eq!(
            parse("DROP CUBE c").unwrap(),
            Statement::Drop { kind: DropKind::Cube, name: "c".into() }
        );
        assert_eq!(
            parse("DROP AGGREGATE my_loss;").unwrap(),
            Statement::Drop { kind: DropKind::Aggregate, name: "my_loss".into() }
        );
        assert_eq!(parse("SHOW CUBES").unwrap(), Statement::Show(ShowKind::Cubes));
        assert_eq!(parse("SHOW TABLES").unwrap(), Statement::Show(ShowKind::Tables));
        assert_eq!(parse("SHOW AGGREGATES").unwrap(), Statement::Show(ShowKind::Aggregates));
        assert_eq!(
            parse("EXPLAIN CUBE SamplingCube").unwrap(),
            Statement::ExplainCube("SamplingCube".into())
        );
    }

    #[test]
    fn where_clause_is_optional() {
        let stmt = parse("SELECT * FROM t").unwrap();
        let Statement::SelectRaw { conditions, .. } = stmt else { panic!() };
        assert!(conditions.is_empty());
    }

    #[test]
    fn explain_analyze_wraps_selects_only() {
        let stmt = parse("EXPLAIN ANALYZE SELECT sample FROM c WHERE M = 'cash'").unwrap();
        let Statement::ExplainAnalyze(inner) = stmt else { panic!("{stmt:?}") };
        assert!(matches!(*inner, Statement::SelectSample { .. }));
        let stmt = parse("explain analyze select * from t").unwrap();
        let Statement::ExplainAnalyze(inner) = stmt else { panic!("{stmt:?}") };
        assert!(matches!(*inner, Statement::SelectRaw { .. }));
        // Non-SELECT inner statements are rejected at parse time.
        assert!(matches!(parse("EXPLAIN ANALYZE SHOW CUBES"), Err(SqlError::Parse(_))));
        assert!(matches!(parse("EXPLAIN ANALYZE DROP CUBE c"), Err(SqlError::Parse(_))));
        // EXPLAIN ANALYZE of EXPLAIN ANALYZE is not a select either.
        assert!(matches!(
            parse("EXPLAIN ANALYZE EXPLAIN ANALYZE SELECT * FROM t"),
            Err(SqlError::Parse(_))
        ));
    }
}
