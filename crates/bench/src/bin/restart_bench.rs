//! **Restart** — the cost of coming back up. The sampling cube's build
//! is the most expensive operation in the system (`fig08_init_time`); a
//! `tabula-store` snapshot is supposed to make a process restart pay the
//! *load* cost instead. This benchmark measures both sides of that trade
//! on the Figure-8 mean-loss configuration:
//!
//! 1. build the cube from raw rows (wall-clocked),
//! 2. freeze it into a snapshot file (`SamplingCube::write_snapshot`),
//! 3. thaw it back (`SamplingCube::from_snapshot`, full checksum
//!    verification included),
//! 4. replay a query workload through both cubes and require every
//!    answer to match byte for byte (rows AND provenance) — a fast
//!    restart that changes answers is a bug, not a feature.
//!
//! `BENCH_restart.json` records `build_ns`, `snapshot_write_ns`,
//! `load_ns`, the file size, and `speedup` (= build / load). The exit
//! status is non-zero if any answer diverges or the load is not actually
//! faster than the build, so CI can gate on it.
//!
//! ```bash
//! cargo run --release -p tabula-bench --bin restart_bench            # 1 M rows
//! cargo run --release -p tabula-bench --bin restart_bench -- --quick # 20 k rows
//! TABULA_BENCH_ROWS=200000 cargo run --release -p tabula-bench --bin restart_bench
//! ```

use serde::Value;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use tabula_bench::{fmt_bytes, fmt_duration, write_run_summary, SEED};
use tabula_core::loss::MeanLoss;
use tabula_core::{SamplingCube, SamplingCubeBuilder};
use tabula_data::{TaxiConfig, TaxiGenerator, Workload, CUBED_ATTRIBUTES};
use tabula_obs as obs;

/// Default scale: the Figure-8 headline configuration at 1 M rows.
const DEFAULT_ROWS: usize = 1_000_000;
/// `--quick` scale for CI smoke runs.
const QUICK_ROWS: usize = 20_000;
/// Queries replayed through both cubes.
const QUERIES: usize = 100;

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows = std::env::var("TABULA_BENCH_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { QUICK_ROWS } else { DEFAULT_ROWS });
    let theta = 0.05;
    let attrs: Vec<&str> = CUBED_ATTRIBUTES[..5].to_vec();

    println!("# restart_bench | rows = {rows} | attrs = 5 | θ = {theta} | queries = {QUERIES}");
    let table = Arc::new(TaxiGenerator::new(TaxiConfig { rows, seed: SEED }).generate());
    let fare = table.schema().index_of("fare_amount").unwrap();

    // 1. The cold path: build from raw rows.
    let build_start = Instant::now();
    let cube = SamplingCubeBuilder::new(Arc::clone(&table), &attrs, MeanLoss::new(fare), theta)
        .seed(SEED)
        .build()
        .expect("cube build succeeds");
    let build = build_start.elapsed();

    // 2. Freeze.
    let path = std::env::temp_dir().join(format!("tabula-restart-{}.tabsnap", std::process::id()));
    let write_start = Instant::now();
    let bytes = cube.write_snapshot(&path, 1).expect("snapshot write succeeds");
    let write = write_start.elapsed();

    // 3. Thaw (checksums verified, indexes rebuilt — the restart path).
    let load_start = Instant::now();
    let (thawed, info) = SamplingCube::from_snapshot(&path).expect("snapshot load succeeds");
    let load = load_start.elapsed();
    std::fs::remove_file(&path).ok();

    // 4. Same answers, byte for byte.
    let workload = Workload::new(&attrs)
        .generate(&table, QUERIES, SEED ^ 0xBEEF)
        .expect("workload generation succeeds");
    let mut divergences = 0usize;
    for q in &workload {
        let a = cube.query_cell(&q.cell);
        let b = thawed.query_cell(&q.cell);
        if a.rows != b.rows || a.provenance != b.provenance {
            eprintln!("DIVERGENCE [{}]: thawed answer differs from built answer", q.description);
            divergences += 1;
        }
    }

    let speedup = build.as_nanos() as f64 / load.as_nanos().max(1) as f64;
    println!("build             {:>12}", fmt_duration(build));
    println!(
        "snapshot write    {:>12}   ({} on disk)",
        fmt_duration(write),
        fmt_bytes(bytes as usize)
    );
    println!("snapshot load     {:>12}   ({} cells)", fmt_duration(load), info.cells);
    println!("restart speedup   {speedup:>11.1}x   (build / load)");
    println!(
        "answers           {:>12}   ({} queries replayed, {divergences} divergences)",
        if divergences == 0 { "identical" } else { "DIVERGED" },
        workload.len()
    );

    let extra = [
        ("rows", Value::Int(rows as i128)),
        ("quick", Value::Str(quick.to_string())),
        ("theta", Value::Float(theta)),
        ("cells", Value::Int(info.cells as i128)),
        ("snapshot_bytes", Value::Int(bytes as i128)),
        ("build_ns", Value::Int(build.as_nanos() as i128)),
        ("snapshot_write_ns", Value::Int(write.as_nanos() as i128)),
        ("load_ns", Value::Int(load.as_nanos() as i128)),
        ("speedup", Value::Float(speedup)),
        ("queries_replayed", Value::Int(workload.len() as i128)),
        ("divergences", Value::Int(divergences as i128)),
    ];
    // The store layer records its own write/load histograms and byte
    // counters against the global registry; fold them into the summary.
    match write_run_summary("restart", &obs::global().snapshot(), &extra) {
        Ok(p) => println!("run summary written to {}", p.display()),
        Err(e) => eprintln!("could not write run summary: {e}"),
    }

    if divergences > 0 {
        eprintln!("restart_bench: FAILED — {divergences} diverging answers");
        return ExitCode::FAILURE;
    }
    if load >= build {
        eprintln!(
            "restart_bench: FAILED — loading ({}) is not faster than building ({})",
            fmt_duration(load),
            fmt_duration(build)
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
