//! **Figure 8** — sampling-cube initialization time, broken into the
//! paper's three stages (dry run / real run / sample selection), as the
//! accuracy-loss threshold θ shrinks — for the heat-map (8a), statistical
//! mean (8b) and regression (8c) loss functions — and as the number of
//! cubed attributes grows at fixed θ (8d, histogram loss).
//!
//! Every build runs against a private `tabula-obs` registry; the printed
//! stage breakdown and the machine-readable `BENCH_fig08_init_time.json`
//! summary both come from that registry's snapshot rather than ad-hoc
//! `Instant` bookkeeping.
//!
//! Each configuration builds twice: once pinned to one worker thread (the
//! `TABULA_THREADS=1` configuration) and once at the session's configured
//! thread count, so every row carries per-stage `speedup_vs_serial`
//! figures alongside the parallel wall times.
//!
//! ```bash
//! cargo run --release -p tabula-bench --bin fig08_init_time -- heatmap
//! cargo run --release -p tabula-bench --bin fig08_init_time -- mean
//! cargo run --release -p tabula-bench --bin fig08_init_time -- regression
//! cargo run --release -p tabula-bench --bin fig08_init_time -- attrs
//! cargo run --release -p tabula-bench --bin fig08_init_time        # all four
//! ```

use serde::Value;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use tabula_bench::{default_rows, fmt_duration, taxi_table, write_run_summary, SEED};
use tabula_core::loss::{HeatmapLoss, HistogramLoss, MeanLoss, Metric, RegressionLoss};
use tabula_core::{AccuracyLoss, SamplingCubeBuilder};
use tabula_data::{meters_to_norm, CUBED_ATTRIBUTES};
use tabula_obs as obs;
use tabula_storage::Table;

/// Accumulates the run's aggregate stage histograms and JSON result rows
/// across every cube built by this binary.
struct Report {
    aggregate: obs::Registry,
    results: Vec<Value>,
}

impl Report {
    fn new() -> Self {
        Report { aggregate: obs::Registry::new(), results: Vec::new() }
    }

    /// Build one cube twice — serial baseline, then the configured thread
    /// count — against private metrics registries; print the stage row
    /// (parallel walls + total speedup), fold the stage latencies into the
    /// aggregate, and append a JSON row with per-stage speedups.
    fn build_and_report<L: AccuracyLoss + Clone>(
        &mut self,
        table: &Arc<Table>,
        attrs: &[&str],
        loss: L,
        theta: f64,
        figure: &str,
        theta_label: &str,
    ) {
        let build_once = |n_threads: usize| {
            tabula_par::set_threads(n_threads);
            let registry = Arc::new(obs::Registry::new());
            let _cube = SamplingCubeBuilder::new(Arc::clone(table), attrs, loss.clone(), theta)
                .seed(SEED)
                .registry(Arc::clone(&registry))
                .build()
                .expect("build succeeds");
            registry.snapshot()
        };
        let serial_snap = build_once(1);
        // 0 clears the runtime override: the TABULA_THREADS env knob (or
        // the core count) decides the parallel configuration.
        let threads = {
            tabula_par::set_threads(0);
            tabula_par::threads()
        };
        let snap = build_once(0);
        let stage_ns =
            |s: &obs::MetricsSnapshot, name: &str| s.histograms.get(name).map_or(0, |h| h.sum_ns);
        let gauge = |name: &str| snap.gauges.get(name).copied().unwrap_or(0);
        const STAGES: [&str; 4] = ["dry_run", "real_run", "selection", "total"];
        let walls: Vec<(u64, u64)> = STAGES
            .iter()
            .map(|stage| {
                let key = format!("build.{stage}");
                (stage_ns(&serial_snap, &key), stage_ns(&snap, &key))
            })
            .collect();
        let speedup = |(s, p): (u64, u64)| if p == 0 { 1.0 } else { s as f64 / p as f64 };
        let (dry, real, sel, total) = (walls[0].1, walls[1].1, walls[2].1, walls[3].1);
        println!(
            "{theta_label:>12} {:>10} {:>10} {:>10} {:>10} {:>8.2}x {:>9} {:>9} {:>8}",
            fmt_duration(Duration::from_nanos(dry)),
            fmt_duration(Duration::from_nanos(real)),
            fmt_duration(Duration::from_nanos(sel)),
            fmt_duration(Duration::from_nanos(total)),
            speedup(walls[3]),
            gauge("cube.total_cells"),
            gauge("cube.iceberg_cells"),
            gauge("cube.samples_after_selection"),
        );
        for (stage, &(serial_ns, wall_ns)) in STAGES.iter().zip(&walls) {
            self.aggregate.histogram(&format!("build.{stage}")).record(wall_ns);
            self.aggregate.histogram(&format!("build.{stage}.serial")).record(serial_ns);
        }
        let mut row = BTreeMap::new();
        row.insert("figure".to_owned(), Value::Str(figure.to_owned()));
        row.insert("theta".to_owned(), Value::Str(theta_label.to_owned()));
        row.insert("attrs".to_owned(), Value::Int(attrs.len() as i128));
        row.insert("threads".to_owned(), Value::Int(threads as i128));
        let mut speedups = BTreeMap::new();
        for (stage, &w) in STAGES.iter().zip(&walls) {
            row.insert(format!("{stage}_ns"), Value::Int(w.1 as i128));
            row.insert(format!("serial_{stage}_ns"), Value::Int(w.0 as i128));
            speedups.insert((*stage).to_owned(), Value::Float(speedup(w)));
        }
        row.insert("speedup_vs_serial".to_owned(), Value::Obj(speedups));
        row.insert("cells".to_owned(), Value::Int(gauge("cube.total_cells") as i128));
        row.insert("icebergs".to_owned(), Value::Int(gauge("cube.iceberg_cells") as i128));
        row.insert("samples".to_owned(), Value::Int(gauge("cube.samples_after_selection") as i128));
        self.results.push(Value::Obj(row));
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9} {:>9} {:>8}",
        "theta", "dry run", "real run", "SamS", "total", "speedup", "cells", "icebergs", "samples"
    );
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let rows = default_rows();
    let table = taxi_table(rows);
    // Dictionary encoding is shared, lazily-built state on the table
    // (`Table::cat` caches an `IntCatIndex` per Int64 column): warm it for
    // every cubed attribute up front so the first measured configuration
    // does not pay the one-time encoding cost inside its dry-run stage
    // while every later configuration silently reuses the cache.
    for name in CUBED_ATTRIBUTES {
        let col = table.schema().index_of(name).expect("cubed attribute exists");
        let _ = table.cat(col);
    }
    let kernels = match tabula_storage::kernel_mode() {
        tabula_storage::KernelMode::ForceScalar => "scalar",
        _ => "vectorized",
    };
    let attrs5: Vec<&str> = CUBED_ATTRIBUTES[..5].to_vec();
    println!(
        "# Figure 8 | rows = {rows} | attributes = 5 (a–c) / 4–7 (d) | threads = {} (serial baseline: 1) | kernels = {kernels}",
        tabula_par::threads()
    );

    let pickup = table.schema().index_of("pickup").unwrap();
    let fare = table.schema().index_of("fare_amount").unwrap();
    let tip = table.schema().index_of("tip_amount").unwrap();

    let mut report = Report::new();

    if which == "all" || which == "heatmap" {
        header("Fig 8a: init time vs θ — geospatial heatmap-aware loss");
        for meters in [2000.0, 1000.0, 500.0, 250.0] {
            report.build_and_report(
                &table,
                &attrs5,
                HeatmapLoss::new(pickup, Metric::Euclidean),
                meters_to_norm(meters),
                "8a",
                &format!("{meters}m"),
            );
        }
    }
    if which == "all" || which == "mean" {
        header("Fig 8b: init time vs θ — statistical mean loss");
        for pct in [10.0, 5.0, 2.5, 1.0] {
            report.build_and_report(
                &table,
                &attrs5,
                MeanLoss::new(fare),
                pct / 100.0,
                "8b",
                &format!("{pct}%"),
            );
        }
    }
    if which == "all" || which == "regression" {
        header("Fig 8c: init time vs θ — linear regression loss");
        for degrees in [10.0, 5.0, 2.5, 1.0] {
            report.build_and_report(
                &table,
                &attrs5,
                RegressionLoss::new(fare, tip),
                degrees,
                "8c",
                &format!("{degrees}°"),
            );
        }
    }
    if which == "all" || which == "attrs" {
        header("Fig 8d: init time vs #attributes — histogram loss, θ = $0.5");
        for n in 4..=7 {
            let attrs: Vec<&str> = CUBED_ATTRIBUTES[..n].to_vec();
            report.build_and_report(
                &table,
                &attrs,
                HistogramLoss::new(fare),
                0.5,
                "8d",
                &format!("{n} attrs"),
            );
        }
    }

    match write_run_summary(
        "fig08_init_time",
        &report.aggregate.snapshot(),
        &[("results", Value::Arr(report.results)), ("kernels", Value::Str(kernels.to_owned()))],
    ) {
        Ok(path) => println!("\nrun summary written to {}", path.display()),
        Err(e) => eprintln!("\ncould not write run summary: {e}"),
    }
}
