//! Renderings of a [`MetricsSnapshot`]: JSON and Prometheus text exposition.
//!
//! Both are written with plain `std` string building — the obs crate stays
//! dependency-free so it can sit below every other crate in the workspace.

use crate::metrics::{bucket_hi, bucket_index, HistogramSnapshot, MetricsSnapshot};
use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\":{},\"sum_ns\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
        h.count,
        h.sum_ns,
        h.mean_ns(),
        h.p50(),
        h.p95(),
        h.p99(),
        h.max_ns,
    )
}

impl MetricsSnapshot {
    /// Render the snapshot as a compact JSON object with `counters`, `gauges`
    /// and `histograms` sections. Histogram values are summarized (count, sum,
    /// mean, p50/p95/p99, max) rather than dumping raw buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(k), v);
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(k), v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, v)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(k), histogram_json(v));
        }
        out.push('}');
        // Sliding windows are additive: snapshots without them render exactly
        // as before this section existed.
        if !self.windows.is_empty() {
            out.push_str(",\"windows\":{");
            for (i, (k, w)) in self.windows.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\"{}\":{{\"window_secs\":{},\"hist\":{}}}",
                    json_escape(k),
                    w.window_secs,
                    histogram_json(&w.hist)
                );
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Render the snapshot in the Prometheus text exposition format.
    ///
    /// Metric names are sanitized (`.` and `-` become `_`) and prefixed with
    /// `tabula_`; histograms are exposed as native Prometheus histograms with
    /// cumulative `_bucket{le="…"}` series (so real scrapers can compute
    /// `histogram_quantile`) plus `_sum` (in seconds) and `_count`. Sliding
    /// windows export as `_window` gauges with `quantile` and `window_s`
    /// labels — a scraper cannot integrate a sliding window itself, so the
    /// precomputed quantiles are the honest representation.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let name = prom_name(k);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (k, v) in &self.gauges {
            let name = prom_name(k);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (k, h) in &self.histograms {
            let name = prom_name(k);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (i, &c) in h.buckets.iter().enumerate().take(last_bucket(h) + 1) {
                cumulative += c;
                let le = ns_to_secs(bucket_hi(i).saturating_sub(1));
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", ns_to_secs(h.sum_ns));
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        for (k, w) in &self.windows {
            let name = prom_name(k);
            let h = &w.hist;
            let _ = writeln!(out, "# TYPE {name}_window gauge");
            for (q, v) in [(0.5, h.p50()), (0.95, h.p95()), (0.99, h.p99())] {
                let _ = writeln!(
                    out,
                    "{name}_window{{quantile=\"{q}\",window_s=\"{}\"}} {}",
                    w.window_secs,
                    ns_to_secs(v)
                );
            }
            let _ =
                writeln!(out, "{name}_window_count{{window_s=\"{}\"}} {}", w.window_secs, h.count);
        }
        out
    }
}

/// Index of the highest bucket a scraper needs: the one holding `max_ns`
/// (so the `le` ladder always covers the whole recorded range without
/// emitting 64 lines for an empty tail).
fn last_bucket(h: &HistogramSnapshot) -> usize {
    bucket_index(h.max_ns)
}

fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("tabula_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn ns_to_secs(ns: u64) -> String {
    format!("{:.9}", ns as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use crate::metrics::Registry;

    #[test]
    fn json_contains_all_sections() {
        let r = Registry::new();
        r.counter("query.local_hit").add(3);
        r.gauge("cube.cells").set(128);
        r.histogram("query.latency").record(1500);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"query.local_hit\":3"), "{json}");
        assert!(json.contains("\"cube.cells\":128"), "{json}");
        assert!(json.contains("\"query.latency\":{\"count\":1"), "{json}");
        assert!(json.contains("\"max_ns\":1500"), "{json}");
        // Must be parseable by the workspace JSON parser shape: balanced braces.
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
    }

    #[test]
    fn prometheus_text_format() {
        let r = Registry::new();
        r.counter("query.global_hit").add(7);
        r.histogram("query.latency").record(2_000_000_000);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE tabula_query_global_hit counter"), "{text}");
        assert!(text.contains("tabula_query_global_hit 7"), "{text}");
        assert!(text.contains("# TYPE tabula_query_latency histogram"), "{text}");
        assert!(text.contains("tabula_query_latency_count 1"), "{text}");
        assert!(text.contains("tabula_query_latency_bucket{le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("tabula_query_latency_sum 2.000000000"), "{text}");
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_cover_max() {
        let r = Registry::new();
        let h = r.histogram("lat");
        h.record(1_000); // bucket 9 ([512, 1024))
        h.record(1_500); // bucket 10
        h.record(1_500);
        let text = r.snapshot().to_prometheus();
        // Bucket upper bound 1023 ns holds the first sample only; 2047 ns
        // (bucket 10) must be cumulative.
        assert!(text.contains("tabula_lat_bucket{le=\"0.000001023\"} 1"), "{text}");
        assert!(text.contains("tabula_lat_bucket{le=\"0.000002047\"} 3"), "{text}");
        assert!(text.contains("tabula_lat_bucket{le=\"+Inf\"} 3"), "{text}");
        // The le ladder stops at the bucket holding max_ns: no 64-line tails.
        assert!(!text.contains("le=\"0.000004095\""), "{text}");
        // Cumulative counts never decrease down the ladder.
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("tabula_lat_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }

    #[test]
    fn windows_export_in_json_and_prometheus() {
        let r = Registry::new();
        r.window("serve.query_ns").record(5_000);
        let snap = r.snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"windows\":{\"serve.query_ns\":{\"window_secs\":60"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE tabula_serve_query_ns_window gauge"), "{text}");
        assert!(text.contains("window_s=\"60\""), "{text}");
        assert!(text.contains("tabula_serve_query_ns_window_count{window_s=\"60\"} 1"), "{text}");
    }

    #[test]
    fn json_without_windows_has_no_windows_section() {
        let r = Registry::new();
        r.counter("c").inc();
        assert!(!r.snapshot().to_json().contains("windows"));
    }
}
