//! Property-based tests of the latency histogram: with power-of-two
//! buckets, any quantile estimate must land in the same bucket as the true
//! order statistic — i.e. within a factor of two — and never exceed the
//! observed maximum.

use proptest::prelude::*;
use tabula_obs::Histogram;

/// The exact order statistic the estimator targets: rank `ceil(q·n)`,
/// clamped to `1..=n`, of the sorted samples.
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// count / sum / max are exact, and every quantile estimate is within
    /// the log₂ bucket of the true order statistic (a factor of two) and
    /// clamped to the observed maximum.
    #[test]
    fn quantile_estimates_stay_within_one_bucket(
        samples in collection::vec(0u64..1_000_000_000, 1..400),
        q in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.sum_ns, samples.iter().sum::<u64>());
        prop_assert_eq!(snap.max_ns, *sorted.last().unwrap());

        let est = snap.quantile(q);
        let truth = true_quantile(&sorted, q);
        prop_assert!(
            est <= 2 * truth + 1,
            "q={} estimate {} overshoots true {} by more than a bucket", q, est, truth
        );
        prop_assert!(
            2 * est >= truth,
            "q={} estimate {} undershoots true {} by more than a bucket", q, est, truth
        );
        prop_assert!(est <= snap.max_ns, "estimate {} above max {}", est, snap.max_ns);
    }

    /// Quantile estimates are monotone in `q`.
    #[test]
    fn quantile_is_monotone_in_q(
        samples in collection::vec(0u64..1_000_000_000, 1..400),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(
            snap.quantile(lo) <= snap.quantile(hi),
            "quantile({}) = {} > quantile({}) = {}",
            lo, snap.quantile(lo), hi, snap.quantile(hi)
        );
    }
}
