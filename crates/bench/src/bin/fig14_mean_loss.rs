//! **Figure 14** — performance under the statistical-mean loss: data-
//! system time (14a) and actual loss (14b) as θ shrinks, including the
//! SnappyData-like stratified-sampling engine (which answers AVG queries
//! directly, with raw-table fallback when its error bound is unmet).
//!
//! ```bash
//! cargo run --release -p tabula-bench --bin fig14_mean_loss
//! ```

use std::sync::Arc;
use tabula_baselines::SnappyLike;
use tabula_bench::{
    default_queries, default_rows, fmt_duration, mean_duration, print_comparison,
    standard_comparison, taxi_table, workload, SEED,
};
use tabula_core::loss::MeanLoss;
use tabula_data::CUBED_ATTRIBUTES;

fn main() {
    let rows = default_rows();
    let table = taxi_table(rows);
    let attrs: Vec<&str> = CUBED_ATTRIBUTES[..5].to_vec();
    let queries = workload(&table, &attrs, default_queries());
    let fare_idx = table.schema().index_of("fare_amount").unwrap();
    let fares = table.column(fare_idx).as_f64_slice().unwrap().to_vec();
    println!(
        "# Figure 14 | statistical-mean loss | rows = {rows} | {} queries | loss unit: relative error",
        queries.len()
    );
    for pct in [10.0, 5.0, 2.5, 1.0] {
        let theta = pct / 100.0;
        let results = standard_comparison(&table, &attrs, MeanLoss::new(fare_idx), theta, &queries);
        print_comparison(&format!("{pct}%"), theta, &results);

        // SnappyData answers AVG directly; measure its error & fallbacks.
        let snappy = SnappyLike::build(Arc::clone(&table), &attrs, "fare_amount", 50, theta, SEED)
            .expect("snappy builds");
        let mut times = Vec::new();
        let mut losses = Vec::new();
        let mut fallbacks = 0usize;
        for q in &queries {
            let ans = snappy.query_avg(&q.predicate);
            times.push(ans.data_system_time);
            let raw = q.predicate.filter(&table).unwrap();
            let exact: f64 = raw.iter().map(|&r| fares[r as usize]).sum::<f64>() / raw.len() as f64;
            losses.push(((exact - ans.avg) / exact).abs());
            fallbacks += usize::from(ans.fell_back_to_raw);
        }
        let avg_loss = losses.iter().sum::<f64>() / losses.len() as f64;
        let max_loss = losses.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{:<16} {:>14} {:>12} {:>12.5} {:>12.5} {:>10}",
            "SnappyData-like",
            fmt_duration(mean_duration(&times)),
            "-",
            avg_loss,
            max_loss,
            format!("{fallbacks} fb"),
        );
    }
}
