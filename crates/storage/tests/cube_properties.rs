//! Property-based tests of the storage engine's CUBE machinery: the
//! algebraic rollup must agree exactly with direct group-bys on arbitrary
//! tables — the invariant the entire dry-run stage rests on.

use proptest::prelude::*;
use tabula_storage::agg::SumCount;
use tabula_storage::cube::{compute_cube, CellKey, CuboidMask};
use tabula_storage::{group_by, ColumnType, Field, Schema, Table, TableBuilder};

fn arb_table() -> impl Strategy<Value = Table> {
    let row = (0u32..5, 0u32..4, 0u32..3, -100.0f64..100.0);
    proptest::collection::vec(row, 1..200).prop_map(|rows| {
        let schema = Schema::new(vec![
            Field::new("a", ColumnType::Int64),
            Field::new("b", ColumnType::Int64),
            Field::new("c", ColumnType::Int64),
            Field::new("v", ColumnType::Float64),
        ]);
        let mut b = TableBuilder::new(schema);
        for (a, bb, c, v) in rows {
            b.push_row(&[(a as i64).into(), (bb as i64).into(), (c as i64).into(), v.into()])
                .expect("conforming row");
        }
        b.finish()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every cell of the rolled-up cube equals the direct group-by result.
    #[test]
    fn rollup_agrees_with_direct_group_by(table in arb_table()) {
        let values = table.column(3).as_f64_slice().unwrap().to_vec();
        let cube = compute_cube(&table, &[0, 1, 2], SumCount::default, |s, row| {
            s.add(values[row as usize])
        })
        .unwrap();
        for mask in CuboidMask::enumerate(3) {
            let grouped = group_by(&table, &mask.attrs()).unwrap();
            // Same number of populated cells per cuboid.
            prop_assert_eq!(
                cube.cuboids[&mask].len(),
                grouped.groups.len(),
                "cuboid {}", mask
            );
            for (key, rows) in &grouped.groups {
                let direct: f64 = rows.iter().map(|&r| values[r as usize]).sum();
                let cell = CellKey::from_compact(mask, 3, key);
                let state = cube.cell_state(&cell).expect("cell present");
                prop_assert!(
                    (state.sum - direct).abs() < 1e-6,
                    "cell {}: rollup {} vs direct {}", cell, state.sum, direct
                );
                prop_assert_eq!(state.count, rows.len() as u64);
            }
        }
    }

    /// Projecting any row onto any cuboid yields a cell the cube contains,
    /// and that cell covers the row.
    #[test]
    fn every_row_lands_in_a_populated_cell(table in arb_table(), mask_bits in 0u32..8) {
        let values = table.column(3).as_f64_slice().unwrap().to_vec();
        let cube = compute_cube(&table, &[0, 1, 2], SumCount::default, |s, row| {
            s.add(values[row as usize])
        })
        .unwrap();
        let mask = CuboidMask(mask_bits);
        let cats: Vec<_> = (0..3).map(|c| table.cat(c).unwrap()).collect();
        for row in 0..table.len() {
            let full: Vec<u32> = cats.iter().map(|c| c.codes()[row]).collect();
            let cell = CellKey::project(mask, &full);
            prop_assert!(cube.cell_state(&cell).is_some());
            prop_assert!(cell.covers(&full));
        }
    }

    /// Cuboid cell counts are monotone: a parent cuboid (more grouping
    /// attributes) never has fewer cells than its child.
    #[test]
    fn cell_counts_are_monotone_up_the_lattice(table in arb_table()) {
        let cube = compute_cube(&table, &[0, 1, 2], SumCount::default, |s, _| s.add(1.0))
            .unwrap();
        for mask in CuboidMask::enumerate(3) {
            for child_attr in mask.attrs() {
                let child = CuboidMask(mask.0 & !(1 << child_attr));
                prop_assert!(
                    cube.cuboids[&mask].len() >= cube.cuboids[&child].len(),
                    "parent {} has fewer cells than child {}", mask, child
                );
            }
        }
    }
}
