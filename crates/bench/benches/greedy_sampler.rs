//! Criterion micro-benchmark: the Algorithm-1 greedy sampler engines
//! (naive / lazy-forward exact / stochastic) across input sizes and
//! thresholds — the inner loop of the real-run stage and of the SamFly /
//! POIsam baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tabula_bench::taxi_table;
use tabula_core::loss::{HeatmapLoss, MeanLoss, Metric};
use tabula_core::sampling::naive_greedy;
use tabula_core::AccuracyLoss;
use tabula_data::meters_to_norm;
use tabula_storage::RowId;

fn bench_engines(c: &mut Criterion) {
    let table = taxi_table(20_000);
    let pickup = table.schema().index_of("pickup").unwrap();
    let fare = table.schema().index_of("fare_amount").unwrap();
    let heat = HeatmapLoss::new(pickup, Metric::Euclidean);
    let mean = MeanLoss::new(fare);
    let theta_heat = meters_to_norm(500.0);

    let mut group = c.benchmark_group("greedy_sampler");
    group.sample_size(10);
    for n in [256usize, 1024, 4096, 16384] {
        let raw: Vec<RowId> = (0..n as RowId).collect();
        group.bench_with_input(BenchmarkId::new("coverage_heatmap", n), &raw, |b, raw| {
            b.iter(|| black_box(heat.sample_greedy(&table, raw, theta_heat)))
        });
        group.bench_with_input(BenchmarkId::new("incremental_mean", n), &raw, |b, raw| {
            b.iter(|| black_box(mean.sample_greedy(&table, raw, 0.01)))
        });
    }
    // The literal pseudocode, small inputs only (it is quadratic).
    let raw_small: Vec<RowId> = (0..128).collect();
    group.bench_function("naive_literal_mean_128", |b| {
        b.iter(|| black_box(naive_greedy(&mean, &table, &raw_small, 0.01)))
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
