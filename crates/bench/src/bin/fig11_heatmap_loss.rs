//! **Figure 11** — performance under the geospatial heat-map-aware loss:
//! data-system time per query (11a) and actual accuracy loss, min / avg /
//! max (11b), for every compared approach, as θ shrinks. The paper's
//! normalization (0.25 km ≈ 0.004) is the same one `tabula-data` uses.
//!
//! ```bash
//! cargo run --release -p tabula-bench --bin fig11_heatmap_loss
//! ```

use tabula_bench::{
    default_queries, default_rows, print_comparison, standard_comparison, taxi_table, workload,
};
use tabula_core::loss::{HeatmapLoss, Metric};
use tabula_data::{meters_to_norm, CUBED_ATTRIBUTES};

fn main() {
    let rows = default_rows();
    let table = taxi_table(rows);
    let attrs: Vec<&str> = CUBED_ATTRIBUTES[..5].to_vec();
    let queries = workload(&table, &attrs, default_queries());
    let pickup = table.schema().index_of("pickup").unwrap();
    println!(
        "# Figure 11 | heatmap-aware loss | rows = {rows} | {} queries | loss unit: normalized distance (0.004 = 250m)",
        queries.len()
    );
    for meters in [1000.0, 500.0, 250.0] {
        let theta = meters_to_norm(meters);
        let results = standard_comparison(
            &table,
            &attrs,
            HeatmapLoss::new(pickup, Metric::Euclidean),
            theta,
            &queries,
        );
        print_comparison(&format!("{meters}m ({theta})"), theta, &results);
    }
}
