//! Quickstart: generate a taxi table, build a Tabula sampling cube, and
//! serve dashboard queries from it.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use tabula::core::loss::{HeatmapLoss, Metric};
use tabula::core::{MaterializationMode, SamplingCubeBuilder};
use tabula::data::{meters_to_norm, TaxiConfig, TaxiGenerator, CUBED_ATTRIBUTES};
use tabula::storage::Predicate;
use tabula::viz::timed;

fn main() {
    // 1. A synthetic slice of the NYC taxi table (the paper uses 700 M
    //    rows on a Spark cluster; 200 k is plenty to see the mechanics).
    let (table, gen_time) =
        timed(|| Arc::new(TaxiGenerator::new(TaxiConfig { rows: 50_000, seed: 42 }).generate()));
    println!("generated {} taxi rides in {gen_time:.2?}", table.len());

    // 2. Build the sampling cube over the paper's default 5 attributes,
    //    with the heat-map loss at θ = 500 m (the paper's headline runs
    //    250 m on a 48-core cluster; 500 m keeps this demo snappy on a
    //    laptop — try 250.0 to reproduce the tight setting).
    let pickup = table.schema().index_of("pickup").unwrap();
    let theta = meters_to_norm(500.0);
    let loss = HeatmapLoss::new(pickup, Metric::Euclidean);
    let (cube, build_time) = timed(|| {
        SamplingCubeBuilder::new(Arc::clone(&table), &CUBED_ATTRIBUTES[..5], loss, theta)
            .mode(MaterializationMode::Tabula)
            .build()
            .expect("valid configuration")
    });
    let stats = cube.stats();
    println!("cube initialized in {build_time:.2?}");
    println!(
        "  dry run        {:>10.2?} ({} cells, {} icebergs)",
        stats.dry_run, stats.total_cells, stats.iceberg_cells
    );
    println!(
        "  real run       {:>10.2?} ({} cuboids skipped)",
        stats.real_run, stats.cuboids_skipped
    );
    println!(
        "  selection      {:>10.2?} ({} -> {} samples)",
        stats.selection, stats.samples_before_selection, stats.samples_after_selection
    );
    let mem = cube.memory_breakdown();
    println!(
        "  memory: global {} KB + cube table {} KB + samples {} KB = {} KB",
        mem.global_bytes / 1024,
        mem.cube_table_bytes / 1024,
        mem.sample_table_bytes / 1024,
        mem.total() / 1024
    );

    // 3. Dashboard interactions: each query returns a ready sample whose
    //    heat map is guaranteed within θ of the raw answer's.
    for (label, pred) in [
        ("cash rides", Predicate::eq("payment_type", "cash")),
        ("disputed rides", Predicate::eq("payment_type", "dispute")),
        (
            "cash rides on Friday",
            Predicate::eq("payment_type", "cash").and(
                "pickup_weekday",
                tabula::storage::CmpOp::Eq,
                "Fri",
            ),
        ),
        ("JFK flat-fare rides", Predicate::eq("rate_code", "jfk")),
    ] {
        let (answer, q_time) = timed(|| cube.query(&pred).unwrap());
        println!(
            "query [{label}]: {} sample tuples via {:?} in {q_time:.2?}",
            answer.len(),
            answer.provenance
        );
    }
}
