//! Atomic metrics primitives and the [`Registry`] that names them.
//!
//! Everything here is lock-free on the hot path: a [`Counter`] increment is a
//! single relaxed `fetch_add`, a [`Histogram`] record is three. Locks are only
//! taken when *resolving* a metric by name (`Registry::counter` & friends) or
//! when taking a [`MetricsSnapshot`], both of which are cold operations —
//! callers on hot paths resolve their `Arc` handle once and keep it.

use crate::window::{WindowSnapshot, WindowedHistogram, DEFAULT_WINDOW_SECS};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets. Bucket `i` counts samples in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 additionally holds 0 and 1), so the
/// range spans 1 ns .. ~584 years — enough for any latency we will ever see.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log₂-bucketed latency histogram.
///
/// Values are recorded in nanoseconds into 64 power-of-two buckets, which
/// bounds quantile estimation error at <50% of the true value (in practice far
/// less after intra-bucket interpolation) while keeping `record` to three
/// relaxed atomic ops and zero allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Index of the bucket covering `ns`: `floor(log2(max(ns, 1)))`.
#[inline]
pub(crate) fn bucket_index(ns: u64) -> usize {
    (63 - (ns | 1).leading_zeros()) as usize
}

/// Lower bound (inclusive) of bucket `i` in nanoseconds.
#[inline]
pub(crate) fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// Upper bound (exclusive) of bucket `i` in nanoseconds; saturates at `u64::MAX`.
#[inline]
pub(crate) fn bucket_hi(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a value in nanoseconds.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Record a [`Duration`] (saturating at `u64::MAX` nanoseconds).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent point-in-time view. Individual loads are relaxed, so a
    /// snapshot taken concurrently with writers may straddle an in-flight
    /// record; quantiles remain meaningful because every bucket is monotone.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count: u64 = buckets.iter().sum();
        let sum = self.sum.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        HistogramSnapshot { count, sum_ns: sum, max_ns: max, buckets }
    }
}

/// Immutable view of a [`Histogram`] with quantile estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum_ns: u64,
    pub max_ns: u64,
    /// Per-bucket counts, `buckets[i]` covering `[bucket_lo(i), bucket_hi(i))`.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) in nanoseconds.
    ///
    /// Walks the cumulative bucket counts to the target rank, then linearly
    /// interpolates inside the bucket. The result is clamped to `max_ns` so
    /// p100 never exceeds the true observed maximum. Returns 0 for an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank in 1..=count of the sample we want.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = bucket_lo(i) as f64;
                let hi = (bucket_hi(i).min(self.max_ns.max(1))) as f64;
                let hi = hi.max(lo);
                // Position of the target rank within this bucket, in (0, 1].
                let frac = (rank - seen) as f64 / c as f64;
                let est = lo + (hi - lo) * frac;
                return (est as u64).min(self.max_ns);
            }
            seen += c;
        }
        self.max_ns
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean in nanoseconds (0 if empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// A named collection of counters, gauges and histograms.
///
/// Metrics are created on first use and live for the registry's lifetime.
/// Handles are `Arc`s: resolve once, then update lock-free forever.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    windows: RwLock<BTreeMap<String, Arc<WindowedHistogram>>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().unwrap().get(name) {
            return Arc::clone(c);
        }
        let mut w = self.counters.write().unwrap();
        Arc::clone(w.entry(name.to_string()).or_default())
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().unwrap().get(name) {
            return Arc::clone(g);
        }
        let mut w = self.gauges.write().unwrap();
        Arc::clone(w.entry(name.to_string()).or_default())
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().unwrap().get(name) {
            return Arc::clone(h);
        }
        let mut w = self.histograms.write().unwrap();
        Arc::clone(w.entry(name.to_string()).or_default())
    }

    /// Get or create the sliding-window histogram named `name` with the
    /// default 60 s window (see [`window_with_secs`](Self::window_with_secs)).
    pub fn window(&self, name: &str) -> Arc<WindowedHistogram> {
        self.window_with_secs(name, DEFAULT_WINDOW_SECS)
    }

    /// Get or create the sliding-window histogram named `name`. The window
    /// length only applies on creation; later calls return the existing
    /// window whatever its length.
    pub fn window_with_secs(&self, name: &str, window_secs: u64) -> Arc<WindowedHistogram> {
        if let Some(w) = self.windows.read().unwrap().get(name) {
            return Arc::clone(w);
        }
        let mut w = self.windows.write().unwrap();
        Arc::clone(
            w.entry(name.to_string())
                .or_insert_with(|| Arc::new(WindowedHistogram::new(window_secs))),
        )
    }

    /// Point-in-time snapshot of every metric in the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters =
            self.counters.read().unwrap().iter().map(|(k, v)| (k.clone(), v.get())).collect();
        let gauges =
            self.gauges.read().unwrap().iter().map(|(k, v)| (k.clone(), v.get())).collect();
        let histograms = self
            .histograms
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let windows = self
            .windows
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| {
                (k.clone(), WindowSnapshot { window_secs: v.window_secs(), hist: v.snapshot() })
            })
            .collect();
        MetricsSnapshot { counters, gauges, histograms, windows }
    }

    /// Reset every counter and drop every histogram's and window's samples.
    /// Gauges keep their last value (they describe current state, not
    /// accumulation). Benches and the diff engine call this between phases
    /// to isolate per-phase counters instead of diffing cumulative snapshots.
    pub fn reset(&self) {
        for c in self.counters.read().unwrap().values() {
            c.reset();
        }
        let mut h = self.histograms.write().unwrap();
        for v in h.values_mut() {
            *v = Arc::new(Histogram::new());
        }
        for w in self.windows.read().unwrap().values() {
            w.reset();
        }
    }
}

/// Immutable snapshot of a whole [`Registry`]; see the `export` module for
/// JSON and Prometheus renderings.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Sliding-window histograms (see [`WindowedHistogram`]), keyed like
    /// `histograms`; a name may appear in both maps.
    pub windows: BTreeMap<String, WindowSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter, defaulting to 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// The process-wide registry. Library code defaults to this; tests that need
/// isolation construct their own [`Registry`] and thread it through.
pub fn global() -> &'static Arc<Registry> {
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_inc_add_reset() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(c.reset(), 42);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_set_add() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_bounds_cover_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 0..HISTOGRAM_BUCKETS {
            let lo = bucket_lo(i);
            assert_eq!(bucket_index(lo.max(1)), i);
            if i < 63 {
                assert_eq!(bucket_index(bucket_hi(i) - 1), i);
            }
        }
    }

    #[test]
    fn histogram_quantiles_single_value() {
        let h = Histogram::new();
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.max_ns, 1000);
        assert!(s.p50() <= 1000);
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn histogram_mean_and_empty() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().mean_ns(), 0);
        assert_eq!(h.snapshot().quantile(0.5), 0);
        h.record(100);
        h.record(300);
        assert_eq!(h.snapshot().mean_ns(), 200);
    }

    #[test]
    fn registry_handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.inc();
        assert_eq!(r.snapshot().counter("x"), 2);
    }

    #[test]
    fn registry_reset_clears_counters_and_histograms() {
        let r = Registry::new();
        r.counter("c").add(5);
        r.histogram("h").record(123);
        r.gauge("g").set(9);
        r.window("w").record(77);
        r.reset();
        let s = r.snapshot();
        assert_eq!(s.counter("c"), 0);
        assert_eq!(s.histograms["h"].count, 0);
        assert_eq!(s.gauges["g"], 9);
        assert_eq!(s.windows["w"].hist.count, 0);
    }

    #[test]
    fn registry_window_handles_are_shared() {
        let r = Registry::new();
        let a = r.window("w");
        let b = r.window_with_secs("w", 10); // existing wins, length ignored
        a.record(100);
        b.record(200);
        let s = r.snapshot();
        assert_eq!(s.windows["w"].window_secs, crate::window::DEFAULT_WINDOW_SECS);
        assert_eq!(s.windows["w"].hist.count, 2);
    }

    #[test]
    fn quantile_orders_mass_correctly() {
        let h = Histogram::new();
        // 90 fast samples, 10 slow ones: p50 must sit near the fast mass,
        // p99 near the slow mass.
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert!(s.p50() < 3_000, "p50 = {}", s.p50());
        assert!(s.p99() >= 524_288, "p99 = {}", s.p99());
        assert_eq!(s.max_ns, 1_000_000);
    }
}
