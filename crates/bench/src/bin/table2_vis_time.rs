//! **Table II** — sample-visualization time per approach for the three
//! analysis tasks (geospatial heat map, statistical mean, linear
//! regression), plus the paper's "no sampling" row (the analysis running
//! on the full raw query result). Run at the smallest threshold of each
//! loss function, like the paper.
//!
//! ```bash
//! cargo run --release -p tabula-bench --bin table2_vis_time
//! ```

use serde::Value;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use tabula_baselines::{Approach, PoiSam, SampleFirst, SampleOnTheFly};
use tabula_bench::{
    default_queries, default_rows, fmt_duration, taxi_table, workload, write_run_summary, SEED,
};
use tabula_core::loss::{HeatmapLoss, MeanLoss, Metric, RegressionLoss};
use tabula_core::{AccuracyLoss, SamplingCubeBuilder};
use tabula_data::{meters_to_norm, QueryCell, CUBED_ATTRIBUTES};
use tabula_obs as obs;
use tabula_storage::{Point, RowId, Table};
use tabula_viz::{mean_of, timed, Heatmap, HeatmapConfig, RegressionFit};

/// Which analysis task the dashboard runs on the returned tuples.
#[derive(Clone, Copy)]
enum Task {
    Heatmap,
    Mean,
    Regression,
}

impl Task {
    fn name(self) -> &'static str {
        match self {
            Task::Heatmap => "heat map",
            Task::Mean => "stat. mean",
            Task::Regression => "regression",
        }
    }

    /// Identifier-safe name for JSON keys.
    fn slug(self) -> &'static str {
        match self {
            Task::Heatmap => "heatmap",
            Task::Mean => "mean",
            Task::Regression => "regression",
        }
    }

    /// Run the visual analysis on `rows`, returning only its wall time.
    fn run(self, table: &Table, rows: &[RowId]) -> Duration {
        match self {
            Task::Heatmap => {
                let pts: Vec<Point> = {
                    let col = table.column_by_name("pickup").unwrap().as_point_slice().unwrap();
                    rows.iter().map(|&r| col[r as usize]).collect()
                };
                timed(|| Heatmap::render(&pts, HeatmapConfig::default())).1
            }
            Task::Mean => {
                let fares = table.column_by_name("fare_amount").unwrap().as_f64_slice().unwrap();
                let values: Vec<f64> = rows.iter().map(|&r| fares[r as usize]).collect();
                timed(|| mean_of(&values)).1
            }
            Task::Regression => {
                let fares = table.column_by_name("fare_amount").unwrap().as_f64_slice().unwrap();
                let tips = table.column_by_name("tip_amount").unwrap().as_f64_slice().unwrap();
                let xy: Vec<(f64, f64)> =
                    rows.iter().map(|&r| (fares[r as usize], tips[r as usize])).collect();
                timed(|| RegressionFit::fit(&xy)).1
            }
        }
    }
}

/// Per-approach mean visualization time over a workload, given a closure
/// producing the answer rows. Accumulates through an [`obs::PhaseTimer`]
/// instead of hand-rolled `Vec<Duration>` averaging.
fn measure(
    table: &Table,
    queries: &[QueryCell],
    task: Task,
    mut answer: impl FnMut(&QueryCell) -> Vec<RowId>,
) -> Duration {
    let mut timer = obs::PhaseTimer::new();
    for q in queries {
        timer.record(task.run(table, &answer(q)));
    }
    timer.mean()
}

fn main() {
    let rows = default_rows();
    let table = taxi_table(rows);
    let attrs: Vec<&str> = CUBED_ATTRIBUTES[..5].to_vec();
    let queries = workload(&table, &attrs, default_queries().min(50));
    let pickup = table.schema().index_of("pickup").unwrap();
    let fare = table.schema().index_of("fare_amount").unwrap();
    let tip = table.schema().index_of("tip_amount").unwrap();
    println!("# Table II | sample visualization time | rows = {rows} | {} queries", queries.len());
    println!("\n{:<18} {:>14} {:>14} {:>14}", "approach", "heat map", "stat. mean", "regression");
    println!("{}", "-".repeat(64));

    // Measure per (approach × task), at the tightest θ per loss fn.
    let tasks: [(Task, f64); 3] =
        [(Task::Heatmap, meters_to_norm(250.0)), (Task::Mean, 0.01), (Task::Regression, 1.0)];

    let small = (table.len() / 1000).max(100);
    let large = (table.len() / 100).max(1000);

    let mut rows_out: Vec<(String, Vec<Duration>)> = Vec::new();
    for (label, kind) in [
        (format!("SamFirst-{small}"), 0usize),
        (format!("SamFirst-{large}"), 1),
        ("SamFly".to_owned(), 2),
        ("POIsam".to_owned(), 3),
        ("Tabula".to_owned(), 4),
        ("No sampling".to_owned(), 5),
    ] {
        let mut cols = Vec::new();
        for &(task, theta) in &tasks {
            // Per-task loss function (the sampling objective differs).
            let d = match task {
                Task::Heatmap => {
                    let loss = HeatmapLoss::new(pickup, Metric::Euclidean);
                    measure_with(kind, &table, &attrs, &queries, loss, theta, task, small, large)
                }
                Task::Mean => {
                    let loss = MeanLoss::new(fare);
                    measure_with(kind, &table, &attrs, &queries, loss, theta, task, small, large)
                }
                Task::Regression => {
                    let loss = RegressionLoss::new(fare, tip);
                    measure_with(kind, &table, &attrs, &queries, loss, theta, task, small, large)
                }
            };
            cols.push(d);
        }
        rows_out.push((label, cols));
    }
    let mut results = Vec::new();
    for (label, cols) in &rows_out {
        println!(
            "{label:<18} {:>14} {:>14} {:>14}",
            fmt_duration(cols[0]),
            fmt_duration(cols[1]),
            fmt_duration(cols[2])
        );
        let mut row = BTreeMap::new();
        row.insert("approach".to_owned(), Value::Str(label.clone()));
        for (&(task, _), d) in tasks.iter().zip(cols) {
            row.insert(format!("{}_mean_ns", task.slug()), Value::Int(d.as_nanos() as i128));
        }
        results.push(Value::Obj(row));
    }

    // The cube builds and query_cell lookups above reported into the
    // global obs registry; embed that snapshot alongside the table rows.
    match write_run_summary(
        "table2_vis_time",
        &obs::global().snapshot(),
        &[("queries", Value::Int(queries.len() as i128)), ("results", Value::Arr(results))],
    ) {
        Ok(path) => println!("\nrun summary written to {}", path.display()),
        Err(e) => eprintln!("\ncould not write run summary: {e}"),
    }
}

#[allow(clippy::too_many_arguments)]
fn measure_with<L: AccuracyLoss + Clone>(
    kind: usize,
    table: &Arc<Table>,
    attrs: &[&str],
    queries: &[QueryCell],
    loss: L,
    theta: f64,
    task: Task,
    small: usize,
    large: usize,
) -> Duration {
    let _ = task.name();
    match kind {
        0 | 1 => {
            let n = if kind == 0 { small } else { large };
            let sf = SampleFirst::with_rows(Arc::clone(table), n, SEED);
            measure(table, queries, task, |q| sf.query(&q.predicate).rows)
        }
        2 => {
            let fly = SampleOnTheFly::new(Arc::clone(table), loss, theta);
            measure(table, queries, task, |q| fly.query(&q.predicate).rows)
        }
        3 => {
            let poisam = PoiSam::new(Arc::clone(table), loss, theta, SEED);
            measure(table, queries, task, |q| poisam.query(&q.predicate).rows)
        }
        4 => {
            let cube = SamplingCubeBuilder::new(Arc::clone(table), attrs, loss, theta)
                .seed(SEED)
                .build()
                .expect("build succeeds");
            measure(table, queries, task, |q| cube.query_cell(&q.cell).rows.as_ref().clone())
        }
        _ => measure(table, queries, task, |q| q.predicate.filter(table).expect("valid predicate")),
    }
}
