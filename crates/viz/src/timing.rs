//! Timing helpers for the data-to-visualization breakdown.
//!
//! [`PhaseTimer`] now lives in `tabula-obs` (re-exported here for
//! compatibility) so the whole workspace shares one implementation — the
//! viz-local copy had a `mean()` that truncated its divisor to u32.

use std::time::{Duration, Instant};

pub use tabula_obs::PhaseTimer;

/// Run `f`, returning its result and elapsed wall time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_result_and_duration() {
        let (v, d) = timed(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn phase_timer_accumulates() {
        let mut t = PhaseTimer::default();
        assert_eq!(t.mean(), Duration::ZERO);
        t.record(Duration::from_millis(10));
        t.record(Duration::from_millis(30));
        assert_eq!(t.count(), 2);
        assert_eq!(t.total(), Duration::from_millis(40));
        assert_eq!(t.mean(), Duration::from_millis(20));
    }
}
