//! **Ablation: representative-sample selection** — sweep the SamGraph
//! join's candidate cap (the knob that trades selection-stage time for
//! deduplication wins) and disable selection entirely (Tabula*), at a
//! fixed threshold. Regenerates the evidence for DESIGN.md's claim that
//! capping the join preserves the guarantee and most of the memory win.
//!
//! ```bash
//! cargo run --release -p tabula-bench --bin ablation_selection
//! ```

use std::sync::Arc;
use tabula_bench::{default_rows, fmt_bytes, fmt_duration, taxi_table, SEED};
use tabula_core::loss::{HeatmapLoss, Metric};
use tabula_core::samgraph::SamGraphConfig;
use tabula_core::{MaterializationMode, SamplingCubeBuilder};
use tabula_data::{meters_to_norm, CUBED_ATTRIBUTES};

fn main() {
    let rows = default_rows();
    let table = taxi_table(rows);
    let pickup = table.schema().index_of("pickup").unwrap();
    let theta = meters_to_norm(500.0);
    let attrs: Vec<&str> = CUBED_ATTRIBUTES[..5].to_vec();
    println!("# Ablation: sample selection | rows = {rows} | heatmap loss, θ = 500m");
    println!(
        "\n{:<22} {:>12} {:>12} {:>12} {:>12}",
        "variant", "selection t", "samples", "sample mem", "total init"
    );
    println!("{}", "-".repeat(74));

    for cap in [1usize, 4, 16, 32, 128, usize::MAX] {
        let cube = SamplingCubeBuilder::new(
            Arc::clone(&table),
            &attrs,
            HeatmapLoss::new(pickup, Metric::Euclidean),
            theta,
        )
        .samgraph(SamGraphConfig { max_candidates: cap })
        .seed(SEED)
        .build()
        .unwrap();
        let label =
            if cap == usize::MAX { "exhaustive".to_owned() } else { format!("cap = {cap}") };
        println!(
            "{label:<22} {:>12} {:>12} {:>12} {:>12}",
            fmt_duration(cube.stats().selection),
            cube.persisted_samples(),
            fmt_bytes(cube.memory_breakdown().sample_table_bytes),
            fmt_duration(cube.stats().total),
        );
    }

    let star = SamplingCubeBuilder::new(
        Arc::clone(&table),
        &attrs,
        HeatmapLoss::new(pickup, Metric::Euclidean),
        theta,
    )
    .mode(MaterializationMode::TabulaStar)
    .seed(SEED)
    .build()
    .unwrap();
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12}",
        "no selection (Tabula*)",
        "-",
        star.persisted_samples(),
        fmt_bytes(star.memory_breakdown().sample_table_bytes),
        fmt_duration(star.stats().total),
    );
}
