//! Accuracy-loss-aware sampling — the paper's **Algorithm 1** and its
//! accelerated engines.
//!
//! The sampling problem (paper Definition 4): given a dataset `T`, a loss
//! function and a threshold `θ`, pick a subset `t ⊆ T` with
//! `loss(T, t) ≤ θ`, keeping `t` small. Algorithm 1 greedily adds the
//! tuple that minimizes the loss until the threshold is met; the result is
//! guaranteed (not estimated) to satisfy the bound, though it may not be
//! minimal.
//!
//! Three engines implement the greedy loop:
//!
//! * [`naive_greedy`] — the literal pseudocode, re-evaluating the full
//!   loss for every candidate each round. Works for *any*
//!   [`AccuracyLoss`]; cost `O(|T|² · cost(loss))`.
//! * [`run_incremental_greedy`] — for losses whose value is a function of
//!   small aggregate states (mean, regression, expression losses), each
//!   candidate is priced in O(1) by provisionally updating the sample
//!   state. Cost `O(|T| · rounds)`.
//! * [`coverage_greedy`] — for the per-tuple-decomposable visualization
//!   losses (`loss = avg_i min_{s∈t} dist(i, s)`), the POIsam
//!   **lazy-forward** strategy: marginal gains are submodular (they only
//!   shrink as the sample grows), so stale gains are valid upper bounds
//!   and most candidates are never re-priced.

use crate::loss::AccuracyLoss;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tabula_storage::{RowId, Table};

/// Entry point: draw a sample of `raw` meeting `theta` under `loss`.
/// Dispatches to the loss's specialized engine.
pub fn greedy_sample<L: AccuracyLoss>(
    loss: &L,
    table: &Table,
    raw: &[RowId],
    theta: f64,
) -> Vec<RowId> {
    loss.sample_greedy(table, raw, theta)
}

/// The literal Algorithm 1. Correct for any loss; affordable only for
/// small cells (quadratic in `|raw|`). Built-in losses override
/// [`AccuracyLoss::sample_greedy`] with the faster engines below.
pub fn naive_greedy<L: AccuracyLoss + ?Sized>(
    loss: &L,
    table: &Table,
    raw: &[RowId],
    theta: f64,
) -> Vec<RowId> {
    let mut remaining: Vec<RowId> = raw.to_vec();
    let mut sample: Vec<RowId> = Vec::new();
    let mut current = f64::INFINITY;
    while current > theta && !remaining.is_empty() {
        let mut best = (f64::INFINITY, 0usize);
        for (i, &cand) in remaining.iter().enumerate() {
            sample.push(cand);
            let l = loss.loss(table, raw, &sample);
            sample.pop();
            if l < best.0 {
                best = (l, i);
            }
        }
        let (l, idx) = best;
        sample.push(remaining.swap_remove(idx));
        current = l;
    }
    sample
}

/// A loss whose value can be re-priced in O(1) when one candidate is
/// provisionally added to the running sample. Candidates are addressed by
/// their *position* in the raw row list the engine was started with.
pub trait IncrementalEval {
    /// Loss of the current sample.
    fn current(&self) -> f64;
    /// Loss if the candidate at `idx` were added (must not mutate).
    fn loss_if_added(&self, idx: usize) -> f64;
    /// Commit the candidate at `idx`.
    fn add(&mut self, idx: usize);
}

/// Greedy loop over an [`IncrementalEval`]: each round scans all remaining
/// candidates (O(1) each) and commits the argmin, until the threshold is
/// met or every row has been taken.
pub fn run_incremental_greedy<E: IncrementalEval>(
    mut eval: E,
    raw: &[RowId],
    theta: f64,
) -> Vec<RowId> {
    let mut remaining: Vec<usize> = (0..raw.len()).collect();
    let mut picked: Vec<RowId> = Vec::new();
    let mut current = f64::INFINITY;
    while current > theta && !remaining.is_empty() {
        let mut best = (f64::INFINITY, 0usize);
        for (pos, &idx) in remaining.iter().enumerate() {
            let l = eval.loss_if_added(idx);
            if l < best.0 {
                best = (l, pos);
            }
        }
        let idx = remaining.swap_remove(best.1);
        eval.add(idx);
        picked.push(raw[idx]);
        current = eval.current();
        debug_assert!(
            (current - best.0).abs() < 1e-9 || !current.is_finite(),
            "committed loss must equal the candidate's priced loss"
        );
    }
    picked
}

/// A set of elements with pairwise distances, for coverage losses of the
/// form `loss(T, t) = (1/|T|) Σ_{i∈T} min_{s∈t} dist(i, s)`.
pub trait CoverageSpace: Sync {
    /// Number of elements.
    fn len(&self) -> usize;
    /// Whether the space is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Distance between elements `a` and `b` (symmetric, non-negative).
    fn dist(&self, a: usize, b: usize) -> f64;
    /// A cheap-to-compute good first pick (e.g. the element nearest the
    /// centroid).
    fn center_element(&self) -> usize;
}

/// Max-heap entry: a (possibly stale) upper bound on a candidate's
/// marginal gain.
struct GainEntry {
    gain: f64,
    idx: usize,
    /// The selection round the gain was computed in; entries from earlier
    /// rounds are stale (but still valid upper bounds, by submodularity).
    round: u32,
}

impl PartialEq for GainEntry {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain
    }
}
impl Eq for GainEntry {}
impl PartialOrd for GainEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for GainEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain.total_cmp(&other.gain)
    }
}

/// Above this input size the exact lazy-forward greedy (which prices
/// every candidate once, O(n²)) gives way to the stochastic variant.
const EXACT_GREEDY_LIMIT: usize = 512;

/// Greedy sampler for coverage losses. Returns indices into the space, in
/// selection order. Guarantees `avg_i min_{s∈result} dist(i, s) ≤ theta`
/// on return (in the worst case by selecting every element, which drives
/// the loss to exactly zero).
///
/// Engine choice by input size:
/// * `n ≤ 2048` — exact greedy with POIsam's **lazy-forward** strategy:
///   initial marginal gains are priced once, and because gains are
///   submodular (they only shrink as the sample grows) stale heap entries
///   remain valid upper bounds, so few candidates are re-priced per round.
/// * larger — **stochastic greedy** (Mirzasoleiman et al.): each round
///   prices a small random candidate pool plus the current
///   worst-covered element. The achieved-loss stopping rule is unchanged,
///   so the θ guarantee is exact either way; only sample minimality is
///   (slightly) relaxed — the same trade Algorithm 1 already makes.
pub fn coverage_greedy<S: CoverageSpace>(space: &S, theta: f64) -> Vec<usize> {
    let n = space.len();
    if n == 0 {
        return Vec::new();
    }
    if n <= EXACT_GREEDY_LIMIT {
        exact_lazy_greedy(space, theta)
    } else {
        stochastic_greedy(space, theta)
    }
}

fn exact_lazy_greedy<S: CoverageSpace>(space: &S, theta: f64) -> Vec<usize> {
    let n = space.len();
    let first = space.center_element();
    let mut chosen = vec![first];
    let mut selected = vec![false; n];
    selected[first] = true;
    // cur[i] = distance from i to its nearest chosen element.
    let mut cur: Vec<f64> = (0..n).map(|i| space.dist(i, first)).collect();
    let mut sum: f64 = cur.iter().sum();
    let gain_of = |cur: &[f64], c: usize| -> f64 {
        (0..n).map(|i| (cur[i] - space.dist(i, c)).max(0.0)).sum()
    };
    // Price every candidate once against the initial coverage; these
    // stay valid upper bounds for all later rounds (submodularity).
    let mut heap: BinaryHeap<GainEntry> = BinaryHeap::with_capacity(n);
    for (idx, &sel) in selected.iter().enumerate() {
        if !sel {
            heap.push(GainEntry { gain: gain_of(&cur, idx), idx, round: 0 });
        }
    }
    let mut round: u32 = 1;
    while sum / n as f64 > theta {
        // Pop until the top entry is exact for this round.
        let next = loop {
            let Some(top) = heap.pop() else { break None };
            if selected[top.idx] {
                continue;
            }
            if top.round == round {
                break Some(top.idx);
            }
            // Stale: re-price exactly against the current coverage.
            heap.push(GainEntry { gain: gain_of(&cur, top.idx), idx: top.idx, round });
        };
        let Some(c) = next else {
            break; // every element selected; sum is 0
        };
        commit(space, c, &mut selected, &mut chosen, &mut cur, &mut sum);
        round += 1;
    }
    chosen
}

fn stochastic_greedy<S: CoverageSpace>(space: &S, theta: f64) -> Vec<usize> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    /// Random candidates priced per round (plus the worst-covered point).
    const POOL: usize = 16;
    /// Above this size, candidate gains are *estimated* on a fixed random
    /// probe subset of the points (coverage updates stay exact, so the θ
    /// guarantee is untouched — only the argmax gets noisier).
    const PROBE_LIMIT: usize = 2048;
    const PROBE: usize = 1024;

    let n = space.len();
    let first = space.center_element();
    let mut chosen = vec![first];
    let mut selected = vec![false; n];
    selected[first] = true;
    let mut cur: Vec<f64> = (0..n).map(|i| space.dist(i, first)).collect();
    let mut sum: f64 = cur.iter().sum();
    // Deterministic per input size so builds are reproducible.
    let mut rng = SmallRng::seed_from_u64(0x7ab0_1a5e ^ n as u64);
    // Gain-probe subset for very large inputs.
    let probe: Option<Vec<usize>> = (n > PROBE_LIMIT)
        .then(|| rand::seq::index::sample(&mut rng, n, PROBE).into_iter().collect());
    while sum / n as f64 > theta && chosen.len() < n {
        // Candidate pool: POOL random unselected elements + the element
        // farthest from the current sample (it always has positive gain
        // and drives worst-case coverage).
        let mut pool: Vec<usize> = Vec::with_capacity(POOL + 1);
        let mut farthest = (0.0f64, usize::MAX);
        for (i, &d) in cur.iter().enumerate() {
            if !selected[i] && d > farthest.0 {
                farthest = (d, i);
            }
        }
        if farthest.1 != usize::MAX {
            pool.push(farthest.1);
        }
        let mut attempts = 0;
        while pool.len() < POOL + 1 && attempts < POOL * 8 {
            let i = rng.gen_range(0..n);
            attempts += 1;
            if !selected[i] && !pool.contains(&i) {
                pool.push(i);
            }
        }
        let mut best = (-1.0f64, usize::MAX);
        for &c in &pool {
            let gain: f64 = match &probe {
                Some(idxs) => idxs.iter().map(|&i| (cur[i] - space.dist(i, c)).max(0.0)).sum(),
                None => (0..n).map(|i| (cur[i] - space.dist(i, c)).max(0.0)).sum(),
            };
            if gain > best.0 {
                best = (gain, c);
            }
        }
        let Some(c) = (best.1 != usize::MAX).then_some(best.1) else {
            break;
        };
        commit(space, c, &mut selected, &mut chosen, &mut cur, &mut sum);
    }
    chosen
}

/// Commit a selection: update coverage distances and the running sum.
fn commit<S: CoverageSpace>(
    space: &S,
    c: usize,
    selected: &mut [bool],
    chosen: &mut Vec<usize>,
    cur: &mut [f64],
    sum: &mut f64,
) {
    selected[c] = true;
    chosen.push(c);
    for (i, cur_i) in cur.iter_mut().enumerate() {
        let d = space.dist(i, c);
        if d < *cur_i {
            *sum -= *cur_i - d;
            *cur_i = d;
        }
    }
    // Guard against floating-point drift below zero.
    if *sum < 0.0 {
        *sum = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{AccuracyLoss, HeatmapLoss, MeanLoss, Metric};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use tabula_storage::{ColumnType, Field, Point, Schema, TableBuilder};

    struct Line {
        xs: Vec<f64>,
    }

    impl CoverageSpace for Line {
        fn len(&self) -> usize {
            self.xs.len()
        }
        fn dist(&self, a: usize, b: usize) -> f64 {
            (self.xs[a] - self.xs[b]).abs()
        }
        fn center_element(&self) -> usize {
            0
        }
    }

    fn coverage_loss(space: &Line, chosen: &[usize]) -> f64 {
        let n = space.len();
        (0..n)
            .map(|i| chosen.iter().map(|&c| space.dist(i, c)).fold(f64::INFINITY, f64::min))
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn coverage_greedy_meets_threshold_exactly_like_its_contract_says() {
        let mut rng = SmallRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..400).map(|_| rng.gen_range(0.0..100.0)).collect();
        let space = Line { xs };
        for theta in [20.0, 5.0, 1.0, 0.1, 0.0] {
            let chosen = coverage_greedy(&space, theta);
            let loss = coverage_loss(&space, &chosen);
            assert!(loss <= theta + 1e-9, "θ={theta}: loss {loss}");
        }
    }

    #[test]
    fn coverage_greedy_lazy_matches_eager_selection_quality() {
        // Compare against a plain eager greedy: same stopping rule, so the
        // achieved loss must meet the threshold for both; lazy shouldn't
        // pick wildly more elements.
        let mut rng = SmallRng::seed_from_u64(8);
        let xs: Vec<f64> = (0..300).map(|_| rng.gen_range(0.0..10.0)).collect();
        let space = Line { xs: xs.clone() };
        let theta = 0.05;
        let lazy = coverage_greedy(&space, theta);

        // Eager reference implementation.
        let n = xs.len();
        let mut cur: Vec<f64> = xs.iter().map(|x| (x - xs[0]).abs()).collect();
        let mut chosen = vec![0usize];
        let mut selected = vec![false; n];
        selected[0] = true;
        while cur.iter().sum::<f64>() / n as f64 > theta {
            let (mut best_gain, mut best) = (-1.0, usize::MAX);
            for c in 0..n {
                if selected[c] {
                    continue;
                }
                let gain: f64 = (0..n).map(|i| (cur[i] - (xs[i] - xs[c]).abs()).max(0.0)).sum();
                if gain > best_gain {
                    best_gain = gain;
                    best = c;
                }
            }
            selected[best] = true;
            chosen.push(best);
            for i in 0..n {
                cur[i] = cur[i].min((xs[i] - xs[best]).abs());
            }
        }
        assert!(coverage_loss(&space, &lazy) <= theta + 1e-9);
        // Lazy-forward is a faithful greedy: identical or near-identical
        // sample sizes (ties may be broken differently).
        assert!(
            (lazy.len() as i64 - chosen.len() as i64).abs() <= 2,
            "lazy {} vs eager {}",
            lazy.len(),
            chosen.len()
        );
    }

    #[test]
    fn coverage_greedy_single_and_duplicate_elements() {
        let one = Line { xs: vec![3.0] };
        assert_eq!(coverage_greedy(&one, 0.0), vec![0]);
        let dup = Line { xs: vec![2.0; 50] };
        let chosen = coverage_greedy(&dup, 0.0);
        assert_eq!(chosen.len(), 1, "duplicates are covered by one pick");
    }

    #[test]
    fn naive_greedy_agrees_with_specialized_engines_on_small_input() {
        let schema = Schema::new(vec![Field::new("v", ColumnType::Float64)]);
        let mut b = TableBuilder::new(schema);
        for v in [1.0, 2.0, 30.0, 4.0, 5.0, 6.0] {
            b.push_row(&[v.into()]).unwrap();
        }
        let t = b.finish();
        let loss = MeanLoss::new(0);
        let all: Vec<RowId> = t.all_rows();
        let theta = 0.02;
        let naive = naive_greedy(&loss, &t, &all, theta);
        let fast = loss.sample_greedy(&t, &all, theta);
        assert!(loss.loss(&t, &all, &naive) <= theta);
        assert!(loss.loss(&t, &all, &fast) <= theta);
    }

    #[test]
    fn greedy_sample_dispatches_and_guarantees() {
        let schema = Schema::new(vec![Field::new("p", ColumnType::Point)]);
        let mut b = TableBuilder::new(schema);
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..200 {
            b.push_row(&[Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)).into()])
                .unwrap();
        }
        let t = b.finish();
        let loss = HeatmapLoss::new(0, Metric::Euclidean);
        let all: Vec<RowId> = t.all_rows();
        let sample = greedy_sample(&loss, &t, &all, 0.05);
        assert!(loss.loss(&t, &all, &sample) <= 0.05);
    }

    #[test]
    fn empty_input_yields_empty_sample() {
        let space = Line { xs: vec![] };
        assert!(coverage_greedy(&space, 0.1).is_empty());
        let schema = Schema::new(vec![Field::new("v", ColumnType::Float64)]);
        let t = TableBuilder::new(schema).finish();
        let loss = MeanLoss::new(0);
        assert!(loss.sample_greedy(&t, &[], 0.1).is_empty());
    }
}
