//! Integration test: the cube's provenance *counters* (tabula-obs) must
//! agree exactly with the provenance *tags* it returns on every answer.
//! The counters are the monitoring view, the tags are the per-answer
//! ground truth — any drift between them means the instrumentation lies.

use std::sync::Arc;
use tabula_core::cube::SampleProvenance;
use tabula_core::loss::MeanLoss;
use tabula_core::SamplingCubeBuilder;
use tabula_data::{TaxiConfig, TaxiGenerator, Workload, CUBED_ATTRIBUTES};
use tabula_obs::Registry;
use tabula_storage::Predicate;

#[test]
fn provenance_counters_match_answer_tags_exactly() {
    let table = Arc::new(TaxiGenerator::new(TaxiConfig { rows: 5_000, seed: 7 }).generate());
    let fare = table.schema().index_of("fare_amount").unwrap();
    let attrs: Vec<&str> = CUBED_ATTRIBUTES[..4].to_vec();

    // A private registry keeps this test's accounting isolated from other
    // tests running in the same process (the default is the global one).
    let registry = Arc::new(Registry::new());
    let cube = SamplingCubeBuilder::new(Arc::clone(&table), &attrs, MeanLoss::new(fare), 0.05)
        .seed(7)
        .registry(Arc::clone(&registry))
        .build()
        .expect("cube build succeeds");

    let queries =
        Workload::new(&attrs).generate(&table, 300, 0xFEED).expect("workload generation succeeds");

    // Tally the tags the cube returns…
    let (mut local, mut global, mut miss) = (0u64, 0u64, 0u64);
    for q in &queries {
        match cube.query_cell(&q.cell).provenance {
            SampleProvenance::Local(_) => local += 1,
            SampleProvenance::Global => global += 1,
            SampleProvenance::EmptyDomain => unreachable!("query_cell never misses"),
        }
    }
    // …including predicate-path queries whose value is outside the cubed
    // attribute's domain (the EmptyDomain answer).
    for i in 0..10 {
        let pred = Predicate::eq(attrs[0], format!("no-such-value-{i}"));
        match cube.query(&pred).expect("cubed-attribute predicate").provenance {
            SampleProvenance::Local(_) => local += 1,
            SampleProvenance::Global => global += 1,
            SampleProvenance::EmptyDomain => miss += 1,
        }
    }

    // The counters must agree with the tags exactly — and sum to the
    // workload size, i.e. every query was tallied exactly once.
    let prov = cube.provenance_counters();
    assert_eq!(prov.local_hits(), local, "local-hit counter vs Local(_) tags");
    assert_eq!(prov.global_hits(), global, "global-hit counter vs Global tags");
    assert_eq!(prov.cell_misses(), miss, "cell-miss counter vs EmptyDomain tags");
    assert_eq!(prov.total(), queries.len() as u64 + 10);
    assert!(miss > 0, "out-of-domain predicates must produce EmptyDomain answers");

    // The same numbers must be visible through the registry snapshot (the
    // counters are registry-backed, not cube-private state).
    let snap = registry.snapshot();
    assert_eq!(snap.counter("query.provenance.local_hit"), local);
    assert_eq!(snap.counter("query.provenance.global_hit"), global);
    assert_eq!(snap.counter("query.provenance.cell_miss"), miss);
}
