//! String dictionary encoding for categorical columns.

use crate::fx::FxHashMap;
use serde::{Deserialize, Serialize};

/// A bidirectional mapping between strings and dense `u32` codes.
///
/// Codes are assigned in first-seen order, which makes encoding
/// deterministic for a deterministic input stream — important because cube
/// cell keys, and therefore every downstream artifact (iceberg tables,
/// sample ids), are expressed in terms of these codes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dictionary {
    #[serde(skip)]
    index: FxHashMap<String, u32>,
    values: Vec<String>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encode `value`, assigning a fresh code on first sight.
    pub fn encode(&mut self, value: &str) -> u32 {
        if let Some(&code) = self.index.get(value) {
            return code;
        }
        let code = self.values.len() as u32;
        self.values.push(value.to_owned());
        self.index.insert(value.to_owned(), code);
        code
    }

    /// Look up the code for `value` without inserting.
    pub fn lookup(&self, value: &str) -> Option<u32> {
        self.index.get(value).copied()
    }

    /// Decode a code back to its string. Panics on an out-of-range code,
    /// which would indicate corruption rather than a user error.
    pub fn decode(&self, code: u32) -> &str {
        &self.values[code as usize]
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate over `(code, value)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.values.iter().enumerate().map(|(i, v)| (i as u32, v.as_str()))
    }

    /// Rebuild the (serde-skipped) reverse index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.index = self.values.iter().enumerate().map(|(i, v)| (v.clone(), i as u32)).collect();
    }

    /// Approximate heap bytes held by the dictionary.
    pub fn heap_bytes(&self) -> usize {
        self.values.iter().map(|v| v.len() + 24).sum::<usize>() * 2
    }

    /// Number of bits a code from this dictionary occupies in a bit-packed
    /// key (see [`crate::packed::KeyLayout`]): `⌈log₂(len)⌉`, and 0 for a
    /// dictionary of at most one value — a constant column contributes no
    /// information to a key.
    pub fn code_bits(&self) -> u32 {
        match self.values.len() {
            0 | 1 => 0,
            n => usize::BITS - (n - 1).leading_zeros(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent_and_dense() {
        let mut d = Dictionary::new();
        assert_eq!(d.encode("cash"), 0);
        assert_eq!(d.encode("credit"), 1);
        assert_eq!(d.encode("cash"), 0);
        assert_eq!(d.encode("dispute"), 2);
        assert_eq!(d.len(), 3);
        assert_eq!(d.decode(1), "credit");
        assert_eq!(d.lookup("dispute"), Some(2));
        assert_eq!(d.lookup("unknown"), None);
    }

    #[test]
    fn iter_preserves_code_order() {
        let mut d = Dictionary::new();
        for v in ["a", "b", "c"] {
            d.encode(v);
        }
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs, vec![(0, "a"), (1, "b"), (2, "c")]);
    }

    #[test]
    fn code_bits_is_ceil_log2() {
        let mut d = Dictionary::new();
        assert_eq!(d.code_bits(), 0); // empty
        d.encode("a");
        assert_eq!(d.code_bits(), 0); // constant column
        d.encode("b");
        assert_eq!(d.code_bits(), 1);
        d.encode("c");
        assert_eq!(d.code_bits(), 2);
        d.encode("d");
        assert_eq!(d.code_bits(), 2);
        d.encode("e");
        assert_eq!(d.code_bits(), 3);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut d = Dictionary::new();
        d.encode("x");
        d.encode("y");
        let mut restored = Dictionary { index: FxHashMap::default(), values: d.values.clone() };
        assert_eq!(restored.lookup("y"), None); // index lost (as after serde)
        restored.rebuild_index();
        assert_eq!(restored.lookup("y"), Some(1));
        assert_eq!(restored.lookup("x"), Some(0));
    }
}
