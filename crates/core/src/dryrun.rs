//! Stage 1 of sampling-cube initialization: the **dry run** (paper
//! §III-B1) — identify every iceberg cell *without materializing any
//! sample*, touching the raw data only once.
//!
//! Because the accuracy loss is algebraic (see [`crate::loss`]), a single
//! scan of the raw table builds the finest cuboid of per-cell loss states;
//! every coarser cuboid is derived by merging states down the lattice.
//! Both steps are the build's hottest loops and run vectorized when
//! possible: the finest scan aggregates directly on bit-packed `u64` keys
//! in [`chunk-sized`](tabula_storage::kernel::chunk_rows) batches, and the
//! rollup squeezes each parent's packed key down to its child's with two
//! shifts instead of re-hashing code tuples.
//! Each cell's loss against the global sample is then evaluated from its
//! state alone: cells with `loss(cell, Sam_global) > θ` are **iceberg
//! cells** and are handed to the real run for local-sample
//! materialization.

use crate::loss::{exceeds_theta, AccuracyLoss};
use crate::Result;
use tabula_obs::span;
use tabula_storage::cube::{
    finest_cuboid as finest_cuboid_scan, rollup_from_finest, CellKey, CubeResult, CuboidMask,
};
use tabula_storage::{FxHashMap, Table};

/// Per-cuboid dry-run summary — the numbers annotated on the paper's
/// Figure 5a lattice ("(all cells, iceberg cells)").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CuboidSummary {
    /// The cuboid.
    pub mask: CuboidMask,
    /// Number of populated cells.
    pub total_cells: usize,
    /// Number of iceberg cells.
    pub iceberg_cells: usize,
}

/// Output of the dry run.
#[derive(Debug)]
pub struct DryRun<S> {
    /// The full cube of algebraic loss states.
    pub states: CubeResult<S>,
    /// Compact keys of the iceberg cells, per cuboid (cuboids with no
    /// icebergs are absent — the real run skips them entirely).
    pub iceberg: FxHashMap<CuboidMask, Vec<Vec<u32>>>,
    /// Total populated cells across all cuboids.
    pub total_cells: usize,
    /// Total iceberg cells.
    pub iceberg_count: usize,
}

impl<S> DryRun<S> {
    /// The lattice annotation of paper Figure 5a, finest cuboid first.
    pub fn lattice_summary(&self) -> Vec<CuboidSummary> {
        let mut out: Vec<CuboidSummary> = self
            .states
            .cuboids
            .iter()
            .map(|(mask, groups)| CuboidSummary {
                mask: *mask,
                total_cells: groups.len(),
                iceberg_cells: self.iceberg.get(mask).map_or(0, |v| v.len()),
            })
            .collect();
        out.sort_by_key(|s| (std::cmp::Reverse(s.mask.arity()), s.mask));
        out
    }

    /// The iceberg-cell table (paper Table Ia): every iceberg cell of
    /// every cuboid as a [`CellKey`].
    pub fn iceberg_cells(&self) -> Vec<CellKey> {
        let n = self.states.n;
        let mut out = Vec::with_capacity(self.iceberg_count);
        for (mask, keys) in &self.iceberg {
            for compact in keys {
                out.push(CellKey::from_compact(*mask, n, compact));
            }
        }
        out
    }
}

/// Run the dry-run stage.
///
/// * `cols` — the cubed attributes (column indices of `table`);
/// * `global_ctx` — the prepared context of the global sample;
/// * `theta` — the accuracy-loss threshold.
pub fn dry_run<L: AccuracyLoss>(
    table: &Table,
    cols: &[usize],
    loss: &L,
    global_ctx: &L::SampleCtx,
    theta: f64,
) -> Result<DryRun<L::State>> {
    // One raw scan builds the finest cuboid of loss states…
    let scan_span = span!("dry_run.scan", "rows={}", table.len());
    let finest = finest_cuboid_scan(table, cols, L::State::default, |state, row| {
        loss.fold(global_ctx, state, table, row)
    })?;
    drop(scan_span);
    // …and the rest of the lattice is pure state merging.
    let rollup_span = span!("dry_run.rollup");
    let states = rollup_from_finest(cols.len(), finest, &L::State::default);
    drop(rollup_span);

    // Per-cuboid loss-predicate evaluation is embarrassingly parallel:
    // one task per cuboid, assembled in deterministic (finest-first) mask
    // order afterwards.
    let _classify_span = span!("dry_run.classify");
    let mut masks: Vec<CuboidMask> = states.cuboids.keys().copied().collect();
    masks.sort_by_key(|m| (std::cmp::Reverse(m.arity()), *m));
    let pool = tabula_par::Pool::global();
    let classified: Vec<(usize, Vec<Vec<u32>>)> = pool.par_map(&masks, |mask| {
        let groups = &states.cuboids[mask];
        let mut cells: Vec<Vec<u32>> = groups
            .iter()
            .filter(|(_, state)| exceeds_theta(loss.finish(global_ctx, state), theta))
            .map(|(key, _)| key.clone())
            .collect();
        // Deterministic ordering for reproducible builds.
        cells.sort_unstable();
        (groups.len(), cells)
    });
    let mut iceberg: FxHashMap<CuboidMask, Vec<Vec<u32>>> = FxHashMap::default();
    let mut total_cells = 0usize;
    let mut iceberg_count = 0usize;
    for (mask, (cuboid_cells, cells)) in masks.into_iter().zip(classified) {
        total_cells += cuboid_cells;
        if !cells.is_empty() {
            iceberg_count += cells.len();
            iceberg.insert(mask, cells);
        }
    }
    Ok(DryRun { states, iceberg, total_cells, iceberg_count })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{HeatmapLoss, MeanLoss, Metric};
    use crate::serfling::draw_global_sample;
    use tabula_data::example_dcm_table;
    use tabula_storage::RowId;

    #[test]
    fn dry_run_flags_exactly_the_cells_whose_direct_loss_exceeds_theta() {
        let t = example_dcm_table();
        let fare = t.schema().index_of("fare").unwrap();
        let loss = MeanLoss::new(fare);
        let global: Vec<RowId> = draw_global_sample(&t, 8, 1);
        let ctx = loss.prepare(&t, &global);
        let theta = 0.10;
        let dry = dry_run(&t, &[0, 1, 2], &loss, &ctx, theta).unwrap();

        // Cross-check every cell against a direct (non-algebraic)
        // computation on the raw rows.
        use tabula_storage::cube::CuboidMask;
        use tabula_storage::group_by;
        for mask in CuboidMask::enumerate(3) {
            let attrs = mask.attrs();
            let grouped = group_by(&t, &attrs).unwrap();
            for (key, rows) in &grouped.groups {
                let direct = loss.loss_with_ctx(&t, rows, &ctx);
                let flagged = dry.iceberg.get(&mask).is_some_and(|cells| cells.contains(key));
                assert_eq!(
                    flagged,
                    exceeds_theta(direct, theta),
                    "cell {key:?} of cuboid {mask:?}: direct loss {direct}"
                );
            }
        }
    }

    #[test]
    fn counts_are_consistent() {
        let t = example_dcm_table();
        let pickup = t.schema().index_of("pickup").unwrap();
        let loss = HeatmapLoss::new(pickup, Metric::Euclidean);
        let global: Vec<RowId> = draw_global_sample(&t, 6, 2);
        let ctx = loss.prepare(&t, &global);
        let dry = dry_run(&t, &[0, 1, 2], &loss, &ctx, 0.05).unwrap();
        assert_eq!(dry.total_cells, dry.states.total_cells());
        let from_map: usize = dry.iceberg.values().map(|v| v.len()).sum();
        assert_eq!(dry.iceberg_count, from_map);
        assert_eq!(dry.iceberg_cells().len(), dry.iceberg_count);
        let summary = dry.lattice_summary();
        assert_eq!(summary.len(), 8); // 2³ cuboids
        assert_eq!(summary.iter().map(|s| s.total_cells).sum::<usize>(), dry.total_cells);
        assert_eq!(summary.iter().map(|s| s.iceberg_cells).sum::<usize>(), dry.iceberg_count);
        // Finest cuboid is listed first.
        assert_eq!(summary[0].mask, CuboidMask::finest(3));
    }

    #[test]
    fn tighter_theta_never_reduces_iceberg_count() {
        let t = example_dcm_table();
        let fare = t.schema().index_of("fare").unwrap();
        let loss = MeanLoss::new(fare);
        let global: Vec<RowId> = draw_global_sample(&t, 8, 1);
        let ctx = loss.prepare(&t, &global);
        let loose = dry_run(&t, &[0, 1, 2], &loss, &ctx, 0.5).unwrap();
        let tight = dry_run(&t, &[0, 1, 2], &loss, &ctx, 0.01).unwrap();
        assert!(tight.iceberg_count >= loose.iceberg_count);
    }

    #[test]
    fn global_sample_equal_to_table_means_no_icebergs_for_mean_loss() {
        let t = example_dcm_table();
        let fare = t.schema().index_of("fare").unwrap();
        let loss = MeanLoss::new(fare);
        let all: Vec<RowId> = t.all_rows();
        let ctx = loss.prepare(&t, &all);
        // The "sample" is the entire table; wait — per-cell raw means still
        // differ from the GLOBAL mean, so icebergs can exist. Use a huge θ
        // instead to assert the none-iceberg path.
        let dry = dry_run(&t, &[0, 1, 2], &loss, &ctx, f64::INFINITY).unwrap();
        assert_eq!(dry.iceberg_count, 0);
        assert!(dry.iceberg.is_empty());
    }
}
