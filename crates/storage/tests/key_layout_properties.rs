//! Property-based tests of bit-packed key encoding ([`KeyLayout`]): the
//! packed `u64` must round-trip every in-domain code tuple exactly —
//! including zero-width attributes (cardinality ≤ 1) and keys wider than
//! 32 bits in total — and `squeeze` must agree with re-encoding under the
//! shortened layout, since the lattice rollup derives every child key that
//! way without decoding.

use proptest::prelude::*;
use tabula_storage::packed::KeyLayout;

/// One attribute: an exponent picking the cardinality's magnitude (0 →
/// cardinality 1, a zero-width attribute) and a raw seed that maps to an
/// in-domain code.
fn arb_attrs() -> impl Strategy<Value = Vec<(usize, u32)>> {
    let attr = (0u32..23, 0u64..u64::MAX).prop_map(|(exp, seed)| {
        let card = if exp == 0 {
            1usize
        } else {
            (1usize << (exp - 1)) + (seed % (1 << (exp - 1))) as usize + 1
        };
        let code = ((seed >> 32) % card as u64) as u32;
        (card, code)
    });
    proptest::collection::vec(attr, 1..7)
}

fn total_bits(cards: &[usize]) -> u32 {
    cards.iter().map(|&c| if c <= 1 { 0 } else { usize::BITS - (c - 1).leading_zeros() }).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity on every in-domain tuple, and the
    /// layout exists exactly when the packed width fits 64 bits.
    #[test]
    fn encode_decode_round_trips(attrs in arb_attrs()) {
        let cards: Vec<usize> = attrs.iter().map(|&(c, _)| c).collect();
        let codes: Vec<u32> = attrs.iter().map(|&(_, code)| code).collect();
        let bits = total_bits(&cards);
        match KeyLayout::from_cardinalities(&cards) {
            None => prop_assert!(bits > 64, "layout rejected a {bits}-bit key"),
            Some(layout) => {
                prop_assert!(bits <= 64);
                prop_assert!(layout.fits(&codes));
                let key = layout.encode(&codes);
                prop_assert_eq!(layout.decode(key), codes);
            }
        }
    }

    /// Packed-key order equals lexicographic tuple order (attribute 0 in
    /// the highest bits) — the invariant that lets the rollup sort `u64`s
    /// instead of tuples.
    #[test]
    fn packed_order_is_lexicographic(a in arb_attrs(), seed in 0u64..u64::MAX) {
        let cards: Vec<usize> = a.iter().map(|&(c, _)| c).collect();
        if let Some(layout) = KeyLayout::from_cardinalities(&cards) {
            let x: Vec<u32> = a.iter().map(|&(_, code)| code).collect();
            // Derive a second in-domain tuple from the extra seed.
            let y: Vec<u32> = cards
                .iter()
                .enumerate()
                .map(|(i, &c)| ((seed >> (i * 8)) % c as u64) as u32)
                .collect();
            let (kx, ky) = (layout.encode(&x), layout.encode(&y));
            prop_assert_eq!(kx.cmp(&ky), x.cmp(&y), "keys {:?} vs {:?}", x, y);
        }
    }

    /// Squeezing attribute `i` out of a packed key equals encoding the
    /// shortened tuple under the shortened layout.
    #[test]
    fn squeeze_agrees_with_child_encode(attrs in arb_attrs(), pick in 0usize..6) {
        let cards: Vec<usize> = attrs.iter().map(|&(c, _)| c).collect();
        let codes: Vec<u32> = attrs.iter().map(|&(_, code)| code).collect();
        if let Some(layout) = KeyLayout::from_cardinalities(&cards) {
            let removed = pick % cards.len();
            let key = layout.encode(&codes);
            let mut child_cards = cards.clone();
            child_cards.remove(removed);
            let mut child_codes = codes.clone();
            child_codes.remove(removed);
            let child = KeyLayout::from_cardinalities(&child_cards)
                .expect("child key is narrower than its parent");
            prop_assert_eq!(layout.squeeze(key, removed), child.encode(&child_codes));
            prop_assert_eq!(
                layout.without_attr(removed).decode(layout.squeeze(key, removed)),
                child_codes
            );
        }
    }
}
