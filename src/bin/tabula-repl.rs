//! `tabula-repl` — an interactive SQL shell over the Tabula middleware.
//!
//! ```bash
//! # synthetic data (default 100 k rows; first arg overrides):
//! cargo run --release --bin tabula-repl -- 50000
//! # or load a CSV (see tabula::data::read_table for the format):
//! cargo run --release --bin tabula-repl -- path/to/table.csv
//! ```
//!
//! The table registers as `nyctaxi`. Statements end at end-of-line;
//! `\q` quits. Also works non-interactively: `echo "SHOW TABLES" | tabula-repl`.
//!
//! Shell commands beyond SQL:
//!
//! * `\metrics` — dump the session's metrics registry as JSON
//!   (`\metrics prom` for Prometheus text format, `\metrics reset` to
//!   zero every counter/histogram/window for phase isolation);
//! * `\trace` — dump the flight recorder's recent traces as JSONL
//!   (`\trace slow` for the always-retained slow-query ring);
//! * `\timing` — toggle printing each statement's wall time;
//! * `\save <cube> [path]` — freeze a cube's serving generation into a
//!   snapshot file (default `$TABULA_STORE_DIR/<cube>.tabsnap`, falling
//!   back to the current directory);
//! * `\load <cube> [path]` — thaw a snapshot and serve it under `<cube>`
//!   (installing as a new generation if the name is already served);
//! * `\q` — quit.
//!
//! Tracing is on by default in the shell (every query is recorded);
//! set `TABULA_TRACE_SAMPLE` to override (0 disables, N keeps 1-in-N).

use std::io::{BufRead, Write};
use std::sync::Arc;
use tabula::data::{read_table, TaxiConfig, TaxiGenerator};
use tabula::sql::{QueryResult, Session};

fn main() {
    let arg = std::env::args().nth(1);
    let table = match &arg {
        Some(a) if a.ends_with(".csv") => {
            let file = std::fs::File::open(a).unwrap_or_else(|e| {
                eprintln!("cannot open {a}: {e}");
                std::process::exit(1);
            });
            Arc::new(read_table(std::io::BufReader::new(file)).unwrap_or_else(|e| {
                eprintln!("cannot parse {a}: {e}");
                std::process::exit(1);
            }))
        }
        Some(a) => {
            let rows: usize = a.parse().unwrap_or_else(|_| {
                eprintln!("expected a row count or a .csv path, got {a:?}");
                std::process::exit(1);
            });
            Arc::new(TaxiGenerator::new(TaxiConfig { rows, seed: 42 }).generate())
        }
        None => Arc::new(TaxiGenerator::new(TaxiConfig::default()).generate()),
    };

    let mut session = Session::new();
    // An interactive shell wants every query in the flight recorder
    // unless the operator explicitly chose a sampling rate.
    if std::env::var("TABULA_TRACE_SAMPLE").is_err() {
        session.tracer().set_sample(1);
    }
    println!(
        "tabula-repl — table 'nyctaxi' registered ({} rows × {} columns). \\q to quit.",
        table.len(),
        table.schema().len()
    );
    println!(
        "columns: {}",
        table
            .schema()
            .fields()
            .iter()
            .map(|f| format!("{}:{:?}", f.name, f.ty))
            .collect::<Vec<_>>()
            .join(", ")
    );
    session.register_table("nyctaxi", table);

    let stdin = std::io::stdin();
    let interactive = atty_stdin();
    let mut timing = false;
    loop {
        if interactive {
            print!("tabula> ");
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\q" || line.eq_ignore_ascii_case("quit") {
            break;
        }
        if !interactive {
            println!("tabula> {line}");
        }
        if line == "\\metrics" || line == "\\metrics prom" || line == "\\metrics reset" {
            if line.ends_with("reset") {
                session.registry().reset();
                println!("metrics reset");
            } else if line.ends_with("prom") {
                print!("{}", session.metrics_snapshot().to_prometheus());
            } else {
                println!("{}", session.metrics_snapshot().to_json());
            }
            continue;
        }
        if line == "\\trace" || line == "\\trace slow" {
            let recorder = session.tracer().recorder();
            let traces = if line.ends_with("slow") { recorder.slow() } else { recorder.recent() };
            if traces.is_empty() {
                println!("(no traces recorded)");
            } else {
                for t in traces {
                    println!("{}", t.to_json());
                }
            }
            continue;
        }
        if line == "\\timing" {
            timing = !timing;
            println!("timing is {}", if timing { "on" } else { "off" });
            continue;
        }
        if let Some(rest) = line.strip_prefix("\\save") {
            match parse_snapshot_args(rest) {
                Some((cube, path)) => match session.save_cube(&cube, &path) {
                    Ok(bytes) => {
                        println!("cube {cube} saved to {} ({bytes} bytes)", path.display())
                    }
                    Err(e) => println!("save failed: {e}"),
                },
                None => println!("usage: \\save <cube> [path] (default dir: $TABULA_STORE_DIR)"),
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("\\load") {
            match parse_snapshot_args(rest) {
                Some((cube, path)) => match session.load_cube(&cube, &path) {
                    Ok(info) => println!(
                        "cube {cube} loaded from {} ({} cells, {} bytes, epoch {})",
                        path.display(),
                        info.cells,
                        info.file_bytes,
                        info.epoch
                    ),
                    Err(e) => println!("load failed: {e}"),
                },
                None => println!("usage: \\load <cube> [path] (default dir: $TABULA_STORE_DIR)"),
            }
            continue;
        }
        if line.starts_with('\\') {
            println!(
                "unknown command {line} — available: \\metrics, \\metrics prom, \
                 \\metrics reset, \\trace, \\trace slow, \\timing, \\save <cube> [path], \
                 \\load <cube> [path], \\q"
            );
            continue;
        }
        let started = std::time::Instant::now();
        match session.execute(line) {
            Ok(QueryResult::AggregateCreated(name)) => println!("loss function {name} registered"),
            Ok(QueryResult::Dropped(name)) => println!("{name} dropped"),
            Ok(QueryResult::CubeCreated { name, stats }) => println!(
                "cube {name}: {} cells ({} iceberg), {} samples persisted, built in {:.2?}",
                stats.total_cells, stats.iceberg_cells, stats.samples_after_selection, stats.total
            ),
            Ok(QueryResult::Info(lines)) => {
                for l in lines {
                    println!("{l}");
                }
            }
            Ok(QueryResult::Sample { table, provenance }) => {
                println!("{} sample tuples ({provenance:?})", table.len());
                print_rows(&table, 5);
            }
            Ok(QueryResult::Table(table)) => {
                println!("{} rows", table.len());
                print_rows(&table, 5);
            }
            Err(e) => println!("error: {e}"),
        }
        if timing {
            println!("time: {:.2?}", started.elapsed());
        }
    }
}

/// Print the first `limit` rows of a result.
fn print_rows(table: &tabula::storage::Table, limit: usize) {
    let names: Vec<&str> = table.schema().fields().iter().map(|f| f.name.as_str()).collect();
    println!("  [{}]", names.join(" | "));
    for row in 0..table.len().min(limit) {
        let cells: Vec<String> =
            (0..names.len()).map(|c| table.value(row, c).to_string()).collect();
        println!("  {}", cells.join(" | "));
    }
    if table.len() > limit {
        println!("  … {} more", table.len() - limit);
    }
}

/// Parse `\save` / `\load` arguments: `<cube> [path]`. With no explicit
/// path, the snapshot lives at `$TABULA_STORE_DIR/<cube>.tabsnap`
/// (current directory when the variable is unset).
fn parse_snapshot_args(rest: &str) -> Option<(String, std::path::PathBuf)> {
    let mut parts = rest.split_whitespace();
    let cube = parts.next()?.to_string();
    let path = match parts.next() {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            let dir = std::env::var("TABULA_STORE_DIR").unwrap_or_else(|_| ".".into());
            std::path::Path::new(&dir).join(format!("{cube}.tabsnap"))
        }
    };
    if parts.next().is_some() {
        return None;
    }
    Some((cube, path))
}

/// Minimal interactive-stdin detection without external crates: honour an
/// explicit override, else assume non-interactive when stdin is a pipe
/// (which is how the integration smoke-test drives the binary).
fn atty_stdin() -> bool {
    if std::env::var("TABULA_REPL_FORCE_PROMPT").is_ok() {
        return true;
    }
    // Best-effort: /proc-based check on Linux; default to non-interactive.
    std::fs::read_link("/proc/self/fd/0")
        .map(|p| p.to_string_lossy().starts_with("/dev/pts"))
        .unwrap_or(false)
}
