//! Criterion micro-benchmark: the dashboard-facing query path — cube-table
//! hash lookup vs raw-table predicate scan — the gap that is the whole
//! point of materializing samples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use tabula_bench::{taxi_table, workload, SEED};
use tabula_core::loss::MeanLoss;
use tabula_core::SamplingCubeBuilder;
use tabula_data::CUBED_ATTRIBUTES;

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_latency");
    for rows in [20_000usize, 100_000] {
        let table = taxi_table(rows);
        let fare = table.schema().index_of("fare_amount").unwrap();
        let cube = SamplingCubeBuilder::new(
            Arc::clone(&table),
            &CUBED_ATTRIBUTES[..5],
            MeanLoss::new(fare),
            0.05,
        )
        .seed(SEED)
        .build()
        .unwrap();
        let attrs: Vec<&str> = CUBED_ATTRIBUTES[..5].to_vec();
        let queries = workload(&table, &attrs, 64);

        group.bench_with_input(BenchmarkId::new("cube_lookup", rows), &rows, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(cube.query_cell(&q.cell))
            })
        });
        group.bench_with_input(BenchmarkId::new("raw_scan", rows), &rows, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(q.predicate.filter(&table).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
