//! A **SnappyData-like** baseline: stratified samples over the Query
//! Column Set (QCS — the cubed attributes), answering `AVG` queries with
//! a CLT error estimate and falling back to the raw table when the
//! estimate exceeds the requested bound — mirroring how the paper
//! describes and measures SnappyData ("since the actual accuracy loss
//! exceeds the threshold value, it accesses the raw table and runs
//! queries and aggregation on-the-fly").
//!
//! Unlike the other baselines it returns a *conclusion* (the average),
//! not tuples, so it implements its own query interface and the paper
//! reports no visualization time for it.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tabula_storage::group::group_by;
use tabula_storage::{Predicate, RowId, Table};

/// Answer to an AVG query.
#[derive(Debug, Clone, Copy)]
pub struct AvgAnswer {
    /// The (estimated or exact) average of the target attribute.
    pub avg: f64,
    /// Estimated relative error of the estimate (0 when exact).
    pub estimated_error: f64,
    /// Whether the stratified sample was insufficient and the raw table
    /// was scanned.
    pub fell_back_to_raw: bool,
    /// Data-system wall time.
    pub data_system_time: Duration,
}

/// The stratified-sampling AVG engine.
pub struct SnappyLike {
    table: Arc<Table>,
    target: usize,
    /// Stratified sample rows (union over strata).
    sample: Vec<RowId>,
    /// Requested relative error bound.
    error_bound: f64,
    /// z-value of the confidence level used in the CLT estimate.
    z: f64,
}

impl SnappyLike {
    /// Build stratified samples over the finest grouping of `qcs_attrs`
    /// (names), sampling `per_stratum` rows from each stratum, for AVG
    /// queries over the numeric column `target_attr`.
    pub fn build(
        table: Arc<Table>,
        qcs_attrs: &[impl AsRef<str>],
        target_attr: &str,
        per_stratum: usize,
        error_bound: f64,
        seed: u64,
    ) -> tabula_storage::Result<Self> {
        let cols: Vec<usize> = qcs_attrs
            .iter()
            .map(|a| table.schema().index_of(a.as_ref()))
            .collect::<tabula_storage::Result<_>>()?;
        let target = table.schema().index_of(target_attr)?;
        let grouped = group_by(&table, &cols)?;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sample = Vec::new();
        // Deterministic stratum order.
        let mut strata: Vec<(Vec<u32>, Vec<RowId>)> = grouped.groups.into_iter().collect();
        strata.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        for (_, rows) in strata {
            if rows.len() <= per_stratum {
                sample.extend_from_slice(&rows);
            } else {
                sample.extend(
                    rand::seq::index::sample(&mut rng, rows.len(), per_stratum)
                        .into_iter()
                        .map(|i| rows[i]),
                );
            }
        }
        sample.sort_unstable();
        // 95 % confidence.
        Ok(SnappyLike { table, target, sample, error_bound, z: 1.96 })
    }

    /// Bytes of the pre-built stratified sample.
    pub fn memory_bytes(&self) -> usize {
        self.sample.len() * self.table.row_bytes()
    }

    /// Tuples in the stratified sample.
    pub fn sample_size(&self) -> usize {
        self.sample.len()
    }

    fn avg_and_error(&self, rows: &[RowId]) -> (f64, f64) {
        let values = self.values(rows);
        let n = values.len() as f64;
        if values.is_empty() {
            return (0.0, f64::INFINITY);
        }
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n.max(1.0);
        // CLT: relative half-width of the confidence interval.
        let half_width = self.z * (var / n).sqrt();
        (mean, half_width / mean.abs().max(1e-12))
    }

    fn values(&self, rows: &[RowId]) -> Vec<f64> {
        let col = self.table.column(self.target);
        rows.iter()
            .map(|&r| {
                col.as_f64_slice()
                    .map(|s| s[r as usize])
                    .or_else(|| col.as_i64_slice().map(|s| s[r as usize] as f64))
                    .expect("target attribute is numeric")
            })
            .collect()
    }

    /// Answer `SELECT AVG(target) WHERE pred`.
    pub fn query_avg(&self, pred: &Predicate) -> AvgAnswer {
        let start = Instant::now();
        let matched = pred
            .filter_rows(&self.table, &self.sample)
            .expect("workload predicates reference valid columns");
        let (avg, err) = self.avg_and_error(&matched);
        if err <= self.error_bound {
            return AvgAnswer {
                avg,
                estimated_error: err,
                fell_back_to_raw: false,
                data_system_time: start.elapsed(),
            };
        }
        // Error bound unmet: scan the raw table for the exact answer.
        let raw = pred.filter(&self.table).expect("valid predicate");
        let values = self.values(&raw);
        let avg =
            if values.is_empty() { 0.0 } else { values.iter().sum::<f64>() / values.len() as f64 };
        AvgAnswer {
            avg,
            estimated_error: 0.0,
            fell_back_to_raw: true,
            data_system_time: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabula_data::{TaxiConfig, TaxiGenerator, CUBED_ATTRIBUTES};

    fn engine(per_stratum: usize, bound: f64) -> (Arc<Table>, SnappyLike) {
        let t = Arc::new(TaxiGenerator::new(TaxiConfig { rows: 8_000, seed: 5 }).generate());
        let s = SnappyLike::build(
            Arc::clone(&t),
            &CUBED_ATTRIBUTES[..4],
            "fare_amount",
            per_stratum,
            bound,
            3,
        )
        .unwrap();
        (t, s)
    }

    fn exact_avg(t: &Table, pred: &Predicate) -> f64 {
        let rows = pred.filter(t).unwrap();
        let col = t.column_by_name("fare_amount").unwrap().as_f64_slice().unwrap();
        rows.iter().map(|&r| col[r as usize]).sum::<f64>() / rows.len() as f64
    }

    #[test]
    fn estimates_track_the_exact_answer() {
        let (t, s) = engine(50, 0.10);
        assert!(s.sample_size() > 0);
        assert!(s.memory_bytes() > 0);
        let pred = Predicate::eq("payment_type", "cash");
        let ans = s.query_avg(&pred);
        let exact = exact_avg(&t, &pred);
        let rel = ((ans.avg - exact) / exact).abs();
        // Either the estimate met its bound, or the engine fell back and
        // the answer is exact.
        if ans.fell_back_to_raw {
            assert!(rel < 1e-12);
        } else {
            assert!(rel <= 0.15, "rel {rel}, estimated {}", ans.estimated_error);
        }
    }

    #[test]
    fn tight_bounds_force_raw_fallback() {
        let (t, s) = engine(5, 1e-6);
        let pred = Predicate::eq("payment_type", "credit");
        let ans = s.query_avg(&pred);
        assert!(ans.fell_back_to_raw);
        let exact = exact_avg(&t, &pred);
        assert!(((ans.avg - exact) / exact).abs() < 1e-12);
    }

    #[test]
    fn loose_bounds_stay_on_the_sample() {
        let (_, s) = engine(100, 0.5);
        let ans = s.query_avg(&Predicate::eq("payment_type", "credit"));
        assert!(!ans.fell_back_to_raw);
        assert!(ans.estimated_error <= 0.5);
    }

    #[test]
    fn empty_population_is_handled() {
        let (_, s) = engine(20, 0.1);
        let ans = s.query_avg(&Predicate::eq("payment_type", "bitcoin"));
        assert!(ans.fell_back_to_raw);
        assert_eq!(ans.avg, 0.0);
    }
}
