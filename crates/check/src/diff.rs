//! The diff engine: replay a generated case through the real pipeline —
//! every materialization mode, multiple thread counts, both build-kernel
//! paths (vectorized and scalar) — and through the naive oracle, and
//! report the first divergence. A diverging case can be
//! auto-shrunk ([`shrink`]) to a minimal reproducer and printed as a
//! ready-to-paste regression test
//! ([`CaseSpec::to_regression_test`]).

use crate::generate::{gen_where_terms, CaseSpec};
use crate::oracle::{naive_cube, naive_filter, LossSpec, NaiveCube};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;
use tabula_core::loss::{
    AccuracyLoss, HeatmapLoss, HistogramLoss, MeanLoss, Metric, RegressionLoss, LOSS_EPS,
};
use tabula_core::{MaterializationMode, SampleProvenance, SamplingCube, SamplingCubeBuilder};
use tabula_serve::{AnswerCache, Server};
use tabula_storage::cube::CellKey;
use tabula_storage::{
    encoding_mode, kernel_mode, set_encoding_mode, set_kernel_mode, CmpOp, EncodingMode,
    KernelMode, Predicate, RowId, Table, Value,
};

/// Every materialization mode the diff engine sweeps.
pub const MODES: [MaterializationMode; 4] = [
    MaterializationMode::Tabula,
    MaterializationMode::TabulaStar,
    MaterializationMode::FullSamCube,
    MaterializationMode::PartSamCube,
];

/// Thread counts the diff engine sweeps (determinism must hold across
/// them; `tabula_par::set_threads` is the override knob).
pub const THREAD_COUNTS: [usize; 2] = [1, 4];

/// Client thread counts the serve-path lane sweeps: the serving layer
/// must be byte-identical to the direct cube answer single-threaded and
/// under concurrent clients.
pub const SERVE_CLIENTS: [usize; 2] = [1, 8];

/// Opt-in switch for the snapshot lane ([`set_snapshot_lane`]): when on,
/// every case additionally freezes the built cube into an in-memory
/// `tabula-store` snapshot, thaws it back, and requires byte-identical
/// fingerprints, answers, and re-frozen bytes. Off by default because it
/// roughly doubles per-case cost; `fuzz_check --snapshot` turns it on.
static SNAPSHOT_LANE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Enable or disable the snapshot round-trip lane for subsequent
/// [`diff_case`] / [`diff_with_loss`] calls (process-global, like the
/// kernel-mode override).
pub fn set_snapshot_lane(on: bool) {
    SNAPSHOT_LANE.store(on, std::sync::atomic::Ordering::SeqCst);
}

/// Whether the snapshot lane is currently enabled.
pub fn snapshot_lane() -> bool {
    SNAPSHOT_LANE.load(std::sync::atomic::Ordering::SeqCst)
}

/// Opt-in switch for the encoding lane ([`set_encoding_lane`]): when on,
/// every case additionally rebuilds the table and cube under
/// `TABULA_ENCODING=off` (plain reference) and `force` (maximum
/// encoded-kernel coverage) and requires byte-identical fingerprints —
/// cells, iceberg sets, sample row ids — plus serve-path identity on the
/// forced build. Off by default; `fuzz_check --encoding` turns it on.
static ENCODING_LANE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Enable or disable the encoding differential lane for subsequent
/// [`diff_case`] / [`diff_with_loss`] calls (process-global, like the
/// kernel-mode override).
pub fn set_encoding_lane(on: bool) {
    ENCODING_LANE.store(on, std::sync::atomic::Ordering::SeqCst);
}

/// Whether the encoding lane is currently enabled.
pub fn encoding_lane() -> bool {
    ENCODING_LANE.load(std::sync::atomic::Ordering::SeqCst)
}

/// Cells whose naive loss sits within this band of θ are excluded from
/// the iceberg-*set* comparison: the production classifier evaluates the
/// loss along a different float path (merged algebraic states), so right
/// at the boundary the two are allowed to classify differently. The
/// guarantee check still covers such cells — whichever way they are
/// classified, the served sample must stay within θ.
const BORDERLINE: f64 = 1e-6;

/// A single disagreement between the pipeline and the oracle.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which check tripped (`"guarantee"`, `"iceberg_set"`, ...).
    pub check: &'static str,
    /// Human-readable specifics: mode, cell, losses.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

/// What a clean differential run covered.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseReport {
    /// Reference-cube cells verified (per mode).
    pub cells_checked: usize,
    /// Workload queries verified (per mode).
    pub queries_checked: usize,
}

/// Oracle-side loss evaluation, separated into a trait so the mutation
/// check can pair a *sabotaged* production kernel with the honest naive
/// evaluation.
pub trait NaiveEval {
    /// Brute-force loss of `sample` approximating `raw`.
    fn eval(&self, table: &Table, raw: &[RowId], sample: &[RowId]) -> f64;
}

impl NaiveEval for LossSpec {
    fn eval(&self, table: &Table, raw: &[RowId], sample: &[RowId]) -> f64 {
        self.naive_loss(table, raw, sample)
    }
}

/// Run the full differential check for one case, dispatching the case's
/// [`LossSpec`] to the matching production kernel.
pub fn diff_case(case: &CaseSpec) -> Result<CaseReport, Divergence> {
    let table = case.table();
    let col = |name: &str| {
        table.schema().index_of(name).unwrap_or_else(|_| panic!("case column {name} missing"))
    };
    match &case.loss {
        LossSpec::Mean { attr } => diff_with_loss(case, MeanLoss::new(col(attr)), &case.loss),
        LossSpec::Histogram { attr } => {
            diff_with_loss(case, HistogramLoss::new(col(attr)), &case.loss)
        }
        LossSpec::Heatmap { attr, manhattan } => {
            let metric = if *manhattan { Metric::Manhattan } else { Metric::Euclidean };
            diff_with_loss(case, HeatmapLoss::new(col(attr), metric), &case.loss)
        }
        LossSpec::Regression { x, y } => {
            diff_with_loss(case, RegressionLoss::new(col(x), col(y)), &case.loss)
        }
    }
}

/// The diff engine proper, generic over the production kernel so tests
/// can inject a buggy kernel and watch the harness catch it.
pub fn diff_with_loss<L: AccuracyLoss + Clone>(
    case: &CaseSpec,
    loss: L,
    oracle: &dyn NaiveEval,
) -> Result<CaseReport, Divergence> {
    let table = case.table();
    let reference = naive_cube(&table, &case.attrs)
        .unwrap_or_else(|e| panic!("case {} is malformed: {e}", case.name));
    let attr_refs: Vec<&str> = case.attrs.iter().map(String::as_str).collect();

    let mut report = CaseReport::default();
    let mut fingerprints: Vec<Vec<Fingerprint>> = Vec::new();
    for &threads in &THREAD_COUNTS {
        tabula_par::set_threads(threads);
        let mut per_mode = Vec::new();
        for &mode in &MODES {
            let cube =
                SamplingCubeBuilder::new(Arc::clone(&table), &attr_refs, loss.clone(), case.theta)
                    .mode(mode)
                    .serfling(case.serfling_config())
                    .seed(case.build_seed)
                    .parallelism(threads)
                    .build()
                    .map_err(|e| Divergence {
                        check: "build",
                        detail: format!("{mode:?} threads={threads}: build failed: {e:?}"),
                    })?;
            per_mode.push(Fingerprint::of(&cube));
            if threads == THREAD_COUNTS[0] {
                let r = check_cube(case, &table, &cube, mode, oracle, &reference);
                // Restore the default before propagating, so a divergence
                // does not leak a thread override into the caller.
                if let Err(e) = r {
                    tabula_par::set_threads(0);
                    return Err(e);
                }
                let (cells, queries) = r.unwrap();
                report.cells_checked += cells;
                report.queries_checked += queries;
                if let Err(e) = check_serve(case, &cube, mode) {
                    tabula_par::set_threads(0);
                    return Err(e);
                }
                if snapshot_lane() {
                    if let Err(e) = check_snapshot(case, &cube, mode) {
                        tabula_par::set_threads(0);
                        return Err(e);
                    }
                }
            }
        }
        fingerprints.push(per_mode);
    }
    tabula_par::set_threads(0);

    for (m, &mode) in MODES.iter().enumerate() {
        for t in 1..THREAD_COUNTS.len() {
            if fingerprints[t][m] != fingerprints[0][m] {
                return Err(Divergence {
                    check: "thread_determinism",
                    detail: format!(
                        "{mode:?}: cube built with {} threads differs from {} threads",
                        THREAD_COUNTS[t], THREAD_COUNTS[0]
                    ),
                });
            }
        }
    }
    // The kernel-differential lane: rebuild every mode with the scalar
    // reference kernels (`KernelMode::ForceScalar`) and require byte
    // identity with the first-pass build, which ran whatever kernels the
    // ambient mode selected (vectorized by default). Fuzz cases run
    // sequentially in-process, so flipping the process-global mode here
    // is safe; it is restored on every exit path.
    let prev_kernel = kernel_mode();
    set_kernel_mode(KernelMode::ForceScalar);
    tabula_par::set_threads(THREAD_COUNTS[0]);
    let scalar_pass = (|| {
        for (m, &mode) in MODES.iter().enumerate() {
            let cube =
                SamplingCubeBuilder::new(Arc::clone(&table), &attr_refs, loss.clone(), case.theta)
                    .mode(mode)
                    .serfling(case.serfling_config())
                    .seed(case.build_seed)
                    .parallelism(THREAD_COUNTS[0])
                    .build()
                    .map_err(|e| Divergence {
                        check: "build",
                        detail: format!("{mode:?} scalar kernels: build failed: {e:?}"),
                    })?;
            if Fingerprint::of(&cube) != fingerprints[0][m] {
                return Err(Divergence {
                    check: "kernel_differential",
                    detail: format!(
                        "{mode:?}: cube built with scalar kernels differs from the \
                         vectorized build at {} threads",
                        THREAD_COUNTS[0]
                    ),
                });
            }
        }
        Ok(())
    })();
    set_kernel_mode(prev_kernel);
    tabula_par::set_threads(0);
    scalar_pass?;

    // The encoding-differential lane: rebuild the *table* (freezing
    // re-applies the encoding mode) and every materialization mode under
    // `TABULA_ENCODING=off` and `force`, and require byte identity with
    // the first-pass build, which ran under the ambient (Auto) mode.
    // Column encoding is a physical property — it must never change a
    // cell set, an iceberg classification, or a sampled row id. The
    // forced build additionally goes through the serve check, so served
    // answers over encoded columns are compared too.
    if encoding_lane() {
        let prev_encoding = encoding_mode();
        tabula_par::set_threads(THREAD_COUNTS[0]);
        let encoding_pass = (|| {
            for enc in [EncodingMode::Off, EncodingMode::Force] {
                set_encoding_mode(enc);
                let table = case.table();
                for (m, &mode) in MODES.iter().enumerate() {
                    let cube = SamplingCubeBuilder::new(
                        Arc::clone(&table),
                        &attr_refs,
                        loss.clone(),
                        case.theta,
                    )
                    .mode(mode)
                    .serfling(case.serfling_config())
                    .seed(case.build_seed)
                    .parallelism(THREAD_COUNTS[0])
                    .build()
                    .map_err(|e| Divergence {
                        check: "build",
                        detail: format!("{mode:?} encoding={enc:?}: build failed: {e:?}"),
                    })?;
                    if Fingerprint::of(&cube) != fingerprints[0][m] {
                        return Err(Divergence {
                            check: "encoding_differential",
                            detail: format!(
                                "{mode:?}: cube built under TABULA_ENCODING={enc:?} \
                                 differs from the ambient-mode build"
                            ),
                        });
                    }
                    if enc == EncodingMode::Force {
                        check_serve(case, &cube, mode)?;
                    }
                }
            }
            Ok(())
        })();
        set_encoding_mode(prev_encoding);
        tabula_par::set_threads(0);
        encoding_pass?;
    }

    // Tabula and TabulaStar share the dry-run classifier verbatim, so
    // their materialized cell sets must match exactly (no borderline
    // allowance here).
    let (tab, star) = (&fingerprints[0][0], &fingerprints[0][1]);
    if tab.cell_keys() != star.cell_keys() {
        return Err(Divergence {
            check: "mode_cell_set",
            detail: "Tabula and TabulaStar materialize different cell sets".to_string(),
        });
    }
    Ok(report)
}

/// Byte-level identity of a built cube, for the thread-determinism check
/// (shared with the ingest lane's cross-thread barrier comparison).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Fingerprint {
    cells: Vec<(Vec<Option<u32>>, Vec<RowId>)>,
    global: Vec<RowId>,
    iceberg_cells: usize,
}

impl Fingerprint {
    pub(crate) fn of(cube: &SamplingCube) -> Self {
        let mut cells: Vec<(Vec<Option<u32>>, Vec<RowId>)> = cube
            .cube_table()
            .map(|(key, sid)| (key.codes.clone(), cube.sample(sid).as_ref().clone()))
            .collect();
        cells.sort();
        Fingerprint {
            cells,
            global: cube.global_sample().as_ref().clone(),
            iceberg_cells: cube.stats().iceberg_cells,
        }
    }

    fn cell_keys(&self) -> Vec<&Vec<Option<u32>>> {
        self.cells.iter().map(|(k, _)| k).collect()
    }
}

/// All oracle-vs-pipeline checks for one built cube.
fn check_cube(
    case: &CaseSpec,
    table: &Table,
    cube: &SamplingCube,
    mode: MaterializationMode,
    oracle: &dyn NaiveEval,
    reference: &NaiveCube,
) -> Result<(usize, usize), Divergence> {
    let theta = case.theta;
    // 1. The θ-guarantee, exhaustively: every cell of every cuboid.
    for (key, raw) in &reference.cells {
        let answer = cube.query_cell(&CellKey::new(key.clone()));
        let achieved = oracle.eval(table, raw, &answer.rows);
        if achieved > theta + LOSS_EPS {
            return Err(Divergence {
                check: "guarantee",
                detail: format!(
                    "{mode:?} cell {key:?} ({} raw rows, {:?}): naive loss {achieved} > θ {theta}",
                    raw.len(),
                    answer.provenance
                ),
            });
        }
        // Outside full-pipeline Tabula mode (whose representative-sample
        // selection deliberately serves a cell with a *similar* cell's
        // sample), a materialized sample must consist of rows of its own
        // cell.
        if mode != MaterializationMode::Tabula
            && matches!(answer.provenance, SampleProvenance::Local(_))
        {
            for &r in answer.rows.iter() {
                if raw.binary_search(&r).is_err() {
                    return Err(Divergence {
                        check: "sample_subset",
                        detail: format!(
                            "{mode:?} cell {key:?}: sample row {r} is not a row of the cell"
                        ),
                    });
                }
            }
        }
    }

    // 2. The materialized cell set against the oracle's own
    //    classification of every cell vs the global sample.
    let materialized: BTreeSet<&Vec<Option<u32>>> =
        cube.cube_table().map(|(key, _)| &key.codes).collect();
    if mode == MaterializationMode::FullSamCube {
        if materialized.len() != reference.cells.len() {
            return Err(Divergence {
                check: "full_materialization",
                detail: format!(
                    "FullSamCube materialized {} cells, the lattice has {}",
                    materialized.len(),
                    reference.cells.len()
                ),
            });
        }
    } else {
        let global = cube.global_sample();
        for (key, raw) in &reference.cells {
            let naive = oracle.eval(table, raw, global);
            if (naive - theta).abs() <= BORDERLINE {
                continue;
            }
            let expect_iceberg = naive > theta;
            if expect_iceberg != materialized.contains(key) {
                return Err(Divergence {
                    check: "iceberg_set",
                    detail: format!(
                        "{mode:?} cell {key:?}: naive loss vs global sample is {naive} \
                         (θ {theta}), expected iceberg={expect_iceberg}, \
                         materialized={}",
                        !expect_iceberg
                    ),
                });
            }
        }
    }

    // 3. The equality-predicate workload through the public query path.
    for q in &case.queries {
        let mut pred = Predicate::all();
        for (column, value) in q {
            pred = pred.and(column.clone(), CmpOp::Eq, value.clone());
        }
        let raw = pred.filter(table).unwrap_or_else(|e| panic!("workload predicate: {e}"));
        let answer = cube.query(&pred).map_err(|e| Divergence {
            check: "query",
            detail: format!("{mode:?} query {q:?}: {e:?}"),
        })?;
        if answer.provenance == SampleProvenance::EmptyDomain && !raw.is_empty() {
            return Err(Divergence {
                check: "empty_domain",
                detail: format!(
                    "{mode:?} query {q:?}: answered EmptyDomain but {} raw rows match",
                    raw.len()
                ),
            });
        }
        let achieved = oracle.eval(table, &raw, &answer.rows);
        if achieved > theta + LOSS_EPS {
            return Err(Divergence {
                check: "query_guarantee",
                detail: format!(
                    "{mode:?} query {q:?} ({} raw rows, {:?}): naive loss {achieved} > θ {theta}",
                    raw.len(),
                    answer.provenance
                ),
            });
        }
    }
    Ok((reference.cells.len(), case.queries.len()))
}

/// The serve-path lane: replay the case's query workload through
/// `tabula-serve` — cold cache, then warm cache, then [`SERVE_CLIENTS`]
/// concurrent clients — and require every served answer to match the
/// direct cube answer byte for byte (rows AND provenance; a cache hit
/// must reproduce the original provenance, not invent its own).
fn check_serve(
    case: &CaseSpec,
    cube: &SamplingCube,
    mode: MaterializationMode,
) -> Result<(), Divergence> {
    let cube = Arc::new(cube.clone());
    // Private cache and registry: the fuzz sweep must not depend on (or
    // pollute) process-wide cache/metric state.
    let server = Server::with_cache(
        Arc::clone(&cube),
        AnswerCache::new(8 << 20, 4),
        Arc::new(tabula_obs::Registry::new()),
    )
    .map_err(|e| Divergence {
        check: "serve_build",
        detail: format!("{mode:?}: serving index build failed: {e:?}"),
    })?;

    let preds: Vec<Predicate> = case
        .queries
        .iter()
        .map(|q| {
            let mut pred = Predicate::all();
            for (column, value) in q {
                pred = pred.and(column.clone(), CmpOp::Eq, value.clone());
            }
            pred
        })
        .collect();
    let direct: Vec<_> =
        preds.iter().map(|p| cube.query(p).expect("direct query passed the main lane")).collect();

    for &clients in &SERVE_CLIENTS {
        // Two sequential passes per client (cold + warm on the first
        // sweep; all-warm later — both must stay identical).
        let failure = std::sync::Mutex::new(None::<Divergence>);
        std::thread::scope(|s| {
            for c in 0..clients {
                let server = &server;
                let preds = &preds;
                let direct = &direct;
                let failure = &failure;
                s.spawn(move || {
                    for pass in 0..2 {
                        for i in 0..preds.len() {
                            let j = (i + c * 13) % preds.len();
                            let served = match server.query(&preds[j]) {
                                Ok(a) => a,
                                Err(e) => {
                                    *failure.lock().unwrap() = Some(Divergence {
                                        check: "serve_query",
                                        detail: format!("{mode:?} query {j}: {e:?}"),
                                    });
                                    return;
                                }
                            };
                            if served.rows != direct[j].rows
                                || served.provenance != direct[j].provenance
                                || served.table.len() != direct[j].rows.len()
                            {
                                *failure.lock().unwrap() = Some(Divergence {
                                    check: "serve_path",
                                    detail: format!(
                                        "{mode:?} clients={clients} pass={pass} query {:?}: \
                                         served ({} rows, {:?}, cached={}) differs from direct \
                                         ({} rows, {:?})",
                                        case.queries[j],
                                        served.rows.len(),
                                        served.provenance,
                                        served.cached,
                                        direct[j].rows.len(),
                                        direct[j].provenance
                                    ),
                                });
                                return;
                            }
                        }
                    }
                });
            }
        });
        if let Some(d) = failure.into_inner().unwrap() {
            return Err(d);
        }
    }
    check_serve_traces(case, &cube, mode)
}

/// The trace-agreement lane: replay the workload sequentially through a
/// fully-traced private server (cold pass, then warm pass) and require
/// each query's [`tabula_obs::trace::CompletedTrace`] to agree exactly
/// with the cube's [`tabula_obs::ProvenanceCounters`] delta — the
/// counters are the accounting ground truth, the trace is the per-query
/// narrative, and they must never tell different stories. A cache hit
/// must additionally record no index/materialize/scan stages.
fn check_serve_traces(
    case: &CaseSpec,
    cube: &Arc<SamplingCube>,
    mode: MaterializationMode,
) -> Result<(), Divergence> {
    use tabula_obs::trace::{Stage, TraceProvenance, Tracer};
    // Private registry: re-homing the cube clone gives this lane its own
    // provenance counters, so concurrent fuzz cases cannot skew deltas.
    let registry = Arc::new(tabula_obs::Registry::new());
    let cube = Arc::new(cube.as_ref().clone().with_registry(&registry));
    let counters = cube.provenance_counters().clone();
    let tracer = Arc::new(Tracer::new(1, u64::MAX >> 21, case.queries.len() * 2 + 8));
    let server =
        Server::with_cache(Arc::clone(&cube), AnswerCache::new(8 << 20, 4), Arc::clone(&registry))
            .map_err(|e| Divergence {
                check: "serve_build",
                detail: format!("{mode:?}: traced serving index build failed: {e:?}"),
            })?
            .with_tracer(Arc::clone(&tracer));

    for pass in 0..2 {
        for (j, q) in case.queries.iter().enumerate() {
            let mut pred = Predicate::all();
            for (column, value) in q {
                pred = pred.and(column.clone(), CmpOp::Eq, value.clone());
            }
            let before = (
                counters.local_hits(),
                counters.global_hits(),
                counters.cell_misses(),
                counters.serve_cache_hits(),
            );
            server.query(&pred).map_err(|e| Divergence {
                check: "serve_query",
                detail: format!("{mode:?} traced pass={pass} query {j}: {e:?}"),
            })?;
            let trace = tracer.recorder().recent().pop().ok_or_else(|| Divergence {
                check: "trace_provenance",
                detail: format!(
                    "{mode:?} pass={pass} query {q:?}: full-sampling tracer recorded no trace"
                ),
            })?;
            let delta = (
                counters.local_hits() - before.0,
                counters.global_hits() - before.1,
                counters.cell_misses() - before.2,
                counters.serve_cache_hits() - before.3,
            );
            let expected = match trace.provenance {
                TraceProvenance::LocalDirect | TraceProvenance::LocalSorted => (1, 0, 0, 0),
                TraceProvenance::GlobalSample => (0, 1, 0, 0),
                TraceProvenance::EmptyDomain => (0, 0, 1, 0),
                TraceProvenance::CacheHit => (0, 0, 0, 1),
                other => {
                    return Err(Divergence {
                        check: "trace_provenance",
                        detail: format!(
                            "{mode:?} pass={pass} query {q:?}: served trace carries \
                             non-serve provenance {other:?}"
                        ),
                    })
                }
            };
            if delta != expected {
                return Err(Divergence {
                    check: "trace_provenance",
                    detail: format!(
                        "{mode:?} pass={pass} query {q:?}: trace says {:?} but counter delta \
                         is (local, global, miss, cache)={delta:?}, expected {expected:?}",
                        trace.provenance
                    ),
                });
            }
            if trace.provenance == TraceProvenance::CacheHit
                && (trace.stage_ns(Stage::IndexProbe).is_some()
                    || trace.stage_ns(Stage::Materialize).is_some()
                    || trace.stage_ns(Stage::Scan).is_some())
            {
                return Err(Divergence {
                    check: "trace_stages",
                    detail: format!(
                        "{mode:?} pass={pass} query {q:?}: cache hit recorded probe/scan \
                         stages: {:?}",
                        trace.stages
                    ),
                });
            }
        }
    }
    Ok(())
}

/// The snapshot lane: freeze the built cube into an in-memory
/// `tabula-store` snapshot, thaw it back, and require the thawed cube to
/// be indistinguishable from the original — byte-identical fingerprint
/// (every cell key, every sample, the global sample), byte-identical
/// answers (rows AND provenance) over the case's query workload, and a
/// re-frozen snapshot identical to the first one byte for byte (the
/// format is a pure function of cube content). Any store-layer failure is
/// its own divergence kind (`snapshot_io`) so fuzzing separates "the
/// format broke" from "the format changed the answers".
fn check_snapshot(
    case: &CaseSpec,
    cube: &SamplingCube,
    mode: MaterializationMode,
) -> Result<(), Divergence> {
    let io = |stage: &str, e: &dyn fmt::Debug| Divergence {
        check: "snapshot_io",
        detail: format!("{mode:?} {stage}: {e:?}"),
    };
    let bytes = cube.snapshot_bytes(0).map_err(|e| io("freeze", &e))?;
    let (thawed, info) =
        SamplingCube::from_snapshot_bytes(bytes.clone()).map_err(|e| io("thaw", &e))?;
    if info.cells != cube.materialized_cells() {
        return Err(Divergence {
            check: "snapshot_roundtrip",
            detail: format!(
                "{mode:?}: snapshot reports {} cells, cube has {}",
                info.cells,
                cube.materialized_cells()
            ),
        });
    }
    if Fingerprint::of(&thawed) != Fingerprint::of(cube) {
        return Err(Divergence {
            check: "snapshot_roundtrip",
            detail: format!("{mode:?}: thawed cube fingerprint differs from the original"),
        });
    }
    for q in &case.queries {
        let mut pred = Predicate::all();
        for (column, value) in q {
            pred = pred.and(column.clone(), CmpOp::Eq, value.clone());
        }
        let a = cube.query(&pred).map_err(|e| io("query original", &e))?;
        let b = thawed.query(&pred).map_err(|e| io("query thawed", &e))?;
        if a.rows != b.rows || a.provenance != b.provenance {
            return Err(Divergence {
                check: "snapshot_roundtrip",
                detail: format!(
                    "{mode:?} query {q:?}: thawed cube answered ({} rows, {:?}), \
                     original ({} rows, {:?})",
                    b.rows.len(),
                    b.provenance,
                    a.rows.len(),
                    a.provenance
                ),
            });
        }
    }
    let refrozen = thawed.snapshot_bytes(0).map_err(|e| io("re-freeze", &e))?;
    if refrozen != bytes {
        return Err(Divergence {
            check: "snapshot_roundtrip",
            detail: format!(
                "{mode:?}: re-frozen snapshot differs byte-for-byte \
                 ({} vs {} bytes)",
                refrozen.len(),
                bytes.len()
            ),
        });
    }
    Ok(())
}

/// Differential check of the SQL front-end over one case's table: for
/// each of `n` generated `WHERE` clauses, run `SELECT * FROM t WHERE ...`
/// end to end — AST → pretty-printer → lexer → parser → executor — and
/// compare both the re-parsed AST (round-trip identity) and the
/// materialized rows against the naive tree-walking evaluation.
pub fn diff_sql_case(case: &CaseSpec, seed: u64, n: usize) -> Result<usize, Divergence> {
    use tabula_sql::{parse, QueryResult, Session, Statement};
    let table = case.table();
    let mut session = Session::new();
    session.register_table("t", Arc::clone(&table));
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xa5a5_5a5a_0f0f_f0f0);
    for i in 0..n {
        let conditions = gen_where_terms(&mut rng, case);
        let stmt = Statement::SelectRaw { table: "t".to_string(), conditions: conditions.clone() };
        let sql = stmt.to_string();
        let reparsed = parse(&sql).map_err(|e| Divergence {
            check: "sql_roundtrip",
            detail: format!("statement {i}: printed SQL fails to parse: {sql}: {e}"),
        })?;
        if reparsed != stmt {
            return Err(Divergence {
                check: "sql_roundtrip",
                detail: format!("statement {i}: round-trip changed the AST: {sql}"),
            });
        }
        let result = session.execute(&sql).map_err(|e| Divergence {
            check: "sql_execute",
            detail: format!("statement {i}: {sql}: {e}"),
        })?;
        let QueryResult::Table(got) = result else {
            return Err(Divergence {
                check: "sql_execute",
                detail: format!("statement {i}: {sql}: executor did not return a table"),
            });
        };
        let want = naive_filter(&table, &conditions).map_err(|e| Divergence {
            check: "sql_oracle",
            detail: format!("statement {i}: naive evaluation failed: {e}"),
        })?;
        if got.len() != want.len() {
            return Err(Divergence {
                check: "sql_rows",
                detail: format!(
                    "statement {i}: {sql}: executor returned {} rows, oracle {}",
                    got.len(),
                    want.len()
                ),
            });
        }
        for (out_row, &raw_row) in want.iter().enumerate() {
            if got.row(out_row) != table.row(raw_row as usize) {
                return Err(Divergence {
                    check: "sql_rows",
                    detail: format!(
                        "statement {i}: {sql}: row {out_row} differs from raw row {raw_row}"
                    ),
                });
            }
        }
    }
    Ok(n)
}

/// A shrunk reproducer: the minimal case the shrinker reached, the
/// divergence it still exhibits, and how many candidate reductions were
/// tried.
#[derive(Debug)]
pub struct Shrunk {
    /// The minimal diverging case.
    pub case: CaseSpec,
    /// The divergence the minimal case still exhibits.
    pub divergence: Divergence,
    /// Candidate reductions attempted.
    pub attempts: usize,
}

/// ddmin-style shrinking: greedily drop row chunks, then whole queries,
/// then cubed attributes, as long as `check` still reports a divergence.
/// Returns `None` when the input case does not diverge in the first
/// place.
pub fn shrink(case: &CaseSpec, check: impl Fn(&CaseSpec) -> Option<Divergence>) -> Option<Shrunk> {
    let mut divergence = check(case)?;
    let mut cur = case.clone();
    let mut attempts = 0;

    // Rows, with exponentially shrinking chunk sizes.
    let mut chunk = cur.rows.len() / 2;
    while chunk >= 1 {
        let mut i = 0;
        while i + chunk <= cur.rows.len() && cur.rows.len() > chunk {
            let mut cand = cur.clone();
            cand.rows.drain(i..i + chunk);
            attempts += 1;
            if let Some(d) = check(&cand) {
                cur = cand;
                divergence = d;
            } else {
                i += chunk;
            }
        }
        chunk /= 2;
    }

    // Whole queries.
    let mut qi = 0;
    while qi < cur.queries.len() {
        let mut cand = cur.clone();
        cand.queries.remove(qi);
        attempts += 1;
        if let Some(d) = check(&cand) {
            cur = cand;
            divergence = d;
        } else {
            qi += 1;
        }
    }

    // Cubed attributes (the builder requires at least one). The column
    // stays in the schema so rows remain well-formed; queries over the
    // dropped attribute lose those terms.
    let mut ai = 0;
    while cur.attrs.len() > 1 && ai < cur.attrs.len() {
        let mut cand = cur.clone();
        let removed = cand.attrs.remove(ai);
        for q in &mut cand.queries {
            q.retain(|(column, _)| *column != removed);
        }
        attempts += 1;
        if let Some(d) = check(&cand) {
            cur = cand;
            divergence = d;
        } else {
            ai += 1;
        }
    }

    Some(Shrunk { case: cur, divergence, attempts })
}

fn value_literal(v: &Value) -> String {
    match v {
        Value::Int64(i) => format!("Value::Int64({i})"),
        Value::Float64(x) => format!("Value::Float64({x:?})"),
        Value::Str(s) => format!("Value::Str({s:?}.into())"),
        Value::Point(p) => format!("Value::Point(Point::new({:?}, {:?}))", p.x, p.y),
    }
}

fn loss_literal(spec: &LossSpec) -> String {
    match spec {
        LossSpec::Mean { attr } => format!("LossSpec::Mean {{ attr: {attr:?}.into() }}"),
        LossSpec::Histogram { attr } => format!("LossSpec::Histogram {{ attr: {attr:?}.into() }}"),
        LossSpec::Heatmap { attr, manhattan } => {
            format!("LossSpec::Heatmap {{ attr: {attr:?}.into(), manhattan: {manhattan} }}")
        }
        LossSpec::Regression { x, y } => {
            format!("LossSpec::Regression {{ x: {x:?}.into(), y: {y:?}.into() }}")
        }
    }
}

impl CaseSpec {
    /// Render this (ideally shrunk) case as a complete `#[test]` function
    /// ready to paste into a regression suite.
    pub fn to_regression_test(&self, fn_name: &str, divergence: &Divergence) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "/// Auto-generated minimal reproducer (tabula-check shrinker).");
        let _ = writeln!(s, "/// Divergence: {divergence}");
        let _ = writeln!(s, "#[test]");
        let _ = writeln!(s, "fn {fn_name}() {{");
        let _ = writeln!(s, "    use tabula_check::{{diff_case, CaseSpec, LossSpec}};");
        let _ = writeln!(s, "    use tabula_storage::{{ColumnType, Point, Value}};");
        let _ = writeln!(s, "    let case = CaseSpec {{");
        let _ = writeln!(s, "        name: {:?}.into(),", self.name);
        let schema = self
            .schema
            .iter()
            .map(|(n, ty)| format!("({n:?}.into(), ColumnType::{ty:?})"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(s, "        schema: vec![{schema}],");
        let _ = writeln!(s, "        rows: vec![");
        for row in &self.rows {
            let vals = row.iter().map(value_literal).collect::<Vec<_>>().join(", ");
            let _ = writeln!(s, "            vec![{vals}],");
        }
        let _ = writeln!(s, "        ],");
        let attrs =
            self.attrs.iter().map(|a| format!("{a:?}.into()")).collect::<Vec<_>>().join(", ");
        let _ = writeln!(s, "        attrs: vec![{attrs}],");
        let _ = writeln!(s, "        loss: {},", loss_literal(&self.loss));
        let _ = writeln!(s, "        theta: {:?},", self.theta);
        let _ = writeln!(s, "        serfling: ({:?}, {:?}),", self.serfling.0, self.serfling.1);
        let _ = writeln!(s, "        build_seed: {},", self.build_seed);
        let _ = writeln!(s, "        queries: vec![");
        for q in &self.queries {
            let terms = q
                .iter()
                .map(|(c, v)| format!("({c:?}.into(), {})", value_literal(v)))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(s, "            vec![{terms}],");
        }
        let _ = writeln!(s, "        ],");
        let _ = writeln!(s, "    }};");
        let _ = writeln!(s, "    let diverged = diff_case(&case).err();");
        let _ = writeln!(
            s,
            "    assert!(diverged.is_none(), \"divergence persists: {{diverged:?}}\");"
        );
        let _ = writeln!(s, "}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::gen_case;
    use std::sync::Mutex;

    /// Serializes the tests that drive the diff engine: the engine's
    /// kernel-differential lane flips the process-global kernel mode, so
    /// concurrent runs would observe each other's transient ForceScalar.
    static DIFF_LOCK: Mutex<()> = Mutex::new(());

    /// The clean pipeline must survive a handful of pinned seeds across
    /// every mode and thread count. (The heavyweight sweep lives in the
    /// `fuzz_check` bench binary and the fuzz-smoke CI job.)
    #[test]
    fn clean_pipeline_has_no_divergence_on_pinned_seeds() {
        let _guard = DIFF_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for seed in [1, 2, 3, 4, 5] {
            let case = gen_case(seed);
            if let Err(d) = diff_case(&case) {
                panic!("seed {seed} ({}): {d}", case.loss.name());
            }
        }
    }

    /// The mutation check of the acceptance criteria: a production kernel
    /// that under-reports the mean loss by 2× must be caught, and the
    /// shrinker must reduce the reproducer to at most 20 rows.
    #[derive(Clone)]
    struct HalvedMeanLoss(MeanLoss);

    impl AccuracyLoss for HalvedMeanLoss {
        type State = <MeanLoss as AccuracyLoss>::State;
        type SampleCtx = <MeanLoss as AccuracyLoss>::SampleCtx;

        fn name(&self) -> &'static str {
            "halved_mean"
        }

        fn state_depends_on_sample(&self) -> bool {
            self.0.state_depends_on_sample()
        }

        fn prepare(&self, table: &Table, sample: &[RowId]) -> Self::SampleCtx {
            self.0.prepare(table, sample)
        }

        fn fold(&self, ctx: &Self::SampleCtx, state: &mut Self::State, table: &Table, row: RowId) {
            self.0.fold(ctx, state, table, row)
        }

        // The injected bug: every reported loss is half the true loss, so
        // the dry run leaves truly-iceberg cells to the global sample.
        fn finish(&self, ctx: &Self::SampleCtx, state: &Self::State) -> f64 {
            self.0.finish(ctx, state) * 0.5
        }

        fn signature(&self, table: &Table, rows: &[RowId]) -> [f64; 2] {
            self.0.signature(table, rows)
        }

        fn sample_greedy(&self, table: &Table, raw: &[RowId], theta: f64) -> Vec<RowId> {
            self.0.sample_greedy(table, raw, theta)
        }
    }

    #[test]
    fn injected_loss_kernel_bug_is_caught_and_shrunk() {
        let _guard = DIFF_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let check = |case: &CaseSpec| -> Option<Divergence> {
            let LossSpec::Mean { attr } = &case.loss else { return None };
            let table = case.table();
            let col = table.schema().index_of(attr).unwrap();
            diff_with_loss(case, HalvedMeanLoss(MeanLoss::new(col)), &case.loss).err()
        };
        let mut caught = None;
        for seed in 0..60 {
            let case = gen_case(seed);
            if !matches!(case.loss, LossSpec::Mean { .. }) {
                continue;
            }
            if check(&case).is_some() {
                caught = Some(case);
                break;
            }
        }
        let case = caught.expect("the sabotaged kernel must diverge within 60 seeds");
        let shrunk = shrink(&case, check).expect("divergence just observed");
        assert!(
            shrunk.case.rows.len() <= 20,
            "shrinker left {} rows (wanted ≤ 20) after {} attempts",
            shrunk.case.rows.len(),
            shrunk.attempts
        );
        let repro = shrunk.case.to_regression_test("shrunk_mean_case", &shrunk.divergence);
        assert!(repro.contains("#[test]") && repro.contains("diff_case"), "reproducer:\n{repro}");
        // The clean kernel must pass the shrunk case: the bug is in the
        // sabotage, not the pipeline.
        assert!(diff_case(&shrunk.case).is_ok(), "clean kernel fails the shrunk case");
    }

    /// The snapshot lane must pass on clean pinned seeds: freeze → thaw →
    /// replay is byte-identical for every materialization mode. (The wide
    /// sweep runs in `fuzz_check --snapshot`.)
    #[test]
    fn snapshot_lane_round_trips_pinned_seeds() {
        let _guard = DIFF_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_snapshot_lane(true);
        let result: Result<(), String> = (|| {
            for seed in [1, 6, 9] {
                let case = gen_case(seed);
                diff_case(&case).map_err(|d| format!("seed {seed} ({}): {d}", case.loss.name()))?;
            }
            Ok(())
        })();
        set_snapshot_lane(false);
        result.unwrap();
    }

    /// The encoding lane must pass on clean pinned seeds — rebuilding
    /// under `TABULA_ENCODING=off` and `force` is byte-identical to the
    /// ambient build for every materialization mode — and must leave the
    /// process-global encoding mode exactly as it found it: a leaked
    /// Force would silently re-encode every later frozen table. (The
    /// wide sweep runs in `fuzz_check --encoding`.)
    #[test]
    fn encoding_lane_round_trips_pinned_seeds_and_restores_the_mode() {
        let _guard = DIFF_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = encoding_mode();
        set_encoding_mode(EncodingMode::Auto);
        set_encoding_lane(true);
        let result: Result<(), String> = (|| {
            for seed in [1, 6, 9] {
                let case = gen_case(seed);
                diff_case(&case).map_err(|d| format!("seed {seed} ({}): {d}", case.loss.name()))?;
            }
            Ok(())
        })();
        set_encoding_lane(false);
        assert_eq!(encoding_mode(), EncodingMode::Auto, "lane leaked an encoding override");
        set_encoding_mode(prev);
        result.unwrap();
    }

    /// The kernel-differential lane must leave the process-global kernel
    /// mode exactly as it found it, pass or fail — a leaked ForceScalar
    /// would silently disable the vectorized kernels for the rest of the
    /// process.
    #[test]
    fn kernel_lane_restores_the_ambient_kernel_mode() {
        let _guard = DIFF_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = kernel_mode();
        set_kernel_mode(KernelMode::ForceVectorized);
        let case = gen_case(7);
        diff_case(&case).expect("pinned seed 7 is a clean case");
        assert_eq!(kernel_mode(), KernelMode::ForceVectorized);
        set_kernel_mode(prev);
    }

    #[test]
    fn reproducer_renders_a_compiling_test_skeleton() {
        let case = gen_case(11);
        let d = Divergence { check: "guarantee", detail: "demo".to_string() };
        let repro = case.to_regression_test("demo_case", &d);
        assert!(repro.starts_with("/// Auto-generated"));
        assert!(repro.contains("fn demo_case()"));
        assert!(repro.contains("theta:"));
    }
}
