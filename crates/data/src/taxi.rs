//! Seeded synthetic NYC taxi-trip generator.
//!
//! ## Spatial model
//!
//! Pickup locations live in a normalized `[0, 1]²` square covering a
//! ~62.5 km × 62.5 km region (so the paper's 250 m heat-map loss threshold
//! equals `0.004` in normalized units — the same normalization the paper
//! quotes under Figure 11). Locations are drawn from a mixture of Gaussian
//! clusters:
//!
//! * a dense Manhattan band (several overlapping clusters),
//! * tight JFK and LGA airport clusters,
//! * a diffuse outer-borough component.
//!
//! ## Why icebergs arise
//!
//! The mixture weights depend on the categorical attributes:
//!
//! * `rate_code = "jfk"` trips almost always start at JFK (and carry the
//!   historical $52 flat fare), so their spatial and fare distributions
//!   deviate hard from the global ones;
//! * `payment_type = "dispute"` trips are airport-heavy;
//! * `payment_type = "cash"` trips are Manhattan-heavy but keep a small
//!   airport sub-cluster — the pattern a pre-built random sample misses
//!   (the paper's Figure 2 red circle);
//! * tips are ≈20 % of fare for credit trips and unrecorded (0) for cash,
//!   so per-cell regression lines differ from the global one.
//!
//! Every deviation above makes the corresponding cube cells fail the
//! "global sample is good enough" test for tight thresholds, which is
//! exactly the workload the sampling cube exists to serve.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_distr_shim::sample_normal;
use tabula_storage::{ColumnType, Field, Point, Schema, Table, TableBuilder, Value};

/// Side length of the normalized unit square, in kilometres. 250 m ≈ 0.004
/// normalized — matching the paper's quoted normalization.
pub const EXTENT_KM: f64 = 62.5;

/// Convert metres to normalized units.
pub fn meters_to_norm(m: f64) -> f64 {
    m / (EXTENT_KM * 1000.0)
}

/// Convert normalized units to metres.
pub fn norm_to_meters(n: f64) -> f64 {
    n * EXTENT_KM * 1000.0
}

/// The seven categorical attributes used in the paper's experiments, in
/// the order the paper uses them ("we use the first 4, 5, 6, 7 attributes
/// in the predicates of data-system queries").
pub const CUBED_ATTRIBUTES: [&str; 7] = [
    "vendor_name",
    "pickup_weekday",
    "passenger_count",
    "payment_type",
    "rate_code",
    "store_and_fwd",
    "dropoff_weekday",
];

const VENDORS: [&str; 2] = ["CMT", "VTS"];
const WEEKDAYS: [&str; 7] = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];
const PAYMENTS: [&str; 4] = ["cash", "credit", "dispute", "no_charge"];
const RATE_CODES: [&str; 5] = ["standard", "jfk", "newark", "nassau", "negotiated"];
const STORE_FWD: [&str; 2] = ["N", "Y"];

/// Configuration of the generator.
#[derive(Debug, Clone)]
pub struct TaxiConfig {
    /// Number of rows to generate.
    pub rows: usize,
    /// RNG seed; equal seeds produce identical tables.
    pub seed: u64,
}

impl Default for TaxiConfig {
    fn default() -> Self {
        TaxiConfig { rows: 100_000, seed: 42 }
    }
}

impl TaxiConfig {
    /// Config with `rows` rows and the default seed.
    pub fn with_rows(rows: usize) -> Self {
        TaxiConfig { rows, ..Default::default() }
    }
}

/// A named spatial cluster of the mixture model.
#[derive(Debug, Clone, Copy)]
struct Cluster {
    cx: f64,
    cy: f64,
    sigma: f64,
}

/// Manhattan band: overlapping clusters along a NE-pointing diagonal.
const MANHATTAN: [Cluster; 4] = [
    Cluster { cx: 0.42, cy: 0.50, sigma: 0.018 },
    Cluster { cx: 0.45, cy: 0.55, sigma: 0.020 },
    Cluster { cx: 0.48, cy: 0.61, sigma: 0.022 },
    Cluster { cx: 0.51, cy: 0.67, sigma: 0.025 },
];
/// JFK airport: tight, far to the south-east.
const JFK: Cluster = Cluster { cx: 0.78, cy: 0.22, sigma: 0.006 };
/// LaGuardia airport.
const LGA: Cluster = Cluster { cx: 0.62, cy: 0.58, sigma: 0.005 };
/// Outer-borough neighbourhoods: several moderate clusters rather than a
/// single diffuse blob — matching how trips actually concentrate around
/// commercial strips, and keeping the per-cell greedy sample sizes in the
/// ~10²-tuple regime the paper reports for its 250 m threshold.
const OUTER: [Cluster; 4] = [
    Cluster { cx: 0.58, cy: 0.40, sigma: 0.035 }, // Brooklyn
    Cluster { cx: 0.66, cy: 0.50, sigma: 0.040 }, // Queens
    Cluster { cx: 0.44, cy: 0.74, sigma: 0.030 }, // Bronx
    Cluster { cx: 0.30, cy: 0.35, sigma: 0.045 }, // Staten Island
];

/// Minimal inline normal sampling (Box–Muller). Kept local to avoid a
/// dependency on `rand_distr`, which is not on the allowed crate list.
mod rand_distr_shim {
    use rand::Rng;

    /// One sample of `N(mean, sigma²)`.
    pub fn sample_normal<R: Rng>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
        // Box–Muller transform; one of the pair is discarded for
        // simplicity (throughput is not a concern at these scales).
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + sigma * z
    }
}

/// The generator. Create with a [`TaxiConfig`], call [`TaxiGenerator::generate`].
#[derive(Debug, Clone)]
pub struct TaxiGenerator {
    config: TaxiConfig,
}

impl TaxiGenerator {
    /// A generator for `config`.
    pub fn new(config: TaxiConfig) -> Self {
        TaxiGenerator { config }
    }

    /// The schema of the generated table.
    pub fn schema() -> Schema {
        Schema::new(vec![
            Field::new("vendor_name", ColumnType::Str),
            Field::new("pickup_weekday", ColumnType::Str),
            Field::new("passenger_count", ColumnType::Int64),
            Field::new("payment_type", ColumnType::Str),
            Field::new("rate_code", ColumnType::Str),
            Field::new("store_and_fwd", ColumnType::Str),
            Field::new("dropoff_weekday", ColumnType::Str),
            Field::new("trip_distance", ColumnType::Float64),
            Field::new("fare_amount", ColumnType::Float64),
            Field::new("tip_amount", ColumnType::Float64),
            Field::new("pickup", ColumnType::Point),
        ])
    }

    /// Generate the table.
    pub fn generate(&self) -> Table {
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut b = TableBuilder::with_capacity(Self::schema(), self.config.rows);
        for _ in 0..self.config.rows {
            let row = self.generate_row(&mut rng);
            // The generator always produces schema-conformant rows.
            b.push_row(&row).expect("generated row conforms to schema");
        }
        b.finish()
    }

    fn generate_row(&self, rng: &mut SmallRng) -> Vec<Value> {
        let vendor = VENDORS[rng.gen_range(0..VENDORS.len())];
        let pickup_weekday = WEEKDAYS[weighted_weekday(rng)];
        let passenger_count: i64 = weighted_passengers(rng);
        let payment = weighted_payment(rng);
        let rate_code = weighted_rate_code(rng);
        let store_fwd = if rng.gen_bool(0.05) { STORE_FWD[1] } else { STORE_FWD[0] };
        // Most trips end the same day; a few cross midnight.
        let dropoff_weekday = if rng.gen_bool(0.93) {
            pickup_weekday
        } else {
            WEEKDAYS[rng.gen_range(0..WEEKDAYS.len())]
        };

        let pickup = self.sample_pickup(rng, payment, rate_code);
        let trip_distance = sample_distance(rng, rate_code);
        let fare = sample_fare(rng, rate_code, trip_distance);
        let tip = sample_tip(rng, payment, fare);

        vec![
            vendor.into(),
            pickup_weekday.into(),
            passenger_count.into(),
            payment.into(),
            rate_code.into(),
            store_fwd.into(),
            dropoff_weekday.into(),
            trip_distance.into(),
            fare.into(),
            tip.into(),
            pickup.into(),
        ]
    }

    /// Sample a pickup location given the attributes that skew it.
    fn sample_pickup(&self, rng: &mut SmallRng, payment: &str, rate_code: &str) -> Point {
        // (manhattan, jfk, lga, outer) mixture weights.
        let weights: [f64; 4] = if rate_code == "jfk" {
            [0.05, 0.90, 0.0, 0.05]
        } else if rate_code == "newark" {
            // Modelled as outer-borough heavy (Newark itself is off-map).
            [0.10, 0.0, 0.10, 0.80]
        } else {
            match payment {
                "dispute" => [0.25, 0.40, 0.20, 0.15],
                "cash" => [0.62, 0.05, 0.05, 0.28],
                "no_charge" => [0.40, 0.10, 0.10, 0.40],
                // credit
                _ => [0.68, 0.08, 0.08, 0.16],
            }
        };
        let total: f64 = weights.iter().sum();
        let mut pick = rng.gen_range(0.0..total);
        let cluster = 'sel: {
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    break 'sel i;
                }
                pick -= w;
            }
            3
        };
        let c = match cluster {
            0 => MANHATTAN[rng.gen_range(0..MANHATTAN.len())],
            1 => JFK,
            2 => LGA,
            _ => OUTER[rng.gen_range(0..OUTER.len())],
        };
        let x = sample_normal(rng, c.cx, c.sigma).clamp(0.0, 1.0);
        let y = sample_normal(rng, c.cy, c.sigma).clamp(0.0, 1.0);
        Point::new(x, y)
    }
}

fn weighted_weekday(rng: &mut SmallRng) -> usize {
    // Fri/Sat are busier.
    const W: [f64; 7] = [0.13, 0.13, 0.13, 0.14, 0.17, 0.17, 0.13];
    weighted_index(rng, &W)
}

fn weighted_passengers(rng: &mut SmallRng) -> i64 {
    const W: [f64; 6] = [0.70, 0.13, 0.06, 0.04, 0.04, 0.03];
    weighted_index(rng, &W) as i64 + 1
}

fn weighted_payment(rng: &mut SmallRng) -> &'static str {
    const W: [f64; 4] = [0.38, 0.58, 0.02, 0.02];
    PAYMENTS[weighted_index(rng, &W)]
}

fn weighted_rate_code(rng: &mut SmallRng) -> &'static str {
    const W: [f64; 5] = [0.90, 0.05, 0.01, 0.01, 0.03];
    RATE_CODES[weighted_index(rng, &W)]
}

fn weighted_index(rng: &mut SmallRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut pick = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if pick < *w {
            return i;
        }
        pick -= w;
    }
    weights.len() - 1
}

fn sample_distance(rng: &mut SmallRng, rate_code: &str) -> f64 {
    match rate_code {
        // Airport runs are long.
        "jfk" => (sample_normal(rng, 17.0, 3.0)).clamp(8.0, 35.0),
        "newark" => (sample_normal(rng, 16.0, 4.0)).clamp(8.0, 35.0),
        _ => {
            // Log-normal-ish body of short city trips.
            let z = sample_normal(rng, 0.8, 0.7);
            z.exp().clamp(0.2, 40.0)
        }
    }
}

fn sample_fare(rng: &mut SmallRng, rate_code: &str, distance: f64) -> f64 {
    match rate_code {
        // Historical JFK flat fare.
        "jfk" => 52.0 + sample_normal(rng, 0.0, 1.5),
        _ => {
            let base = 2.5 + 2.5 * distance + sample_normal(rng, 0.0, 1.0);
            base.clamp(2.5, 250.0)
        }
    }
}

fn sample_tip(rng: &mut SmallRng, payment: &str, fare: f64) -> f64 {
    match payment {
        // Cash tips are not recorded in the real TLC data.
        "cash" => 0.0,
        "dispute" | "no_charge" => 0.0,
        _ => {
            let frac = sample_normal(rng, 0.20, 0.05).clamp(0.0, 0.5);
            (fare * frac).max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabula_storage::Predicate;

    fn small() -> Table {
        TaxiGenerator::new(TaxiConfig { rows: 20_000, seed: 7 }).generate()
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = TaxiGenerator::new(TaxiConfig { rows: 500, seed: 9 }).generate();
        let b = TaxiGenerator::new(TaxiConfig { rows: 500, seed: 9 }).generate();
        for row in [0usize, 100, 499] {
            assert_eq!(a.row(row), b.row(row));
        }
        let c = TaxiGenerator::new(TaxiConfig { rows: 500, seed: 10 }).generate();
        assert_ne!(a.row(0), c.row(0));
    }

    #[test]
    fn schema_matches_cubed_attribute_names() {
        let schema = TaxiGenerator::schema();
        for name in CUBED_ATTRIBUTES {
            assert!(schema.index_of(name).is_ok(), "missing {name}");
        }
        assert_eq!(schema.index_of("pickup").unwrap(), 10);
    }

    #[test]
    fn categorical_cardinalities_are_as_designed() {
        let t = small();
        let card = |name: &str| {
            let idx = t.schema().index_of(name).unwrap();
            t.cat(idx).unwrap().cardinality()
        };
        assert_eq!(card("vendor_name"), 2);
        assert_eq!(card("pickup_weekday"), 7);
        assert_eq!(card("passenger_count"), 6);
        assert_eq!(card("payment_type"), 4);
        assert_eq!(card("rate_code"), 5);
        assert_eq!(card("store_and_fwd"), 2);
        assert_eq!(card("dropoff_weekday"), 7);
    }

    #[test]
    fn jfk_rate_code_concentrates_at_airport() {
        let t = small();
        let rows = Predicate::eq("rate_code", "jfk").filter(&t).unwrap();
        assert!(rows.len() > 200, "expected a real jfk population");
        let pickups = t.column_by_name("pickup").unwrap().as_point_slice().unwrap();
        let near_jfk = rows
            .iter()
            .filter(|&&r| pickups[r as usize].euclidean(&Point::new(0.78, 0.22)) < 0.05)
            .count();
        assert!(
            near_jfk as f64 > 0.8 * rows.len() as f64,
            "jfk trips should start at JFK ({near_jfk}/{})",
            rows.len()
        );
    }

    #[test]
    fn cash_tips_are_zero_credit_tips_track_fare() {
        let t = small();
        let fares = t.column_by_name("fare_amount").unwrap().as_f64_slice().unwrap();
        let tips = t.column_by_name("tip_amount").unwrap().as_f64_slice().unwrap();
        let cash = Predicate::eq("payment_type", "cash").filter(&t).unwrap();
        assert!(cash.iter().all(|&r| tips[r as usize] == 0.0));
        let credit = Predicate::eq("payment_type", "credit").filter(&t).unwrap();
        let (mut sum_ratio, mut n) = (0.0, 0u32);
        for &r in &credit {
            if fares[r as usize] > 0.0 {
                sum_ratio += tips[r as usize] / fares[r as usize];
                n += 1;
            }
        }
        let avg = sum_ratio / n as f64;
        assert!((avg - 0.20).abs() < 0.02, "credit tip fraction ≈ 20%, got {avg}");
    }

    #[test]
    fn jfk_fares_deviate_from_global_mean() {
        let t = small();
        let fares = t.column_by_name("fare_amount").unwrap().as_f64_slice().unwrap();
        let global: f64 = fares.iter().sum::<f64>() / fares.len() as f64;
        let jfk = Predicate::eq("rate_code", "jfk").filter(&t).unwrap();
        let jfk_mean: f64 = jfk.iter().map(|&r| fares[r as usize]).sum::<f64>() / jfk.len() as f64;
        assert!((jfk_mean - 52.0).abs() < 2.0);
        assert!(jfk_mean > 2.0 * global, "JFK fares must be an outlier population");
    }

    #[test]
    fn spatial_distribution_is_manhattan_heavy() {
        let t = small();
        let pickups = t.column_by_name("pickup").unwrap().as_point_slice().unwrap();
        let manhattan_center = Point::new(0.465, 0.58);
        let near = pickups.iter().filter(|p| p.euclidean(&manhattan_center) < 0.12).count();
        let frac = near as f64 / pickups.len() as f64;
        assert!(frac > 0.45, "Manhattan share too low: {frac}");
    }

    #[test]
    fn unit_conversions_round_trip() {
        assert!((meters_to_norm(250.0) - 0.004).abs() < 1e-12);
        assert!((norm_to_meters(meters_to_norm(1234.0)) - 1234.0).abs() < 1e-9);
    }

    #[test]
    fn points_stay_in_unit_square() {
        let t = small();
        let pickups = t.column_by_name("pickup").unwrap().as_point_slice().unwrap();
        assert!(pickups.iter().all(|p| (0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y)));
    }
}
