//! Property-based tests (proptest) of the core invariants on *arbitrary*
//! small tables — not just the taxi generator's distributions.

use proptest::prelude::*;
use std::sync::Arc;
use tabula::core::loss::{AccuracyLoss, HistogramLoss, MeanLoss};
use tabula::core::sampling::{coverage_greedy, CoverageSpace};
use tabula::core::{MaterializationMode, SamplingCubeBuilder};
use tabula::storage::cube::{CellKey, CuboidMask};
use tabula::storage::{group_by, ColumnType, Field, Schema, Table, TableBuilder};

/// An arbitrary small table with two categorical columns and one measure.
fn arb_table() -> impl Strategy<Value = Table> {
    let row = (0u32..4, 0u32..3, -50.0f64..50.0);
    proptest::collection::vec(row, 1..120).prop_map(|rows| {
        let schema = Schema::new(vec![
            Field::new("a", ColumnType::Int64),
            Field::new("b", ColumnType::Int64),
            Field::new("v", ColumnType::Float64),
        ]);
        let mut b = TableBuilder::new(schema);
        for (a, bb, v) in rows {
            b.push_row(&[(a as i64).into(), (bb as i64).into(), v.into()]).expect("conforming row");
        }
        b.finish()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every cell of the full cube, the returned sample is within θ.
    #[test]
    fn cube_guarantee_on_arbitrary_tables(table in arb_table(), theta in 0.01f64..0.5) {
        let table = Arc::new(table);
        let loss = MeanLoss::new(2);
        let cube = SamplingCubeBuilder::new(
            Arc::clone(&table), &["a", "b"], loss.clone(), theta,
        )
        .seed(1)
        .build()
        .unwrap();
        for mask in CuboidMask::enumerate(2) {
            let grouped = group_by(&table, &mask.attrs()).unwrap();
            for (compact, rows) in &grouped.groups {
                let cell = CellKey::from_compact(mask, 2, compact);
                let ans = cube.query_cell(&cell);
                let achieved = loss.loss(&table, rows, &ans.rows);
                prop_assert!(
                    achieved <= theta + 1e-9,
                    "cell {cell}: {achieved} > {theta}"
                );
            }
        }
    }

    /// Greedy sampling meets θ and never repeats a row, for any input.
    #[test]
    fn greedy_meets_threshold_without_replacement(
        table in arb_table(),
        theta in 0.0f64..5.0,
    ) {
        let loss = HistogramLoss::new(2);
        let all: Vec<u32> = table.all_rows();
        let sample = loss.sample_greedy(&table, &all, theta);
        prop_assert!(!sample.is_empty());
        let achieved = loss.loss(&table, &all, &sample);
        prop_assert!(achieved <= theta + 1e-9, "{achieved} > {theta}");
        let mut seen = std::collections::HashSet::new();
        prop_assert!(sample.iter().all(|r| seen.insert(*r)));
        prop_assert!(sample.iter().all(|r| all.contains(r)));
    }

    /// coverage_greedy's achieved loss is within θ for arbitrary 1-D
    /// spaces, and shrinking θ never shrinks the sample.
    #[test]
    fn coverage_greedy_monotone_in_theta(
        xs in proptest::collection::vec(-100.0f64..100.0, 1..300),
        theta in 0.0f64..10.0,
    ) {
        struct Line { xs: Vec<f64> }
        impl CoverageSpace for Line {
            fn len(&self) -> usize { self.xs.len() }
            fn dist(&self, a: usize, b: usize) -> f64 { (self.xs[a] - self.xs[b]).abs() }
            fn center_element(&self) -> usize { 0 }
        }
        let space = Line { xs };
        let n = space.len();
        let loss_of = |chosen: &[usize]| -> f64 {
            (0..n)
                .map(|i| chosen.iter().map(|&c| space.dist(i, c)).fold(f64::INFINITY, f64::min))
                .sum::<f64>() / n as f64
        };
        let at_theta = coverage_greedy(&space, theta);
        prop_assert!(loss_of(&at_theta) <= theta + 1e-9);
        let tighter = coverage_greedy(&space, theta / 4.0);
        prop_assert!(loss_of(&tighter) <= theta / 4.0 + 1e-9);
        prop_assert!(tighter.len() >= at_theta.len());
    }

    /// Tabula's memory never exceeds Tabula*'s, on any table.
    #[test]
    fn selection_never_increases_memory(table in arb_table()) {
        let table = Arc::new(table);
        let loss = MeanLoss::new(2);
        let build = |mode| {
            SamplingCubeBuilder::new(Arc::clone(&table), &["a", "b"], loss.clone(), 0.05)
                .mode(mode)
                .seed(1)
                .build()
                .unwrap()
        };
        let tabula = build(MaterializationMode::Tabula);
        let star = build(MaterializationMode::TabulaStar);
        prop_assert!(tabula.persisted_samples() <= star.persisted_samples());
        prop_assert!(
            tabula.memory_breakdown().sample_table_bytes
                <= star.memory_breakdown().sample_table_bytes
        );
        prop_assert_eq!(tabula.materialized_cells(), star.materialized_cells());
    }
}
