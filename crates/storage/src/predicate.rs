//! Predicates and vectorised filtering.
//!
//! Dashboard queries against Tabula constrain cubed (categorical)
//! attributes with equality, and baselines additionally filter measure
//! columns by range, so the predicate language covers conjunctions of
//! per-column comparisons.

use crate::table::{RowId, Table};
use crate::types::Value;
use crate::{Result, StorageError};

/// Comparison operator of a single predicate term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn eval_ord(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// One `column <op> literal` term.
#[derive(Debug, Clone, PartialEq)]
pub struct Term {
    /// Column name.
    pub column: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub value: Value,
}

/// A conjunction of comparison terms (`WHERE a = x AND b < y ...`).
///
/// An empty predicate matches every row.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Predicate {
    terms: Vec<Term>,
}

impl Predicate {
    /// The always-true predicate.
    pub fn all() -> Self {
        Predicate::default()
    }

    /// A single equality predicate.
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::all().and(column, CmpOp::Eq, value)
    }

    /// Add a term to the conjunction (builder style).
    pub fn and(mut self, column: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Self {
        self.terms.push(Term { column: column.into(), op, value: value.into() });
        self
    }

    /// The conjunction's terms.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Whether this predicate matches every row trivially.
    pub fn is_trivial(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluate over `table`, returning matching row ids in ascending order.
    ///
    /// Categorical equality terms are evaluated on dictionary codes (one
    /// integer compare per row); other terms fall back to typed compares.
    /// The scan is morsel-parallel; per-morsel matches concatenate in
    /// morsel order, so output order is ascending regardless of thread
    /// count.
    pub fn filter(&self, table: &Table) -> Result<Vec<RowId>> {
        let compiled = self.compile(table)?;
        let pool = tabula_par::Pool::global();
        let partials = pool.par_chunks(table.len(), tabula_par::DEFAULT_MORSEL_ROWS, |range| {
            let mut out = Vec::new();
            'rows: for row in range {
                for term in &compiled {
                    if !term.matches(table, row) {
                        continue 'rows;
                    }
                }
                out.push(row as RowId);
            }
            out
        });
        Ok(partials.concat())
    }

    /// [`filter`](Self::filter) plus a [`ScanStats`] accounting of the work
    /// done — the scan-path stage hook the tracing layer records (rows and
    /// bytes touched by a raw-table fallback query).
    pub fn filter_with_stats(&self, table: &Table) -> Result<(Vec<RowId>, ScanStats)> {
        let rows = self.filter(table)?;
        let compiled = self.compile(table)?;
        // Bytes touched per row: one dictionary code (4 B) per compiled
        // categorical-equality term, one typed value (8 B) otherwise. An
        // estimate — short-circuiting terms touch less — but a stable,
        // explainable one.
        let row_bytes: u64 = compiled
            .iter()
            .map(|t| match t {
                CompiledTerm::CatEq { .. } => 4,
                CompiledTerm::General { .. } => 8,
                CompiledTerm::Never => 0,
            })
            .sum();
        let stats = ScanStats {
            rows_scanned: table.len() as u64,
            rows_matched: rows.len() as u64,
            bytes_scanned: table.len() as u64 * row_bytes,
        };
        Ok((rows, stats))
    }

    /// Evaluate over an explicit subset of rows of `table`, preserving order.
    pub fn filter_rows(&self, table: &Table, rows: &[RowId]) -> Result<Vec<RowId>> {
        let compiled = self.compile(table)?;
        let mut out = Vec::new();
        'rows: for &row in rows {
            for term in &compiled {
                if !term.matches(table, row as usize) {
                    continue 'rows;
                }
            }
            out.push(row);
        }
        Ok(out)
    }

    /// Whether a single row matches.
    pub fn matches(&self, table: &Table, row: usize) -> Result<bool> {
        let compiled = self.compile(table)?;
        Ok(compiled.iter().all(|t| t.matches(table, row)))
    }

    fn compile(&self, table: &Table) -> Result<Vec<CompiledTerm>> {
        self.terms
            .iter()
            .map(|t| {
                let col = table.schema().index_of(&t.column)?;
                // Fast path: categorical equality compiled to a code compare.
                if t.op == CmpOp::Eq {
                    if let Ok(cat) = table.cat(col) {
                        return Ok(match cat.lookup(&t.value) {
                            Some(code) => CompiledTerm::CatEq { col, code },
                            // Value absent from the column's domain: the
                            // term can never match.
                            None => CompiledTerm::Never,
                        });
                    }
                }
                Ok(CompiledTerm::General { col, op: t.op, value: t.value.clone() })
            })
            .collect()
    }
}

/// Work accounting for one [`Predicate::filter_with_stats`] scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanStats {
    /// Rows the scan visited (the whole table for a full filter).
    pub rows_scanned: u64,
    /// Rows that matched the predicate.
    pub rows_matched: u64,
    /// Estimated bytes of column data touched.
    pub bytes_scanned: u64,
}

enum CompiledTerm {
    CatEq { col: usize, code: u32 },
    General { col: usize, op: CmpOp, value: Value },
    Never,
}

impl CompiledTerm {
    #[inline]
    fn matches(&self, table: &Table, row: usize) -> bool {
        match self {
            CompiledTerm::Never => false,
            CompiledTerm::CatEq { col, code } => {
                // cat() is infallible here: compile() verified the column.
                table.cat(*col).map(|c| c.codes()[row] == *code).unwrap_or(false)
            }
            CompiledTerm::General { col, op, value } => {
                compare(&table.value(row, *col), value).map(|ord| op.eval_ord(ord)).unwrap_or(false)
            }
        }
    }
}

/// Typed three-way comparison between two values; `None` when incomparable
/// (different types, or points, which have no total order).
fn compare(a: &Value, b: &Value) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (Value::Int64(x), Value::Int64(y)) => Some(x.cmp(y)),
        (Value::Str(x), Value::Str(y)) => Some(x.cmp(y)),
        (Value::Float64(_), _) | (_, Value::Float64(_)) => {
            a.as_f64().zip(b.as_f64()).and_then(|(x, y)| x.partial_cmp(&y))
        }
        _ => None,
    }
}

/// Convenience: validate that every predicate column exists and is one of
/// `allowed` (used by the cube query path, where WHERE columns must be a
/// subset of the cubed attributes).
pub fn validate_columns(pred: &Predicate, allowed: &[String]) -> Result<()> {
    for term in pred.terms() {
        if !allowed.iter().any(|a| a == &term.column) {
            return Err(StorageError::UnknownColumn(term.column.clone()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::table::TableBuilder;
    use crate::types::ColumnType;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("payment", ColumnType::Str),
            Field::new("passengers", ColumnType::Int64),
            Field::new("fare", ColumnType::Float64),
        ]);
        let mut b = TableBuilder::new(schema);
        let data: [(&str, i64, f64); 5] = [
            ("cash", 1, 5.0),
            ("credit", 2, 9.5),
            ("cash", 1, 7.25),
            ("dispute", 3, 12.0),
            ("cash", 2, 3.0),
        ];
        for (p, n, f) in data {
            b.push_row(&[p.into(), n.into(), f.into()]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn trivial_predicate_matches_all() {
        let t = table();
        assert_eq!(Predicate::all().filter(&t).unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn categorical_equality() {
        let t = table();
        assert_eq!(Predicate::eq("payment", "cash").filter(&t).unwrap(), vec![0, 2, 4]);
        assert_eq!(Predicate::eq("passengers", 2i64).filter(&t).unwrap(), vec![1, 4]);
    }

    #[test]
    fn value_outside_domain_matches_nothing() {
        let t = table();
        assert!(Predicate::eq("payment", "bitcoin").filter(&t).unwrap().is_empty());
        assert!(Predicate::eq("passengers", 99i64).filter(&t).unwrap().is_empty());
    }

    #[test]
    fn conjunction_and_ranges() {
        let t = table();
        let p = Predicate::eq("payment", "cash").and("fare", CmpOp::Gt, 4.0);
        assert_eq!(p.filter(&t).unwrap(), vec![0, 2]);
        let p = Predicate::all().and("fare", CmpOp::Le, 7.25).and("fare", CmpOp::Ge, 5.0);
        assert_eq!(p.filter(&t).unwrap(), vec![0, 2]);
        let p = Predicate::all().and("passengers", CmpOp::Ne, 1i64);
        assert_eq!(p.filter(&t).unwrap(), vec![1, 3, 4]);
    }

    #[test]
    fn int_compares_against_float_literal() {
        let t = table();
        let p = Predicate::all().and("passengers", CmpOp::Ge, 2.5f64);
        assert_eq!(p.filter(&t).unwrap(), vec![3]);
    }

    #[test]
    fn filter_rows_subset() {
        let t = table();
        let p = Predicate::eq("payment", "cash");
        assert_eq!(p.filter_rows(&t, &[4, 3, 0]).unwrap(), vec![4, 0]);
    }

    #[test]
    fn unknown_column_is_an_error() {
        let t = table();
        assert!(matches!(
            Predicate::eq("nope", 1i64).filter(&t),
            Err(StorageError::UnknownColumn(_))
        ));
    }

    #[test]
    fn validate_columns_enforces_subset() {
        let allowed = vec!["payment".to_owned(), "passengers".to_owned()];
        assert!(validate_columns(&Predicate::eq("payment", "cash"), &allowed).is_ok());
        assert!(validate_columns(&Predicate::eq("fare", 1.0), &allowed).is_err());
    }

    #[test]
    fn filter_with_stats_accounts_for_the_scan() {
        let t = table();
        let p = Predicate::eq("payment", "cash").and("fare", CmpOp::Gt, 4.0);
        let (rows, stats) = p.filter_with_stats(&t).unwrap();
        assert_eq!(rows, p.filter(&t).unwrap());
        assert_eq!(stats.rows_scanned, 5);
        assert_eq!(stats.rows_matched, 2);
        // One cat-eq term (4 B/row) + one general term (8 B/row).
        assert_eq!(stats.bytes_scanned, 5 * 12);
    }

    #[test]
    fn matches_single_row() {
        let t = table();
        let p = Predicate::eq("payment", "dispute");
        assert!(p.matches(&t, 3).unwrap());
        assert!(!p.matches(&t, 0).unwrap());
    }
}
