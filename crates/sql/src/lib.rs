//! # tabula-sql
//!
//! The SQL dialect front-end of the Tabula middleware — the exact surface
//! the paper's Section II shows to users:
//!
//! ```sql
//! -- Declare a loss function (paper Function 1):
//! CREATE AGGREGATE my_loss(Raw, Sam)
//!   RETURN decimal_value AS BEGIN ABS((AVG(Raw) - AVG(Sam)) / AVG(Raw)) END;
//!
//! -- Initialize the sampling cube (paper Query 1):
//! CREATE TABLE cube AS
//!   SELECT payment_type, passenger_count, SAMPLING(*, 0.1) AS sample
//!   FROM nyctaxi
//!   GROUPBY CUBE(payment_type, passenger_count)
//!   HAVING my_loss(fare_amount, Sam_global) > 0.1;
//!
//! -- Dashboard interaction (paper Query 2):
//! SELECT sample FROM cube WHERE payment_type = 'cash';
//! ```
//!
//! [`Session`] holds named tables, registered loss functions (the four
//! built-ins plus user-declared aggregates) and built cubes; it parses and
//! executes statements end-to-end against `tabula-core`.

pub mod ast;
pub mod display;
pub mod executor;
pub mod lexer;
pub mod parser;

pub use ast::{LossRef, Statement};
pub use executor::{QueryResult, Session};
pub use parser::parse;

/// Errors from the SQL layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Tokenizer error at a byte offset.
    Lex {
        /// What went wrong.
        message: String,
        /// Byte position in the input.
        position: usize,
    },
    /// Parse error.
    Parse(String),
    /// A referenced object (table, cube, loss function) does not exist.
    Unknown {
        /// Object kind ("table", "cube", "loss function").
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
    },
    /// An object with this name already exists.
    AlreadyExists(String),
    /// Error bubbled up from the middleware.
    Core(String),
    /// Error bubbled up from the storage engine.
    Storage(String),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex { message, position } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            SqlError::Parse(msg) => write!(f, "parse error: {msg}"),
            SqlError::Unknown { kind, name } => write!(f, "unknown {kind}: {name}"),
            SqlError::AlreadyExists(name) => write!(f, "object already exists: {name}"),
            SqlError::Core(msg) => write!(f, "middleware error: {msg}"),
            SqlError::Storage(msg) => write!(f, "storage error: {msg}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<tabula_core::CoreError> for SqlError {
    fn from(e: tabula_core::CoreError) -> Self {
        SqlError::Core(e.to_string())
    }
}

impl From<tabula_storage::StorageError> for SqlError {
    fn from(e: tabula_storage::StorageError) -> Self {
        SqlError::Storage(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, SqlError>;
