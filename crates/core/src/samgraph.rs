//! The **SamGraph** (paper Definition 6): a directed graph over the local
//! samples of iceberg cells, with an edge `u → v` whenever the sample of
//! cell `u` can *represent* cell `v`, i.e. `loss(cell_v_raw, sam_u) ≤ θ`
//! (Definition 5).
//!
//! The graph is the input to the representative-sample selection
//! ([`crate::selection`]). Building it is a self-join of the cube table on
//! the representation relationship; the paper notes the join "does not
//! have to exhaust all possible representation relationships" — any subset
//! of the true edges keeps the bounded-error guarantee (uncovered samples
//! simply stay materialized). This implementation exploits that freedom:
//!
//! * for **sample-independent** losses (mean, regression, expression
//!   losses) every pair is priced in O(1) from pre-folded cell states, so
//!   the join is exhaustive;
//! * for **sample-dependent** losses (heat map, histogram) each pair costs
//!   a pass over the target cell's raw rows, so candidates are ranked by a
//!   cheap per-cell signature (centroid / mean) and only the
//!   `max_candidates` nearest are checked exactly — with the early-exit
//!   [`AccuracyLoss::loss_within`] evaluation.

use crate::loss::AccuracyLoss;
use crate::realrun::CubeEntry;
use tabula_obs::span;
use tabula_par::Pool;
use tabula_storage::Table;

/// Tuning knobs of the SamGraph join.
#[derive(Debug, Clone, Copy)]
pub struct SamGraphConfig {
    /// For sample-dependent losses: how many signature-nearest candidate
    /// representatives to check exactly, per cell. Higher values find more
    /// edges (more memory savings) at higher build cost.
    pub max_candidates: usize,
}

impl Default for SamGraphConfig {
    fn default() -> Self {
        SamGraphConfig { max_candidates: 32 }
    }
}

/// The sample-representation graph.
#[derive(Debug, Clone)]
pub struct SamGraph {
    /// `edges[u]` lists every cell `v` that `u`'s sample represents
    /// (always including `u` itself).
    pub edges: Vec<Vec<u32>>,
}

impl SamGraph {
    /// Number of vertices (= iceberg cells).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Total number of edges (including self-edges).
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(|e| e.len()).sum()
    }
}

/// Build the SamGraph over `entries` under `loss` / `theta`.
pub fn build_samgraph<L: AccuracyLoss>(
    table: &Table,
    loss: &L,
    theta: f64,
    entries: &[CubeEntry],
    cfg: &SamGraphConfig,
) -> SamGraph {
    let m = entries.len();
    let pool = Pool::global();
    let _span = span!("selection.samgraph_join", "samples={m} threads={}", pool.threads());
    if m <= 1 {
        return SamGraph { edges: (0..m).map(|u| vec![u as u32]).collect() };
    }

    if !loss.state_depends_on_sample() {
        // O(1)-per-pair path: fold each cell's state once, prepare each
        // sample's context once, evaluate finish() for every ordered pair.
        // Each vertex's out-edge list is an independent task; lists come
        // back in vertex order, so the graph is thread-count-invariant.
        let dummy_ctx = loss.prepare(table, &[]);
        let states: Vec<L::State> = pool.par_map(entries, |e| {
            let mut s = L::State::default();
            for &r in &e.rows {
                loss.fold(&dummy_ctx, &mut s, table, r);
            }
            s
        });
        let edges = pool.run(m, |u| {
            let ctx_u = loss.prepare(table, &entries[u].sample);
            let mut out = vec![u as u32];
            for (v, state_v) in states.iter().enumerate() {
                if u != v && loss.finish(&ctx_u, state_v) <= theta {
                    out.push(v as u32);
                }
            }
            out
        });
        return SamGraph { edges };
    }

    // Sample-dependent path: rank candidates by signature proximity, check
    // the nearest `max_candidates` exactly (early-exit at θ). The per-target
    // candidate scan parallelizes over v; representative lists are then
    // folded back in ascending v, reproducing the serial edge order.
    let sigs: Vec<[f64; 2]> = pool.par_map(entries, |e| loss.signature(table, &e.rows));
    let ctxs: Vec<L::SampleCtx> = pool.par_map(entries, |e| loss.prepare(table, &e.sample));
    let cap = cfg.max_candidates.min(m - 1);
    let reps_of: Vec<Vec<u32>> = pool.run(m, |v| {
        let mut cands: Vec<(f64, usize)> = (0..m)
            .filter(|&u| u != v)
            .map(|u| {
                let dx = sigs[u][0] - sigs[v][0];
                let dy = sigs[u][1] - sigs[v][1];
                (dx * dx + dy * dy, u)
            })
            .collect();
        if cands.len() > cap {
            cands.select_nth_unstable_by(cap - 1, |a, b| a.0.total_cmp(&b.0));
            cands.truncate(cap);
        }
        let mut reps = Vec::new();
        for (_, u) in cands {
            if loss.loss_within(table, &entries[v].rows, &ctxs[u], theta).is_some() {
                reps.push(u as u32);
            }
        }
        reps
    });
    let mut edges: Vec<Vec<u32>> = (0..m).map(|u| vec![u as u32]).collect();
    for (v, reps) in reps_of.iter().enumerate() {
        for &u in reps {
            edges[u as usize].push(v as u32);
        }
    }
    SamGraph { edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dryrun::dry_run;
    use crate::loss::{HeatmapLoss, MeanLoss, Metric};
    use crate::realrun::real_run;
    use crate::serfling::draw_global_sample;
    use tabula_data::example_dcm_table;

    fn entries_for_mean(theta: f64) -> (tabula_storage::Table, Vec<CubeEntry>) {
        let t = example_dcm_table();
        let fare = t.schema().index_of("fare").unwrap();
        let loss = MeanLoss::new(fare);
        let global = draw_global_sample(&t, 8, 1);
        let ctx = loss.prepare(&t, &global);
        let dry = dry_run(&t, &[0, 1, 2], &loss, &ctx, theta).unwrap();
        let rr = real_run(&t, &[0, 1, 2], &loss, theta, &dry, 1).unwrap();
        (t, rr.entries)
    }

    #[test]
    fn every_edge_is_a_true_representation() {
        let theta = 0.10;
        let (t, entries) = entries_for_mean(theta);
        assert!(entries.len() > 1, "need several iceberg cells for this test");
        let fare = t.schema().index_of("fare").unwrap();
        let loss = MeanLoss::new(fare);
        let g = build_samgraph(&t, &loss, theta, &entries, &SamGraphConfig::default());
        assert_eq!(g.len(), entries.len());
        for (u, outs) in g.edges.iter().enumerate() {
            for &v in outs {
                let l = loss.loss(&t, &entries[v as usize].rows, &entries[u].sample);
                assert!(l <= theta + 1e-9, "edge {u}→{v} is not a valid representation (loss {l})");
            }
        }
    }

    #[test]
    fn state_path_is_exhaustive() {
        let theta = 0.10;
        let (t, entries) = entries_for_mean(theta);
        let fare = t.schema().index_of("fare").unwrap();
        let loss = MeanLoss::new(fare);
        let g = build_samgraph(&t, &loss, theta, &entries, &SamGraphConfig::default());
        // Cross-check: every valid pair must be present.
        for u in 0..entries.len() {
            for v in 0..entries.len() {
                let valid = loss.loss(&t, &entries[v].rows, &entries[u].sample) <= theta;
                let present = g.edges[u].contains(&(v as u32));
                if u == v {
                    assert!(present, "self-edge {u} missing");
                } else {
                    assert_eq!(present, valid, "pair {u}→{v}");
                }
            }
        }
    }

    #[test]
    fn sample_dependent_path_edges_are_sound() {
        let t = example_dcm_table();
        let pickup = t.schema().index_of("pickup").unwrap();
        let loss = HeatmapLoss::new(pickup, Metric::Euclidean);
        let theta = 0.05;
        let global = draw_global_sample(&t, 4, 2);
        let ctx = loss.prepare(&t, &global);
        let dry = dry_run(&t, &[0, 1, 2], &loss, &ctx, theta).unwrap();
        let rr = real_run(&t, &[0, 1, 2], &loss, theta, &dry, 1).unwrap();
        assert!(!rr.entries.is_empty());
        let g = build_samgraph(&t, &loss, theta, &rr.entries, &SamGraphConfig::default());
        for (u, outs) in g.edges.iter().enumerate() {
            for &v in outs {
                let l = loss.loss(&t, &rr.entries[v as usize].rows, &rr.entries[u].sample);
                assert!(l <= theta + 1e-9, "edge {u}→{v}: loss {l}");
            }
        }
        // Self-edges always exist.
        for (u, outs) in g.edges.iter().enumerate() {
            assert!(outs.contains(&(u as u32)));
        }
    }

    #[test]
    fn candidate_cap_limits_but_never_invalidates() {
        let theta = 0.10;
        let (t, entries) = entries_for_mean(theta);
        let pickup = t.schema().index_of("pickup").unwrap();
        let loss = HeatmapLoss::new(pickup, Metric::Euclidean);
        let capped =
            build_samgraph(&t, &loss, 0.5, &entries, &SamGraphConfig { max_candidates: 1 });
        let full = build_samgraph(
            &t,
            &loss,
            0.5,
            &entries,
            &SamGraphConfig { max_candidates: usize::MAX },
        );
        assert!(capped.edge_count() <= full.edge_count());
        // Capped edges are a subset of full edges.
        for (u, outs) in capped.edges.iter().enumerate() {
            for v in outs {
                assert!(full.edges[u].contains(v));
            }
        }
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let t = example_dcm_table();
        let fare = t.schema().index_of("fare").unwrap();
        let loss = MeanLoss::new(fare);
        let g = build_samgraph(&t, &loss, 0.1, &[], &SamGraphConfig::default());
        assert!(g.is_empty());
        let (t2, entries) = entries_for_mean(0.10);
        let one = &entries[..1];
        let g = build_samgraph(&t2, &loss, 0.1, one, &SamGraphConfig::default());
        assert_eq!(g.len(), 1);
        assert_eq!(g.edges[0], vec![0]);
    }
}
