//! CSV import/export for tables — the adoption path from this repo's
//! synthetic data to real exports (e.g. the NYC TLC trip-record CSVs the
//! paper evaluates on).
//!
//! The format is deliberately simple: a header row of `name:type` fields
//! (`i64`, `f64`, `str`, `point`), comma-separated values, RFC-4180-style
//! quoting for strings, and `x;y` for points. A hand-rolled parser keeps
//! the crate dependency-free.

use std::io::{BufRead, Write};
use tabula_storage::{ColumnType, Field, Point, Schema, StorageError, Table, TableBuilder, Value};

/// Errors from CSV handling.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content, with a 1-based line number.
    Parse {
        /// Line the problem was found on.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Schema/value mismatch bubbling up from the table builder.
    Storage(StorageError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv io error: {e}"),
            CsvError::Parse { line, message } => write!(f, "csv line {line}: {message}"),
            CsvError::Storage(e) => write!(f, "csv storage error: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl From<StorageError> for CsvError {
    fn from(e: StorageError) -> Self {
        CsvError::Storage(e)
    }
}

/// Split one CSV record honoring double-quote escaping.
fn split_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    quoted = false;
                }
            }
            '"' => quoted = true,
            ',' if !quoted => {
                fields.push(std::mem::take(&mut cur));
            }
            other => cur.push(other),
        }
    }
    fields.push(cur);
    fields
}

/// Quote a field if it needs quoting.
fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

fn parse_type(name: &str, line: usize) -> Result<ColumnType, CsvError> {
    match name {
        "i64" => Ok(ColumnType::Int64),
        "f64" => Ok(ColumnType::Float64),
        "str" => Ok(ColumnType::Str),
        "point" => Ok(ColumnType::Point),
        other => Err(CsvError::Parse {
            line,
            message: format!("unknown column type {other:?} (want i64|f64|str|point)"),
        }),
    }
}

/// Read a table from CSV (header `name:type` per column).
pub fn read_table<R: BufRead>(reader: R) -> Result<Table, CsvError> {
    let mut lines = reader.lines();
    let header =
        lines.next().ok_or(CsvError::Parse { line: 1, message: "empty input".into() })??;
    let mut fields = Vec::new();
    for (i, col) in split_record(&header).iter().enumerate() {
        let (name, ty) = col.rsplit_once(':').ok_or_else(|| CsvError::Parse {
            line: 1,
            message: format!("header field {i} missing ':type' suffix: {col:?}"),
        })?;
        fields.push(Field::new(name, parse_type(ty, 1)?));
    }
    let schema = Schema::new(fields);
    let mut builder = TableBuilder::new(schema.clone());
    for (idx, line) in lines.enumerate() {
        let line_no = idx + 2;
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let raw = split_record(&line);
        if raw.len() != schema.len() {
            return Err(CsvError::Parse {
                line: line_no,
                message: format!("expected {} fields, found {}", schema.len(), raw.len()),
            });
        }
        let mut values = Vec::with_capacity(raw.len());
        for (field, text) in schema.fields().iter().zip(&raw) {
            let value = match field.ty {
                ColumnType::Int64 => Value::Int64(text.parse().map_err(|_| CsvError::Parse {
                    line: line_no,
                    message: format!("invalid i64 {text:?} for column {}", field.name),
                })?),
                ColumnType::Float64 => {
                    Value::Float64(text.parse().map_err(|_| CsvError::Parse {
                        line: line_no,
                        message: format!("invalid f64 {text:?} for column {}", field.name),
                    })?)
                }
                ColumnType::Str => Value::Str(text.clone()),
                ColumnType::Point => {
                    let (x, y) = text.split_once(';').ok_or_else(|| CsvError::Parse {
                        line: line_no,
                        message: format!("invalid point {text:?} (want x;y)"),
                    })?;
                    let parse = |s: &str| -> Result<f64, CsvError> {
                        s.parse().map_err(|_| CsvError::Parse {
                            line: line_no,
                            message: format!("invalid point coordinate {s:?}"),
                        })
                    };
                    Value::Point(Point::new(parse(x)?, parse(y)?))
                }
            };
            values.push(value);
        }
        builder.push_row(&values)?;
    }
    Ok(builder.finish())
}

/// Write a table as CSV (round-trips through [`read_table`]).
pub fn write_table<W: Write>(table: &Table, mut writer: W) -> Result<(), CsvError> {
    let header: Vec<String> = table
        .schema()
        .fields()
        .iter()
        .map(|f| {
            let ty = match f.ty {
                ColumnType::Int64 => "i64",
                ColumnType::Float64 => "f64",
                ColumnType::Str => "str",
                ColumnType::Point => "point",
            };
            quote(&format!("{}:{ty}", f.name))
        })
        .collect();
    writeln!(writer, "{}", header.join(","))?;
    for row in 0..table.len() {
        let fields: Vec<String> = (0..table.schema().len())
            .map(|col| match table.value(row, col) {
                Value::Int64(v) => v.to_string(),
                Value::Float64(v) => {
                    // Round-trippable float formatting.
                    format!("{v:?}")
                }
                Value::Str(s) => quote(&s),
                Value::Point(p) => format!("{:?};{:?}", p.x, p.y),
            })
            .collect();
        writeln!(writer, "{}", fields.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxi::{TaxiConfig, TaxiGenerator};

    #[test]
    fn round_trip_preserves_the_table() {
        let t = TaxiGenerator::new(TaxiConfig { rows: 200, seed: 3 }).generate();
        let mut buf = Vec::new();
        write_table(&t, &mut buf).unwrap();
        let back = read_table(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.schema(), t.schema());
        for row in [0usize, 57, 199] {
            assert_eq!(back.row(row), t.row(row), "row {row}");
        }
    }

    #[test]
    fn quoting_and_escapes() {
        let csv = "name:str,score:f64\n\"a,b\",1.5\n\"say \"\"hi\"\"\",2.0\n";
        let t = read_table(std::io::Cursor::new(csv)).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.value(0, 0).as_str(), Some("a,b"));
        assert_eq!(t.value(1, 0).as_str(), Some("say \"hi\""));
        // Round-trip the quoted content too.
        let mut buf = Vec::new();
        write_table(&t, &mut buf).unwrap();
        let back = read_table(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(back.row(0), t.row(0));
        assert_eq!(back.row(1), t.row(1));
    }

    #[test]
    fn points_and_ints() {
        let csv = "pickup:point,count:i64\n0.5;0.25,3\n-1.5;2.0,4\n";
        let t = read_table(std::io::Cursor::new(csv)).unwrap();
        let pts = t.column(0).as_point_slice().unwrap();
        assert_eq!(pts[0], Point::new(0.5, 0.25));
        assert_eq!(pts[1], Point::new(-1.5, 2.0));
        assert_eq!(t.column(1).as_i64_slice().unwrap(), &[3, 4]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let missing_type = "name\nx\n";
        assert!(matches!(
            read_table(std::io::Cursor::new(missing_type)),
            Err(CsvError::Parse { line: 1, .. })
        ));
        let bad_arity = "a:i64,b:i64\n1,2\n3\n";
        assert!(matches!(
            read_table(std::io::Cursor::new(bad_arity)),
            Err(CsvError::Parse { line: 3, .. })
        ));
        let bad_value = "a:i64\nnot_a_number\n";
        assert!(matches!(
            read_table(std::io::Cursor::new(bad_value)),
            Err(CsvError::Parse { line: 2, .. })
        ));
        let bad_point = "p:point\n1.0\n";
        assert!(matches!(
            read_table(std::io::Cursor::new(bad_point)),
            Err(CsvError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn empty_lines_are_skipped() {
        let csv = "a:i64\n1\n\n2\n";
        let t = read_table(std::io::Cursor::new(csv)).unwrap();
        assert_eq!(t.len(), 2);
    }
}
