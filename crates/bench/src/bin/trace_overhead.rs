//! Overhead gate for the query-tracing layer (`tabula-obs::trace`).
//!
//! The tracing tentpole promises that *disabled* tracing costs at most
//! one relaxed atomic load per query on the serve path. This benchmark
//! holds that promise to a number: it replays a warm-cache dashboard
//! session through four tracer modes and fails (exit code 1) if the
//! disabled mode's throughput falls more than 3% below the no-trace
//! baseline measured in the same run:
//!
//! 1. **baseline** — `Server::query_traced` with a pre-built disabled
//!    trace: the raw serve path, no `Tracer::begin`/`finish` machinery;
//! 2. **disabled** — `Server::query` with `sample = 0`: the production
//!    off-path (one relaxed load in `begin`, one branch in `finish`);
//! 3. **sampled** — `sample = 64` (1-in-64 queries fully traced);
//! 4. **full** — `sample = 1` (every query traced and recorded).
//!
//! Modes are measured in interleaved rounds; the gate compares the
//! disabled/baseline ratio *within* each round (back-to-back sweeps, so
//! ambient noise cancels) and takes the best round. The printed table
//! reports best-of qps per mode. Emits `BENCH_trace_overhead.json` via
//! the standard run summary.
//!
//! Run with `cargo run --release -p tabula-bench --bin trace_overhead`
//! (`--quick` shrinks the dataset for CI; `--clients N` overrides the
//! client-thread count, default 8).

use std::sync::Arc;
use std::time::Instant;

use tabula_bench::{default_rows, taxi_table, write_run_summary, SEED};
use tabula_core::loss::MeanLoss;
use tabula_core::{MaterializationMode, SamplingCube, SamplingCubeBuilder};
use tabula_data::{QueryCell, Workload, CUBED_ATTRIBUTES};
use tabula_obs::trace::{QueryTrace, Tracer};
use tabula_obs::Registry;
use tabula_par::Pool;
use tabula_serve::{AnswerCache, Server};

/// Revisit probability of the zoom/pan session generator (same shape as
/// `serve_bench`, so the warm cache absorbs most queries).
const REVISIT: f64 = 0.4;

/// Per-client offset stride so concurrent clients interleave probes.
const CLIENT_STRIDE: usize = 37;

/// Maximum tolerated throughput loss of disabled-mode tracing vs the
/// no-trace baseline.
const MAX_REGRESSION: f64 = 0.03;

struct Args {
    quick: bool,
    clients: usize,
}

fn parse_args() -> Args {
    let mut args = Args { quick: false, clients: 8 };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--clients" => {
                args.clients = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--clients needs a positive integer"));
                assert!(args.clients > 0, "--clients needs a positive integer");
            }
            other => panic!("unknown argument {other:?} (expected --quick / --clients N)"),
        }
    }
    args
}

/// One closed-loop sweep: every client replays the session `passes`
/// times. Warm-cache queries finish in well under a microsecond, so a
/// single session pass measures ~1 ms — far too short to compare modes
/// within 3%; the repeats stretch each measured interval into the tens
/// of milliseconds where scheduler jitter averages out. Returns (qps,
/// sample rows shipped per single pass).
fn sweep<F>(pool: &Pool, clients: usize, queries: &[QueryCell], passes: usize, f: F) -> (f64, u64)
where
    F: Fn(&QueryCell) -> usize + Sync,
{
    let started = Instant::now();
    let shipped: u64 = pool
        .run(clients, |c| {
            let mut shipped = 0u64;
            for p in 0..passes {
                for i in 0..queries.len() {
                    let q = &queries[(i + (c + p) * CLIENT_STRIDE) % queries.len()];
                    shipped += f(q) as u64;
                }
            }
            shipped
        })
        .into_iter()
        .sum();
    let secs = started.elapsed().as_secs_f64();
    ((clients * queries.len() * passes) as f64 / secs, shipped / passes as u64)
}

fn main() {
    let args = parse_args();
    let rows = if args.quick { 4_000 } else { default_rows() };
    let n_queries = if args.quick { 200 } else { 800 };
    let rounds = 5;
    let passes = if args.quick { 128 } else { 32 };
    let attrs = &CUBED_ATTRIBUTES[..3];

    println!(
        "trace_overhead: {rows} rows, {n_queries}-query session × {passes} passes, \
         {} clients, best of {rounds} rounds{}",
        args.clients,
        if args.quick { " [quick]" } else { "" }
    );

    let table = taxi_table(rows);
    let registry = Arc::new(Registry::new());
    let fare = table.schema().index_of("fare_amount").expect("taxi schema has fare_amount");
    let cube: Arc<SamplingCube> = Arc::new(
        SamplingCubeBuilder::new(Arc::clone(&table), attrs, MeanLoss::new(fare), 0.05)
            .seed(SEED)
            .mode(MaterializationMode::Tabula)
            .build()
            .expect("cube build succeeds")
            .with_registry(&registry),
    );
    let queries = Workload::new(attrs)
        .generate_session(&table, n_queries, SEED ^ 0x5E55, REVISIT)
        .expect("session generation succeeds");

    let tracer = Arc::new(Tracer::new(0, 1_000, 256));
    let srv = Server::with_cache(Arc::clone(&cube), AnswerCache::from_env(), Arc::clone(&registry))
        .expect("server build succeeds")
        .with_tracer(Arc::clone(&tracer));
    let pool = Pool::with_threads(args.clients);

    // Warm the answer cache once so every measured sweep is pure cache
    // hits — the regime where per-query fixed costs dominate and tracing
    // overhead is most visible.
    let (_, warm_rows) =
        sweep(&pool, args.clients, &queries, 1, |q| srv.query(&q.predicate).unwrap().table.len());

    // (mode name, tracer sample rate; None = bypass the tracer entirely.)
    let modes: [(&str, Option<u32>); 4] =
        [("baseline", None), ("disabled", Some(0)), ("sampled", Some(64)), ("full", Some(1))];
    let mut best = [0.0f64; 4];
    // Best per-round disabled/baseline ratio: the two sweeps of one round
    // run back to back, so slow background noise (CI neighbours, thermal
    // drift) hits both and cancels in the ratio, where it would skew a
    // comparison of bests taken from different rounds.
    let mut best_ratio = 0.0f64;
    for round in 0..rounds {
        let mut round_qps = [0.0f64; 4];
        for (m, &(name, sample)) in modes.iter().enumerate() {
            let (qps, shipped) = match sample {
                None => sweep(&pool, args.clients, &queries, passes, |q| {
                    srv.query_traced(&q.predicate, &mut QueryTrace::disabled()).unwrap().table.len()
                }),
                Some(s) => {
                    tracer.set_sample(s);
                    sweep(&pool, args.clients, &queries, passes, |q| {
                        srv.query(&q.predicate).unwrap().table.len()
                    })
                }
            };
            assert_eq!(shipped, warm_rows, "{name} round {round} shipped different sample rows");
            round_qps[m] = qps;
            if qps > best[m] {
                best[m] = qps;
            }
        }
        best_ratio = best_ratio.max(round_qps[1] / round_qps[0]);
    }
    tracer.set_sample(0);

    let [qps_baseline, qps_disabled, qps_sampled, qps_full] = best;
    println!();
    println!("{:<10} {:>12} {:>10}", "mode", "qps", "vs base");
    for (m, &(name, _)) in modes.iter().enumerate() {
        println!("{:<10} {:>12.0} {:>9.1}%", name, best[m], 100.0 * best[m] / qps_baseline);
    }
    println!(
        "\nflight recorder: {} traces retained (full mode), slow threshold {} ms",
        tracer.recorder().len(),
        1_000
    );

    use serde::Value;
    let ratio = best_ratio;
    let path = write_run_summary(
        "trace_overhead",
        &registry.snapshot(),
        &[
            ("client_threads", Value::Int(args.clients as i128)),
            ("session_queries", Value::Int(queries.len() as i128)),
            ("rounds", Value::Int(rounds as i128)),
            ("quick", Value::Bool(args.quick)),
            ("qps_baseline", Value::Float(qps_baseline)),
            ("qps_disabled", Value::Float(qps_disabled)),
            ("qps_sampled", Value::Float(qps_sampled)),
            ("qps_full", Value::Float(qps_full)),
            ("disabled_over_baseline", Value::Float(ratio)),
            ("max_regression", Value::Float(MAX_REGRESSION)),
            ("pass", Value::Bool(ratio >= 1.0 - MAX_REGRESSION)),
        ],
    )
    .expect("run summary written");
    println!("summary: {}", path.display());

    if ratio < 1.0 - MAX_REGRESSION {
        eprintln!(
            "FAIL: disabled-mode tracing reached only {:.1}% of the no-trace baseline \
             (floor {:.1}%)",
            ratio * 100.0,
            (1.0 - MAX_REGRESSION) * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "PASS: disabled-mode tracing at {:.1}% of the no-trace baseline (floor {:.1}%)",
        ratio * 100.0,
        (1.0 - MAX_REGRESSION) * 100.0
    );
}
