//! Equi-join of raw rows against an iceberg-cell list.
//!
//! The paper's real-run stage (Algorithm 2) offers two plans for fetching
//! the raw data of a cuboid's iceberg cells; the cheaper one, when icebergs
//! are few, is "run an equi-join operation between the cuboid iceberg cell
//! table and the raw data". This module implements that join as a hash
//! semi-join: build a hash set over the (small) iceberg-cell keys, then
//! stream the raw rows through it.

use crate::fx::FxHashSet;
use crate::kernel;
use crate::packed::{KeyLayout, PackedCodes, PackedKeyBuf};
use crate::table::{Cat, RowId, Table};
use crate::Result;
use tabula_par::{Pool, DEFAULT_MORSEL_ROWS};

/// Return the row ids of `table` whose projection onto the categorical
/// columns `cols` equals one of `cells` (compact code keys of the cuboid
/// defined by `cols`). Output order is ascending row id.
///
/// The probe side streams morsel-parallel through the (small) build-side
/// hash set; per-morsel matches concatenate in morsel order, preserving
/// the ascending-row-id contract for any thread count.
///
/// When the bit-packed key fits 64 bits the probe is vectorized: the
/// build side re-encodes into a `u64` set (dropping cells whose codes
/// exceed the probe table's dictionary domains — those can match no row),
/// and each chunk probes one packed word per row.
pub fn semi_join(table: &Table, cols: &[usize], cells: &FxHashSet<Vec<u32>>) -> Result<Vec<RowId>> {
    if cells.is_empty() {
        return Ok(Vec::new());
    }
    let cats: Vec<Cat<'_>> = cols.iter().map(|&c| table.cat(c)).collect::<Result<_>>()?;
    let code_slices: Vec<&[u32]> = cats.iter().map(|c| c.codes()).collect();
    let cards: Vec<usize> = cats.iter().map(|c| c.cardinality()).collect();
    let layout = if kernel::vectorize() { KeyLayout::from_cardinalities(&cards) } else { None };
    if let Some(layout) = layout {
        return Ok(semi_join_vectorized(table, &layout, &code_slices, cells));
    }
    let pool = Pool::global();
    let partials = pool.par_chunks(table.len(), DEFAULT_MORSEL_ROWS, |range| {
        let mut packed = PackedCodes::new(cols.len());
        packed.fill_range(&code_slices, range.clone());
        let mut out = Vec::new();
        for (i, row) in range.enumerate() {
            if cells.contains(packed.key(i)) {
                out.push(row as RowId);
            }
        }
        out
    });
    Ok(partials.concat())
}

fn semi_join_vectorized(
    table: &Table,
    layout: &KeyLayout,
    code_slices: &[&[u32]],
    cells: &FxHashSet<Vec<u32>>,
) -> Vec<RowId> {
    // Build side: pack each cell key. A cell with any code outside the
    // probe table's dictionary domain cannot equal any row's projection,
    // so it is dropped rather than aliased into the packed domain.
    let packed_cells: FxHashSet<u64> =
        cells.iter().filter(|key| layout.fits(key)).map(|key| layout.encode(key)).collect();
    if packed_cells.is_empty() {
        return Vec::new();
    }
    let chunk = kernel::chunk_rows();
    let pool = Pool::global();
    let partials = pool.par_chunks(table.len(), DEFAULT_MORSEL_ROWS, |range| {
        let mut packed = PackedKeyBuf::new();
        let mut out = Vec::new();
        let mut start = range.start;
        while start < range.end {
            let end = range.end.min(start + chunk);
            packed.fill_range(layout, code_slices, start..end);
            for (i, k) in packed.keys().iter().enumerate() {
                if packed_cells.contains(k) {
                    out.push((start + i) as RowId);
                }
            }
            start = end;
        }
        out
    });
    partials.concat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::table::TableBuilder;
    use crate::types::ColumnType;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("payment", ColumnType::Str),
            Field::new("passengers", ColumnType::Int64),
        ]);
        let mut b = TableBuilder::new(schema);
        let data: [(&str, i64); 6] =
            [("cash", 1), ("credit", 2), ("cash", 1), ("dispute", 3), ("cash", 2), ("credit", 2)];
        for (p, n) in data {
            b.push_row(&[p.into(), n.into()]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn joins_matching_rows_only() {
        let t = table();
        let mut cells = FxHashSet::default();
        cells.insert(vec![0, 0]); // (cash, 1)
        cells.insert(vec![2, 2]); // (dispute, 3)
        let rows = semi_join(&t, &[0, 1], &cells).unwrap();
        assert_eq!(rows, vec![0, 2, 3]);
    }

    #[test]
    fn single_column_join() {
        let t = table();
        let mut cells = FxHashSet::default();
        cells.insert(vec![1]); // credit
        let rows = semi_join(&t, &[0], &cells).unwrap();
        assert_eq!(rows, vec![1, 5]);
    }

    #[test]
    fn empty_cell_set_short_circuits() {
        let t = table();
        let rows = semi_join(&t, &[0, 1], &FxHashSet::default()).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn non_categorical_column_is_error() {
        let schema = Schema::new(vec![Field::new("fare", ColumnType::Float64)]);
        let mut b = TableBuilder::new(schema);
        b.push_row(&[1.0f64.into()]).unwrap();
        let t = b.finish();
        let mut cells = FxHashSet::default();
        cells.insert(vec![0]);
        assert!(semi_join(&t, &[0], &cells).is_err());
    }
}
