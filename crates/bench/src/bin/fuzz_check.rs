//! The deterministic fuzz harness over `tabula-check`'s differential
//! oracle: generate N seeded cases, replay each through the full pipeline
//! (every materialization mode, thread counts 1 and 4) and the naive
//! reference implementation, and fail loudly on the first divergence —
//! after auto-shrinking it to a minimal reproducer written next to the
//! JSON summary as a ready-to-paste `#[test]`.
//!
//! ```bash
//! cargo run --release -p tabula-bench --bin fuzz_check -- --seed 42 --cases 200
//! ```
//!
//! Exit status is non-zero on divergence, so CI can gate on it (the
//! `fuzz-smoke` job runs three pinned seeds at two thread counts).
//! `BENCH_fuzz_check.json` records coverage either way. `--snapshot`
//! additionally freezes every built cube into a `tabula-store` snapshot,
//! thaws it, and requires byte-identical fingerprints, answers and
//! re-frozen bytes (the CI `snapshot` job's sweep). `--ingest` streams
//! each case through the `tabula-ingest` pipeline barrier by barrier and
//! requires the streamed cube to stay differentially equivalent to a
//! from-scratch build on every prefix (the CI `ingest` job's sweep).
//! `--encoding` rebuilds every case under `TABULA_ENCODING=off` and
//! `force` and requires byte-identical fingerprints, iceberg sets and
//! served answers (the CI `encoding` job's sweep). `--all` turns on
//! every opt-in lane at once.

use serde::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;
use tabula_bench::write_run_summary;
use tabula_check::{
    diff_case, diff_ingest_case, diff_sql_case, gen_case, shrink, CaseSpec, Divergence,
};
use tabula_obs as obs;

struct Args {
    seed: u64,
    cases: u64,
    no_shrink: bool,
    snapshot: bool,
    ingest: bool,
    encoding: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        cases: 100,
        no_shrink: false,
        snapshot: false,
        ingest: false,
        encoding: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                args.seed = it.next().and_then(|v| v.parse().ok()).expect("--seed <u64>");
            }
            "--cases" => {
                args.cases = it.next().and_then(|v| v.parse().ok()).expect("--cases <u64>");
            }
            "--no-shrink" => args.no_shrink = true,
            "--snapshot" => args.snapshot = true,
            "--ingest" => args.ingest = true,
            "--encoding" => args.encoding = true,
            "--all" => {
                args.snapshot = true;
                args.ingest = true;
                args.encoding = true;
            }
            other => {
                eprintln!(
                    "unknown flag {other}; usage: fuzz_check [--seed S] [--cases N] \
                     [--no-shrink] [--snapshot] [--ingest] [--encoding] [--all]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Per-case coverage counters accumulated into the JSON summary.
#[derive(Default)]
struct Coverage {
    cells: usize,
    queries: usize,
    statements: usize,
    ingest_barriers: usize,
    ingest_cells: usize,
}

/// Run the cube diff, the SQL diff and (opt-in) the ingest lane for one case.
fn run_one(case: &CaseSpec, sql_seed: u64, ingest: bool) -> Result<Coverage, Divergence> {
    let report = diff_case(case)?;
    let statements = diff_sql_case(case, sql_seed, 8)?;
    let mut cov = Coverage {
        cells: report.cells_checked,
        queries: report.queries_checked,
        statements,
        ..Coverage::default()
    };
    if ingest {
        let ingest_report = diff_ingest_case(case)?;
        cov.ingest_barriers = ingest_report.barriers;
        cov.ingest_cells = ingest_report.cells_checked;
    }
    Ok(cov)
}

fn main() -> ExitCode {
    let args = parse_args();
    // The snapshot lane (freeze → thaw → replay, byte-identical) roughly
    // doubles per-case cost, so it is opt-in.
    tabula_check::set_snapshot_lane(args.snapshot);
    // The encoding lane triples the build count per case (ambient, off,
    // force), so it is opt-in as well.
    tabula_check::set_encoding_lane(args.encoding);
    let registry = obs::Registry::new();
    let start = Instant::now();

    let mut total = Coverage::default();
    let mut by_loss: BTreeMap<String, u64> = BTreeMap::new();
    let mut failure: Option<(u64, CaseSpec, Divergence)> = None;

    for i in 0..args.cases {
        let case_seed = args.seed.wrapping_add(i);
        let case = gen_case(case_seed);
        *by_loss.entry(case.loss.name().to_string()).or_default() += 1;
        let case_start = Instant::now();
        match run_one(&case, case_seed, args.ingest) {
            Ok(cov) => {
                total.cells += cov.cells;
                total.queries += cov.queries;
                total.statements += cov.statements;
                total.ingest_barriers += cov.ingest_barriers;
                total.ingest_cells += cov.ingest_cells;
                registry.counter("fuzz.cases_passed").inc();
            }
            Err(d) => {
                registry.counter("fuzz.divergences").inc();
                eprintln!("seed {case_seed} ({}): DIVERGENCE {d}", case.loss.name());
                failure = Some((case_seed, case, d));
            }
        }
        registry.histogram("fuzz.case_time").record_duration(case_start.elapsed());
        if failure.is_some() {
            break;
        }
    }

    let diverged = failure.is_some();
    if let Some((case_seed, case, first)) = failure {
        let (minimal, divergence) = if args.no_shrink {
            (case, first)
        } else {
            eprintln!("shrinking the diverging case...");
            match shrink(&case, |c| run_one(c, case_seed, args.ingest).err()) {
                Some(s) => {
                    eprintln!(
                        "shrunk to {} rows / {} queries / {} attrs in {} attempts",
                        s.case.rows.len(),
                        s.case.queries.len(),
                        s.case.attrs.len(),
                        s.attempts
                    );
                    (s.case, s.divergence)
                }
                // The divergence was flaky enough to vanish under re-run;
                // report the original case unshrunk.
                None => (case, first),
            }
        };
        let repro =
            minimal.to_regression_test(&format!("fuzz_repro_seed_{case_seed}"), &divergence);
        let path = format!("fuzz_repro_seed_{case_seed}.rs");
        if let Err(e) = std::fs::write(&path, &repro) {
            eprintln!("cannot write {path}: {e}");
        } else {
            eprintln!("reproducer written to {path}:\n{repro}");
        }
    }

    let extra = [
        ("seed", Value::Int(args.seed as i128)),
        ("cases", Value::Int(args.cases as i128)),
        ("cells_checked", Value::Int(total.cells as i128)),
        ("queries_checked", Value::Int(total.queries as i128)),
        ("sql_statements_checked", Value::Int(total.statements as i128)),
        ("ingest_barriers_checked", Value::Int(total.ingest_barriers as i128)),
        ("ingest_cells_checked", Value::Int(total.ingest_cells as i128)),
        ("diverged", Value::Str(diverged.to_string())),
        ("snapshot_lane", Value::Str(args.snapshot.to_string())),
        ("ingest_lane", Value::Str(args.ingest.to_string())),
        ("encoding_lane", Value::Str(args.encoding.to_string())),
        (
            "by_loss",
            Value::Obj(
                by_loss
                    .into_iter()
                    .map(|(k, v)| (k, Value::Int(v as i128)))
                    .collect::<BTreeMap<_, _>>(),
            ),
        ),
    ];
    match write_run_summary("fuzz_check", &registry.snapshot(), &extra) {
        Ok(path) => println!("summary written to {}", path.display()),
        Err(e) => eprintln!("cannot write summary: {e}"),
    }
    println!(
        "fuzz_check: seed {} cases {}: {} cells, {} queries, {} SQL statements, \
         {} ingest barriers checked in {:.1?}{}",
        args.seed,
        args.cases,
        total.cells,
        total.queries,
        total.statements,
        total.ingest_barriers,
        start.elapsed(),
        if diverged { " — DIVERGED" } else { ", no divergence" }
    );
    if diverged {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
