//! Timing helpers for the data-to-visualization breakdown.

use std::time::{Duration, Instant};

/// Run `f`, returning its result and elapsed wall time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Accumulates repeated measurements of one phase.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimer {
    total: Duration,
    count: u64,
}

impl PhaseTimer {
    /// Fold in one measurement.
    pub fn record(&mut self, d: Duration) {
        self.total += d;
        self.count += 1;
    }

    /// Total accumulated time.
    pub fn total(&self) -> Duration {
        self.total
    }

    /// Mean time per measurement (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }

    /// Number of measurements.
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_result_and_duration() {
        let (v, d) = timed(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn phase_timer_accumulates() {
        let mut t = PhaseTimer::default();
        assert_eq!(t.mean(), Duration::ZERO);
        t.record(Duration::from_millis(10));
        t.record(Duration::from_millis(30));
        assert_eq!(t.count(), 2);
        assert_eq!(t.total(), Duration::from_millis(40));
        assert_eq!(t.mean(), Duration::from_millis(20));
    }
}
