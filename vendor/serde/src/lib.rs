//! Vendored, std-only stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! a minimal serialization layer under the same crate name. Unlike real
//! serde it is not format-generic: [`Serialize`] lowers values into a JSON
//! [`Value`] tree and [`Deserialize`] lifts them back. The only consumer is
//! the sibling `serde_json` shim, and the repo's persistence tests only
//! require *round-trip* fidelity, which this provides.
//!
//! Supported via `#[derive(Serialize, Deserialize)]` (the dependency-free
//! `serde_derive` shim): named/tuple/unit structs and enums with
//! unit/tuple/struct variants, plus the `#[serde(skip)]` field attribute
//! (skipped fields deserialize via `Default`).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON document tree — the interchange form between [`Serialize`] and
/// [`Deserialize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact; JSON syntax cannot distinguish, the parser
    /// classifies by the absence of `.`/`e`).
    Int(i128),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` keeps output deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object's map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X, found Y while deserializing Z".
    pub fn expected(what: &str, found: &Value, context: &str) -> Self {
        DeError(format!("expected {what}, found {} ({context})", found.kind()))
    }

    /// Wrap with a field-path breadcrumb.
    pub fn in_field(self, field: &str) -> Self {
        DeError(format!("{field}: {}", self.0))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Lower `self` into a JSON [`Value`].
pub trait Serialize {
    /// The value tree representing `self`.
    fn to_value(&self) -> Value;
}

/// Lift `Self` back out of a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parse the value tree, or explain why it does not fit.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- scalars

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other, "bool")),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        DeError(format!("integer {i} out of range for {}", stringify!($t)))
                    }),
                    // Tolerate exact floats (a hand-edited file, say).
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError::expected("integer", other, stringify!($t))),
                }
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() { Value::Float(f) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    // Non-finite floats serialize as null (JSON has no
                    // NaN/Infinity literal).
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::expected("number", other, stringify!($t))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other, "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other, "char")),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other, "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Arc::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const N: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Arr(items) if items.len() == N => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("tuple array", other, "tuple")),
                }
            }
        }
    )+};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(m) => m.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect(),
            other => Err(DeError::expected("object", other, "map")),
        }
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("secs".to_owned(), Value::Int(self.as_secs() as i128));
        m.insert("nanos".to_owned(), Value::Int(self.subsec_nanos() as i128));
        Value::Obj(m)
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m =
            v.as_obj().ok_or_else(|| DeError::expected("{secs, nanos} object", v, "Duration"))?;
        let secs = u64::from_value(m.get("secs").unwrap_or(&Value::Null))
            .map_err(|e| e.in_field("secs"))?;
        let nanos = u32::from_value(m.get("nanos").unwrap_or(&Value::Null))
            .map_err(|e| e.in_field("nanos"))?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn container_round_trips() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        assert_eq!(Vec::<Option<u32>>::from_value(&v.to_value()).unwrap(), v);
        let t = (1u32, "x".to_owned());
        assert_eq!(<(u32, String)>::from_value(&t.to_value()).unwrap(), t);
        let d = Duration::new(3, 250);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u32::from_value(&Value::Str("nope".into())).is_err());
    }
}
