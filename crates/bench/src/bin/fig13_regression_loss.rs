//! **Figure 13** — performance under the linear-regression loss: data-
//! system time (13a) and actual loss in degrees (13b) as θ shrinks.
//!
//! ```bash
//! cargo run --release -p tabula-bench --bin fig13_regression_loss
//! ```

use tabula_bench::{
    default_queries, default_rows, print_comparison, standard_comparison, taxi_table, workload,
};
use tabula_core::loss::RegressionLoss;
use tabula_data::CUBED_ATTRIBUTES;

fn main() {
    let rows = default_rows();
    let table = taxi_table(rows);
    let attrs: Vec<&str> = CUBED_ATTRIBUTES[..5].to_vec();
    let queries = workload(&table, &attrs, default_queries());
    let fare = table.schema().index_of("fare_amount").unwrap();
    let tip = table.schema().index_of("tip_amount").unwrap();
    println!(
        "# Figure 13 | regression loss (tip vs fare) | rows = {rows} | {} queries | loss unit: degrees",
        queries.len()
    );
    for degrees in [10.0, 5.0, 2.5, 1.0] {
        let results =
            standard_comparison(&table, &attrs, RegressionLoss::new(fare, tip), degrees, &queries);
        print_comparison(&format!("{degrees}°"), degrees, &results);
    }
}
