//! **Figure 10** — cubing overhead on a *small* dataset (the paper uses
//! 5 GB because FullSamCube / PartSamCube cannot scale to the full table):
//! initialization time (10a) and memory footprint (10b) of Tabula vs the
//! fully materialized sampling cube and the naively-built partially
//! materialized cube, using the histogram-aware loss.
//!
//! ```bash
//! cargo run --release -p tabula-bench --bin fig10_cubing_overhead
//! ```

use std::sync::Arc;
use tabula_bench::{fmt_bytes, fmt_duration, taxi_table, SEED};
use tabula_core::loss::HistogramLoss;
use tabula_core::{MaterializationMode, SamplingCubeBuilder};
use tabula_data::CUBED_ATTRIBUTES;

fn main() {
    // Deliberately smaller than the other figures, mirroring the paper's
    // reduced 5 GB dataset for this comparison.
    let rows: usize =
        std::env::var("TABULA_BENCH_ROWS").ok().and_then(|v| v.parse().ok()).unwrap_or(5_000);
    let table = taxi_table(rows);
    let fare = table.schema().index_of("fare_amount").unwrap();
    let attrs: Vec<&str> = CUBED_ATTRIBUTES[..5].to_vec();
    println!("# Figure 10 | rows = {rows} | histogram loss | 5 attributes");

    println!(
        "\n{:<14} {:>10} {:>10} {:>10} {:>10} {:>11} {:>10} {:>10}",
        "approach", "theta", "init", "dry", "real+SamS", "memory", "cells", "samples"
    );
    println!("{}", "-".repeat(92));
    for theta in [2.0, 1.0, 0.5] {
        for (name, mode) in [
            ("Tabula", MaterializationMode::Tabula),
            ("Tabula*", MaterializationMode::TabulaStar),
            ("PartSamCube", MaterializationMode::PartSamCube),
            ("FullSamCube", MaterializationMode::FullSamCube),
        ] {
            let cube = SamplingCubeBuilder::new(
                Arc::clone(&table),
                &attrs,
                HistogramLoss::new(fare),
                theta,
            )
            .mode(mode)
            .seed(SEED)
            .build()
            .expect("build succeeds");
            let s = cube.stats();
            println!(
                "{name:<14} {:>9}$ {:>10} {:>10} {:>10} {:>11} {:>10} {:>10}",
                theta,
                fmt_duration(s.total),
                fmt_duration(s.dry_run),
                fmt_duration(s.real_run + s.selection),
                fmt_bytes(cube.memory_breakdown().total()),
                cube.materialized_cells(),
                cube.persisted_samples(),
            );
        }
        println!();
    }
}
