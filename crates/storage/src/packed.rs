//! Packed grouping-key buffers for the group-by / cube hot paths.
//!
//! Two generations of key packing live here:
//!
//! * [`PackedCodes`] — row-major `u32` code tuples, `width` codes per row.
//!   Hash-map lookups borrow fixed-width `&[u32]` slices directly, so the
//!   per-row key allocation disappears. This is the generic fallback: it
//!   works for any cardinalities.
//! * [`KeyLayout`] / [`PackedKeyBuf`] — **bit-packed** keys. Attribute `i`
//!   with cardinality `cᵢ` needs only `⌈log₂ cᵢ⌉` bits, so a whole key
//!   occupies `Σ ⌈log₂ cᵢ⌉` bits instead of 32 bits per attribute. When
//!   that sum fits in 64 bits (true for every realistic dashboard cube —
//!   e.g. seven attributes of cardinality 100 need 49 bits), a key is one
//!   `u64`: hashing is a single-word mix, equality one compare, and the
//!   lattice rollup merges parent states by *squeezing* the removed
//!   attribute's bit field out of the key without ever re-decoding.
//!
//! Layouts place attribute 0 in the **highest** bits, so ascending `u64`
//! order equals ascending lexicographic order of the decoded code tuples.
//! The rollup exploits this: sorting packed entries by `u64` gives exactly
//! the order the scalar path gets by sorting `Vec<u32>` keys, which is how
//! the two paths stay bit-identical (see `cube::rollup_from_finest`).
//!
//! Both buffer types reuse their allocation across refills (`clear` +
//! `resize` never shrink capacity), so steady-state loops — morsel after
//! morsel, or incremental-refresh round after round — allocate nothing.

use crate::table::RowId;

/// A row-major buffer of grouping codes: `width` codes per row, packed
/// contiguously. Reusable across morsels via [`PackedCodes::fill`].
#[derive(Debug, Default)]
pub struct PackedCodes {
    width: usize,
    rows: usize,
    flat: Vec<u32>,
}

impl PackedCodes {
    /// An empty buffer for keys of `width` codes.
    pub fn new(width: usize) -> Self {
        PackedCodes { width, rows: 0, flat: Vec::new() }
    }

    /// Repack the buffer with the codes of `rows`, read from the
    /// per-column `code_slices` (one `&[u32]` per grouping column, full
    /// table length). Column-major fill: each source slice is walked once.
    pub fn fill(&mut self, code_slices: &[&[u32]], rows: &[RowId]) {
        debug_assert_eq!(code_slices.len(), self.width);
        self.rows = rows.len();
        self.flat.clear();
        self.flat.resize(rows.len() * self.width, 0);
        for (c, codes) in code_slices.iter().enumerate() {
            let mut at = c;
            for &row in rows {
                self.flat[at] = codes[row as usize];
                at += self.width;
            }
        }
    }

    /// Repack with a contiguous row range (the morsel fast path — no row
    /// id indirection).
    pub fn fill_range(&mut self, code_slices: &[&[u32]], range: std::ops::Range<usize>) {
        debug_assert_eq!(code_slices.len(), self.width);
        self.rows = range.len();
        self.flat.clear();
        self.flat.resize(range.len() * self.width, 0);
        for (c, codes) in code_slices.iter().enumerate() {
            let mut at = c;
            for &code in &codes[range.clone()] {
                self.flat[at] = code;
                at += self.width;
            }
        }
    }

    /// Number of packed rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the buffer holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Allocated capacity, in codes (diagnostics / capacity tests).
    pub fn capacity(&self) -> usize {
        self.flat.capacity()
    }

    /// The `i`-th row's key as a fixed-width slice.
    #[inline]
    pub fn key(&self, i: usize) -> &[u32] {
        &self.flat[i * self.width..(i + 1) * self.width]
    }

    /// Iterate the packed keys in row order.
    pub fn keys(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.rows).map(|i| self.key(i))
    }
}

/// Bit-field layout of a packed grouping key: attribute `i` occupies
/// `bits[i] = ⌈log₂ cᵢ⌉` bits (0 bits when `cᵢ ≤ 1` — a single-valued
/// attribute carries no information), laid out with attribute 0 at the
/// highest bit position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyLayout {
    bits: Vec<u8>,
    shifts: Vec<u8>,
    total_bits: u32,
}

impl KeyLayout {
    /// Build the layout for the given per-attribute cardinalities, or
    /// `None` when the packed key would exceed 64 bits (callers then fall
    /// back to [`PackedCodes`] slice keys).
    pub fn from_cardinalities(cards: &[usize]) -> Option<KeyLayout> {
        let bits: Vec<u8> = cards.iter().map(|&c| Self::bits_for(c)).collect();
        let total: u32 = bits.iter().map(|&b| b as u32).sum();
        if total > 64 {
            return None;
        }
        // Attribute 0 highest: shiftᵢ = total − (bits₀ + … + bitsᵢ).
        let mut shifts = Vec::with_capacity(bits.len());
        let mut used = 0u32;
        for &b in &bits {
            used += b as u32;
            shifts.push((total - used) as u8);
        }
        Some(KeyLayout { bits, shifts, total_bits: total })
    }

    /// Bits needed to store any code of an attribute with cardinality
    /// `card` (codes are dense `0..card`).
    fn bits_for(card: usize) -> u8 {
        if card <= 1 {
            0
        } else {
            (usize::BITS - (card - 1).leading_zeros()) as u8
        }
    }

    /// Number of attributes in the key.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Total bits a packed key occupies (`Σ ⌈log₂ cᵢ⌉ ≤ 64`).
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Bit width of attribute `i`.
    pub fn attr_bits(&self, i: usize) -> u32 {
        self.bits[i] as u32
    }

    #[inline]
    fn field_mask(bits: u32) -> u64 {
        // Per-attribute widths are ≤ 32 (codes are u32), so no overflow.
        (1u64 << bits) - 1
    }

    /// Pack one code tuple. Codes must be in range (`< 2^bits[i]`); out of
    /// range codes would alias, so debug builds assert.
    #[inline]
    pub fn encode(&self, codes: &[u32]) -> u64 {
        debug_assert_eq!(codes.len(), self.bits.len());
        let mut key = 0u64;
        for (i, &c) in codes.iter().enumerate() {
            debug_assert!(
                self.bits[i] == 32 || (c as u64) < (1u64 << self.bits[i]),
                "code {c} exceeds {} bits",
                self.bits[i]
            );
            key |= (c as u64) << self.shifts[i];
        }
        key
    }

    /// Whether every code of `codes` fits its bit field — i.e. whether
    /// [`encode`](Self::encode) is injective for this tuple. Build-side
    /// guard for semi-join probes whose cells may carry codes from a wider
    /// domain than the probe table's.
    #[inline]
    pub fn fits(&self, codes: &[u32]) -> bool {
        codes.len() == self.bits.len()
            && codes.iter().zip(&self.bits).all(|(&c, &b)| b == 32 || (c as u64) < (1u64 << b))
    }

    /// Unpack a key into `out` (cleared first).
    #[inline]
    pub fn decode_into(&self, key: u64, out: &mut Vec<u32>) {
        out.clear();
        for i in 0..self.bits.len() {
            let b = self.bits[i] as u32;
            let field = if b == 0 { 0 } else { (key >> self.shifts[i]) & Self::field_mask(b) };
            out.push(field as u32);
        }
    }

    /// Unpack a key into a fresh vector.
    pub fn decode(&self, key: u64) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.bits.len());
        self.decode_into(key, &mut out);
        out
    }

    /// Remove attribute `removed`'s bit field from `key`, closing the gap —
    /// the packed form of dropping one position from a compact code tuple.
    /// The result is exactly what [`Self::without_attr`]'s layout encodes
    /// for the shortened tuple, so the lattice rollup maps parent keys to
    /// child keys with two shifts and a mask, never re-decoding.
    #[inline]
    pub fn squeeze(&self, key: u64, removed: usize) -> u64 {
        let b = self.bits[removed] as u32;
        if b == 0 {
            return key;
        }
        let s = self.shifts[removed] as u32;
        let low = if s == 0 { 0 } else { key & ((1u64 << s) - 1) };
        let high = if s + b >= 64 { 0 } else { key >> (s + b) };
        (high << s) | low
    }

    /// The layout of keys with attribute `removed` squeezed out.
    pub fn without_attr(&self, removed: usize) -> KeyLayout {
        let b = self.bits[removed] as u32;
        let mut bits = self.bits.clone();
        bits.remove(removed);
        let total = self.total_bits - b;
        let mut shifts = Vec::with_capacity(bits.len());
        let mut used = 0u32;
        for &w in &bits {
            used += w as u32;
            shifts.push((total - used) as u8);
        }
        KeyLayout { bits, shifts, total_bits: total }
    }
}

/// A reusable buffer of bit-packed `u64` grouping keys, one per row —
/// the [`PackedCodes`] counterpart for layouts that fit 64 bits. Filled
/// column-major (each code slice walked once, OR-ing its shifted field
/// in), consumed as a plain `&[u64]`. Refills reuse capacity.
#[derive(Debug, Default)]
pub struct PackedKeyBuf {
    keys: Vec<u64>,
}

impl PackedKeyBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        PackedKeyBuf::default()
    }

    /// Pack the keys of a contiguous row range.
    pub fn fill_range(
        &mut self,
        layout: &KeyLayout,
        code_slices: &[&[u32]],
        range: std::ops::Range<usize>,
    ) {
        debug_assert_eq!(code_slices.len(), layout.width());
        self.keys.clear();
        self.keys.resize(range.len(), 0);
        for (i, codes) in code_slices.iter().enumerate() {
            let shift = layout.shifts[i];
            if layout.bits[i] == 0 {
                continue;
            }
            for (k, &code) in self.keys.iter_mut().zip(&codes[range.clone()]) {
                *k |= (code as u64) << shift;
            }
        }
    }

    /// Pack the keys of an explicit row-id list (selection-vector path).
    pub fn fill(&mut self, layout: &KeyLayout, code_slices: &[&[u32]], rows: &[RowId]) {
        debug_assert_eq!(code_slices.len(), layout.width());
        self.keys.clear();
        self.keys.resize(rows.len(), 0);
        for (i, codes) in code_slices.iter().enumerate() {
            let shift = layout.shifts[i];
            if layout.bits[i] == 0 {
                continue;
            }
            for (k, &row) in self.keys.iter_mut().zip(rows) {
                *k |= (codes[row as usize] as u64) << shift;
            }
        }
    }

    /// The packed keys, in row order.
    #[inline]
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Number of packed rows.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the buffer holds no rows.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Allocated capacity, in keys (diagnostics / capacity tests).
    pub fn capacity(&self) -> usize {
        self.keys.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_transposes_column_slices() {
        let col_a: &[u32] = &[10, 11, 12, 13];
        let col_b: &[u32] = &[20, 21, 22, 23];
        let mut p = PackedCodes::new(2);
        p.fill(&[col_a, col_b], &[0, 2, 3]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.key(0), &[10, 20]);
        assert_eq!(p.key(1), &[12, 22]);
        assert_eq!(p.key(2), &[13, 23]);
        let all: Vec<&[u32]> = p.keys().collect();
        assert_eq!(all, vec![&[10, 20][..], &[12, 22][..], &[13, 23][..]]);
    }

    #[test]
    fn fill_range_matches_fill() {
        let col: &[u32] = &[5, 6, 7, 8, 9];
        let mut a = PackedCodes::new(1);
        let mut b = PackedCodes::new(1);
        a.fill(&[col], &[1, 2, 3]);
        b.fill_range(&[col], 1..4);
        assert_eq!(a.key(0), b.key(0));
        assert_eq!(a.key(2), b.key(2));
    }

    #[test]
    fn zero_width_keys() {
        let mut p = PackedCodes::new(0);
        p.fill(&[], &[0, 1, 2]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.key(1), &[] as &[u32]);
        assert_eq!(p.keys().count(), 3);
    }

    #[test]
    fn refill_reuses_buffer() {
        let col: &[u32] = &[1, 2, 3];
        let mut p = PackedCodes::new(1);
        p.fill(&[col], &[0, 1, 2]);
        p.fill(&[col], &[2]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.key(0), &[3]);
    }

    #[test]
    fn packed_codes_refills_never_reallocate() {
        // Satellite: steady-state refills (incremental-refresh rounds,
        // morsel loops) must reuse the high-water-mark allocation.
        let col: Vec<u32> = (0..1000).collect();
        let slices: Vec<&[u32]> = vec![&col, &col];
        let mut p = PackedCodes::new(2);
        p.fill_range(&slices, 0..1000);
        let cap = p.capacity();
        let ptr = p.flat.as_ptr();
        for round in 0..10 {
            let n = 100 * (round % 5 + 1);
            p.fill_range(&slices, 0..n);
            assert_eq!(p.len(), n);
            let rows: Vec<RowId> = (0..n as u32).collect();
            p.fill(&slices, &rows);
            assert_eq!(p.capacity(), cap, "capacity changed on round {round}");
            assert_eq!(p.flat.as_ptr(), ptr, "buffer reallocated on round {round}");
        }
    }

    #[test]
    // The literal's groups mirror the 2/2/1-bit field widths, not bytes.
    #[allow(clippy::unusual_byte_groupings)]
    fn layout_packs_attr0_highest() {
        // cards (4, 3, 2) → bits (2, 2, 1), total 5.
        let l = KeyLayout::from_cardinalities(&[4, 3, 2]).unwrap();
        assert_eq!(l.total_bits(), 5);
        assert_eq!((l.attr_bits(0), l.attr_bits(1), l.attr_bits(2)), (2, 2, 1));
        let k = l.encode(&[3, 2, 1]);
        assert_eq!(k, 0b11_10_1);
        assert_eq!(l.decode(k), vec![3, 2, 1]);
        // Ascending u64 ⇔ ascending lexicographic code order.
        assert!(l.encode(&[1, 2, 1]) < l.encode(&[2, 0, 0]));
        assert!(l.encode(&[2, 0, 1]) < l.encode(&[2, 1, 0]));
    }

    #[test]
    fn layout_handles_degenerate_widths() {
        // Single-valued attributes carry zero bits.
        let l = KeyLayout::from_cardinalities(&[1, 5, 1]).unwrap();
        assert_eq!(l.total_bits(), 3);
        let k = l.encode(&[0, 4, 0]);
        assert_eq!(l.decode(k), vec![0, 4, 0]);
        // Empty layout: the ALL cuboid's zero-width key.
        let l = KeyLayout::from_cardinalities(&[]).unwrap();
        assert_eq!(l.encode(&[]), 0);
        assert_eq!(l.decode(0), Vec::<u32>::new());
    }

    #[test]
    fn layout_rejects_keys_over_64_bits() {
        // 22 + 22 + 20 = 64 bits: exactly fits.
        assert!(KeyLayout::from_cardinalities(&[1 << 22, 1 << 22, 1 << 20]).is_some());
        // 22 + 22 + 21 = 65 bits: one too many.
        assert!(KeyLayout::from_cardinalities(&[1 << 22, 1 << 22, 1 << 21]).is_none());
    }

    #[test]
    fn squeeze_matches_child_layout_encoding() {
        let l = KeyLayout::from_cardinalities(&[4, 3, 2, 1]).unwrap();
        let codes = [3u32, 2, 1, 0];
        let key = l.encode(&codes);
        for removed in 0..4 {
            let child = l.without_attr(removed);
            let mut child_codes = codes.to_vec();
            child_codes.remove(removed);
            assert_eq!(l.squeeze(key, removed), child.encode(&child_codes), "attr {removed}");
        }
    }

    #[test]
    fn squeeze_full_width_key() {
        // 64 bits total: squeezing must not shift by ≥ 64.
        let l = KeyLayout::from_cardinalities(&[1 << 32, 1 << 32]).unwrap();
        assert_eq!(l.total_bits(), 64);
        let key = l.encode(&[u32::MAX, 7]);
        assert_eq!(l.squeeze(key, 0), 7);
        assert_eq!(l.squeeze(key, 1), u32::MAX as u64);
    }

    #[test]
    fn fits_guards_out_of_range_codes() {
        let l = KeyLayout::from_cardinalities(&[4, 2]).unwrap();
        assert!(l.fits(&[3, 1]));
        assert!(!l.fits(&[4, 0]));
        assert!(!l.fits(&[0, 2]));
        assert!(!l.fits(&[0]));
    }

    #[test]
    fn key_buf_matches_per_row_encode() {
        let l = KeyLayout::from_cardinalities(&[4, 3]).unwrap();
        let a: Vec<u32> = vec![0, 1, 2, 3, 0];
        let b: Vec<u32> = vec![2, 1, 0, 2, 1];
        let slices: Vec<&[u32]> = vec![&a, &b];
        let mut buf = PackedKeyBuf::new();
        buf.fill_range(&l, &slices, 1..4);
        let expect: Vec<u64> = (1..4).map(|r| l.encode(&[a[r], b[r]])).collect();
        assert_eq!(buf.keys(), &expect[..]);
        buf.fill(&l, &slices, &[4, 0]);
        assert_eq!(buf.keys(), &[l.encode(&[0, 1]), l.encode(&[0, 2])]);
    }

    #[test]
    fn key_buf_refills_never_reallocate() {
        let l = KeyLayout::from_cardinalities(&[16, 16]).unwrap();
        let a: Vec<u32> = (0..1000).map(|i| i % 16).collect();
        let slices: Vec<&[u32]> = vec![&a, &a];
        let mut buf = PackedKeyBuf::new();
        buf.fill_range(&l, &slices, 0..1000);
        let cap = buf.capacity();
        let ptr = buf.keys.as_ptr();
        for round in 0..10 {
            buf.fill_range(&l, &slices, 0..(round * 97) % 1000);
            assert_eq!(buf.capacity(), cap, "capacity changed on round {round}");
            assert_eq!(buf.keys.as_ptr(), ptr, "buffer reallocated on round {round}");
        }
    }
}
