//! Lightweight column encodings: run-length (RLE) and frame-of-reference
//! (FOR) compression for frozen column data, with the chunk kernels
//! pushed down onto the encoded form (DESIGN.md §13).
//!
//! Taxi-style geospatial attributes are heavily run-clustered once the
//! feed is sorted (payment type, vendor, passenger count repeat for long
//! stretches), and the measure columns sit in narrow ranges — so the
//! scan-dominated build and serve paths can touch far fewer bytes than
//! the plain 4/8-bytes-per-row layout. Two encodings cover those shapes:
//!
//! * **RLE** — `(value, cumulative end)` pairs over *bit-identical* runs.
//!   Bit identity (not `==`) keeps NaN runs and the `-0.0`/`0.0` split
//!   exact, so `decode ∘ encode` is the identity on every float column.
//! * **FOR** — a base ordinal plus fixed-width bit-packed deltas. The
//!   ordinal transform is bijective per type ([`Codable`]), so decode
//!   reproduces the source bits exactly.
//!
//! The selection is per-column at freeze time ([`choose`]), steered by
//! the `TABULA_ENCODING` knob (`auto` / `off` / `force`): `auto` encodes
//! only when a deterministic sampled estimator predicts a real byte win,
//! `force` encodes everything encodable (the fuzz lanes use it to reach
//! the edge cases), `off` keeps every column plain. Whatever the mode,
//! results are byte-identical — encoding only changes which kernel path
//! runs, never what it produces; the differential lanes in tabula-check
//! enforce that the same way they pin `TABULA_KERNELS=scalar`.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

use crate::shared::ColumnBuf;
use crate::types::Point;

/// Whether freshly frozen columns get encoded, mirroring
/// [`KernelMode`](crate::KernelMode)'s shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodingMode {
    /// Encode a column only when the sampled estimator predicts the
    /// encoded payload at ≤ [`AUTO_BYTE_FRACTION`] of the plain bytes.
    Auto,
    /// Never encode; every column stays on the plain path. This is the
    /// differential reference lane (`TABULA_ENCODING=off`).
    Off,
    /// Encode every encodable column with whichever of RLE/FOR is
    /// smaller, even when neither wins over plain — maximizes coverage
    /// of the encoded kernels in the fuzz lanes.
    Force,
}

const MODE_UNSET: u8 = u8::MAX;
static ENCODING_MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

fn mode_from_env() -> EncodingMode {
    match std::env::var("TABULA_ENCODING").ok().as_deref() {
        Some("off") => EncodingMode::Off,
        Some("force") => EncodingMode::Force,
        _ => EncodingMode::Auto,
    }
}

/// The active [`EncodingMode`]: the last [`set_encoding_mode`] override,
/// else the `TABULA_ENCODING` env knob (`auto` / `off` / `force`).
pub fn encoding_mode() -> EncodingMode {
    match ENCODING_MODE.load(Ordering::Relaxed) {
        0 => EncodingMode::Auto,
        1 => EncodingMode::Off,
        2 => EncodingMode::Force,
        _ => {
            let m = mode_from_env();
            set_encoding_mode(m);
            m
        }
    }
}

/// Override the encoding mode at runtime (used by the differential
/// harness and the `scan_compressed` micro-benchmark to pin one path).
pub fn set_encoding_mode(mode: EncodingMode) {
    let v = match mode {
        EncodingMode::Auto => 0,
        EncodingMode::Off => 1,
        EncodingMode::Force => 2,
    };
    ENCODING_MODE.store(v, Ordering::Relaxed);
}

/// Element types that can round-trip through a `u64` ordinal. The
/// transform must be bijective (decode reproduces the exact source bits)
/// but need not be order-preserving — FOR only uses it to bound the
/// delta width.
pub trait Codable: Copy + Send + Sync + 'static {
    /// Whether the type participates in encoding at all.
    const ENCODABLE: bool;
    /// Map to the `u64` ordinal domain.
    fn to_ordinal(self) -> u64;
    /// Inverse of [`to_ordinal`](Self::to_ordinal).
    fn from_ordinal(o: u64) -> Self;
}

impl Codable for u32 {
    const ENCODABLE: bool = true;
    #[inline]
    fn to_ordinal(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_ordinal(o: u64) -> Self {
        o as u32
    }
}

impl Codable for u64 {
    const ENCODABLE: bool = true;
    #[inline]
    fn to_ordinal(self) -> u64 {
        self
    }
    #[inline]
    fn from_ordinal(o: u64) -> Self {
        o
    }
}

impl Codable for i64 {
    const ENCODABLE: bool = true;
    // Sign-flip keeps the ordinal order-preserving for integers, so the
    // FOR base/width over a sorted column equals its value range.
    #[inline]
    fn to_ordinal(self) -> u64 {
        (self as u64) ^ (1u64 << 63)
    }
    #[inline]
    fn from_ordinal(o: u64) -> Self {
        (o ^ (1u64 << 63)) as i64
    }
}

impl Codable for f64 {
    const ENCODABLE: bool = true;
    // Raw bits: bijective (NaN payloads included), which is all FOR
    // needs. Not order-preserving across signs — `choose` simply won't
    // pick FOR for mixed-sign floats because the bit range is huge.
    #[inline]
    fn to_ordinal(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_ordinal(o: u64) -> Self {
        f64::from_bits(o)
    }
}

impl Codable for Point {
    const ENCODABLE: bool = false;
    fn to_ordinal(self) -> u64 {
        unreachable!("Point columns never encode (ENCODABLE = false)")
    }
    fn from_ordinal(_: u64) -> Self {
        unreachable!("Point columns never encode (ENCODABLE = false)")
    }
}

/// RLE runs of a column: `values[k]` repeats over rows
/// `ends[k-1]..ends[k]` (with an implicit leading 0).
#[derive(Clone, Copy, Debug)]
pub struct RunsView<'a, T> {
    /// One value per run.
    pub values: &'a [T],
    /// Cumulative exclusive run ends, strictly increasing; the last
    /// entry equals the row count.
    pub ends: &'a [u32],
}

impl<'a, T: Copy> RunsView<'a, T> {
    /// Number of runs.
    #[inline]
    pub fn run_count(&self) -> usize {
        self.values.len()
    }

    /// Index of the run containing `row`.
    #[inline]
    pub fn run_of(&self, row: u32) -> usize {
        self.ends.partition_point(|&e| e <= row)
    }
}

/// FOR frame of a column: `ordinal(i) = base + delta(i)` with deltas
/// bit-packed LSB-first at a fixed `width` across `words`.
#[derive(Clone, Copy, Debug)]
pub struct ForView<'a> {
    /// Smallest ordinal in the column.
    pub base: u64,
    /// Delta width in bits (0 ⇒ every element equals `base`).
    pub width: u32,
    /// Packed delta words.
    pub words: &'a [u64],
    /// Row count.
    pub len: usize,
}

impl<'a> ForView<'a> {
    /// The ordinal at `row` — a shift/mask over at most two words.
    #[inline]
    pub fn get_ordinal(&self, row: usize) -> u64 {
        debug_assert!(row < self.len);
        let w = self.width as usize;
        if w == 0 {
            return self.base;
        }
        let bit = row * w;
        let word = bit / 64;
        let off = bit % 64;
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let mut delta = self.words[word] >> off;
        if off + w > 64 {
            delta |= self.words[word + 1] << (64 - off);
        }
        self.base.wrapping_add(delta & mask)
    }
}

/// A frozen column payload in encoded form. The payload buffers are
/// themselves [`ColumnBuf`]s (owned on the build path, shared zero-copy
/// views on the snapshot-restore path); they are always plain —
/// `Encoded` never nests.
#[derive(Clone, Debug)]
pub enum Encoded<T: Codable> {
    /// Run-length encoded: values + cumulative exclusive run ends.
    Rle {
        /// Decoded row count.
        len: usize,
        /// One value per run.
        values: ColumnBuf<T>,
        /// Strictly increasing run ends; last entry == `len`.
        ends: ColumnBuf<u32>,
    },
    /// Frame-of-reference with fixed-width bit-packed delta ordinals.
    For {
        /// Decoded row count.
        len: usize,
        /// Smallest ordinal.
        base: u64,
        /// Delta width in bits (0..=64).
        width: u32,
        /// `ceil(len * width / 64)` packed words.
        words: ColumnBuf<u64>,
    },
}

impl<T: Codable> Encoded<T> {
    /// Decoded row count.
    pub fn len(&self) -> usize {
        match self {
            Encoded::Rle { len, .. } | Encoded::For { len, .. } => *len,
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical payload bytes (what a scan over the encoded form
    /// actually touches, and what a snapshot block stores).
    pub fn encoded_bytes(&self) -> usize {
        match self {
            Encoded::Rle { values, ends, .. } => {
                values.len() * std::mem::size_of::<T>() + ends.len() * 4
            }
            Encoded::For { words, .. } => words.len() * 8,
        }
    }

    /// The RLE runs, if run-length encoded.
    #[inline]
    pub fn runs(&self) -> Option<RunsView<'_, T>> {
        match self {
            Encoded::Rle { values, ends, .. } => Some(RunsView { values, ends }),
            Encoded::For { .. } => None,
        }
    }

    /// The FOR frame, if frame-of-reference encoded.
    #[inline]
    pub fn for_view(&self) -> Option<ForView<'_>> {
        match self {
            Encoded::For { len, base, width, words } => {
                Some(ForView { base: *base, width: *width, words, len: *len })
            }
            Encoded::Rle { .. } => None,
        }
    }

    /// Materialize the plain column, bit-identical to the encode input.
    pub fn decode(&self) -> Vec<T> {
        match self {
            Encoded::Rle { len, values, ends } => {
                let mut out = Vec::with_capacity(*len);
                let mut start = 0u32;
                for (&v, &end) in values.iter().zip(ends.iter()) {
                    out.resize(out.len() + (end - start) as usize, v);
                    start = end;
                }
                debug_assert_eq!(out.len(), *len);
                out
            }
            Encoded::For { len, .. } => {
                let view = self.for_view().expect("For variant");
                (0..*len).map(|i| T::from_ordinal(view.get_ordinal(i))).collect()
            }
        }
    }

    /// The value at `row` without decoding the column.
    pub fn get(&self, row: usize) -> T {
        match self {
            Encoded::Rle { values, ends, .. } => {
                let run = ends.partition_point(|&e| e as usize <= row);
                values[run]
            }
            Encoded::For { .. } => {
                let view = self.for_view().expect("For variant");
                T::from_ordinal(view.get_ordinal(row))
            }
        }
    }
}

/// Run-length encode `data` over bit-identical runs.
pub fn encode_rle<T: Codable>(data: &[T]) -> Encoded<T> {
    let mut values = Vec::new();
    let mut ends = Vec::new();
    let mut iter = data.iter().enumerate();
    if let Some((_, &first)) = iter.next() {
        let mut cur = first;
        for (i, &x) in iter {
            if x.to_ordinal() != cur.to_ordinal() {
                values.push(cur);
                ends.push(i as u32);
                cur = x;
            }
        }
        values.push(cur);
        ends.push(data.len() as u32);
    }
    Encoded::Rle { len: data.len(), values: values.into(), ends: ends.into() }
}

/// Frame-of-reference encode `data`: base = min ordinal, deltas packed
/// at the smallest width that fits the ordinal range.
pub fn encode_for<T: Codable>(data: &[T]) -> Encoded<T> {
    let (base, width) = for_frame(data);
    let mut words = vec![0u64; (data.len() * width as usize).div_ceil(64)];
    if width > 0 {
        for (i, &x) in data.iter().enumerate() {
            let delta = x.to_ordinal().wrapping_sub(base);
            let bit = i * width as usize;
            let (word, off) = (bit / 64, bit % 64);
            words[word] |= delta << off;
            if off + width as usize > 64 {
                words[word + 1] |= delta >> (64 - off);
            }
        }
    }
    Encoded::For { len: data.len(), base, width, words: words.into() }
}

/// The (base, delta width) a FOR encoding of `data` would use.
fn for_frame<T: Codable>(data: &[T]) -> (u64, u32) {
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for &x in data {
        let o = x.to_ordinal();
        lo = lo.min(o);
        hi = hi.max(o);
    }
    if data.is_empty() {
        return (0, 0);
    }
    let range = hi - lo;
    let width = if range == 0 { 0 } else { 64 - range.leading_zeros() };
    (lo, width)
}

/// What [`choose`] picked for a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// Stay on the plain contiguous layout.
    Plain,
    /// Run-length encode.
    Rle,
    /// Frame-of-reference encode.
    For,
}

/// `Auto` encodes only below this fraction of the plain payload bytes:
/// marginal wins don't pay for the run bookkeeping on the scan side.
pub const AUTO_BYTE_FRACTION: f64 = 0.75;

/// `Auto` leaves short columns plain — the fixed per-column overhead and
/// the run cursors dominate under this length.
pub const AUTO_MIN_ROWS: usize = 256;

/// Pick an encoding for `data` under `mode`. Deterministic: the run
/// estimator samples fixed contiguous windows (no RNG, no clock), so the
/// same column always gets the same choice — a requirement for
/// byte-identical re-freezes.
pub fn choose<T: Codable>(data: &[T], mode: EncodingMode) -> Choice {
    if !T::ENCODABLE || mode == EncodingMode::Off {
        return Choice::Plain;
    }
    if data.is_empty() {
        // Force still exercises the encoded path on empty columns.
        return if mode == EncodingMode::Force { Choice::Rle } else { Choice::Plain };
    }
    let plain_bytes = std::mem::size_of_val(data);
    let est_runs = estimate_runs(data);
    let rle_bytes = est_runs * (std::mem::size_of::<T>() + 4);
    let (_, width) = for_frame(data);
    let for_bytes = (data.len() * width as usize).div_ceil(8);
    match mode {
        EncodingMode::Force => {
            if rle_bytes <= for_bytes {
                Choice::Rle
            } else {
                Choice::For
            }
        }
        EncodingMode::Auto => {
            let budget = (plain_bytes as f64 * AUTO_BYTE_FRACTION) as usize;
            if data.len() < AUTO_MIN_ROWS {
                Choice::Plain
            } else if rle_bytes <= for_bytes && rle_bytes <= budget {
                Choice::Rle
            } else if for_bytes < rle_bytes && for_bytes <= budget {
                Choice::For
            } else {
                Choice::Plain
            }
        }
        EncodingMode::Off => Choice::Plain,
    }
}

/// Estimate the total run count by scanning a few fixed, evenly spaced
/// contiguous windows and extrapolating the boundary density. Contiguous
/// windows (rather than a strided sample) see real adjacent pairs, so
/// clustered data estimates low and random data estimates high — the
/// two cases `Auto` must separate.
fn estimate_runs<T: Codable>(data: &[T]) -> usize {
    const WINDOWS: usize = 8;
    const WINDOW_LEN: usize = 128;
    if data.len() <= WINDOWS * WINDOW_LEN {
        let mut runs = 1usize;
        for w in data.windows(2) {
            runs += (w[0].to_ordinal() != w[1].to_ordinal()) as usize;
        }
        return runs;
    }
    let stride = data.len() / WINDOWS;
    let mut boundaries = 0usize;
    let mut pairs = 0usize;
    for w in 0..WINDOWS {
        let start = w * stride;
        let win = &data[start..start + WINDOW_LEN];
        for pair in win.windows(2) {
            boundaries += (pair[0].to_ordinal() != pair[1].to_ordinal()) as usize;
            pairs += 1;
        }
    }
    // Round up: overestimating runs only makes Auto more conservative.
    1 + (boundaries * data.len()).div_ceil(pairs.max(1))
}

/// Process-wide count of encoded-column decodes (cache fills), for the
/// decode-exactly-once tests.
static DECODE_COUNT: AtomicU64 = AtomicU64::new(0);

/// How many encoded columns have materialized their decode cache so far
/// in this process.
pub fn decode_count() -> u64 {
    DECODE_COUNT.load(Ordering::Relaxed)
}

struct EncodedInner<T: Codable> {
    enc: Encoded<T>,
    decoded: OnceLock<Vec<T>>,
}

/// A refcounted encoded column payload with a lazily materialized,
/// shared decode cache: clones share both the payload and the cache, so
/// however many readers dereference the column, the decode runs once.
pub struct EncodedBuf<T: Codable> {
    inner: Arc<EncodedInner<T>>,
}

impl<T: Codable> EncodedBuf<T> {
    /// Wrap an encoded payload.
    pub fn new(enc: Encoded<T>) -> Self {
        EncodedBuf { inner: Arc::new(EncodedInner { enc, decoded: OnceLock::new() }) }
    }

    /// The encoded payload.
    #[inline]
    pub fn encoded(&self) -> &Encoded<T> {
        &self.inner.enc
    }

    /// Decoded row count (no decode).
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.enc.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The decoded rows, materializing the shared cache on first use.
    #[inline]
    pub fn decoded(&self) -> &[T] {
        self.inner.decoded.get_or_init(|| {
            DECODE_COUNT.fetch_add(1, Ordering::Relaxed);
            self.inner.enc.decode()
        })
    }
}

impl<T: Codable> Clone for EncodedBuf<T> {
    fn clone(&self) -> Self {
        EncodedBuf { inner: Arc::clone(&self.inner) }
    }
}

impl<T: Codable + std::fmt::Debug> std::fmt::Debug for EncodedBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EncodedBuf({:?} rows", self.len())?;
        match &self.inner.enc {
            Encoded::Rle { values, .. } => write!(f, ", rle {} runs)", values.len()),
            Encoded::For { width, .. } => write!(f, ", for width {width})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_round_trip<T: Codable + std::fmt::Debug>(data: &[T]) {
        let rle = encode_rle(data);
        assert_eq!(rle.len(), data.len());
        let dec = rle.decode();
        assert_eq!(dec.len(), data.len());
        for (i, (&a, &b)) in data.iter().zip(&dec).enumerate() {
            assert_eq!(a.to_ordinal(), b.to_ordinal(), "rle row {i}");
            assert_eq!(a.to_ordinal(), rle.get(i).to_ordinal(), "rle get {i}");
        }
        let fo = encode_for(data);
        assert_eq!(fo.len(), data.len());
        let dec = fo.decode();
        for (i, (&a, &b)) in data.iter().zip(&dec).enumerate() {
            assert_eq!(a.to_ordinal(), b.to_ordinal(), "for row {i}");
            assert_eq!(a.to_ordinal(), fo.get(i).to_ordinal(), "for get {i}");
        }
    }

    #[test]
    fn adversarial_shapes_round_trip() {
        // Empty, single element, single run, alternating (max run count).
        assert_round_trip::<i64>(&[]);
        assert_round_trip(&[42i64]);
        assert_round_trip(&vec![7u32; 10_000]);
        let alternating: Vec<i64> = (0..4096).map(|i| (i % 2) as i64).collect();
        assert_round_trip(&alternating);
        // Width boundaries: range exactly at a power of two, full range.
        assert_round_trip(&[0u64, 1, (1 << 32) - 1, 1 << 32]);
        assert_round_trip(&[i64::MIN, i64::MAX, 0, -1, 1]);
        assert_round_trip(&[u64::MIN, u64::MAX]);
        // Floats: NaN runs, signed zeros, subnormals — bit identity.
        let f = [f64::NAN, f64::NAN, -0.0, 0.0, f64::MIN_POSITIVE / 2.0, f64::INFINITY];
        assert_round_trip(&f);
        let rle = encode_rle(&f);
        // The two NaNs are one run; -0.0 and 0.0 are distinct runs.
        assert_eq!(rle.runs().unwrap().run_count(), 5);
    }

    #[test]
    fn for_width_zero_and_64() {
        let constant = vec![9i64; 500];
        let fo = encode_for(&constant);
        let view = fo.for_view().unwrap();
        assert_eq!(view.width, 0);
        assert_eq!(fo.encoded_bytes(), 0);
        assert!(fo.decode().iter().all(|&x| x == 9));

        let full = [u64::MIN, u64::MAX, 1, u64::MAX - 1];
        let fo = encode_for(&full);
        assert_eq!(fo.for_view().unwrap().width, 64);
        assert_eq!(fo.decode(), full);
    }

    #[test]
    fn rle_runs_view_locates_rows() {
        let data = [5i64, 5, 5, 8, 8, 2];
        let enc = encode_rle(&data);
        let runs = enc.runs().unwrap();
        assert_eq!(runs.values, &[5, 8, 2]);
        assert_eq!(runs.ends, &[3, 5, 6]);
        assert_eq!(runs.run_of(0), 0);
        assert_eq!(runs.run_of(2), 0);
        assert_eq!(runs.run_of(3), 1);
        assert_eq!(runs.run_of(5), 2);
    }

    #[test]
    fn choose_separates_clustered_from_random() {
        // Long runs: RLE wins.
        let clustered: Vec<u32> = (0..20_000).map(|i| (i / 2_000) as u32).collect();
        assert_eq!(choose(&clustered, EncodingMode::Auto), Choice::Rle);
        // Small-range i64 with no runs: FOR wins.
        let narrow: Vec<i64> = (0..20_000).map(|i| 1_000_000 + (i * 37 % 251)).collect();
        assert_eq!(choose(&narrow, EncodingMode::Auto), Choice::For);
        // Wide-range runless data: plain.
        let wide: Vec<i64> =
            (0..20_000i64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15u64 as i64)).collect();
        assert_eq!(choose(&wide, EncodingMode::Auto), Choice::Plain);
        // Off pins plain even on perfect RLE data.
        assert_eq!(choose(&clustered, EncodingMode::Off), Choice::Plain);
        // Short columns stay plain under Auto, encode under Force.
        let short = vec![3u32; 10];
        assert_eq!(choose(&short, EncodingMode::Auto), Choice::Plain);
        assert_ne!(choose(&short, EncodingMode::Force), Choice::Plain);
        assert_ne!(choose(&[] as &[u32], EncodingMode::Force), Choice::Plain);
    }

    #[test]
    fn choice_is_deterministic_across_calls() {
        let data: Vec<i64> = (0..50_000).map(|i| (i / 100) % 37).collect();
        let first = choose(&data, EncodingMode::Auto);
        for _ in 0..5 {
            assert_eq!(choose(&data, EncodingMode::Auto), first);
        }
    }

    #[test]
    fn encoded_buf_decodes_once_across_clones() {
        let data: Vec<i64> = (0..1000).map(|i| i / 50).collect();
        let buf = EncodedBuf::new(encode_rle(&data));
        let clone = buf.clone();
        let before = decode_count();
        assert_eq!(buf.decoded(), &data[..]);
        assert_eq!(clone.decoded(), &data[..]);
        assert_eq!(buf.decoded().as_ptr(), clone.decoded().as_ptr());
        assert_eq!(decode_count() - before, 1, "clones must share one decode");
    }

    #[test]
    fn mode_round_trips() {
        let prev = encoding_mode();
        set_encoding_mode(EncodingMode::Force);
        assert_eq!(encoding_mode(), EncodingMode::Force);
        set_encoding_mode(EncodingMode::Off);
        assert_eq!(encoding_mode(), EncodingMode::Off);
        set_encoding_mode(prev);
    }

    proptest! {
        #[test]
        fn rle_round_trips_random_i64(data in proptest::collection::vec(-50i64..50, 0..300)) {
            assert_round_trip(&data);
        }

        #[test]
        fn for_round_trips_random_u64(data in proptest::collection::vec(0u64..u64::MAX, 0..300)) {
            assert_round_trip(&data);
        }

        #[test]
        fn round_trips_random_f64(bits in proptest::collection::vec(0u64..u64::MAX, 0..200)) {
            // Bit-pattern floats hit NaN payloads, ±0.0, ∞ and subnormals.
            let data: Vec<f64> = bits
                .iter()
                .map(|&s| match s % 8 {
                    0 => f64::NAN,
                    1 => -0.0,
                    2 => 0.0,
                    3 => f64::INFINITY,
                    4 => f64::from_bits(0x7FF8_0000_0000_0000 | (s >> 12)),
                    _ => f64::from_bits(s),
                })
                .collect();
            assert_round_trip(&data);
        }

        #[test]
        fn get_matches_decode_everywhere(data in proptest::collection::vec(0u32..6, 1..400)) {
            let enc = encode_rle(&data);
            for (i, &d) in enc.decode().iter().enumerate() {
                prop_assert_eq!(enc.get(i), d);
            }
            let enc = encode_for(&data);
            for (i, &d) in enc.decode().iter().enumerate() {
                prop_assert_eq!(enc.get(i), d);
            }
        }
    }
}
