//! Seeded generation of differential-test cases: random tables, cube
//! attribute subsets, θ values, query workloads and SQL statements.
//!
//! Everything is a pure function of the seed (the vendored `SmallRng` is
//! deterministic per seed), so a failing case is reproducible from its
//! seed alone and CI can pin seeds.

use crate::oracle::LossSpec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tabula_core::loss::expr::{AggFn, Expr, Side};
use tabula_core::SerflingConfig;
use tabula_sql::ast::{DropKind, LossRef, ShowKind, Statement, WhereTerm};
use tabula_storage::{CmpOp, ColumnType, Field, Point, Schema, Table, TableBuilder, Value};

/// A fully self-contained differential-test case: enough to rebuild the
/// table, the cube (in any mode, at any thread count) and the workload.
/// All fields are plain data so the shrinker can drop rows/attrs/queries
/// and a minimal case can be printed as a ready-to-paste regression test.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSpec {
    /// Diagnostic name, usually `case-<seed>`.
    pub name: String,
    /// Column names and types, in order.
    pub schema: Vec<(String, ColumnType)>,
    /// Row values, aligned with `schema`.
    pub rows: Vec<Vec<Value>>,
    /// Cubed-attribute subset (categorical column names).
    pub attrs: Vec<String>,
    /// Loss function under test.
    pub loss: LossSpec,
    /// Accuracy-loss threshold.
    pub theta: f64,
    /// Serfling `(ε, δ)` controlling the global-sample size.
    pub serfling: (f64, f64),
    /// Build seed handed to the pipeline.
    pub build_seed: u64,
    /// Equality-predicate workload over the cubed attributes; each query
    /// is a conjunction of `(attr, value)` pairs (empty = whole table).
    pub queries: Vec<Vec<(String, Value)>>,
}

impl CaseSpec {
    /// Materialize the case's table.
    pub fn table(&self) -> Arc<Table> {
        let fields =
            self.schema.iter().map(|(n, ty)| Field::new(n.clone(), *ty)).collect::<Vec<_>>();
        let mut b = TableBuilder::new(Schema::new(fields));
        for row in &self.rows {
            b.push_row(row).expect("case rows match case schema");
        }
        Arc::new(b.finish())
    }

    /// The Serfling configuration for the pipeline build.
    pub fn serfling_config(&self) -> SerflingConfig {
        SerflingConfig { epsilon: self.serfling.0, delta: self.serfling.1 }
    }
}

/// Generate the differential-test case for `seed`.
pub fn gen_case(seed: u64) -> CaseSpec {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1));
    let n_attrs = rng.gen_range(2..=3usize);
    let mut schema = Vec::new();
    let mut cards = Vec::new();
    for i in 0..n_attrs {
        cards.push(rng.gen_range(2..=4u32));
        let ty = if rng.gen_bool(0.6) { ColumnType::Str } else { ColumnType::Int64 };
        schema.push((format!("a{i}"), ty));
    }
    schema.push(("fare".to_string(), ColumnType::Float64));
    schema.push(("tip".to_string(), ColumnType::Float64));
    schema.push(("pickup".to_string(), ColumnType::Point));

    let n_rows = rng.gen_range(24..=110usize);
    let mut rows = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let mut row = Vec::with_capacity(schema.len());
        let mut codes = Vec::with_capacity(n_attrs);
        for (i, &card) in cards.iter().enumerate() {
            // Skew towards low codes so cell sizes are uneven.
            let j = rng.gen_range(0..card).min(rng.gen_range(0..card));
            codes.push(j);
            row.push(match schema[i].1 {
                ColumnType::Str => Value::Str(format!("v{j}")),
                _ => Value::Int64(j as i64),
            });
        }
        // Fare depends on the cell so per-cell means differ, with
        // occasional heavy outliers that push cells over θ.
        let mut fare =
            5.0 + 7.0 * codes[0] as f64 + 3.0 * codes[n_attrs - 1] as f64 + rng.gen_range(0.0..4.0);
        if rng.gen_bool(0.08) {
            fare *= rng.gen_range(5.0..15.0);
        }
        let tip = 0.15 * fare + rng.gen_range(0.0..1.5);
        let mut x = (codes[0] as f64 + 1.0) / (cards[0] as f64 + 1.0) + rng.gen_range(-0.05..0.05);
        let mut y = (codes[n_attrs - 1] as f64 + 1.0) / (cards[n_attrs - 1] as f64 + 1.0)
            + rng.gen_range(-0.05..0.05);
        if rng.gen_bool(0.06) {
            x += rng.gen_range(0.3..0.6);
            y -= rng.gen_range(0.3..0.6);
        }
        row.push(Value::Float64(fare));
        row.push(Value::Float64(tip));
        row.push(Value::Point(Point::new(x, y)));
        rows.push(row);
    }

    let (loss, theta) = gen_loss(&mut rng);
    let epsilon = [0.15, 0.2, 0.3, 0.45][rng.gen_range(0..4usize)];
    let attrs: Vec<String> = (0..n_attrs).map(|i| format!("a{i}")).collect();

    let n_queries = rng.gen_range(4..=10usize);
    let mut queries = Vec::with_capacity(n_queries);
    for _ in 0..n_queries {
        let mut q = Vec::new();
        for (i, (name, ty)) in schema.iter().take(n_attrs).enumerate() {
            if !rng.gen_bool(0.55) {
                continue;
            }
            let value = if rng.gen_bool(0.9) {
                // In-domain: copy the value from a random row.
                rows[rng.gen_range(0..rows.len())][i].clone()
            } else {
                // Out of domain: the cube must answer EmptyDomain and the
                // oracle must find zero raw rows.
                match ty {
                    ColumnType::Str => Value::Str("absent".to_string()),
                    _ => Value::Int64(999),
                }
            };
            q.push((name.clone(), value));
        }
        queries.push(q);
    }

    CaseSpec {
        name: format!("case-{seed}"),
        schema,
        rows,
        attrs,
        loss,
        theta,
        serfling: (epsilon, 0.1),
        build_seed: rng.gen_range(0..1_000_000u64),
        queries,
    }
}

fn gen_loss(rng: &mut SmallRng) -> (LossSpec, f64) {
    match rng.gen_range(0..5u32) {
        0 => (
            LossSpec::Mean { attr: "fare".to_string() },
            [0.02, 0.05, 0.1, 0.2][rng.gen_range(0..4usize)],
        ),
        1 => (
            LossSpec::Histogram { attr: "fare".to_string() },
            [0.5, 1.0, 3.0][rng.gen_range(0..3usize)],
        ),
        2 => (
            LossSpec::Heatmap { attr: "pickup".to_string(), manhattan: false },
            [0.02, 0.05, 0.1][rng.gen_range(0..3usize)],
        ),
        3 => (
            LossSpec::Heatmap { attr: "pickup".to_string(), manhattan: true },
            [0.02, 0.05, 0.1][rng.gen_range(0..3usize)],
        ),
        _ => (
            LossSpec::Regression { x: "fare".to_string(), y: "tip".to_string() },
            [0.5, 2.0, 5.0][rng.gen_range(0..3usize)],
        ),
    }
}

/// Random `WHERE` terms over a case's table for SQL executor diffing:
/// all six comparison operators, values drawn from the table (in-domain)
/// or synthesized (out-of-domain / cross-typed).
pub fn gen_where_terms(rng: &mut SmallRng, case: &CaseSpec) -> Vec<WhereTerm> {
    let n = rng.gen_range(0..=3usize);
    let mut terms = Vec::with_capacity(n);
    for _ in 0..n {
        // Skip the Point column: it has no literal syntax.
        let col = rng.gen_range(0..case.schema.len() - 1);
        let (name, _) = &case.schema[col];
        let op = ALL_OPS[rng.gen_range(0..ALL_OPS.len())];
        let value = if rng.gen_bool(0.8) {
            case.rows[rng.gen_range(0..case.rows.len())][col].clone()
        } else {
            gen_literal(rng)
        };
        terms.push(WhereTerm { column: name.clone(), op, value });
    }
    terms
}

const ALL_OPS: [CmpOp; 6] = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];

/// Identifier pool for generated statements. Deliberately excludes every
/// keyword of the dialect.
const IDENTS: [&str; 10] = [
    "t1",
    "nyctaxi",
    "trips",
    "cube1",
    "sc",
    "payment_type",
    "fare_amount",
    "passenger_count",
    "city",
    "attr_b",
];

const LOSS_NAMES: [&str; 5] =
    ["mean_loss", "heatmap_loss", "histogram_loss", "regression_loss", "my_loss"];

const THETAS: [f64; 5] = [0.05, 0.1, 0.25, 1.5, 2.0];

fn ident(rng: &mut SmallRng) -> String {
    IDENTS[rng.gen_range(0..IDENTS.len())].to_string()
}

fn distinct_idents(rng: &mut SmallRng, n: usize) -> Vec<String> {
    let start = rng.gen_range(0..IDENTS.len());
    (start..start + n).map(|i| IDENTS[i % IDENTS.len()].to_string()).collect()
}

/// A literal the grammar can express: non-negative integers, floats with
/// a fractional part, negative floats (the grammar's only negative form)
/// and strings (occasionally containing the quote-escape).
fn gen_literal(rng: &mut SmallRng) -> Value {
    match rng.gen_range(0..5u32) {
        0 => Value::Int64(rng.gen_range(0..100i64)),
        1 => Value::Float64(rng.gen_range(0..40i64) as f64 + 0.5),
        2 => Value::Float64(-(rng.gen_range(0..40i64) as f64) - 0.25),
        3 => Value::Float64(-(rng.gen_range(1..40i64) as f64)),
        _ => {
            if rng.gen_bool(0.15) {
                Value::Str("it's".to_string())
            } else {
                Value::Str(format!("s{}", rng.gen_range(0..20u32)))
            }
        }
    }
}

fn gen_expr(rng: &mut SmallRng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.35) {
        return if rng.gen_bool(0.4) {
            // Quarter-steps: non-negative, exactly representable,
            // round-trips through `Display`.
            Expr::Const(rng.gen_range(0..32u32) as f64 / 4.0)
        } else {
            let agg = [AggFn::Avg, AggFn::Sum, AggFn::Count, AggFn::Min, AggFn::Max, AggFn::StdDev]
                [rng.gen_range(0..6usize)];
            let side = if rng.gen_bool(0.5) { Side::Raw } else { Side::Sam };
            Expr::Agg(agg, side)
        };
    }
    let a = Box::new(gen_expr(rng, depth - 1));
    match rng.gen_range(0..6u32) {
        0 => Expr::Add(a, Box::new(gen_expr(rng, depth - 1))),
        1 => Expr::Sub(a, Box::new(gen_expr(rng, depth - 1))),
        2 => Expr::Mul(a, Box::new(gen_expr(rng, depth - 1))),
        3 => Expr::Div(a, Box::new(gen_expr(rng, depth - 1))),
        4 => Expr::Neg(a),
        _ => Expr::Abs(a),
    }
}

fn gen_conditions(rng: &mut SmallRng) -> Vec<WhereTerm> {
    let n = rng.gen_range(0..=3usize);
    (0..n)
        .map(|_| WhereTerm {
            column: ident(rng),
            op: ALL_OPS[rng.gen_range(0..ALL_OPS.len())],
            value: gen_literal(rng),
        })
        .collect()
}

/// Generate one random parser-producible [`Statement`]. Every AST this
/// returns satisfies `parse(ast.to_string()) == ast`.
pub fn gen_statement(rng: &mut SmallRng) -> Statement {
    match rng.gen_range(0..8u32) {
        0 => {
            let n_attrs = rng.gen_range(1..=3usize);
            let cubed_attrs = distinct_idents(rng, n_attrs);
            let n_targets = rng.gen_range(1..=2usize);
            Statement::CreateCube {
                name: ident(rng),
                source: ident(rng),
                cubed_attrs,
                theta: THETAS[rng.gen_range(0..THETAS.len())],
                loss: LossRef {
                    name: LOSS_NAMES[rng.gen_range(0..LOSS_NAMES.len())].to_string(),
                    target_attrs: distinct_idents(rng, n_targets),
                },
            }
        }
        1 => Statement::CreateAggregate { name: ident(rng), body: gen_expr(rng, 3) },
        2 => Statement::SelectSample { cube: ident(rng), conditions: gen_conditions(rng) },
        3 | 4 => Statement::SelectRaw { table: ident(rng), conditions: gen_conditions(rng) },
        5 => Statement::Drop {
            kind: if rng.gen_bool(0.5) { DropKind::Cube } else { DropKind::Aggregate },
            name: ident(rng),
        },
        6 => Statement::Show(
            [ShowKind::Cubes, ShowKind::Tables, ShowKind::Aggregates][rng.gen_range(0..3usize)],
        ),
        _ => Statement::ExplainCube(ident(rng)),
    }
}

/// `n` seeded statements.
pub fn gen_statements(seed: u64, n: usize) -> Vec<Statement> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5bf0_3635);
    (0..n).map(|_| gen_statement(&mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_per_seed() {
        assert_eq!(gen_case(7), gen_case(7));
        assert_ne!(gen_case(7), gen_case(8));
    }

    #[test]
    fn generated_tables_materialize_and_match_schema() {
        for seed in 0..10 {
            let case = gen_case(seed);
            let t = case.table();
            assert_eq!(t.len(), case.rows.len());
            assert!(t.len() >= 24);
            for a in &case.attrs {
                let col = t.schema().index_of(a).unwrap();
                t.cat(col).expect("cubed attrs are categorical");
            }
        }
    }

    #[test]
    fn generated_statements_are_deterministic() {
        assert_eq!(gen_statements(3, 20), gen_statements(3, 20));
    }
}
