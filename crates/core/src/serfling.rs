//! Global-sample sizing via Serfling's inequality.
//!
//! The size of the global random sample does not affect Tabula's error
//! bound (every cell is checked against it explicitly during the dry run),
//! but a too-small global sample needlessly inflates the number of iceberg
//! cells. The paper sizes it with Serfling's inequality — a
//! sampling-without-replacement refinement of the law of large numbers —
//! which yields `k ≈ ln(2/δ) / (2ε²)` for relative error `ε` at confidence
//! `1 − δ`. With the paper's defaults (`ε = 0.05`, `δ = 0.01`) that is
//! ~1 060 tuples regardless of table size.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tabula_storage::{RowId, Table};

/// Parameters of the Serfling bound.
#[derive(Debug, Clone, Copy)]
pub struct SerflingConfig {
    /// Tolerated relative error of the mean estimate.
    pub epsilon: f64,
    /// Failure probability (confidence is `1 − delta`).
    pub delta: f64,
}

impl Default for SerflingConfig {
    fn default() -> Self {
        // The paper's defaults.
        SerflingConfig { epsilon: 0.05, delta: 0.01 }
    }
}

impl SerflingConfig {
    /// The required sample size `k ≈ ln(2/δ) / (2ε²)`.
    pub fn sample_size(&self) -> usize {
        assert!(self.epsilon > 0.0, "epsilon must be positive");
        assert!(self.delta > 0.0 && self.delta < 1.0, "delta must be in (0, 1)");
        ((2.0 / self.delta).ln() / (2.0 * self.epsilon * self.epsilon)).ceil() as usize
    }
}

/// The paper's default global-sample size (`ε = 0.05`, `δ = 0.01`).
pub fn global_sample_size() -> usize {
    SerflingConfig::default().sample_size()
}

/// Draw a uniform random sample of `k` row ids from `table` without
/// replacement (the whole table if `k ≥ len`). Deterministic per seed.
pub fn draw_global_sample(table: &Table, k: usize, seed: u64) -> Vec<RowId> {
    let n = table.len();
    if k >= n {
        return table.all_rows();
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut rows: Vec<RowId> =
        rand::seq::index::sample(&mut rng, n, k).into_iter().map(|i| i as RowId).collect();
    rows.sort_unstable();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabula_storage::{ColumnType, Field, Schema, TableBuilder};

    #[test]
    fn default_size_matches_paper() {
        // ln(2/0.01) / (2·0.05²) = ln(200)/0.005 ≈ 1059.7 → 1060.
        let k = global_sample_size();
        assert!((1055..=1065).contains(&k), "k = {k}");
    }

    #[test]
    fn size_scales_with_epsilon_and_delta() {
        let tight = SerflingConfig { epsilon: 0.01, delta: 0.01 }.sample_size();
        let loose = SerflingConfig { epsilon: 0.10, delta: 0.01 }.sample_size();
        assert!(tight > 20 * loose);
        let confident = SerflingConfig { epsilon: 0.05, delta: 0.001 }.sample_size();
        assert!(confident > global_sample_size());
    }

    fn table(n: usize) -> Table {
        let schema = Schema::new(vec![Field::new("v", ColumnType::Int64)]);
        let mut b = TableBuilder::new(schema);
        for i in 0..n {
            b.push_row(&[(i as i64).into()]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn draw_is_without_replacement_and_deterministic() {
        let t = table(10_000);
        let a = draw_global_sample(&t, 500, 3);
        let b = draw_global_sample(&t, 500, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        let distinct: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(distinct.len(), 500);
        let c = draw_global_sample(&t, 500, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn small_table_returns_everything() {
        let t = table(10);
        let s = draw_global_sample(&t, 100, 0);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        let t = table(100_000);
        let s = draw_global_sample(&t, 10_000, 7);
        // Mean of sampled indices should be near the middle.
        let mean: f64 = s.iter().map(|&r| r as f64).sum::<f64>() / s.len() as f64;
        assert!((mean - 50_000.0).abs() < 2_500.0, "mean {mean}");
    }
}
