//! Statement execution: binds the parsed dialect to `tabula-core`.

use crate::ast::{DropKind, ShowKind, Statement, WhereTerm};
use crate::parser::parse;
use crate::{Result, SqlError};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use tabula_core::cube::{BuildStats, SampleProvenance, SamplingCube};
use tabula_core::loss::expr::{Expr, ExprLoss};
use tabula_core::loss::{HeatmapLoss, HistogramLoss, MeanLoss, Metric, RegressionLoss};
use tabula_core::{MaterializationMode, SamplingCubeBuilder, SerflingConfig, SnapshotInfo};
use tabula_obs as obs;
use tabula_obs::span;
use tabula_obs::trace::{CompletedTrace, Stage, TraceProvenance, Tracer};
use tabula_serve::Server;
use tabula_storage::{Predicate, ScanStats, Table};

/// How a registered loss function binds to target attributes at cube
/// build time.
#[derive(Debug, Clone)]
enum LossDecl {
    /// Built-in Function 1 (statistical mean; one numeric attribute).
    Mean,
    /// Built-in Function 2 (heat map; one point attribute).
    Heatmap(Metric),
    /// Built-in histogram variant (one numeric attribute).
    Histogram,
    /// Built-in Function 3 (regression; two numeric attributes, x then y).
    Regression,
    /// User-declared scalar expression (one numeric attribute).
    UserExpr(Expr),
}

/// Result of executing a statement.
#[derive(Debug)]
pub enum QueryResult {
    /// Rows of a raw-table scan.
    Table(Table),
    /// A sample returned by a cube (paper Query 2), with provenance.
    Sample {
        /// The materialized sample tuples (shared with the serving
        /// layer's answer cache — repeat queries return the same table
        /// without re-materializing).
        table: Arc<Table>,
        /// Whether the sample was local, global, or empty-domain.
        provenance: SampleProvenance,
    },
    /// A sampling cube was initialized.
    CubeCreated {
        /// Cube name.
        name: String,
        /// Build statistics.
        stats: BuildStats,
    },
    /// A user loss function was registered.
    AggregateCreated(String),
    /// An object was dropped.
    Dropped(String),
    /// Informational lines (`SHOW ...`, `EXPLAIN CUBE ...`).
    Info(Vec<String>),
}

impl QueryResult {
    /// Row count of the result, when it carries rows.
    pub fn len(&self) -> usize {
        match self {
            QueryResult::Table(t) => t.len(),
            QueryResult::Sample { table, .. } => table.len(),
            _ => 0,
        }
    }

    /// Whether the result carries no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A cube registered in a session, fronted by its serving layer: sample
/// queries go through the [`Server`] (compiled predicates, frozen index,
/// answer cache), while management statements still reach the cube
/// directly.
struct ServedCube {
    cube: Arc<SamplingCube>,
    server: Server,
}

/// A SQL session: named tables, registered loss functions, built cubes.
pub struct Session {
    tables: HashMap<String, Arc<Table>>,
    cubes: HashMap<String, ServedCube>,
    losses: HashMap<String, LossDecl>,
    seed: u64,
    serfling: SerflingConfig,
    mode: MaterializationMode,
    registry: Arc<obs::Registry>,
    tracer: Arc<Tracer>,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// A fresh session with the four built-in loss functions registered:
    /// `mean_loss`, `heatmap_loss` (Euclidean; `heatmap_loss_manhattan`
    /// for L1), `histogram_loss`, `regression_loss`.
    pub fn new() -> Self {
        let mut losses = HashMap::new();
        losses.insert("mean_loss".into(), LossDecl::Mean);
        losses.insert("heatmap_loss".into(), LossDecl::Heatmap(Metric::Euclidean));
        losses.insert("heatmap_loss_manhattan".into(), LossDecl::Heatmap(Metric::Manhattan));
        losses.insert("histogram_loss".into(), LossDecl::Histogram);
        losses.insert("regression_loss".into(), LossDecl::Regression);
        Session {
            tables: HashMap::new(),
            cubes: HashMap::new(),
            losses,
            seed: 42,
            serfling: SerflingConfig::default(),
            mode: MaterializationMode::Tabula,
            registry: Arc::clone(obs::global()),
            tracer: Arc::clone(Tracer::global()),
        }
    }

    /// Use a private metrics registry instead of the process-wide one
    /// (statement timings, query latencies and cube provenance counters
    /// all land there).
    pub fn with_registry(mut self, registry: Arc<obs::Registry>) -> Self {
        self.registry = registry;
        self
    }

    /// The session's metrics registry.
    pub fn registry(&self) -> &Arc<obs::Registry> {
        &self.registry
    }

    /// Use a private [`Tracer`] instead of the process-wide one. Servers
    /// created for cubes built after this call inherit it, so their
    /// [`Server::query`] traces land in the same flight recorder.
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = tracer;
        self
    }

    /// The tracer governing this session's query traces.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Point-in-time snapshot of the session's metrics.
    pub fn metrics_snapshot(&self) -> obs::MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Override the RNG seed used for global samples.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the Serfling configuration for global-sample sizing.
    pub fn with_serfling(mut self, config: SerflingConfig) -> Self {
        self.serfling = config;
        self
    }

    /// Override the materialization mode for subsequently created cubes
    /// (default: full Tabula).
    pub fn with_mode(mut self, mode: MaterializationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Register a raw table under `name`.
    pub fn register_table(&mut self, name: impl Into<String>, table: Arc<Table>) {
        self.tables.insert(name.into(), table);
    }

    /// Look up a registered table.
    pub fn table(&self, name: &str) -> Option<&Arc<Table>> {
        self.tables.get(name)
    }

    /// Look up a built cube.
    pub fn cube(&self, name: &str) -> Option<&SamplingCube> {
        self.cubes.get(name).map(|entry| entry.cube.as_ref())
    }

    /// Look up a cube's serving layer (index/cache statistics, manual
    /// generation installs).
    pub fn cube_server(&self, name: &str) -> Option<&Server> {
        self.cubes.get(name).map(|entry| &entry.server)
    }

    /// Names of the cubes registered in this session, sorted.
    pub fn cube_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.cubes.keys().cloned().collect();
        names.sort();
        names
    }

    /// Freeze cube `name`'s current serving generation into a snapshot
    /// file (the REPL's `\save`). Returns the bytes written.
    pub fn save_cube(&self, name: &str, path: &std::path::Path) -> Result<u64> {
        let entry = self
            .cubes
            .get(name)
            .ok_or(SqlError::Unknown { kind: "cube", name: name.to_string() })?;
        Ok(entry.server.save_snapshot(path)?)
    }

    /// Thaw a cube from a snapshot file and register it under `name` (the
    /// REPL's `\load`). If the name is already served, the snapshot is
    /// installed as a new generation — cached answers from the previous
    /// generation are invalidated atomically, exactly as for a refresh.
    pub fn load_cube(&mut self, name: &str, path: &std::path::Path) -> Result<SnapshotInfo> {
        if let Some(entry) = self.cubes.get_mut(name) {
            let info = entry.server.install_snapshot(path)?;
            entry.cube = entry.server.cube();
            return Ok(info);
        }
        let (cube, info) = SamplingCube::from_snapshot(path).map_err(SqlError::from)?;
        let cube = Arc::new(cube.with_registry(&self.registry));
        let server = Server::in_registry(Arc::clone(&cube), &self.registry)?
            .with_tracer(Arc::clone(&self.tracer));
        self.cubes.insert(name.to_string(), ServedCube { cube, server });
        Ok(info)
    }

    /// Parse and execute one statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let stmt = parse(sql)?;
        self.execute_statement(stmt)
    }

    /// Execute a pre-parsed statement.
    ///
    /// Every statement is timed: the wall time lands in the session
    /// registry's `sql.statement` histogram (plus a per-kind counter), and
    /// a `sql.statement` span is emitted for any installed subscriber.
    pub fn execute_statement(&mut self, stmt: Statement) -> Result<QueryResult> {
        let kind = statement_kind(&stmt);
        let _span = span!("sql.statement", "{kind}");
        let start = Instant::now();
        let result = self.dispatch(stmt);
        self.registry.histogram("sql.statement").record_duration(start.elapsed());
        self.registry.counter(&format!("sql.stmt.{kind}")).inc();
        if result.is_err() {
            self.registry.counter("sql.errors").inc();
        }
        result
    }

    fn dispatch(&mut self, stmt: Statement) -> Result<QueryResult> {
        match stmt {
            Statement::CreateAggregate { name, body } => {
                if self.losses.contains_key(&name) {
                    return Err(SqlError::AlreadyExists(name));
                }
                self.losses.insert(name.clone(), LossDecl::UserExpr(body));
                Ok(QueryResult::AggregateCreated(name))
            }
            Statement::CreateCube { name, source, cubed_attrs, theta, loss } => {
                if self.cubes.contains_key(&name) {
                    return Err(SqlError::AlreadyExists(name));
                }
                let table = Arc::clone(
                    self.tables
                        .get(&source)
                        .ok_or(SqlError::Unknown { kind: "table", name: source.clone() })?,
                );
                let decl = self
                    .losses
                    .get(&loss.name)
                    .ok_or(SqlError::Unknown { kind: "loss function", name: loss.name.clone() })?;
                // Resolve target attributes up front (before `table` moves
                // into the builder).
                let targets: Vec<usize> = loss
                    .target_attrs
                    .iter()
                    .map(|a| table.schema().index_of(a).map_err(SqlError::from))
                    .collect::<Result<_>>()?;
                let expect_targets = |n: usize| -> Result<()> {
                    if targets.len() == n {
                        Ok(())
                    } else {
                        Err(SqlError::Parse(format!(
                            "loss function {} takes {n} target attribute(s), got {}",
                            loss.name,
                            targets.len()
                        )))
                    }
                };
                let cube = match decl.clone() {
                    LossDecl::Mean => {
                        expect_targets(1)?;
                        self.build(table, &cubed_attrs, MeanLoss::new(targets[0]), theta)?
                    }
                    LossDecl::Heatmap(metric) => {
                        expect_targets(1)?;
                        self.build(
                            table,
                            &cubed_attrs,
                            HeatmapLoss::new(targets[0], metric),
                            theta,
                        )?
                    }
                    LossDecl::Histogram => {
                        expect_targets(1)?;
                        self.build(table, &cubed_attrs, HistogramLoss::new(targets[0]), theta)?
                    }
                    LossDecl::Regression => {
                        expect_targets(2)?;
                        self.build(
                            table,
                            &cubed_attrs,
                            RegressionLoss::new(targets[0], targets[1]),
                            theta,
                        )?
                    }
                    LossDecl::UserExpr(expr) => {
                        expect_targets(1)?;
                        self.build(table, &cubed_attrs, ExprLoss::new(targets[0], expr), theta)?
                    }
                };
                let stats = cube.stats().clone();
                let cube = Arc::new(cube);
                let server = Server::in_registry(Arc::clone(&cube), &self.registry)?
                    .with_tracer(Arc::clone(&self.tracer));
                self.cubes.insert(name.clone(), ServedCube { cube, server });
                Ok(QueryResult::CubeCreated { name, stats })
            }
            Statement::SelectSample { cube, conditions } => {
                let entry = self
                    .cubes
                    .get(&cube)
                    .ok_or(SqlError::Unknown { kind: "cube", name: cube.clone() })?;
                let pred = predicate_of(&conditions);
                let q_start = Instant::now();
                // The server begins/finishes its own trace (its tracer is
                // this session's — see CreateCube).
                let answer = entry.server.query(&pred)?;
                let elapsed = q_start.elapsed();
                self.registry.histogram("query.latency").record_duration(elapsed);
                self.registry.window("query.latency").record_duration(elapsed);
                Ok(QueryResult::Sample { table: answer.table, provenance: answer.provenance })
            }
            Statement::SelectRaw { table, conditions } => {
                let t = self
                    .tables
                    .get(&table)
                    .ok_or(SqlError::Unknown { kind: "table", name: table.clone() })?;
                let pred = predicate_of(&conditions);
                let mut trace = self.tracer.begin();
                if trace.is_enabled() {
                    trace.set_label(format!("SELECT * FROM {table}"));
                }
                let (rows, _stats) = scan_traced(&pred, t, &mut trace)?;
                let result = t.take(&rows);
                self.tracer.finish(trace);
                Ok(QueryResult::Table(result))
            }
            Statement::ExplainAnalyze(inner) => self.explain_analyze(*inner),
            Statement::Drop { kind, name } => match kind {
                DropKind::Cube => {
                    self.cubes
                        .remove(&name)
                        .ok_or(SqlError::Unknown { kind: "cube", name: name.clone() })?;
                    Ok(QueryResult::Dropped(name))
                }
                DropKind::Aggregate => match self.losses.get(&name) {
                    Some(LossDecl::UserExpr(_)) => {
                        self.losses.remove(&name);
                        Ok(QueryResult::Dropped(name))
                    }
                    Some(_) => {
                        Err(SqlError::Core(format!("cannot drop built-in loss function {name}")))
                    }
                    None => Err(SqlError::Unknown { kind: "loss function", name }),
                },
            },
            Statement::Show(kind) => {
                let mut lines: Vec<String> = match kind {
                    ShowKind::Cubes => self
                        .cubes
                        .iter()
                        .map(|(name, entry)| {
                            let cube = &entry.cube;
                            format!(
                                "{name} | attrs: {} | θ = {} | {} cells | {} samples",
                                cube.attrs().join(","),
                                cube.theta(),
                                cube.materialized_cells(),
                                cube.persisted_samples()
                            )
                        })
                        .collect(),
                    ShowKind::Tables => self
                        .tables
                        .iter()
                        .map(|(name, t)| {
                            format!("{name} | {} rows | {} columns", t.len(), t.schema().len())
                        })
                        .collect(),
                    ShowKind::Aggregates => self
                        .losses
                        .iter()
                        .map(|(name, decl)| {
                            let kind = match decl {
                                LossDecl::UserExpr(_) => "user-defined",
                                _ => "built-in",
                            };
                            format!("{name} | {kind}")
                        })
                        .collect(),
                };
                lines.sort();
                Ok(QueryResult::Info(lines))
            }
            Statement::ExplainCube(name) => {
                let entry = self
                    .cubes
                    .get(&name)
                    .ok_or(SqlError::Unknown { kind: "cube", name: name.clone() })?;
                let cube = &entry.cube;
                let s = cube.stats();
                let m = cube.memory_breakdown();
                Ok(QueryResult::Info(vec![
                    format!("cube {name} over [{}], θ = {}", cube.attrs().join(", "), cube.theta()),
                    format!(
                        "cells: {} total, {} iceberg (materialized), {} persisted samples",
                        s.total_cells,
                        cube.materialized_cells(),
                        cube.persisted_samples()
                    ),
                    format!(
                        "build: dry {:?} | real {:?} | selection {:?} | total {:?}",
                        s.dry_run, s.real_run, s.selection, s.total
                    ),
                    format!(
                        "plans: {} prune / {} group-all / {} cuboids skipped",
                        s.prune_plans, s.group_all_plans, s.cuboids_skipped
                    ),
                    format!(
                        "memory: global {}B + cube table {}B + samples {}B = {}B",
                        m.global_bytes,
                        m.cube_table_bytes,
                        m.sample_table_bytes,
                        m.total()
                    ),
                    format!(
                        "serving: {} indexed cells | answer cache {} entries ({}B){}",
                        entry.server.indexed_cells(),
                        entry.server.cache().len(),
                        entry.server.cache().bytes(),
                        if entry.server.cache().is_bypass() { " [bypassed]" } else { "" }
                    ),
                ]))
            }
        }
    }

    /// Execute `stmt` under a forced trace and render the stage-by-stage
    /// breakdown — the sampling policy is bypassed, so `EXPLAIN ANALYZE`
    /// always has a trace to show even when tracing is off.
    fn explain_analyze(&mut self, stmt: Statement) -> Result<QueryResult> {
        let sql_text = stmt.to_string();
        let mut trace = self.tracer.force();
        trace.set_label(sql_text.clone());
        let (rows, provenance) = match &stmt {
            Statement::SelectSample { cube, conditions } => {
                let entry = self
                    .cubes
                    .get(cube)
                    .ok_or(SqlError::Unknown { kind: "cube", name: cube.clone() })?;
                let pred = predicate_of(conditions);
                let answer = entry.server.query_traced(&pred, &mut trace)?;
                (answer.table.len(), format!("{:?}", answer.provenance))
            }
            Statement::SelectRaw { table, conditions } => {
                let t = self
                    .tables
                    .get(table)
                    .ok_or(SqlError::Unknown { kind: "table", name: table.clone() })?;
                let pred = predicate_of(conditions);
                let (rows, stats) = scan_traced(&pred, t, &mut trace)?;
                // Surface which filter kernel ran (vectorized chunked vs
                // row-at-a-time scalar) in the answer line.
                (rows.len(), format!("Scan[{}]", stats.kernel.name()))
            }
            // The parser only wraps SELECTs, but a hand-built AST could
            // carry anything.
            _ => return Err(SqlError::Parse("EXPLAIN ANALYZE takes a SELECT statement".into())),
        };
        let completed = self.tracer.finish(trace).expect("forced traces always complete");
        Ok(QueryResult::Info(render_explain(&sql_text, rows, &provenance, &completed)))
    }

    fn build<L: tabula_core::AccuracyLoss>(
        &self,
        table: Arc<Table>,
        attrs: &[String],
        loss: L,
        theta: f64,
    ) -> Result<SamplingCube> {
        SamplingCubeBuilder::new(table, attrs, loss, theta)
            .seed(self.seed)
            .serfling(self.serfling)
            .mode(self.mode)
            .registry(Arc::clone(&self.registry))
            .build()
            .map_err(SqlError::from)
    }
}

/// Low-cardinality label for per-statement metrics.
fn statement_kind(stmt: &Statement) -> &'static str {
    match stmt {
        Statement::CreateAggregate { .. } => "create_aggregate",
        Statement::CreateCube { .. } => "create_cube",
        Statement::SelectSample { .. } => "select_sample",
        Statement::SelectRaw { .. } => "select_raw",
        Statement::Drop { .. } => "drop",
        Statement::Show(_) => "show",
        Statement::ExplainCube(_) => "explain_cube",
        Statement::ExplainAnalyze(_) => "explain_analyze",
    }
}

/// Run `pred` over `t` recording a `scan` stage into `trace`. The stats
/// pass only runs when the trace is enabled; the untraced path is the plain
/// morsel-parallel filter.
fn scan_traced(
    pred: &Predicate,
    t: &Arc<Table>,
    trace: &mut obs::QueryTrace,
) -> Result<(Vec<tabula_storage::RowId>, ScanStats)> {
    let stage = trace.stage_start();
    let (rows, stats) = if trace.is_enabled() {
        pred.filter_with_stats(t)?
    } else {
        (pred.filter(t)?, ScanStats::default())
    };
    trace.stage_chunks(Stage::Scan, stage, stats.rows_matched, stats.bytes_scanned, stats.chunks);
    trace.set_provenance(TraceProvenance::Scan);
    Ok((rows, stats))
}

/// Render a completed trace as the `EXPLAIN ANALYZE` info lines: the
/// answer summary, the compiled cell (when there is one), then one line
/// per stage with nanos, rows and bytes.
fn render_explain(
    sql_text: &str,
    rows: usize,
    provenance: &str,
    trace: &CompletedTrace,
) -> Vec<String> {
    let mut lines = vec![
        format!("{sql_text}"),
        format!(
            "answer: {rows} rows ({provenance}) in {} | trace provenance: {} | epoch {}",
            fmt_ns(trace.total_ns),
            trace.provenance.name(),
            trace.epoch
        ),
    ];
    if !trace.cell.is_empty() {
        lines.push(format!("cell: {}", trace.cell));
    }
    lines.push(format!(
        "{:<12} {:>12} {:>10} {:>12} {:>8}",
        "stage", "time", "rows", "bytes", "chunks"
    ));
    for s in &trace.stages {
        lines.push(format!(
            "{:<12} {:>12} {:>10} {:>12} {:>8}",
            s.stage.name(),
            fmt_ns(s.ns),
            s.rows,
            s.bytes,
            s.chunks
        ));
    }
    lines
}

/// Human-readable nanoseconds: `812ns`, `12.4µs`, `3.1ms`, `2.0s`.
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// Convert parsed WHERE terms to a storage predicate.
fn predicate_of(terms: &[WhereTerm]) -> Predicate {
    let mut pred = Predicate::all();
    for t in terms {
        pred = pred.and(t.column.clone(), t.op, t.value.clone());
    }
    pred
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabula_data::example_dcm_table;

    fn session() -> Session {
        let mut s = Session::new().with_seed(1);
        s.register_table("nyctaxi", Arc::new(example_dcm_table()));
        s
    }

    #[test]
    fn end_to_end_paper_flow() {
        let mut s = session();
        // Query 1: initialize the cube with the built-in mean loss.
        let result = s
            .execute(
                "CREATE TABLE SamplingCube AS \
                 SELECT D, C, M, SAMPLING(*, 0.1) AS sample \
                 FROM nyctaxi GROUPBY CUBE(D, C, M) \
                 HAVING mean_loss(fare, Sam_global) > 0.1;",
            )
            .unwrap();
        match result {
            QueryResult::CubeCreated { name, stats } => {
                assert_eq!(name, "SamplingCube");
                assert!(stats.total_cells > 0);
            }
            other => panic!("{other:?}"),
        }
        // Query 2: fetch a sample.
        let result =
            s.execute("SELECT sample FROM SamplingCube WHERE D = '[0,5)' AND C = 1").unwrap();
        match result {
            QueryResult::Sample { table, provenance } => {
                assert!(!table.is_empty());
                assert!(!matches!(provenance, SampleProvenance::EmptyDomain));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn user_defined_aggregate_builds_a_cube() {
        let mut s = session();
        s.execute(
            "CREATE AGGREGATE my_loss(Raw, Sam) RETURN decimal_value AS \
             BEGIN ABS((AVG(Raw) - AVG(Sam)) / AVG(Raw)) END",
        )
        .unwrap();
        let result = s
            .execute(
                "CREATE TABLE c AS SELECT M, SAMPLING(*, 0.05) AS sample \
                 FROM nyctaxi GROUPBY CUBE(M) \
                 HAVING my_loss(fare, Sam_global) > 0.05",
            )
            .unwrap();
        assert!(matches!(result, QueryResult::CubeCreated { .. }));
        let ans = s.execute("SELECT sample FROM c WHERE M = 'dispute'").unwrap();
        assert!(!ans.is_empty());
    }

    #[test]
    fn regression_loss_takes_two_attributes() {
        let mut s = session();
        let ok = s.execute(
            "CREATE TABLE r AS SELECT M, SAMPLING(*, 5) AS sample FROM nyctaxi \
             GROUPBY CUBE(M) HAVING regression_loss(fare, tip, Sam_global) > 5",
        );
        assert!(ok.is_ok(), "{ok:?}");
        let err = s.execute(
            "CREATE TABLE r2 AS SELECT M, SAMPLING(*, 5) AS sample FROM nyctaxi \
             GROUPBY CUBE(M) HAVING regression_loss(fare, Sam_global) > 5",
        );
        assert!(matches!(err, Err(SqlError::Parse(_))));
    }

    #[test]
    fn raw_select_filters() {
        let mut s = session();
        let result = s.execute("SELECT * FROM nyctaxi WHERE M = 'cash' AND C = 1").unwrap();
        let QueryResult::Table(t) = result else { panic!() };
        assert_eq!(t.len(), 2); // rows 2 and 8 of the mini table
    }

    #[test]
    fn unknown_objects_error_cleanly() {
        let mut s = session();
        assert!(matches!(
            s.execute("SELECT sample FROM nocube WHERE a = 1"),
            Err(SqlError::Unknown { kind: "cube", .. })
        ));
        assert!(matches!(
            s.execute("SELECT * FROM notable"),
            Err(SqlError::Unknown { kind: "table", .. })
        ));
        assert!(matches!(
            s.execute(
                "CREATE TABLE c AS SELECT M, SAMPLING(*, 1) AS sample FROM nyctaxi \
                 GROUPBY CUBE(M) HAVING nope(fare, Sam_global) > 1"
            ),
            Err(SqlError::Unknown { kind: "loss function", .. })
        ));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut s = session();
        s.execute(
            "CREATE TABLE c AS SELECT M, SAMPLING(*, 0.5) AS sample FROM nyctaxi \
             GROUPBY CUBE(M) HAVING mean_loss(fare, Sam_global) > 0.5",
        )
        .unwrap();
        assert!(matches!(
            s.execute(
                "CREATE TABLE c AS SELECT M, SAMPLING(*, 0.5) AS sample FROM nyctaxi \
                 GROUPBY CUBE(M) HAVING mean_loss(fare, Sam_global) > 0.5"
            ),
            Err(SqlError::AlreadyExists(_))
        ));
        assert!(matches!(
            s.execute(
                "CREATE AGGREGATE mean_loss(Raw, Sam) RETURN decimal_value AS \
                 BEGIN AVG(Raw) END"
            ),
            Err(SqlError::AlreadyExists(_))
        ));
    }

    #[test]
    fn management_statements_work_end_to_end() {
        let mut s = session();
        s.execute(
            "CREATE TABLE c AS SELECT M, SAMPLING(*, 0.5) AS sample FROM nyctaxi \
             GROUPBY CUBE(M) HAVING mean_loss(fare, Sam_global) > 0.5",
        )
        .unwrap();
        // SHOW lists everything.
        let QueryResult::Info(cubes) = s.execute("SHOW CUBES").unwrap() else { panic!() };
        assert_eq!(cubes.len(), 1);
        assert!(cubes[0].starts_with("c |"));
        let QueryResult::Info(tables) = s.execute("SHOW TABLES").unwrap() else { panic!() };
        assert!(tables[0].starts_with("nyctaxi |"));
        let QueryResult::Info(aggs) = s.execute("SHOW AGGREGATES").unwrap() else { panic!() };
        assert_eq!(aggs.len(), 5); // the built-ins

        // EXPLAIN prints the build profile.
        let QueryResult::Info(lines) = s.execute("EXPLAIN CUBE c").unwrap() else { panic!() };
        assert!(lines.iter().any(|l| l.contains("iceberg")));

        // DROP frees the name for reuse; built-ins cannot be dropped.
        assert!(matches!(s.execute("DROP CUBE c").unwrap(), QueryResult::Dropped(_)));
        assert!(matches!(s.execute("DROP CUBE c"), Err(SqlError::Unknown { kind: "cube", .. })));
        assert!(matches!(s.execute("DROP AGGREGATE mean_loss"), Err(SqlError::Core(_))));
        s.execute("CREATE AGGREGATE u(Raw, Sam) RETURN decimal_value AS BEGIN AVG(Raw) END")
            .unwrap();
        assert!(matches!(s.execute("DROP AGGREGATE u").unwrap(), QueryResult::Dropped(_)));
        // The cube name is reusable after DROP.
        assert!(s
            .execute(
                "CREATE TABLE c AS SELECT M, SAMPLING(*, 0.5) AS sample FROM nyctaxi \
                 GROUPBY CUBE(M) HAVING mean_loss(fare, Sam_global) > 0.5",
            )
            .is_ok());
    }

    #[test]
    fn guarantee_through_the_sql_surface() {
        // The θ bound must hold for samples fetched via SQL, end to end.
        let mut s = session();
        s.execute(
            "CREATE TABLE g AS SELECT D, C, M, SAMPLING(*, 0.1) AS sample \
             FROM nyctaxi GROUPBY CUBE(D, C, M) \
             HAVING mean_loss(fare, Sam_global) > 0.1",
        )
        .unwrap();
        let t = Arc::clone(s.table("nyctaxi").unwrap());
        let fare = t.schema().index_of("fare").unwrap();
        use tabula_storage::Predicate;
        for m in ["cash", "credit", "dispute"] {
            let QueryResult::Sample { table: sample, .. } =
                s.execute(&format!("SELECT sample FROM g WHERE M = '{m}'")).unwrap()
            else {
                panic!()
            };
            // Exact raw answer.
            let raw_rows = Predicate::eq("M", m).filter(&t).unwrap();
            // Compare means directly (sample is a standalone table).
            let raw_mean: f64 =
                raw_rows.iter().map(|&r| t.value(r as usize, fare).as_f64().unwrap()).sum::<f64>()
                    / raw_rows.len() as f64;
            let sam_col = sample.column(fare).as_f64_slice().unwrap();
            let sam_mean: f64 = sam_col.iter().sum::<f64>() / sam_col.len() as f64;
            let rel = ((raw_mean - sam_mean) / raw_mean).abs();
            assert!(rel <= 0.1 + 1e-9, "M={m}: rel err {rel}");
        }
    }
}
