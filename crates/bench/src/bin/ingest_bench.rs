//! Closed-loop streaming-ingestion benchmark for `tabula-ingest`.
//!
//! A paced producer feeds a synthetic NYC-taxi stream into a running
//! [`Ingestor`] at a target rate (default 25 k rows/s, `--rate` up to
//! 100 k), batch by batch, while `--clients` reader threads replay a
//! dashboard workload against the same [`Server`] without ever blocking
//! on a fold. The maintenance thread folds pending batches into fresh
//! cube generations in the background; at the end the producer flushes
//! the log so every acked row is visible.
//!
//! Emits `BENCH_ingest.json` (target vs achieved append rate, folds,
//! fold p50/p99 wall time, p50/p99 freshness lag — append-ack to
//! readable — and reader qps sustained during ingestion) via the
//! standard run summary, honouring `TABULA_BENCH_OUT` and the
//! `TABULA_INGEST_*` knobs.
//!
//! Run with `cargo run --release -p tabula-bench --bin ingest_bench`
//! (`--quick` shrinks the feed for CI).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tabula_bench::{default_rows, taxi_table, write_run_summary, SEED};
use tabula_core::loss::MeanLoss;
use tabula_core::{MaterializationMode, SamplingCube, SamplingCubeBuilder};
use tabula_data::{TaxiConfig, TaxiGenerator, Workload, CUBED_ATTRIBUTES};
use tabula_ingest::{IngestConfig, Ingestor};
use tabula_obs::Registry;
use tabula_serve::{AnswerCache, Server};

struct Args {
    quick: bool,
    /// Target append rate, rows per second.
    rate: u64,
    /// Feed duration, seconds.
    seconds: u64,
    /// Rows per appended batch.
    batch: usize,
    /// Concurrent reader threads.
    clients: usize,
}

fn parse_args() -> Args {
    let mut args = Args { quick: false, rate: 25_000, seconds: 10, batch: 1_000, clients: 4 };
    let mut quick_requested = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |flag: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .filter(|&v| v > 0)
                .unwrap_or_else(|| panic!("{flag} needs a positive integer"))
        };
        match a.as_str() {
            "--quick" => quick_requested = true,
            "--rate" => args.rate = num("--rate"),
            "--seconds" => args.seconds = num("--seconds"),
            "--batch" => args.batch = num("--batch") as usize,
            "--clients" => args.clients = num("--clients") as usize,
            other => panic!(
                "unknown argument {other:?} (expected --quick / --rate R / --seconds S / \
                 --batch B / --clients N)"
            ),
        }
    }
    if quick_requested {
        args.quick = true;
        args.rate = args.rate.min(15_000);
        args.seconds = args.seconds.min(2);
    }
    args
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args = parse_args();
    let base_rows = if args.quick { 4_000 } else { default_rows() };
    let feed_rows = (args.rate * args.seconds) as usize;
    let attrs = &CUBED_ATTRIBUTES[..3];

    println!(
        "ingest_bench: {base_rows} base rows, {} rows/s x {} s feed ({} rows, {}-row batches), \
         {} readers{}",
        args.rate,
        args.seconds,
        feed_rows,
        args.batch,
        args.clients,
        if args.quick { " [quick]" } else { "" }
    );

    let table = taxi_table(base_rows);
    let registry = Arc::new(Registry::new());
    let fare = table.schema().index_of("fare_amount").expect("taxi schema has fare_amount");
    let loss = MeanLoss::new(fare);
    let cube: Arc<SamplingCube> = Arc::new(
        SamplingCubeBuilder::new(Arc::clone(&table), attrs, loss.clone(), 0.05)
            .seed(SEED)
            .mode(MaterializationMode::Tabula)
            .build()
            .expect("cube build succeeds")
            .with_registry(&registry),
    );
    let srv = Arc::new(
        Server::with_cache(Arc::clone(&cube), AnswerCache::from_env(), Arc::clone(&registry))
            .expect("server build succeeds"),
    );
    let queries = Workload::new(attrs)
        .generate(&table, if args.quick { 100 } else { 400 }, SEED ^ 0xF00D)
        .expect("workload generation succeeds");

    // Pre-materialize the feed (a disjoint seed, same relational shape) so
    // row generation cost stays out of the producer's pacing loop.
    let feed = TaxiGenerator::new(TaxiConfig { rows: feed_rows, seed: SEED ^ 0xFEED }).generate();
    let feed: Vec<Vec<tabula_storage::Value>> = (0..feed.len()).map(|i| feed.row(i)).collect();

    // The cube above was built with default Serfling parameters, so the
    // refresh default matches; only the seed needs pinning.
    let mut config = IngestConfig::from_env();
    config.refresh.seed = SEED;
    config.refresh.mode = MaterializationMode::Tabula;
    let ingestor = Ingestor::start(Arc::clone(&srv), loss, config);

    let stop = AtomicBool::new(false);
    let started = Instant::now();
    let (reader_queries, appended_batches, feed_secs, drain_secs) = std::thread::scope(|s| {
        // Readers: closed-loop dashboard sessions that must keep serving
        // (cube swaps are epoch publications, never locks held over folds).
        let readers: Vec<_> = (0..args.clients)
            .map(|c| {
                let srv = &srv;
                let stop = &stop;
                let queries = &queries;
                s.spawn(move || {
                    let mut served = 0u64;
                    let mut i = c * 37;
                    while !stop.load(Ordering::Relaxed) {
                        let q = &queries[i % queries.len()];
                        srv.query(&q.predicate).expect("serve query succeeds");
                        served += 1;
                        i += 1;
                    }
                    served
                })
            })
            .collect();

        // Paced producer: batch b is due at started + b*batch/rate; sleep
        // until its deadline, then append (blocking only on backpressure).
        let mut appended = 0u64;
        let mut fed = 0usize;
        while fed < feed.len() {
            let due = started + Duration::from_secs_f64(fed as f64 / args.rate as f64);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            let end = (fed + args.batch).min(feed.len());
            ingestor.append(feed[fed..end].to_vec()).expect("append succeeds");
            appended += 1;
            fed = end;
        }
        let feed_secs = started.elapsed().as_secs_f64();

        // Drain: fold everything still pending so the freshness histogram
        // covers every acked row, then release the readers.
        ingestor.flush().expect("flush succeeds");
        let drain_secs = started.elapsed().as_secs_f64() - feed_secs;
        stop.store(true, Ordering::Relaxed);
        let reader_queries: u64 = readers.into_iter().map(|r| r.join().expect("reader ok")).sum();
        (reader_queries, appended, feed_secs, drain_secs)
    });
    let total_secs = started.elapsed().as_secs_f64();

    let stats = ingestor.shutdown().expect("pipeline halts cleanly");
    let final_rows = srv.cube().table().len();
    assert_eq!(stats.appended_rows as usize, feed_rows, "every feed row acked");
    assert_eq!(final_rows, base_rows + feed_rows, "every acked row readable after flush");
    assert!(stats.folds > 0, "at least one generation published");

    let achieved = stats.appended_rows as f64 / feed_secs;
    let reader_qps = reader_queries as f64 / total_secs;

    println!();
    println!(
        "appended {} rows in {} batches over {:.2}s ({:.0} rows/s vs {} target), drained in {:.2}s",
        stats.appended_rows, appended_batches, feed_secs, achieved, args.rate, drain_secs
    );
    println!(
        "folds: {} generations ({} batches, {} rows), fold p50 {:.2}ms p99 {:.2}ms",
        stats.folds,
        stats.folded_batches,
        stats.folded_rows,
        stats.fold_p50_ns as f64 / 1e6,
        stats.fold_p99_ns as f64 / 1e6
    );
    println!(
        "freshness lag (append-ack to readable): p50 {:.2}ms p99 {:.2}ms",
        stats.freshness_p50_ns as f64 / 1e6,
        stats.freshness_p99_ns as f64 / 1e6
    );
    println!(
        "readers: {} queries from {} clients, {:.0} qps sustained during ingestion, epoch {}",
        reader_queries,
        args.clients,
        reader_qps,
        srv.epoch()
    );

    // Per-query latency of the final generation, for a quick staleness-free
    // sanity check that serving survived the churn.
    let mut lat: Vec<u64> = queries
        .iter()
        .map(|q| {
            let t0 = Instant::now();
            srv.query(&q.predicate).expect("serve query succeeds");
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    lat.sort_unstable();

    use serde::Value;
    let path = write_run_summary(
        "ingest",
        &registry.snapshot(),
        &[
            ("quick", Value::Bool(args.quick)),
            ("base_rows", Value::Int(base_rows as i128)),
            ("batch_rows", Value::Int(args.batch as i128)),
            ("reader_clients", Value::Int(args.clients as i128)),
            ("rate_target_rows_per_sec", Value::Int(args.rate as i128)),
            ("rate_achieved_rows_per_sec", Value::Float(achieved)),
            ("feed_secs", Value::Float(feed_secs)),
            ("drain_secs", Value::Float(drain_secs)),
            ("batches_appended", Value::Int(appended_batches as i128)),
            ("batches_folded", Value::Int(stats.folded_batches as i128)),
            ("rows_folded", Value::Int(stats.folded_rows as i128)),
            ("generations", Value::Int(stats.folds as i128)),
            ("final_table_rows", Value::Int(final_rows as i128)),
            ("fold_p50_ns", Value::Int(stats.fold_p50_ns as i128)),
            ("fold_p99_ns", Value::Int(stats.fold_p99_ns as i128)),
            ("freshness_p50_ns", Value::Int(stats.freshness_p50_ns as i128)),
            ("freshness_p99_ns", Value::Int(stats.freshness_p99_ns as i128)),
            ("reader_queries", Value::Int(reader_queries as i128)),
            ("reader_qps", Value::Float(reader_qps)),
            ("final_query_p50_ns", Value::Int(quantile(&lat, 0.50) as i128)),
            ("final_query_p99_ns", Value::Int(quantile(&lat, 0.99) as i128)),
        ],
    )
    .expect("run summary written");
    println!("summary: {}", path.display());
}
