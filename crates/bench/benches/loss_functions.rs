//! Criterion micro-benchmark: exact loss evaluation cost per built-in
//! loss function — the dominant kernel of the dry run (fold per row) and
//! the SamGraph join (loss_within with early exit).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tabula_bench::taxi_table;
use tabula_core::loss::{HeatmapLoss, HistogramLoss, MeanLoss, Metric, RegressionLoss};
use tabula_core::AccuracyLoss;
use tabula_storage::RowId;

fn bench_losses(c: &mut Criterion) {
    let table = taxi_table(50_000);
    let pickup = table.schema().index_of("pickup").unwrap();
    let fare = table.schema().index_of("fare_amount").unwrap();
    let tip = table.schema().index_of("tip_amount").unwrap();
    let raw: Vec<RowId> = (0..20_000).collect();
    let sample: Vec<RowId> = (0..20_000).step_by(40).collect(); // 500 tuples

    let mut group = c.benchmark_group("loss_functions");

    let heat = HeatmapLoss::new(pickup, Metric::Euclidean);
    group.bench_function(BenchmarkId::new("exact_loss", "heatmap"), |b| {
        b.iter(|| black_box(heat.loss(&table, &raw, &sample)))
    });
    let heat_ctx = heat.prepare(&table, &sample);
    group.bench_function(BenchmarkId::new("loss_within_pass", "heatmap"), |b| {
        b.iter(|| black_box(heat.loss_within(&table, &raw, &heat_ctx, 1.0)))
    });
    group.bench_function(BenchmarkId::new("loss_within_early_exit", "heatmap"), |b| {
        b.iter(|| black_box(heat.loss_within(&table, &raw, &heat_ctx, 1e-9)))
    });

    let hist = HistogramLoss::new(fare);
    group.bench_function(BenchmarkId::new("exact_loss", "histogram"), |b| {
        b.iter(|| black_box(hist.loss(&table, &raw, &sample)))
    });

    let mean = MeanLoss::new(fare);
    group.bench_function(BenchmarkId::new("exact_loss", "mean"), |b| {
        b.iter(|| black_box(mean.loss(&table, &raw, &sample)))
    });

    let reg = RegressionLoss::new(fare, tip);
    group.bench_function(BenchmarkId::new("exact_loss", "regression"), |b| {
        b.iter(|| black_box(reg.loss(&table, &raw, &sample)))
    });
    group.finish();
}

criterion_group!(benches, bench_losses);
criterion_main!(benches);
