//! Differential guarantees of the serving layer: answers byte-identical
//! to `SamplingCube::query` at thread counts {1, 8}, across cold and warm
//! caches, and — the invalidation contract — never stale across an
//! incremental refresh that changes cells' iceberg status.

use std::sync::Arc;
use tabula_core::incremental::RefreshConfig;
use tabula_core::loss::MeanLoss;
use tabula_core::{MaterializationMode, SamplingCube, SamplingCubeBuilder};
use tabula_data::{TaxiConfig, TaxiGenerator, Workload, CUBED_ATTRIBUTES};
use tabula_obs::Registry;
use tabula_serve::{AnswerCache, Server};
use tabula_storage::{Table, TableBuilder};

fn build_cube(table: &Arc<Table>, registry: &Arc<Registry>) -> Arc<SamplingCube> {
    let fare = table.schema().index_of("fare_amount").unwrap();
    Arc::new(
        SamplingCubeBuilder::new(
            Arc::clone(table),
            &CUBED_ATTRIBUTES[..3],
            MeanLoss::new(fare),
            0.05,
        )
        .seed(9)
        .mode(MaterializationMode::Tabula)
        .build()
        .unwrap()
        .with_registry(registry),
    )
}

fn server_over(cube: Arc<SamplingCube>, registry: &Arc<Registry>) -> Server {
    // A private cache sized well below the workload's footprint would
    // still have to be correct, but use a roomy one so warm passes hit.
    Server::with_cache(cube, AnswerCache::new(32 << 20, 4), Arc::clone(registry)).unwrap()
}

#[test]
fn answers_match_cube_at_thread_counts_1_and_8() {
    let table = Arc::new(TaxiGenerator::new(TaxiConfig { rows: 4_000, seed: 31 }).generate());
    let registry = Arc::new(Registry::new());
    let cube = build_cube(&table, &registry);
    let srv = server_over(Arc::clone(&cube), &registry);

    let workload = Workload::new(&CUBED_ATTRIBUTES[..3]);
    let queries = workload.generate_session(&table, 300, 17, 0.35).unwrap();
    let direct: Vec<_> = queries.iter().map(|q| cube.query(&q.predicate).unwrap()).collect();

    for threads in [1usize, 8] {
        std::thread::scope(|s| {
            for t in 0..threads {
                let srv = &srv;
                let queries = &queries;
                let direct = &direct;
                s.spawn(move || {
                    // Each client walks the whole session from a different
                    // offset, so threads interleave cold and warm probes.
                    for i in 0..queries.len() {
                        let j = (i + t * 37) % queries.len();
                        let served = srv.query(&queries[j].predicate).unwrap();
                        assert_eq!(
                            served.rows, direct[j].rows,
                            "threads={threads} query [{}]",
                            queries[j].description
                        );
                        assert_eq!(served.provenance, direct[j].provenance);
                        assert_eq!(served.table.len(), direct[j].rows.len());
                    }
                });
            }
        });
    }
    // The sweep produced real cache traffic.
    let snap = registry.snapshot();
    assert!(snap.counter(tabula_serve::SERVE_HITS) > 0);
    assert!(snap.counter(tabula_serve::SERVE_MISSES) > 0);
}

#[test]
fn refresh_never_serves_stale_cached_answers() {
    // Base table, then the same rows plus appended rides that shift many
    // cells' loss (and therefore their iceberg status).
    let old = TaxiGenerator::new(TaxiConfig { rows: 4_000, seed: 51 }).generate();
    let extra = TaxiGenerator::new(TaxiConfig { rows: 1_200, seed: 52 }).generate();
    let mut b = TableBuilder::with_capacity(old.schema().clone(), old.len() + extra.len());
    for r in 0..old.len() {
        b.push_row(&old.row(r)).unwrap();
    }
    for r in 0..extra.len() {
        b.push_row(&extra.row(r)).unwrap();
    }
    let old = Arc::new(old);
    let new = Arc::new(b.finish());

    let registry = Arc::new(Registry::new());
    let cube = build_cube(&old, &registry);
    let srv = server_over(Arc::clone(&cube), &registry);

    // Warm the cache over a session on the OLD generation.
    let workload = Workload::new(&CUBED_ATTRIBUTES[..3]);
    let queries = workload.generate_session(&old, 200, 23, 0.4).unwrap();
    for q in &queries {
        srv.query(&q.predicate).unwrap();
    }
    assert!(!srv.cache().is_empty(), "warm-up must populate the cache");

    // Refresh in place: appended rows flip iceberg status for touched
    // cells; reused/retired cells change sample ids.
    let fare = new.schema().index_of("fare_amount").unwrap();
    let loss = MeanLoss::new(fare);
    let stats = srv
        .refresh(Arc::clone(&new), &loss, RefreshConfig { seed: 9, ..Default::default() })
        .unwrap();
    assert!(stats.resampled_cells > 0, "appends must have touched cells");

    // Every answer after the refresh must match a FRESH cube queried
    // directly — a stale cached answer (old rows / old sample ids) fails
    // this differential immediately.
    let fresh = srv.cube();
    for q in &queries {
        let served = srv.query(&q.predicate).unwrap();
        let direct = fresh.query(&q.predicate).unwrap();
        assert_eq!(served.rows, direct.rows, "stale answer for [{}]", q.description);
        assert_eq!(served.provenance, direct.provenance);
    }
    // And the second post-refresh pass is allowed to hit the (new) cache —
    // still matching.
    for q in &queries {
        let served = srv.query(&q.predicate).unwrap();
        let direct = fresh.query(&q.predicate).unwrap();
        assert_eq!(served.rows, direct.rows);
    }
}

#[test]
fn provenance_total_is_exact_across_cache_states() {
    let table = Arc::new(TaxiGenerator::new(TaxiConfig { rows: 2_000, seed: 31 }).generate());
    let registry = Arc::new(Registry::new());
    let cube = build_cube(&table, &registry);
    let counters = cube.provenance_counters().clone();
    let srv = server_over(cube, &registry);

    let workload = Workload::new(&CUBED_ATTRIBUTES[..3]);
    let queries = workload.generate_session(&table, 150, 29, 0.5).unwrap();
    for q in &queries {
        srv.query(&q.predicate).unwrap();
    }
    // Each query lands in exactly one provenance bucket.
    assert_eq!(counters.total(), queries.len() as u64);
    assert!(counters.serve_cache_hits() > 0, "session locality must produce cache hits");
}
