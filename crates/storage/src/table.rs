//! Immutable columnar tables and their builder.

use crate::column::Column;
use crate::dictionary::Dictionary;
use crate::encoding::RunsView;
use crate::fx::FxHashMap;
use crate::schema::Schema;
use crate::shared::ColumnBuf;
use crate::types::{ColumnType, Value};
use crate::{Result, StorageError};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// Row identifier within a table. `u32` bounds tables at ~4.3 B rows, far
/// beyond what a single-machine reproduction runs, and halves the memory of
/// row-id lists relative to `usize`.
pub type RowId = u32;

/// Categorical index for an `Int64` column: dense codes per row plus the
/// decode table, built lazily the first time the column is used as a cubed
/// attribute.
#[derive(Debug)]
pub struct IntCatIndex {
    /// Per-row dense codes (first-seen order).
    pub codes: Vec<u32>,
    /// Decode table: code → original integer.
    pub values: Vec<i64>,
    /// Encode table: original integer → code.
    pub index: FxHashMap<i64, u32>,
    /// RLE of `codes` — (run codes, cumulative exclusive ends) — carried
    /// over from an RLE-encoded source column so the run-aligned group
    /// and cube kernels can consume integer attributes too.
    pub code_runs: Option<(Vec<u32>, Vec<u32>)>,
}

impl IntCatIndex {
    fn build(data: &ColumnBuf<i64>) -> Self {
        if let Some(rv) = data.runs() {
            return Self::build_from_runs(rv);
        }
        let mut index = FxHashMap::default();
        let mut values = Vec::new();
        let mut codes = Vec::with_capacity(data.len());
        for &v in data.iter() {
            let code = *index.entry(v).or_insert_with(|| {
                values.push(v);
                (values.len() - 1) as u32
            });
            codes.push(code);
        }
        IntCatIndex { codes, values, index, code_runs: None }
    }

    /// Build from an RLE view without decoding: one hash probe per run
    /// instead of per row, and the expanded per-row codes fall out of the
    /// run structure. First-seen order — hence every code — is identical
    /// to the per-row build, because runs preserve row order.
    fn build_from_runs(rv: RunsView<'_, i64>) -> Self {
        let mut index = FxHashMap::default();
        let mut values = Vec::new();
        let mut run_codes = Vec::with_capacity(rv.values.len());
        for &v in rv.values {
            let code = *index.entry(v).or_insert_with(|| {
                values.push(v);
                (values.len() - 1) as u32
            });
            run_codes.push(code);
        }
        let len = rv.ends.last().copied().unwrap_or(0) as usize;
        let mut codes = Vec::with_capacity(len);
        let mut start = 0u32;
        for (&c, &end) in run_codes.iter().zip(rv.ends) {
            codes.resize(codes.len() + (end - start) as usize, c);
            start = end;
        }
        IntCatIndex { codes, values, index, code_runs: Some((run_codes, rv.ends.to_vec())) }
    }
}

/// A borrowed view of a column as a categorical attribute: dense codes plus
/// decode/encode. `Str` columns expose their dictionary directly; `Int64`
/// columns go through a cached [`IntCatIndex`].
pub enum Cat<'t> {
    /// Dictionary-encoded string column. Holds the backing buffer, not a
    /// decoded slice, so that constructing the view never forces an
    /// encoded column's decode — only [`Cat::codes`] does.
    Str(&'t ColumnBuf<u32>, &'t Dictionary),
    /// Lazily-indexed integer column.
    Int(&'t IntCatIndex),
}

impl<'t> Cat<'t> {
    /// Per-row dense codes (decoding an encoded backing on first use;
    /// the decode is cached, see [`crate::encoding::EncodedBuf`]).
    pub fn codes(&self) -> &'t [u32] {
        match self {
            Cat::Str(codes, _) => codes,
            Cat::Int(idx) => &idx.codes,
        }
    }

    /// The attribute's codes as RLE runs, if available without decoding
    /// — the entry point for the run-aligned kernels.
    pub fn runs(&self) -> Option<RunsView<'t, u32>> {
        match self {
            Cat::Str(codes, _) => codes.runs(),
            Cat::Int(idx) => idx.code_runs.as_ref().map(|(v, e)| RunsView { values: v, ends: e }),
        }
    }

    /// Number of distinct values.
    pub fn cardinality(&self) -> usize {
        match self {
            Cat::Str(_, dict) => dict.len(),
            Cat::Int(idx) => idx.values.len(),
        }
    }

    /// Decode a code back to a [`Value`].
    pub fn decode(&self, code: u32) -> Value {
        match self {
            Cat::Str(_, dict) => Value::Str(dict.decode(code).to_owned()),
            Cat::Int(idx) => Value::Int64(idx.values[code as usize]),
        }
    }

    /// Encode a value, if present in this column's domain.
    pub fn lookup(&self, value: &Value) -> Option<u32> {
        match (self, value) {
            (Cat::Str(_, dict), Value::Str(s)) => dict.lookup(s),
            (Cat::Int(idx), Value::Int64(v)) => idx.index.get(v).copied(),
            _ => None,
        }
    }
}

/// Serializable mirror of [`Table`] (drops lazily-built caches).
#[derive(Serialize, Deserialize)]
struct TableRepr {
    schema: Schema,
    columns: Vec<Column>,
    len: usize,
}

/// An immutable, columnar, in-memory table.
///
/// Built once via [`TableBuilder`]; all analysis (filters, group-bys, cube
/// construction, sampling) reads it concurrently without synchronization.
#[derive(Debug)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    len: usize,
    /// Per-column lazily-built categorical indexes for `Int64` columns.
    int_cat: Vec<OnceLock<Arc<IntCatIndex>>>,
}

// Hand-written (de)serialization through [`TableRepr`]: the lazily-built
// categorical caches are dropped on write and rebuilt on demand, and
// string-dictionary reverse indexes are restored eagerly on read.
impl Serialize for Table {
    fn to_value(&self) -> serde::Value {
        TableRepr { schema: self.schema.clone(), columns: self.columns.clone(), len: self.len }
            .to_value()
    }
}

impl Deserialize for Table {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        TableRepr::from_value(v).map(Table::from)
    }
}

impl Clone for Table {
    fn clone(&self) -> Self {
        Table {
            schema: self.schema.clone(),
            columns: self.columns.clone(),
            len: self.len,
            int_cat: (0..self.columns.len()).map(|_| OnceLock::new()).collect(),
        }
    }
}

impl From<TableRepr> for Table {
    fn from(repr: TableRepr) -> Self {
        let mut columns = repr.columns;
        for c in &mut columns {
            if let Column::Str { dict, .. } = c {
                dict.rebuild_index();
            }
        }
        let n = columns.len();
        Table {
            schema: repr.schema,
            columns,
            len: repr.len,
            int_cat: (0..n).map(|_| OnceLock::new()).collect(),
        }
    }
}

impl From<Table> for TableRepr {
    fn from(t: Table) -> Self {
        TableRepr { schema: t.schema, columns: t.columns, len: t.len }
    }
}

impl Table {
    /// An empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns: Vec<Column> = schema.fields().iter().map(|f| Column::empty(f.ty)).collect();
        let n = columns.len();
        Table { schema, columns, len: 0, int_cat: (0..n).map(|_| OnceLock::new()).collect() }
    }

    /// Assemble a table directly from pre-built columns (the snapshot
    /// loader's entry point). Column count, types and lengths must agree
    /// with the schema; `Str` dictionaries must already have their
    /// reverse index (the loader rebuilds them via `Dictionary::encode`).
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> Result<Table> {
        if columns.len() != schema.fields().len() {
            return Err(StorageError::ArityMismatch {
                expected: schema.fields().len(),
                got: columns.len(),
            });
        }
        let mut len = None;
        for (field, col) in schema.fields().iter().zip(&columns) {
            if col.column_type() != field.ty {
                return Err(StorageError::TypeMismatch {
                    column: field.name.clone(),
                    expected: field.ty,
                    got: col.column_type().name(),
                });
            }
            match len {
                None => len = Some(col.len()),
                Some(n) if n != col.len() => {
                    return Err(StorageError::ArityMismatch { expected: n, got: col.len() })
                }
                _ => {}
            }
        }
        let n = columns.len();
        Ok(Table {
            schema,
            columns,
            len: len.unwrap_or(0),
            int_cat: (0..n).map(|_| OnceLock::new()).collect(),
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// The column named `name`.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// The value at (`row`, `col`).
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// Materialize row `row` as a vector of values.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(row)).collect()
    }

    /// View column `col` as a categorical attribute.
    ///
    /// `Str` columns are categorical natively; `Int64` columns build (and
    /// cache) a dense code index on first use. Other types are rejected.
    pub fn cat(&self, col: usize) -> Result<Cat<'_>> {
        match &self.columns[col] {
            Column::Str { codes, dict } => Ok(Cat::Str(codes, dict)),
            Column::Int64(data) => {
                let idx = self.int_cat[col].get_or_init(|| Arc::new(IntCatIndex::build(data)));
                Ok(Cat::Int(idx))
            }
            _ => Err(StorageError::NotCategorical(self.schema.field(col).name.clone())),
        }
    }

    /// Materialize a new table containing only `rows`, in order. The new
    /// table shares no mutable state with `self`.
    pub fn take(&self, rows: &[RowId]) -> Table {
        let columns: Vec<Column> = self.columns.iter().map(|c| c.take(rows)).collect();
        let n = columns.len();
        Table {
            schema: self.schema.clone(),
            columns,
            len: rows.len(),
            int_cat: (0..n).map(|_| OnceLock::new()).collect(),
        }
    }

    /// [`take`](Self::take) into an existing table of the same schema,
    /// reusing its column buffer capacity across calls — the materialize
    /// path of repeated answers and incremental-refresh rounds gathers
    /// every column each round, where fresh allocation would dominate.
    /// Cached categorical indexes of `out` are reset (they described the
    /// old rows). Returns `false` on a schema mismatch, leaving `out`'s
    /// rows unspecified but its buffers intact.
    pub fn take_into(&self, rows: &[RowId], out: &mut Table) -> bool {
        if self.schema != out.schema || self.columns.len() != out.columns.len() {
            return false;
        }
        for (src, dst) in self.columns.iter().zip(&mut out.columns) {
            if !src.take_into(rows, dst) {
                return false;
            }
        }
        out.len = rows.len();
        for slot in &mut out.int_cat {
            *slot = OnceLock::new();
        }
        true
    }

    /// Approximate bytes one row of this table occupies.
    pub fn row_bytes(&self) -> usize {
        self.schema.row_bytes()
    }

    /// Approximate total heap bytes of the table's column data.
    pub fn heap_bytes(&self) -> usize {
        self.len * self.row_bytes()
    }

    /// All row ids, `0..len`.
    pub fn all_rows(&self) -> Vec<RowId> {
        (0..self.len as RowId).collect()
    }

    /// A new table equal to `self` with `rows` appended at the end — the
    /// streaming-ingest fold path. Existing column data is cloned (a
    /// per-column memcpy; shared snapshot-backed columns copy-on-write)
    /// and the dictionary codes of old rows are untouched: appends only
    /// ever extend a first-seen-order dictionary. The result therefore
    /// satisfies the incremental-refresh "old rows are a prefix"
    /// contract by construction. Every row is validated before anything
    /// is cloned, so a failed extend allocates nothing.
    pub fn extend_rows(&self, rows: &[Vec<Value>]) -> Result<Table> {
        for values in rows {
            validate_row(&self.schema, values)?;
        }
        let mut columns = self.columns.clone();
        for values in rows {
            for (c, v) in columns.iter_mut().zip(values) {
                let pushed = c.push(v);
                debug_assert!(pushed, "type validated above");
            }
        }
        let n = columns.len();
        Ok(Table {
            schema: self.schema.clone(),
            columns,
            len: self.len + rows.len(),
            int_cat: (0..n).map(|_| OnceLock::new()).collect(),
        })
    }
}

/// Check that `values` forms a valid row for `schema`: matching arity and
/// a compatible type in every position (`Int64` widens into `Float64`
/// columns). Shared by [`TableBuilder::push_row`], [`Table::extend_rows`]
/// and the ingest log's producer-side validation.
pub fn validate_row(schema: &Schema, values: &[Value]) -> Result<()> {
    if values.len() != schema.fields().len() {
        return Err(StorageError::ArityMismatch {
            expected: schema.fields().len(),
            got: values.len(),
        });
    }
    for (i, v) in values.iter().enumerate() {
        let expected = schema.field(i).ty;
        let ok = v.column_type() == expected
            || (expected == ColumnType::Float64 && v.column_type() == ColumnType::Int64);
        if !ok {
            return Err(StorageError::TypeMismatch {
                column: schema.field(i).name.clone(),
                expected,
                got: v.type_name(),
            });
        }
    }
    Ok(())
}

/// Builder that accumulates rows and freezes them into a [`Table`].
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<Column>,
    len: usize,
}

impl TableBuilder {
    /// A builder for `schema`.
    pub fn new(schema: Schema) -> Self {
        let columns = schema.fields().iter().map(|f| Column::empty(f.ty)).collect();
        TableBuilder { schema, columns, len: 0 }
    }

    /// A builder with per-column capacity pre-reserved for `capacity` rows.
    pub fn with_capacity(schema: Schema, capacity: usize) -> Self {
        let columns =
            schema.fields().iter().map(|f| Column::with_capacity(f.ty, capacity)).collect();
        TableBuilder { schema, columns, len: 0 }
    }

    /// Append one row. All columns are extended or none are.
    pub fn push_row(&mut self, values: &[Value]) -> Result<()> {
        // Validate every value before mutating anything so a failed push
        // leaves the builder consistent.
        validate_row(&self.schema, values)?;
        for (c, v) in self.columns.iter_mut().zip(values) {
            let pushed = c.push(v);
            debug_assert!(pushed, "type validated above");
        }
        self.len += 1;
        Ok(())
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Freeze into an immutable [`Table`], applying the active
    /// `TABULA_ENCODING` policy per column (see [`crate::encoding`]):
    /// clustered or narrow-range payloads leave the builder RLE- or
    /// FOR-encoded, everything else stays plain. Either way the frozen
    /// rows read back bit-identically.
    pub fn finish(self) -> Table {
        let mode = crate::encoding::encoding_mode();
        let mut columns = self.columns;
        for c in &mut columns {
            c.encode_for_freeze(mode);
        }
        let n = columns.len();
        Table {
            schema: self.schema,
            columns,
            len: self.len,
            int_cat: (0..n).map(|_| OnceLock::new()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::types::Point;

    fn taxi_mini() -> Table {
        let schema = Schema::new(vec![
            Field::new("payment", ColumnType::Str),
            Field::new("passengers", ColumnType::Int64),
            Field::new("fare", ColumnType::Float64),
            Field::new("pickup", ColumnType::Point),
        ]);
        let mut b = TableBuilder::new(schema);
        let rows: Vec<Vec<Value>> = vec![
            vec!["cash".into(), 1i64.into(), 5.0.into(), Point::new(0.0, 0.0).into()],
            vec!["credit".into(), 2i64.into(), 9.5.into(), Point::new(1.0, 1.0).into()],
            vec!["cash".into(), 1i64.into(), 7.25.into(), Point::new(2.0, 0.5).into()],
        ];
        for r in &rows {
            b.push_row(r).unwrap();
        }
        b.finish()
    }

    #[test]
    fn build_and_read_rows() {
        let t = taxi_mini();
        assert_eq!(t.len(), 3);
        assert_eq!(t.value(1, 0), Value::Str("credit".into()));
        assert_eq!(t.value(2, 2), Value::Float64(7.25));
        assert_eq!(
            t.row(0),
            vec![
                Value::Str("cash".into()),
                Value::Int64(1),
                Value::Float64(5.0),
                Value::Point(Point::new(0.0, 0.0)),
            ]
        );
    }

    #[test]
    fn arity_and_type_errors_leave_builder_intact() {
        let schema =
            Schema::new(vec![Field::new("a", ColumnType::Str), Field::new("b", ColumnType::Int64)]);
        let mut b = TableBuilder::new(schema);
        assert!(matches!(
            b.push_row(&["x".into()]),
            Err(StorageError::ArityMismatch { expected: 2, got: 1 })
        ));
        // Second value has the wrong type; the first must not be committed.
        assert!(matches!(
            b.push_row(&["x".into(), "y".into()]),
            Err(StorageError::TypeMismatch { .. })
        ));
        assert_eq!(b.len(), 0);
        b.push_row(&["x".into(), 3i64.into()]).unwrap();
        let t = b.finish();
        assert_eq!(t.len(), 1);
        assert_eq!(t.column(0).len(), 1);
        assert_eq!(t.column(1).len(), 1);
    }

    #[test]
    fn cat_view_str_and_int() {
        let t = taxi_mini();
        let payment = t.cat(0).unwrap();
        assert_eq!(payment.cardinality(), 2);
        assert_eq!(payment.codes(), &[0, 1, 0]);
        assert_eq!(payment.decode(1), Value::Str("credit".into()));
        assert_eq!(payment.lookup(&Value::Str("cash".into())), Some(0));
        assert_eq!(payment.lookup(&Value::Str("nope".into())), None);

        let passengers = t.cat(1).unwrap();
        assert_eq!(passengers.cardinality(), 2);
        assert_eq!(passengers.codes(), &[0, 1, 0]);
        assert_eq!(passengers.decode(0), Value::Int64(1));
        assert_eq!(passengers.lookup(&Value::Int64(2)), Some(1));

        // Non-categorical columns are rejected.
        assert!(matches!(t.cat(2), Err(StorageError::NotCategorical(_))));
        assert!(matches!(t.cat(3), Err(StorageError::NotCategorical(_))));
    }

    #[test]
    fn take_projects_and_is_independent() {
        let t = taxi_mini();
        let sub = t.take(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.value(0, 2), Value::Float64(7.25));
        assert_eq!(sub.value(1, 0), Value::Str("cash".into()));
        // Categorical views on the projection still work.
        assert_eq!(sub.cat(0).unwrap().codes(), &[0, 0]);
    }

    #[test]
    fn take_into_is_capacity_stable_across_rounds() {
        let t = taxi_mini();
        let mut out = t.take(&[0, 1, 2]);
        let caps: Vec<usize> = out.columns.iter().map(|c| c.capacity()).collect();
        for round in 0..8 {
            let rows: Vec<RowId> = if round % 2 == 0 { vec![2, 0] } else { vec![1, 2, 0] };
            assert!(t.take_into(&rows, &mut out), "schemas match");
            assert_eq!(out.len(), rows.len());
            assert_eq!(out.row(0), t.row(rows[0] as usize));
            let now: Vec<usize> = out.columns.iter().map(|c| c.capacity()).collect();
            assert_eq!(now, caps, "round {round} reallocated a column");
            // Cached categorical indexes are rebuilt for the new rows.
            assert_eq!(out.cat(1).unwrap().codes().len(), rows.len());
        }
        // Schema mismatch is rejected.
        let other = TableBuilder::new(Schema::new(vec![Field::new("x", ColumnType::Int64)]));
        let mut wrong = other.finish();
        assert!(!t.take_into(&[0], &mut wrong));
    }

    #[test]
    fn serde_round_trip_preserves_lookups() {
        let t = taxi_mini();
        let json = serde_json::to_string(&t).unwrap();
        let back: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.value(1, 0), Value::Str("credit".into()));
        // Dictionary reverse index must be rebuilt by deserialization.
        let cat = back.cat(0).unwrap();
        assert_eq!(cat.lookup(&Value::Str("credit".into())), Some(1));
    }

    #[test]
    fn extend_rows_appends_and_keeps_codes_stable() {
        let t = taxi_mini();
        let ext = t
            .extend_rows(&[
                vec!["credit".into(), 3i64.into(), 4.0.into(), Point::new(3.0, 3.0).into()],
                vec!["voucher".into(), 1i64.into(), 2.5.into(), Point::new(4.0, 4.0).into()],
            ])
            .unwrap();
        assert_eq!(ext.len(), 5);
        // Old rows are an untouched prefix.
        for r in 0..t.len() {
            assert_eq!(ext.row(r), t.row(r));
        }
        // Existing dictionary codes are stable; new values extend the
        // dictionary in first-seen order.
        assert_eq!(ext.cat(0).unwrap().codes(), &[0, 1, 0, 1, 2]);
        // A bad row is rejected up front (nothing half-appended).
        assert!(t
            .extend_rows(&[vec![
                "cash".into(),
                "oops".into(),
                1.0.into(),
                Point::new(0.0, 0.0).into(),
            ]])
            .is_err());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn heap_bytes_scales_with_rows() {
        let t = taxi_mini();
        assert_eq!(t.heap_bytes(), 3 * (12 + 8 + 8 + 16));
    }
}
