//! The system's headline invariant, tested end to end across crates: for
//! EVERY query over the cubed attributes, the sample Tabula returns is
//! within the user's accuracy-loss threshold of the raw query answer —
//! with certainty, for every built-in loss function, every
//! materialization mode, and randomized workloads.

use std::sync::Arc;
use tabula::core::loss::{
    AccuracyLoss, HeatmapLoss, HistogramLoss, MeanLoss, Metric, RegressionLoss, LOSS_EPS,
};
use tabula::core::{MaterializationMode, SamplingCubeBuilder};
use tabula::data::{meters_to_norm, TaxiConfig, TaxiGenerator, Workload, CUBED_ATTRIBUTES};
use tabula::storage::Table;

fn taxi(rows: usize, seed: u64) -> Arc<Table> {
    Arc::new(TaxiGenerator::new(TaxiConfig { rows, seed }).generate())
}

/// Build a cube, replay a 60-query workload, verify the bound per query.
fn verify_guarantee<L: AccuracyLoss + Clone>(
    table: &Arc<Table>,
    attrs: &[&str],
    loss: L,
    theta: f64,
    mode: MaterializationMode,
) {
    let cube = SamplingCubeBuilder::new(Arc::clone(table), attrs, loss.clone(), theta)
        .mode(mode)
        .seed(9)
        .build()
        .expect("build succeeds");
    let workload = Workload::new(attrs);
    let queries = workload.generate(table, 60, 123).expect("workload");
    for q in &queries {
        let raw = q.predicate.filter(table).expect("valid predicate");
        let answer = cube.query_cell(&q.cell);
        let achieved = loss.loss(table, &raw, &answer.rows);
        assert!(
            achieved <= theta + LOSS_EPS,
            "{} mode {mode:?}: query [{}] loss {achieved} > θ {theta} ({:?})",
            loss.name(),
            q.description,
            answer.provenance,
        );
    }
    // Exercise the local-sample path explicitly: query every materialized
    // iceberg cell directly and re-verify the bound there too.
    assert!(cube.materialized_cells() > 0, "{}: θ produced no icebergs", loss.name());
    let cols: Vec<usize> = attrs.iter().map(|a| table.schema().index_of(a).unwrap()).collect();
    for (cell, _) in cube.cube_table().take(40) {
        let answer = cube.query_cell(cell);
        assert!(matches!(answer.provenance, tabula::core::SampleProvenance::Local(_)));
        let cats: Vec<_> = cols.iter().map(|&c| table.cat(c).unwrap()).collect();
        let raw: Vec<u32> = (0..table.len() as u32)
            .filter(|&r| {
                cell.codes
                    .iter()
                    .zip(&cats)
                    .all(|(code, cat)| code.is_none_or(|c| cat.codes()[r as usize] == c))
            })
            .collect();
        let achieved = loss.loss(table, &raw, &answer.rows);
        assert!(
            achieved <= theta + LOSS_EPS,
            "{}: iceberg cell {cell} loss {achieved} > θ {theta}",
            loss.name()
        );
    }
}

#[test]
fn mean_loss_guarantee_over_random_workload() {
    let t = taxi(15_000, 1);
    let fare = t.schema().index_of("fare_amount").unwrap();
    verify_guarantee(
        &t,
        &CUBED_ATTRIBUTES[..5],
        MeanLoss::new(fare),
        0.05,
        MaterializationMode::Tabula,
    );
}

#[test]
fn heatmap_loss_guarantee_over_random_workload() {
    let t = taxi(15_000, 2);
    let pickup = t.schema().index_of("pickup").unwrap();
    verify_guarantee(
        &t,
        &CUBED_ATTRIBUTES[..5],
        HeatmapLoss::new(pickup, Metric::Euclidean),
        meters_to_norm(500.0),
        MaterializationMode::Tabula,
    );
}

#[test]
fn histogram_loss_guarantee_over_random_workload() {
    let t = taxi(15_000, 3);
    let fare = t.schema().index_of("fare_amount").unwrap();
    verify_guarantee(
        &t,
        &CUBED_ATTRIBUTES[..4],
        HistogramLoss::new(fare),
        0.5, // $0.5 — the paper's Fig 12 setting
        MaterializationMode::Tabula,
    );
}

#[test]
fn regression_loss_guarantee_over_random_workload() {
    let t = taxi(15_000, 4);
    let fare = t.schema().index_of("fare_amount").unwrap();
    let tip = t.schema().index_of("tip_amount").unwrap();
    verify_guarantee(
        &t,
        &CUBED_ATTRIBUTES[..4],
        RegressionLoss::new(fare, tip),
        2.0,
        MaterializationMode::Tabula,
    );
}

#[test]
fn guarantee_holds_without_sample_selection_too() {
    let t = taxi(10_000, 5);
    let fare = t.schema().index_of("fare_amount").unwrap();
    verify_guarantee(
        &t,
        &CUBED_ATTRIBUTES[..4],
        MeanLoss::new(fare),
        0.05,
        MaterializationMode::TabulaStar,
    );
}

#[test]
fn tabula_and_tabula_star_answer_identically_sized_cell_sets() {
    let t = taxi(10_000, 6);
    let fare = t.schema().index_of("fare_amount").unwrap();
    let build = |mode| {
        SamplingCubeBuilder::new(Arc::clone(&t), &CUBED_ATTRIBUTES[..4], MeanLoss::new(fare), 0.05)
            .mode(mode)
            .seed(9)
            .build()
            .unwrap()
    };
    let tabula = build(MaterializationMode::Tabula);
    let star = build(MaterializationMode::TabulaStar);
    assert_eq!(tabula.materialized_cells(), star.materialized_cells());
    // Selection strictly reduces persisted samples on this data.
    assert!(tabula.persisted_samples() < star.persisted_samples());
    assert!(
        tabula.memory_breakdown().sample_table_bytes < star.memory_breakdown().sample_table_bytes
    );
}

#[test]
fn tighter_thresholds_produce_more_icebergs_and_more_memory() {
    let t = taxi(12_000, 7);
    let fare = t.schema().index_of("fare_amount").unwrap();
    let build = |theta: f64| {
        SamplingCubeBuilder::new(Arc::clone(&t), &CUBED_ATTRIBUTES[..4], MeanLoss::new(fare), theta)
            .seed(9)
            .build()
            .unwrap()
    };
    let loose = build(0.10);
    let tight = build(0.02);
    assert!(tight.stats().iceberg_cells > loose.stats().iceberg_cells);
    assert!(tight.memory_breakdown().total() > loose.memory_breakdown().total());
    // Global sample size is θ-independent (Serfling depends only on ε/δ).
    assert_eq!(tight.stats().global_sample_size, loose.stats().global_sample_size);
}
