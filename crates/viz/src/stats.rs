//! Scalar summary statistics (the paper's AVG analysis task).

/// The arithmetic mean, `None` for an empty slice.
pub fn mean_of(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Relative error `|a − b| / |a|` with a guard for `a ≈ 0`.
pub fn relative_error(reference: f64, estimate: f64) -> f64 {
    (reference - estimate).abs() / reference.abs().max(1e-12)
}

/// Min / mean / max of a slice — the error-bar triple the paper's
/// actual-accuracy-loss figures report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinMeanMax {
    /// Smallest value.
    pub min: f64,
    /// Mean value.
    pub mean: f64,
    /// Largest value.
    pub max: f64,
}

/// Summarize a non-empty slice as min / mean / max.
pub fn min_mean_max(values: &[f64]) -> Option<MinMeanMax> {
    if values.is_empty() {
        return None;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
        sum += v;
    }
    Some(MinMeanMax { min: lo, mean: sum / values.len() as f64, max: hi })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_relative_error() {
        assert_eq!(mean_of(&[]), None);
        assert_eq!(mean_of(&[2.0, 4.0]), Some(3.0));
        assert!((relative_error(10.0, 9.0) - 0.1).abs() < 1e-12);
        assert!(relative_error(0.0, 1.0).is_finite());
    }

    #[test]
    fn min_mean_max_triple() {
        let s = min_mean_max(&[3.0, -1.0, 4.0]).unwrap();
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(min_mean_max(&[]), None);
    }
}
