//! End-to-end tests of the tracing layer: `EXPLAIN ANALYZE` through the
//! SQL surface, the flight recorder's capture semantics, and the
//! trace/provenance agreement contract (the acceptance criterion of the
//! tracing PR lives here).

use std::sync::Arc;
use tabula::data::{TaxiConfig, TaxiGenerator};
use tabula::obs::trace::{Stage, TraceProvenance, Tracer};
use tabula::sql::{QueryResult, Session};

fn traced_session(rows: usize) -> (Session, Arc<Tracer>) {
    let registry = Arc::new(tabula::obs::Registry::new());
    let tracer = Arc::new(Tracer::new(1, 1_000, 64));
    let mut s =
        Session::new().with_seed(7).with_registry(registry).with_tracer(Arc::clone(&tracer));
    s.register_table(
        "nyctaxi",
        Arc::new(TaxiGenerator::new(TaxiConfig { rows, seed: 7 }).generate()),
    );
    s.execute(
        "CREATE TABLE cube AS \
         SELECT payment_type, passenger_count, SAMPLING(*, 0.1) AS sample \
         FROM nyctaxi GROUPBY CUBE(payment_type, passenger_count) \
         HAVING mean_loss(fare_amount, Sam_global) > 0.1",
    )
    .unwrap();
    (s, tracer)
}

/// Parse the stage table of an `EXPLAIN ANALYZE` Info result back into
/// `(stage_name, ns_text, rows, bytes, chunks)` tuples.
fn stage_rows(lines: &[String]) -> Vec<(String, String, u64, u64, u64)> {
    let header = lines
        .iter()
        .position(|l| l.starts_with("stage"))
        .unwrap_or_else(|| panic!("no stage table in {lines:#?}"));
    lines[header + 1..]
        .iter()
        .map(|l| {
            let cols: Vec<&str> = l.split_whitespace().collect();
            assert_eq!(cols.len(), 5, "stage line {l:?}");
            (
                cols[0].to_string(),
                cols[1].to_string(),
                cols[2].parse().unwrap(),
                cols[3].parse().unwrap(),
                cols[4].parse().unwrap(),
            )
        })
        .collect()
}

#[test]
fn explain_analyze_served_query_prints_all_stages() {
    let (mut s, _tracer) = traced_session(5_000);
    let result =
        s.execute("EXPLAIN ANALYZE SELECT sample FROM cube WHERE payment_type = 'cash'").unwrap();
    let QueryResult::Info(lines) = result else { panic!("{result:?}") };

    // The answer summary leads with the SQL text and carries provenance.
    assert!(lines[0].contains("SELECT sample FROM cube"), "{lines:#?}");
    assert!(lines[1].starts_with("answer:"), "{lines:#?}");
    assert!(
        lines[1].contains("local_direct")
            || lines[1].contains("local_sorted")
            || lines[1].contains("global_sample"),
        "cold served query must resolve to an index provenance: {lines:#?}"
    );
    assert!(lines.iter().any(|l| l.starts_with("cell: cell{")), "{lines:#?}");

    // ≥ 4 distinct stages, each with nonzero recorded time.
    let stages = stage_rows(&lines);
    let names: Vec<&str> = stages.iter().map(|(n, ..)| n.as_str()).collect();
    assert_eq!(names, ["compile", "cache_probe", "index_probe", "materialize"], "{lines:#?}");
    for (name, ns, ..) in &stages {
        assert_ne!(ns, "0ns", "stage {name} must have nonzero nanos");
    }
    // Materialize reports the rows it shipped.
    let materialize = stages.iter().find(|(n, ..)| n == "materialize").unwrap();
    assert!(materialize.2 > 0, "materialize rows: {lines:#?}");
    assert!(materialize.3 > 0, "materialize bytes: {lines:#?}");
}

#[test]
fn explain_analyze_warm_query_reports_cache_hit() {
    let (mut s, _tracer) = traced_session(5_000);
    let sql = "EXPLAIN ANALYZE SELECT sample FROM cube WHERE payment_type = 'cash'";
    s.execute(sql).unwrap(); // cold: fills the cache
    let QueryResult::Info(lines) = s.execute(sql).unwrap() else { panic!() };
    assert!(lines[1].contains("cache_hit"), "{lines:#?}");
    let names: Vec<String> = stage_rows(&lines).into_iter().map(|(n, ..)| n).collect();
    assert_eq!(names, ["compile", "cache_probe"], "cache hit probes nothing else");
}

#[test]
fn explain_analyze_raw_select_reports_scan() {
    let (mut s, _tracer) = traced_session(2_000);
    let QueryResult::Info(lines) =
        s.execute("EXPLAIN ANALYZE SELECT * FROM nyctaxi WHERE payment_type = 'cash'").unwrap()
    else {
        panic!()
    };
    assert!(lines[1].contains("trace provenance: scan"), "{lines:#?}");
    // The answer line reports which filter kernel ran. Under the default
    // (Auto) encoding the low-cardinality `payment_type` codes freeze as
    // a bit-packed FOR column, so the equality predicate pushes down onto
    // the encoded form instead of the generic vectorized kernel.
    assert!(lines[1].contains("Scan[for]"), "{lines:#?}");
    let stages = stage_rows(&lines);
    assert_eq!(stages.len(), 1);
    assert_eq!(stages[0].0, "scan");
    assert!(stages[0].2 > 0, "scan matched rows: {lines:#?}");
    assert!(stages[0].3 > 0, "scan bytes: {lines:#?}");
    assert!(stages[0].4 > 0, "vectorized scan must report its chunk count: {lines:#?}");
}

#[test]
fn explain_analyze_works_with_tracing_disabled() {
    let (mut s, tracer) = traced_session(2_000);
    tracer.set_sample(0); // sampling off — EXPLAIN ANALYZE must still trace
    let QueryResult::Info(lines) =
        s.execute("EXPLAIN ANALYZE SELECT sample FROM cube WHERE payment_type = 'credit'").unwrap()
    else {
        panic!()
    };
    assert!(stage_rows(&lines).len() >= 2, "{lines:#?}");
    // …and the forced trace still lands in the flight recorder.
    assert_eq!(tracer.recorder().len(), 1);
}

#[test]
fn traces_agree_with_provenance_counters() {
    let (mut s, tracer) = traced_session(5_000);
    let counters = s.cube("cube").unwrap().provenance_counters().clone();
    let queries = [
        ("SELECT sample FROM cube WHERE payment_type = 'cash'", false),
        ("SELECT sample FROM cube WHERE payment_type = 'cash'", true), // warm repeat
        ("SELECT sample FROM cube WHERE payment_type = 'no_such_payment'", false),
    ];
    for (sql, expect_cache_hit) in queries {
        let before = (
            counters.local_hits(),
            counters.global_hits(),
            counters.cell_misses(),
            counters.serve_cache_hits(),
        );
        s.execute(sql).unwrap();
        let trace = tracer.recorder().recent().pop().unwrap();
        let delta = (
            counters.local_hits() - before.0,
            counters.global_hits() - before.1,
            counters.cell_misses() - before.2,
            counters.serve_cache_hits() - before.3,
        );
        // Exactly one counter moved, and it matches the trace's provenance.
        assert_eq!(delta.0 + delta.1 + delta.2 + delta.3, 1, "{sql}");
        let expected = match trace.provenance {
            TraceProvenance::LocalDirect | TraceProvenance::LocalSorted => (1, 0, 0, 0),
            TraceProvenance::GlobalSample => (0, 1, 0, 0),
            TraceProvenance::EmptyDomain => (0, 0, 1, 0),
            TraceProvenance::CacheHit => (0, 0, 0, 1),
            other => panic!("unexpected provenance {other:?} for {sql}"),
        };
        assert_eq!(delta, expected, "{sql}");
        assert_eq!(trace.provenance == TraceProvenance::CacheHit, expect_cache_hit, "{sql}");
        if trace.provenance == TraceProvenance::CacheHit {
            assert!(
                trace.stage_ns(Stage::IndexProbe).is_none()
                    && trace.stage_ns(Stage::Materialize).is_none()
                    && trace.stage_ns(Stage::Scan).is_none(),
                "cache hit must record no probe/scan stages: {trace:?}"
            );
        }
    }
}

#[test]
fn sampled_tracing_records_a_subset() {
    let registry = Arc::new(tabula::obs::Registry::new());
    let tracer = Arc::new(Tracer::new(4, 1_000, 256)); // 1 in 4
    let mut s =
        Session::new().with_seed(7).with_registry(registry).with_tracer(Arc::clone(&tracer));
    s.register_table(
        "nyctaxi",
        Arc::new(TaxiGenerator::new(TaxiConfig { rows: 2_000, seed: 7 }).generate()),
    );
    s.execute(
        "CREATE TABLE cube AS SELECT payment_type, SAMPLING(*, 0.1) AS sample \
         FROM nyctaxi GROUPBY CUBE(payment_type) \
         HAVING mean_loss(fare_amount, Sam_global) > 0.1",
    )
    .unwrap();
    for _ in 0..40 {
        s.execute("SELECT sample FROM cube WHERE payment_type = 'cash'").unwrap();
    }
    assert_eq!(tracer.recorder().len(), 10, "1-in-4 sampling over 40 queries");
}

#[test]
fn slow_threshold_zero_marks_everything_slow() {
    let registry = Arc::new(tabula::obs::Registry::new());
    let tracer = Arc::new(Tracer::new(1, 0, 16));
    let mut s =
        Session::new().with_seed(7).with_registry(registry).with_tracer(Arc::clone(&tracer));
    s.register_table(
        "nyctaxi",
        Arc::new(TaxiGenerator::new(TaxiConfig { rows: 500, seed: 7 }).generate()),
    );
    s.execute("SELECT * FROM nyctaxi WHERE payment_type = 'cash'").unwrap();
    let slow = tracer.recorder().last_slow().expect("threshold 0 captures everything");
    assert!(slow.slow);
    assert_eq!(slow.provenance, TraceProvenance::Scan);
    // JSONL export round-trips the provenance and stage names.
    let jsonl = tracer.recorder().export_jsonl();
    assert!(jsonl.contains("\"provenance\":\"scan\""), "{jsonl}");
    assert!(jsonl.contains("\"stage\":\"scan\""), "{jsonl}");
}
