//! The deterministic fuzz harness over `tabula-check`'s differential
//! oracle: generate N seeded cases, replay each through the full pipeline
//! (every materialization mode, thread counts 1 and 4) and the naive
//! reference implementation, and fail loudly on the first divergence —
//! after auto-shrinking it to a minimal reproducer written next to the
//! JSON summary as a ready-to-paste `#[test]`.
//!
//! ```bash
//! cargo run --release -p tabula-bench --bin fuzz_check -- --seed 42 --cases 200
//! ```
//!
//! Exit status is non-zero on divergence, so CI can gate on it (the
//! `fuzz-smoke` job runs three pinned seeds at two thread counts).
//! `BENCH_fuzz_check.json` records coverage either way. `--snapshot`
//! additionally freezes every built cube into a `tabula-store` snapshot,
//! thaws it, and requires byte-identical fingerprints, answers and
//! re-frozen bytes (the CI `snapshot` job's sweep).

use serde::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;
use tabula_bench::write_run_summary;
use tabula_check::{diff_case, diff_sql_case, gen_case, shrink, CaseSpec, Divergence};
use tabula_obs as obs;

struct Args {
    seed: u64,
    cases: u64,
    no_shrink: bool,
    snapshot: bool,
}

fn parse_args() -> Args {
    let mut args = Args { seed: 42, cases: 100, no_shrink: false, snapshot: false };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                args.seed = it.next().and_then(|v| v.parse().ok()).expect("--seed <u64>");
            }
            "--cases" => {
                args.cases = it.next().and_then(|v| v.parse().ok()).expect("--cases <u64>");
            }
            "--no-shrink" => args.no_shrink = true,
            "--snapshot" => args.snapshot = true,
            other => {
                eprintln!(
                    "unknown flag {other}; usage: fuzz_check [--seed S] [--cases N] \
                     [--no-shrink] [--snapshot]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Run the cube diff and the SQL diff for one case.
fn run_one(case: &CaseSpec, sql_seed: u64) -> Result<(usize, usize, usize), Divergence> {
    let report = diff_case(case)?;
    let statements = diff_sql_case(case, sql_seed, 8)?;
    Ok((report.cells_checked, report.queries_checked, statements))
}

fn main() -> ExitCode {
    let args = parse_args();
    // The snapshot lane (freeze → thaw → replay, byte-identical) roughly
    // doubles per-case cost, so it is opt-in.
    tabula_check::set_snapshot_lane(args.snapshot);
    let registry = obs::Registry::new();
    let start = Instant::now();

    let mut cells = 0usize;
    let mut queries = 0usize;
    let mut statements = 0usize;
    let mut by_loss: BTreeMap<String, u64> = BTreeMap::new();
    let mut failure: Option<(u64, CaseSpec, Divergence)> = None;

    for i in 0..args.cases {
        let case_seed = args.seed.wrapping_add(i);
        let case = gen_case(case_seed);
        *by_loss.entry(case.loss.name().to_string()).or_default() += 1;
        let case_start = Instant::now();
        match run_one(&case, case_seed) {
            Ok((c, q, s)) => {
                cells += c;
                queries += q;
                statements += s;
                registry.counter("fuzz.cases_passed").inc();
            }
            Err(d) => {
                registry.counter("fuzz.divergences").inc();
                eprintln!("seed {case_seed} ({}): DIVERGENCE {d}", case.loss.name());
                failure = Some((case_seed, case, d));
            }
        }
        registry.histogram("fuzz.case_time").record_duration(case_start.elapsed());
        if failure.is_some() {
            break;
        }
    }

    let diverged = failure.is_some();
    if let Some((case_seed, case, first)) = failure {
        let (minimal, divergence) = if args.no_shrink {
            (case, first)
        } else {
            eprintln!("shrinking the diverging case...");
            match shrink(&case, |c| run_one(c, case_seed).err()) {
                Some(s) => {
                    eprintln!(
                        "shrunk to {} rows / {} queries / {} attrs in {} attempts",
                        s.case.rows.len(),
                        s.case.queries.len(),
                        s.case.attrs.len(),
                        s.attempts
                    );
                    (s.case, s.divergence)
                }
                // The divergence was flaky enough to vanish under re-run;
                // report the original case unshrunk.
                None => (case, first),
            }
        };
        let repro =
            minimal.to_regression_test(&format!("fuzz_repro_seed_{case_seed}"), &divergence);
        let path = format!("fuzz_repro_seed_{case_seed}.rs");
        if let Err(e) = std::fs::write(&path, &repro) {
            eprintln!("cannot write {path}: {e}");
        } else {
            eprintln!("reproducer written to {path}:\n{repro}");
        }
    }

    let extra = [
        ("seed", Value::Int(args.seed as i128)),
        ("cases", Value::Int(args.cases as i128)),
        ("cells_checked", Value::Int(cells as i128)),
        ("queries_checked", Value::Int(queries as i128)),
        ("sql_statements_checked", Value::Int(statements as i128)),
        ("diverged", Value::Str(diverged.to_string())),
        ("snapshot_lane", Value::Str(args.snapshot.to_string())),
        (
            "by_loss",
            Value::Obj(
                by_loss
                    .into_iter()
                    .map(|(k, v)| (k, Value::Int(v as i128)))
                    .collect::<BTreeMap<_, _>>(),
            ),
        ),
    ];
    match write_run_summary("fuzz_check", &registry.snapshot(), &extra) {
        Ok(path) => println!("summary written to {}", path.display()),
        Err(e) => eprintln!("cannot write summary: {e}"),
    }
    println!(
        "fuzz_check: seed {} cases {}: {} cells, {} queries, {} SQL statements checked in {:.1?}{}",
        args.seed,
        args.cases,
        cells,
        queries,
        statements,
        start.elapsed(),
        if diverged { " — DIVERGED" } else { ", no divergence" }
    );
    if diverged {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
