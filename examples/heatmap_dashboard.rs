//! The paper's running example (Figures 1–2): an analyst compares heat
//! maps of cash-paid vs credit-paid taxi pickups.
//!
//! This example reproduces the Figure 2 artifact quantitatively: the
//! SampleFirst baseline's map of the *cash* population misses the airport
//! cluster, while Tabula's guaranteed sample preserves it. Rendered PPM
//! images land in `target/heatmaps/`.
//!
//! ```bash
//! cargo run --release --example heatmap_dashboard
//! ```

use std::sync::Arc;
use tabula::baselines::{Approach, SampleFirst};
use tabula::core::loss::{HeatmapLoss, Metric};
use tabula::core::SamplingCubeBuilder;
use tabula::data::{meters_to_norm, TaxiConfig, TaxiGenerator, CUBED_ATTRIBUTES};
use tabula::storage::{Point, Predicate, RowId, Table};
use tabula::viz::{Heatmap, HeatmapConfig};

fn pickups(table: &Table, rows: &[RowId]) -> Vec<Point> {
    let col = table.column_by_name("pickup").unwrap().as_point_slice().unwrap();
    rows.iter().map(|&r| col[r as usize]).collect()
}

fn main() {
    let table = Arc::new(TaxiGenerator::new(TaxiConfig { rows: 60_000, seed: 7 }).generate());
    let pickup_col = table.schema().index_of("pickup").unwrap();
    let theta = meters_to_norm(500.0);
    let loss = HeatmapLoss::new(pickup_col, Metric::Euclidean);

    // Tabula middleware.
    let cube = SamplingCubeBuilder::new(Arc::clone(&table), &CUBED_ATTRIBUTES[..5], loss, theta)
        .build()
        .unwrap();

    // SampleFirst baseline with a small pre-built sample.
    let sample_first = SampleFirst::with_rows(Arc::clone(&table), 1_000, 9);

    let cfg = HeatmapConfig::default();
    std::fs::create_dir_all("target/heatmaps").expect("create output dir");

    for payment in ["cash", "credit"] {
        let pred = Predicate::eq("payment_type", payment);
        let raw_rows = pred.filter(&table).unwrap();
        let raw_map = Heatmap::render(&pickups(&table, &raw_rows), cfg);

        let tabula_rows = cube.query(&pred).unwrap().rows;
        let tabula_map = Heatmap::render(&pickups(&table, &tabula_rows), cfg);

        let sf_rows = sample_first.query(&pred).rows;
        let sf_map = Heatmap::render(&pickups(&table, &sf_rows), cfg);

        // The Figure 2 narrative, quantified: how much of the raw map's
        // hot area does each approach miss?
        let miss_tabula = raw_map.missing_hot_cells(&tabula_map, 0.05);
        let miss_sf = raw_map.missing_hot_cells(&sf_map, 0.05);
        println!(
            "{payment:>7}: raw {} rows | Tabula sample {} (missing hot cells {:.1}%) | \
             SampleFirst {} (missing hot cells {:.1}%)",
            raw_rows.len(),
            tabula_rows.len(),
            100.0 * miss_tabula,
            sf_rows.len(),
            100.0 * miss_sf,
        );

        for (suffix, map) in [("raw", &raw_map), ("tabula", &tabula_map), ("samplefirst", &sf_map)]
        {
            let path = format!("target/heatmaps/{payment}_{suffix}.ppm");
            std::fs::write(&path, map.to_ppm()).expect("write heat map");
        }
    }
    println!("heat maps written to target/heatmaps/*.ppm");

    // Zoom in on the airport sub-population specifically (rate_code jfk).
    let jfk = Predicate::eq("rate_code", "jfk");
    let raw = jfk.filter(&table).unwrap();
    let tabula_ans = cube.query(&jfk).unwrap();
    let sf_ans = sample_first.query(&jfk);
    println!(
        "airport (jfk) population: raw {} | Tabula returns {} tuples | SampleFirst returns {}",
        raw.len(),
        tabula_ans.len(),
        sf_ans.rows.len()
    );
}
