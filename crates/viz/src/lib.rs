//! # tabula-viz
//!
//! The visualization substrate of the Tabula reproduction: the analysis
//! tasks the paper's dashboard performs on returned samples (heat maps,
//! histograms, linear regression, statistical means), plus timing helpers
//! so the benchmark harness can report the paper's *data-to-visualization*
//! breakdown (data-system time vs. sample-visualization time, Table II).
//!
//! The paper measures visualization with Matlab (heat maps, histograms)
//! and scikit-learn (means, regression); here the equivalent renderers are
//! implemented directly. Their cost is linear in the number of tuples the
//! middleware returns — the property that makes sampling pay off.

pub mod heatmap;
pub mod histogram;
pub mod regression;
pub mod stats;
pub mod timing;

pub use heatmap::{Heatmap, HeatmapConfig};
pub use histogram::Histogram;
pub use regression::RegressionFit;
pub use stats::mean_of;
pub use timing::{timed, PhaseTimer};
