//! **Figure 12** — impact of the number of cubed attributes (4–7) on
//! data-system time (12a) and actual loss (12b), with the histogram-aware
//! loss at θ = $0.5 (the paper's setting).
//!
//! ```bash
//! cargo run --release -p tabula-bench --bin fig12_num_attrs
//! ```

use tabula_bench::{
    default_queries, default_rows, print_comparison, standard_comparison, taxi_table, workload,
};
use tabula_core::loss::HistogramLoss;
use tabula_data::CUBED_ATTRIBUTES;

fn main() {
    let rows = default_rows();
    let table = taxi_table(rows);
    let fare = table.schema().index_of("fare_amount").unwrap();
    let theta = 0.5;
    println!(
        "# Figure 12 | histogram-aware loss, θ = $0.5 | rows = {rows} | loss unit: US dollars"
    );
    for n in 4..=7 {
        let attrs: Vec<&str> = CUBED_ATTRIBUTES[..n].to_vec();
        let queries = workload(&table, &attrs, default_queries());
        let results =
            standard_comparison(&table, &attrs, HistogramLoss::new(fare), theta, &queries);
        print_comparison(&format!("$0.5, {n} attributes"), theta, &results);
    }
}
