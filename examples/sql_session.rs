//! A scripted SQL session against the Tabula middleware — the exact
//! statement flow a dashboard integration would issue (paper Section II).
//!
//! ```bash
//! cargo run --release --example sql_session
//! ```

use std::sync::Arc;
use tabula::data::{TaxiConfig, TaxiGenerator};
use tabula::sql::{QueryResult, Session};

fn main() {
    let mut session = Session::new().with_seed(2);
    session.register_table(
        "nyctaxi",
        Arc::new(TaxiGenerator::new(TaxiConfig { rows: 100_000, seed: 2 }).generate()),
    );

    let script = [
        // Declare the paper's Function 1 as a user aggregate.
        "CREATE AGGREGATE fare_mean_loss(Raw, Sam) RETURN decimal_value AS \
         BEGIN ABS((AVG(Raw) - AVG(Sam)) / AVG(Raw)) END",
        // Paper Query 1 — initialize the sampling cube.
        "CREATE TABLE SamplingCube AS \
         SELECT payment_type, passenger_count, rate_code, SAMPLING(*, 0.05) AS sample \
         FROM nyctaxi GROUPBY CUBE(payment_type, passenger_count, rate_code) \
         HAVING fare_mean_loss(fare_amount, Sam_global) > 0.05",
        // Paper Query 2 — the dashboard's interactions.
        "SELECT sample FROM SamplingCube WHERE payment_type = 'cash'",
        "SELECT sample FROM SamplingCube WHERE payment_type = 'credit' AND passenger_count = 2",
        "SELECT sample FROM SamplingCube WHERE rate_code = 'jfk'",
        // A raw-table scan for comparison.
        "SELECT * FROM nyctaxi WHERE rate_code = 'jfk' AND payment_type = 'cash'",
    ];

    for sql in script {
        println!("tabula> {sql}");
        match session.execute(sql) {
            Ok(QueryResult::AggregateCreated(name)) => {
                println!("  loss function {name} registered\n");
            }
            Ok(QueryResult::CubeCreated { name, stats }) => {
                println!(
                    "  cube {name} created in {:.2?}: {} cells ({} iceberg), \
                     {} representative samples persisted\n",
                    stats.total,
                    stats.total_cells,
                    stats.iceberg_cells,
                    stats.samples_after_selection
                );
            }
            Ok(QueryResult::Sample { table, provenance }) => {
                let fares = table.column_by_name("fare_amount").unwrap().as_f64_slice().unwrap();
                let mean = fares.iter().sum::<f64>() / fares.len().max(1) as f64;
                println!(
                    "  {} sample tuples ({provenance:?}); AVG(fare) on sample = ${mean:.2}\n",
                    table.len()
                );
            }
            Ok(QueryResult::Table(table)) => {
                println!("  {} raw tuples\n", table.len());
            }
            Ok(other) => println!("  {other:?}\n"),
            Err(e) => println!("  ERROR: {e}\n"),
        }
    }
}
