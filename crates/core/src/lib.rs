//! # tabula-core
//!
//! The Tabula middleware: a **materialized sampling cube** that sits
//! between a SQL data system and a (geospatial) visualization dashboard
//! and serves pre-materialized *samples* of potentially unforeseen query
//! answers, with a deterministic, user-defined accuracy-loss guarantee.
//! This crate is a from-scratch implementation of Yu & Sarwat,
//! *"Turbocharging Geospatial Visualization Dashboards via a Materialized
//! Sampling Cube Approach"*, ICDE 2020.
//!
//! ## The guarantee
//!
//! For a user-chosen accuracy-loss function `loss()` and threshold `θ`,
//! every sample the cube returns for a query `Q` satisfies
//! `loss(raw_answer(Q), sample) ≤ θ` — with 100 % confidence, not a
//! probabilistic bound. The cube achieves that by examining, at
//! initialization time, every cell of the OLAP cube over the cubed
//! attributes:
//!
//! * cells for which the **global sample** (a Serfling-sized random sample
//!   of the whole table, [`serfling`]) is already within `θ` are *not*
//!   materialized — queries hitting them are answered with the global
//!   sample;
//! * the remaining **iceberg cells** get a *local sample* drawn by the
//!   accuracy-loss-aware greedy sampler ([`sampling`], the paper's
//!   Algorithm 1);
//! * similar local samples are deduplicated by the representative-sample
//!   selection ([`samgraph`], [`selection`] — the paper's Algorithm 3).
//!
//! ## Pipeline
//!
//! [`builder::SamplingCubeBuilder`] orchestrates the three stages:
//!
//! 1. **Dry run** ([`dryrun`]) — one scan of the raw table builds an
//!    algebraic loss-state cube; rolling it up identifies every iceberg
//!    cell without materializing anything.
//! 2. **Real run** ([`realrun`], Algorithm 2) — per iceberg cuboid, a
//!    cost model (the paper's Inequality 1) chooses between
//!    prune-then-group and group-everything, then local samples are drawn
//!    for iceberg cells (in parallel).
//! 3. **Sample selection** ([`samgraph`], [`selection`]) — a
//!    representation-relationship graph over local samples is built and a
//!    greedy dominating set of representative samples is persisted.
//!
//! The result is a [`cube::SamplingCube`] that answers dashboard queries
//! in microseconds by hash lookup.
//!
//! ## Loss functions
//!
//! The [`loss`] module defines the [`loss::AccuracyLoss`] contract and the
//! paper's built-ins: statistical-mean relative error (Function 1),
//! geospatial heat-map average-minimum-distance (Function 2), regression
//! angle difference (Function 3) and the 1-D histogram variant. Custom
//! losses implement the same trait (see `examples/custom_loss.rs`).

pub mod builder;
pub mod cube;
pub mod dryrun;
pub mod incremental;
pub mod loss;
pub mod realrun;
pub mod samgraph;
pub mod sampling;
pub mod selection;
pub mod serfling;
pub mod store;

pub use builder::{MaterializationMode, SamplingCubeBuilder};
pub use cube::{MemoryBreakdown, QueryAnswer, SampleProvenance, SamplingCube};
pub use incremental::{refresh, RefreshConfig, RefreshStats};
pub use loss::{AccuracyLoss, HeatmapLoss, HistogramLoss, MeanLoss, RegressionLoss};
pub use sampling::greedy_sample;
pub use serfling::{global_sample_size, SerflingConfig};
pub use store::SnapshotInfo;

/// Errors produced by the middleware.
#[derive(Debug, Clone)]
pub enum CoreError {
    /// Underlying storage error.
    Storage(tabula_storage::StorageError),
    /// Invalid configuration (message explains what).
    Config(String),
    /// A query referenced columns outside the cubed attributes.
    NotCubedAttribute(String),
    /// Snapshot store error (behind `Arc` because `std::io::Error` is not
    /// `Clone`; the typed [`tabula_store::StoreError`] is preserved).
    Store(std::sync::Arc<tabula_store::StoreError>),
}

impl From<tabula_storage::StorageError> for CoreError {
    fn from(e: tabula_storage::StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<tabula_store::StoreError> for CoreError {
    fn from(e: tabula_store::StoreError) -> Self {
        CoreError::Store(std::sync::Arc::new(e))
    }
}

// `StoreError` carries `std::io::Error`, which has no structural equality;
// snapshot errors compare by their rendered message instead.
impl PartialEq for CoreError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (CoreError::Storage(a), CoreError::Storage(b)) => a == b,
            (CoreError::Config(a), CoreError::Config(b)) => a == b,
            (CoreError::NotCubedAttribute(a), CoreError::NotCubedAttribute(b)) => a == b,
            (CoreError::Store(a), CoreError::Store(b)) => a.to_string() == b.to_string(),
            _ => false,
        }
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::NotCubedAttribute(name) => {
                write!(f, "column {name} is not one of the cubed attributes")
            }
            CoreError::Store(e) => write!(f, "snapshot store error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CoreError>;
