//! Tokenizer for the Tabula SQL dialect.

use crate::{Result, SqlError};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (case preserved; keyword matching is
    /// case-insensitive at the parser level). Every dialect keyword —
    /// including multi-word forms like `EXPLAIN ANALYZE` and `GROUP BY` —
    /// lexes as a plain sequence of `Ident`s; the parser decides meaning.
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `*`.
    Star,
    /// `=`.
    Eq,
    /// `<>` or `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `/`.
    Slash,
    /// `;`.
    Semicolon,
    /// End of input.
    Eof,
}

impl Token {
    /// Whether this token is the identifier `word` (case-insensitive).
    pub fn is_kw(&self, word: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(word))
    }
}

/// Tokenize `input`.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::Ne);
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token::Le);
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                        None => {
                            return Err(SqlError::Lex {
                                message: "unterminated string literal".into(),
                                position: i,
                            })
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &input[start..i];
                let value: f64 = text.parse().map_err(|_| SqlError::Lex {
                    message: format!("invalid number literal {text:?}"),
                    position: start,
                })?;
                tokens.push(Token::Number(value));
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '[' => {
                // Identifiers; `[...]` brackets allow the paper's interval
                // labels like `[0,5)` when quoted as ['[0,5)'] — plain
                // identifiers accept letters, digits, `_`.
                let start = i;
                i += 1;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_owned()));
            }
            other => {
                return Err(SqlError::Lex {
                    message: format!("unexpected character {other:?}"),
                    position: i,
                })
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_the_papers_initialization_query() {
        let sql = "CREATE TABLE SamplingCube AS \
                   SELECT D, C, M, SAMPLING(*, 0.1) AS sample \
                   FROM nyctaxi GROUPBY CUBE(D, C, M) \
                   HAVING loss(pickup_point, Sam_global) > 0.1";
        let toks = tokenize(sql).unwrap();
        assert!(toks.iter().any(|t| t.is_kw("SAMPLING")));
        assert!(toks.iter().any(|t| matches!(t, Token::Number(n) if *n == 0.1)));
        assert!(toks.iter().any(|t| t.is_kw("Sam_global")));
        assert_eq!(*toks.last().unwrap(), Token::Eof);
    }

    #[test]
    fn operators_and_comparisons() {
        let toks = tokenize("a >= 1 AND b <> 2 OR c <= 3 / 4 + -5").unwrap();
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Ne));
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Slash));
        assert!(toks.contains(&Token::Plus));
        assert!(toks.contains(&Token::Minus));
    }

    #[test]
    fn string_literals_with_escapes() {
        let toks = tokenize("WHERE payment = 'driver''s cash'").unwrap();
        assert!(toks.contains(&Token::Str("driver's cash".into())));
    }

    #[test]
    fn line_comments_are_skipped() {
        let toks = tokenize("SELECT -- this is a comment\n sample").unwrap();
        assert_eq!(toks.len(), 3); // SELECT, sample, EOF
    }

    #[test]
    fn numbers_with_exponents() {
        let toks = tokenize("0.004 1e-3 2.5E+2").unwrap();
        let nums: Vec<f64> = toks
            .iter()
            .filter_map(|t| if let Token::Number(n) = t { Some(*n) } else { None })
            .collect();
        assert_eq!(nums, vec![0.004, 0.001, 250.0]);
    }

    #[test]
    fn errors_carry_positions() {
        match tokenize("SELECT @") {
            Err(SqlError::Lex { position, .. }) => assert_eq!(position, 7),
            other => panic!("expected lex error, got {other:?}"),
        }
        assert!(matches!(tokenize("'unterminated"), Err(SqlError::Lex { .. })));
    }
}
