//! # tabula-obs — zero-dependency observability for the Tabula cube pipeline
//!
//! This crate is the instrumentation substrate for the whole workspace. It is
//! deliberately `std`-only (atomics + `Instant`, no external crates) so it can
//! sit below every other crate without dragging in dependencies.
//!
//! Three pillars:
//!
//! * **Spans** ([`span!`], [`SpanGuard`], [`Subscriber`], [`MemoryCollector`]):
//!   RAII-timed regions with per-thread nesting depth and a pluggable global
//!   subscriber. Disabled spans cost one relaxed atomic load.
//! * **Metrics** ([`Registry`], [`Counter`], [`Gauge`], [`Histogram`]):
//!   named atomic metrics with log₂-bucketed latency histograms
//!   (p50/p95/p99/max), point-in-time [`MetricsSnapshot`]s, and JSON /
//!   Prometheus text exporters.
//! * **Provenance** ([`ProvenanceCounters`]): where did each query answer come
//!   from — local cell sample, global-sample fallback, or empty cell.
//! * **Tracing** ([`Tracer`], [`QueryTrace`], [`FlightRecorder`]): request-
//!   scoped per-stage traces with a slow-query flight recorder, plus
//!   sliding-window histograms ([`WindowedHistogram`]) for "p99 over the
//!   last 60 s" questions. Disabled tracing costs one relaxed atomic load
//!   per query.
//!
//! ```
//! use std::sync::Arc;
//! use tabula_obs as obs;
//!
//! // Install the default in-memory span collector.
//! let collector = Arc::new(obs::MemoryCollector::new());
//! obs::set_subscriber(collector.clone());
//!
//! {
//!     let _span = obs::span!("build.dry_run", "cuboids={}", 8);
//!     obs::metrics::global().counter("dry_run.cells").add(128);
//! }
//!
//! obs::clear_subscriber();
//! assert_eq!(collector.count_of("build.dry_run"), 1);
//! let json = obs::metrics::global().snapshot().to_json();
//! assert!(json.contains("dry_run.cells"));
//! ```

pub mod export;
pub mod metrics;
pub mod provenance;
pub mod span;
pub mod timing;
pub mod trace;
pub mod window;

pub use metrics::{
    global, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
};
pub use provenance::ProvenanceCounters;
pub use span::{
    clear_subscriber, set_subscriber, timed, tracing_enabled, MemoryCollector, SpanGuard,
    SpanRecord, Subscriber,
};
pub use timing::PhaseTimer;
pub use trace::{
    CompletedTrace, FlightRecorder, QueryTrace, Stage, StageRecord, TraceProvenance, Tracer,
};
pub use window::{WindowSnapshot, WindowedHistogram};
