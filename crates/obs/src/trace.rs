//! Request-scoped query tracing and the slow-query flight recorder.
//!
//! A [`QueryTrace`] is a stack-carried context created once per query (by
//! `serve::Server::query` or the SQL executor) and threaded through the
//! stages of the serving path — predicate compile, answer-cache probe,
//! serve-index probe, materialization, raw scan. Each stage records its
//! elapsed nanos plus the rows and bytes it touched; the query's provenance
//! (cache hit / direct index / dense probe / global sample / scan) and the
//! generation epoch it was served from ride along.
//!
//! **Overhead contract.** Deciding whether to trace is one relaxed atomic
//! load in [`Tracer::begin`]; every stage hook on a disabled trace is a plain
//! branch on a stack boolean — no atomics, no allocation, no clock reads.
//! Labels and stage records are only materialized on enabled traces.
//!
//! Completed traces land in the [`FlightRecorder`]: a pair of mutex-guarded
//! rings (the mutex guards only a `VecDeque` push, never a clock read or
//! allocation of the trace itself). The *recent* ring holds the last
//! `TABULA_TRACE_CAP` traces of any speed; the *slow* ring separately retains
//! traces whose total time crossed `TABULA_SLOW_MS`, so a flood of fast
//! queries can never evict the one slow capture you care about. `\trace` in
//! the REPL and [`FlightRecorder::export_jsonl`] dump both as JSONL.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Maximum stages a single trace records; later stages are dropped (the
/// serving path has 4, raw SQL has 2 — 8 leaves headroom).
pub const MAX_STAGES: usize = 8;

/// Default capacity of the recent ring when `TABULA_TRACE_CAP` is unset.
pub const DEFAULT_TRACE_CAP: usize = 256;

/// Default slow-query threshold in milliseconds when `TABULA_SLOW_MS` is
/// unset. A threshold of 0 marks every trace slow.
pub const DEFAULT_SLOW_MS: u64 = 100;

/// A stage of the query path, in the order the serving layer visits them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Predicate → `CompiledCell` compilation.
    Compile,
    /// Answer-cache lookup.
    CacheProbe,
    /// ServeIndex cuboid probe.
    IndexProbe,
    /// Sample materialization (`Table::take`).
    Materialize,
    /// Raw storage scan (non-served fallback path).
    Scan,
}

impl Stage {
    /// Stable lowercase name used in JSONL and `EXPLAIN ANALYZE` output.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Compile => "compile",
            Stage::CacheProbe => "cache_probe",
            Stage::IndexProbe => "index_probe",
            Stage::Materialize => "materialize",
            Stage::Scan => "scan",
        }
    }
}

/// Where the answer ultimately came from — the trace-level refinement of
/// [`ProvenanceCounters`](crate::ProvenanceCounters): local hits split into
/// direct-index vs dense-probe, and the raw scan path gets its own label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceProvenance {
    /// Not yet resolved (a trace abandoned mid-query).
    #[default]
    Unresolved,
    /// Served from the answer cache.
    CacheHit,
    /// Local sample found via a direct-index (dense array) cuboid.
    LocalDirect,
    /// Local sample found via a sorted-keys (dense probe) cuboid.
    LocalSorted,
    /// Fell back to the global sample.
    GlobalSample,
    /// Predicate named a value outside the domain: empty answer, no probe.
    EmptyDomain,
    /// Raw storage scan (non-served query).
    Scan,
}

impl TraceProvenance {
    /// Stable lowercase name used in JSONL and `EXPLAIN ANALYZE` output.
    pub fn name(self) -> &'static str {
        match self {
            TraceProvenance::Unresolved => "unresolved",
            TraceProvenance::CacheHit => "cache_hit",
            TraceProvenance::LocalDirect => "local_direct",
            TraceProvenance::LocalSorted => "local_sorted",
            TraceProvenance::GlobalSample => "global_sample",
            TraceProvenance::EmptyDomain => "empty_domain",
            TraceProvenance::Scan => "scan",
        }
    }
}

/// One recorded stage: elapsed nanos (clamped to ≥ 1 so a recorded stage is
/// always distinguishable from an absent one) plus rows/bytes touched and,
/// for chunked kernels, the number of execution chunks the stage ran as
/// (0 for non-chunked stages).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageRecord {
    pub stage: Stage,
    pub ns: u64,
    pub rows: u64,
    pub bytes: u64,
    pub chunks: u64,
}

/// Stack-carried per-query trace context.
///
/// Created by [`Tracer::begin`] (sampled) or [`Tracer::force`] (always on,
/// for `EXPLAIN ANALYZE`); stage hooks are no-ops when disabled.
#[derive(Debug)]
pub struct QueryTrace {
    enabled: bool,
    start: Instant,
    label: String,
    cell: String,
    stages: [Option<StageRecord>; MAX_STAGES],
    n: usize,
    provenance: TraceProvenance,
    epoch: u64,
}

impl QueryTrace {
    /// A trace that records nothing; every hook is a branch on `enabled`.
    #[inline]
    pub fn disabled() -> Self {
        QueryTrace {
            enabled: false,
            start: Instant::now(),
            label: String::new(),
            cell: String::new(),
            stages: [None; MAX_STAGES],
            n: 0,
            provenance: TraceProvenance::Unresolved,
            epoch: 0,
        }
    }

    /// A recording trace. Library code should get these from a [`Tracer`];
    /// this constructor exists for tests and tools that manage their own.
    pub fn enabled() -> Self {
        QueryTrace { enabled: true, ..QueryTrace::disabled() }
    }

    /// Whether stage hooks record anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Start timing a stage; `None` (and free) when the trace is disabled.
    #[inline]
    pub fn stage_start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Finish a stage started with [`stage_start`](Self::stage_start),
    /// recording elapsed nanos (≥ 1) and the rows/bytes it touched.
    #[inline]
    pub fn stage(&mut self, stage: Stage, started: Option<Instant>, rows: u64, bytes: u64) {
        self.stage_chunks(stage, started, rows, bytes, 0);
    }

    /// [`stage`](Self::stage) for chunked kernels: additionally records how
    /// many execution chunks the stage was carved into.
    #[inline]
    pub fn stage_chunks(
        &mut self,
        stage: Stage,
        started: Option<Instant>,
        rows: u64,
        bytes: u64,
        chunks: u64,
    ) {
        let Some(started) = started else { return };
        if !self.enabled || self.n >= MAX_STAGES {
            return;
        }
        let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX).max(1);
        self.stages[self.n] = Some(StageRecord { stage, ns, rows, bytes, chunks });
        self.n += 1;
    }

    /// Attach a human-readable label (e.g. the SQL text). First writer wins
    /// so the outermost caller's label survives.
    pub fn set_label(&mut self, label: impl Into<String>) {
        if self.enabled && self.label.is_empty() {
            self.label = label.into();
        }
    }

    /// Attach the compiled-cell description.
    pub fn set_cell(&mut self, cell: impl Into<String>) {
        if self.enabled {
            self.cell = cell.into();
        }
    }

    /// Record where the answer came from.
    pub fn set_provenance(&mut self, p: TraceProvenance) {
        if self.enabled {
            self.provenance = p;
        }
    }

    /// Record the generation epoch the answer was served from.
    pub fn set_epoch(&mut self, epoch: u64) {
        if self.enabled {
            self.epoch = epoch;
        }
    }

    /// The stages recorded so far.
    pub fn stages(&self) -> impl Iterator<Item = &StageRecord> {
        self.stages[..self.n].iter().flatten()
    }

    /// The provenance recorded so far.
    pub fn provenance(&self) -> TraceProvenance {
        self.provenance
    }

    fn complete(self, seq: u64, slow_ns: u64) -> CompletedTrace {
        let total_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX).max(1);
        let stages: Vec<StageRecord> = self.stages[..self.n].iter().flatten().copied().collect();
        let (rows, bytes) = stages.iter().fold((0, 0), |(r, b), s| (r + s.rows, b + s.bytes));
        CompletedTrace {
            seq,
            label: self.label,
            cell: self.cell,
            total_ns,
            stages,
            provenance: self.provenance,
            epoch: self.epoch,
            rows,
            bytes,
            slow: total_ns >= slow_ns,
        }
    }
}

/// A finished trace as stored in the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedTrace {
    /// Monotone sequence number assigned by the tracer at completion.
    pub seq: u64,
    /// Caller-supplied label (SQL text or predicate rendering).
    pub label: String,
    /// Compiled-cell description (empty for raw scans / empty domains).
    pub cell: String,
    /// Wall time from trace creation to completion.
    pub total_ns: u64,
    /// Per-stage records in execution order.
    pub stages: Vec<StageRecord>,
    /// Where the answer came from.
    pub provenance: TraceProvenance,
    /// Generation epoch served (0 when not serving from a generation).
    pub epoch: u64,
    /// Total rows touched across stages.
    pub rows: u64,
    /// Total bytes touched across stages.
    pub bytes: u64,
    /// Whether `total_ns` crossed the tracer's slow threshold.
    pub slow: bool,
}

impl CompletedTrace {
    /// One-line JSON rendering (the JSONL unit of `\trace` / `export_jsonl`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(160 + self.stages.len() * 64);
        let _ = write!(
            out,
            "{{\"seq\":{},\"label\":\"{}\",\"cell\":\"{}\",\"total_ns\":{},\"provenance\":\"{}\",\"epoch\":{},\"rows\":{},\"bytes\":{},\"slow\":{},\"stages\":[",
            self.seq,
            crate::export::json_escape(&self.label),
            crate::export::json_escape(&self.cell),
            self.total_ns,
            self.provenance.name(),
            self.epoch,
            self.rows,
            self.bytes,
            self.slow,
        );
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":\"{}\",\"ns\":{},\"rows\":{},\"bytes\":{},\"chunks\":{}}}",
                s.stage.name(),
                s.ns,
                s.rows,
                s.bytes,
                s.chunks
            );
        }
        out.push_str("]}");
        out
    }

    /// The recorded nanos of `stage`, if it ran.
    pub fn stage_ns(&self, stage: Stage) -> Option<u64> {
        self.stages.iter().find(|s| s.stage == stage).map(|s| s.ns)
    }

    /// The recorded chunk count of `stage`, if it ran.
    pub fn stage_chunks(&self, stage: Stage) -> Option<u64> {
        self.stages.iter().find(|s| s.stage == stage).map(|s| s.chunks)
    }
}

/// The dual-ring store of completed traces.
///
/// Both rings are bounded `VecDeque`s behind their own mutex; the critical
/// sections are a push and maybe a pop. Slow traces are cloned into the slow
/// ring *in addition to* the recent ring, so [`export_jsonl`]
/// (Self::export_jsonl) deduplicates by sequence number.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    recent: Mutex<VecDeque<CompletedTrace>>,
    slow: Mutex<VecDeque<CompletedTrace>>,
}

impl FlightRecorder {
    /// A recorder keeping the last `cap` traces (and `max(cap / 4, 16)`
    /// slow ones). `cap` is clamped to ≥ 1.
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        FlightRecorder {
            cap,
            recent: Mutex::new(VecDeque::with_capacity(cap.min(1024))),
            slow: Mutex::new(VecDeque::new()),
        }
    }

    fn slow_cap(&self) -> usize {
        (self.cap / 4).max(16)
    }

    /// Store a completed trace, evicting the oldest beyond capacity.
    pub fn record(&self, trace: CompletedTrace) {
        if trace.slow {
            let mut slow = self.slow.lock().unwrap();
            if slow.len() >= self.slow_cap() {
                slow.pop_front();
            }
            slow.push_back(trace.clone());
        }
        let mut recent = self.recent.lock().unwrap();
        if recent.len() >= self.cap {
            recent.pop_front();
        }
        recent.push_back(trace);
    }

    /// The recent ring, oldest first.
    pub fn recent(&self) -> Vec<CompletedTrace> {
        self.recent.lock().unwrap().iter().cloned().collect()
    }

    /// The slow ring, oldest first.
    pub fn slow(&self) -> Vec<CompletedTrace> {
        self.slow.lock().unwrap().iter().cloned().collect()
    }

    /// The most recently captured slow trace, if any.
    pub fn last_slow(&self) -> Option<CompletedTrace> {
        self.slow.lock().unwrap().back().cloned()
    }

    /// Number of traces in the recent ring.
    pub fn len(&self) -> usize {
        self.recent.lock().unwrap().len()
    }

    /// Whether the recent ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every stored trace.
    pub fn clear(&self) {
        self.recent.lock().unwrap().clear();
        self.slow.lock().unwrap().clear();
    }

    /// Every stored trace as JSON lines: the union of both rings,
    /// deduplicated by `seq`, in sequence order.
    pub fn export_jsonl(&self) -> String {
        let mut all = self.recent();
        all.extend(self.slow());
        all.sort_by_key(|t| t.seq);
        all.dedup_by_key(|t| t.seq);
        let mut out = String::new();
        for t in &all {
            out.push_str(&t.to_json());
            out.push('\n');
        }
        out
    }
}

/// Trace policy + the flight recorder: decides per query whether to record,
/// stamps sequence numbers, and classifies slow queries.
///
/// Library code uses [`Tracer::global`] (configured from `TABULA_TRACE_SAMPLE`,
/// `TABULA_SLOW_MS`, `TABULA_TRACE_CAP`); benches and tests construct private
/// tracers so runs cannot contaminate each other.
#[derive(Debug)]
pub struct Tracer {
    /// 0 = disabled, 1 = every query, N = one query in N.
    sample: AtomicU32,
    tick: AtomicU64,
    slow_ns: AtomicU64,
    seq: AtomicU64,
    recorder: FlightRecorder,
}

impl Tracer {
    /// A tracer with explicit policy: `sample` (0 = off, 1 = full, N = 1-in-N),
    /// slow threshold in milliseconds, and recent-ring capacity.
    pub fn new(sample: u32, slow_ms: u64, cap: usize) -> Self {
        Tracer {
            sample: AtomicU32::new(sample),
            tick: AtomicU64::new(0),
            slow_ns: AtomicU64::new(slow_ms.saturating_mul(1_000_000)),
            seq: AtomicU64::new(0),
            recorder: FlightRecorder::new(cap),
        }
    }

    /// The process-wide tracer, configured once from the environment:
    /// `TABULA_TRACE_SAMPLE` (default 0 = disabled), `TABULA_SLOW_MS`
    /// (default 100), `TABULA_TRACE_CAP` (default 256).
    pub fn global() -> &'static Arc<Tracer> {
        static GLOBAL: OnceLock<Arc<Tracer>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let sample = env_u64("TABULA_TRACE_SAMPLE", 0).min(u32::MAX as u64) as u32;
            let slow_ms = env_u64("TABULA_SLOW_MS", DEFAULT_SLOW_MS);
            let cap = env_u64("TABULA_TRACE_CAP", DEFAULT_TRACE_CAP as u64) as usize;
            Arc::new(Tracer::new(sample, slow_ms, cap))
        })
    }

    /// Begin a trace for one query. Costs a single relaxed atomic load when
    /// tracing is disabled; when sampling 1-in-N, one extra `fetch_add`.
    #[inline]
    pub fn begin(&self) -> QueryTrace {
        match self.sample.load(Ordering::Relaxed) {
            0 => QueryTrace::disabled(),
            1 => QueryTrace::enabled(),
            n => {
                if self.tick.fetch_add(1, Ordering::Relaxed).is_multiple_of(n as u64) {
                    QueryTrace::enabled()
                } else {
                    QueryTrace::disabled()
                }
            }
        }
    }

    /// Begin a trace that records regardless of the sampling policy
    /// (`EXPLAIN ANALYZE` uses this).
    pub fn force(&self) -> QueryTrace {
        QueryTrace::enabled()
    }

    /// Complete a trace: stamp it, classify slowness, store it in the flight
    /// recorder, and hand it back. `None` if the trace was disabled.
    ///
    /// Inlined so disabled traces cost one branch at the call site — the
    /// by-value `QueryTrace` would otherwise be memcpy'd across the crate
    /// boundary on every untraced query.
    #[inline]
    pub fn finish(&self, trace: QueryTrace) -> Option<CompletedTrace> {
        if !trace.enabled {
            return None;
        }
        self.finish_enabled(trace)
    }

    #[cold]
    fn finish_enabled(&self, trace: QueryTrace) -> Option<CompletedTrace> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let completed = trace.complete(seq, self.slow_ns.load(Ordering::Relaxed));
        self.recorder.record(completed.clone());
        Some(completed)
    }

    /// Change the sampling policy (0 = off, 1 = full, N = 1-in-N).
    pub fn set_sample(&self, sample: u32) {
        self.sample.store(sample, Ordering::Relaxed);
    }

    /// Current sampling policy.
    pub fn sample(&self) -> u32 {
        self.sample.load(Ordering::Relaxed)
    }

    /// Change the slow-query threshold (0 marks everything slow).
    pub fn set_slow_ms(&self, slow_ms: u64) {
        self.slow_ns.store(slow_ms.saturating_mul(1_000_000), Ordering::Relaxed);
    }

    /// The flight recorder behind this tracer.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finished(tracer: &Tracer, ns_work: u64) -> CompletedTrace {
        let mut t = tracer.force();
        let s = t.stage_start();
        std::thread::sleep(std::time::Duration::from_nanos(ns_work));
        t.stage(Stage::Compile, s, 0, 0);
        t.set_provenance(TraceProvenance::LocalDirect);
        tracer.finish(t).expect("forced trace completes")
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = QueryTrace::disabled();
        assert!(t.stage_start().is_none());
        t.stage(Stage::Compile, None, 10, 10);
        t.set_label("x");
        t.set_provenance(TraceProvenance::CacheHit);
        assert_eq!(t.stages().count(), 0);
        assert_eq!(t.provenance(), TraceProvenance::Unresolved);
    }

    #[test]
    fn tracer_off_begins_disabled_and_finish_drops_it() {
        let tracer = Tracer::new(0, 100, 8);
        let t = tracer.begin();
        assert!(!t.is_enabled());
        assert!(tracer.finish(t).is_none());
        assert!(tracer.recorder().is_empty());
    }

    #[test]
    fn stage_nanos_are_nonzero_and_ordered() {
        let tracer = Tracer::new(1, 100, 8);
        let mut t = tracer.begin();
        assert!(t.is_enabled());
        let s = t.stage_start();
        t.stage(Stage::Compile, s, 0, 0);
        let s = t.stage_start();
        t.stage(Stage::IndexProbe, s, 5, 40);
        let done = tracer.finish(t).unwrap();
        assert_eq!(done.stages.len(), 2);
        assert!(done.stages.iter().all(|s| s.ns >= 1));
        assert_eq!(done.stages[0].stage, Stage::Compile);
        assert_eq!(done.stages[1].stage, Stage::IndexProbe);
        assert_eq!(done.rows, 5);
        assert_eq!(done.bytes, 40);
        assert!(done.total_ns >= 1);
    }

    #[test]
    fn sampling_one_in_n() {
        let tracer = Tracer::new(4, 100, 64);
        let enabled = (0..100).filter(|_| tracer.begin().is_enabled()).count();
        assert_eq!(enabled, 25);
    }

    #[test]
    fn recent_ring_evicts_oldest() {
        let tracer = Tracer::new(1, u64::MAX / 2_000_000, 3);
        for _ in 0..5 {
            finished(&tracer, 0);
        }
        let recent = tracer.recorder().recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent.first().unwrap().seq, 3, "oldest two evicted");
        assert_eq!(recent.last().unwrap().seq, 5);
    }

    #[test]
    fn slow_ring_survives_fast_floods() {
        let tracer = Tracer::new(1, 0, 2); // slow_ms = 0: everything is slow …
        let slow = finished(&tracer, 0);
        assert!(slow.slow);
        tracer.set_slow_ms(u64::MAX / 2_000_000); // … now nothing is.
        for _ in 0..10 {
            assert!(!finished(&tracer, 0).slow);
        }
        // The recent ring (cap 2) has long evicted seq 1; the slow ring kept it.
        assert_eq!(tracer.recorder().last_slow().unwrap().seq, slow.seq);
        assert!(tracer.recorder().recent().iter().all(|t| t.seq != slow.seq));
    }

    #[test]
    fn export_jsonl_dedups_and_parses() {
        let tracer = Tracer::new(1, 0, 8);
        finished(&tracer, 0);
        finished(&tracer, 0);
        let jsonl = tracer.recorder().export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2, "slow duplicates must be deduped:\n{jsonl}");
        for line in lines {
            assert_eq!(line.matches('{').count(), line.matches('}').count(), "{line}");
            assert!(line.contains("\"provenance\":\"local_direct\""), "{line}");
            assert!(line.contains("\"stage\":\"compile\""), "{line}");
        }
    }

    #[test]
    fn stage_chunks_ride_along() {
        let tracer = Tracer::new(1, 100, 8);
        let mut t = tracer.begin();
        let s = t.stage_start();
        t.stage_chunks(Stage::Scan, s, 4096, 32768, 2);
        let s = t.stage_start();
        t.stage(Stage::Materialize, s, 10, 80);
        let done = tracer.finish(t).unwrap();
        assert_eq!(done.stage_chunks(Stage::Scan), Some(2));
        assert_eq!(done.stage_chunks(Stage::Materialize), Some(0));
        assert!(done.to_json().contains("\"chunks\":2"), "{}", done.to_json());
    }

    #[test]
    fn stage_overflow_is_dropped_not_panicked() {
        let tracer = Tracer::new(1, 100, 8);
        let mut t = tracer.begin();
        for _ in 0..MAX_STAGES + 3 {
            let s = t.stage_start();
            t.stage(Stage::Scan, s, 1, 1);
        }
        let done = tracer.finish(t).unwrap();
        assert_eq!(done.stages.len(), MAX_STAGES);
    }

    #[test]
    fn first_label_wins() {
        let mut t = QueryTrace::enabled();
        t.set_label("outer");
        t.set_label("inner");
        let tracer = Tracer::new(1, 100, 8);
        assert_eq!(tracer.finish(t).unwrap().label, "outer");
    }
}
