//! CRC-64 (ECMA-182 polynomial, reflected) — the per-block and whole-file
//! integrity check of the snapshot format.
//!
//! Table-driven **slice-by-16**: sixteen 256-entry tables (32 KiB, built
//! once at first use) let the hot loop fold 16 input bytes per iteration
//! instead of one, which matters because every snapshot byte is CRC'd
//! twice (its block's checksum and the whole-file checksum) on both the
//! write and the load path — with the classic one-byte-at-a-time loop the
//! checksum, not the I/O, dominated restart time. CRC-64 rather than a
//! 32-bit CRC because snapshots reach hundreds of megabytes: at that size
//! a 32-bit check's birthday bound starts to matter for fleets of cubes
//! shipped between machines.

use std::sync::OnceLock;

/// Reflected ECMA-182 polynomial.
const POLY: u64 = 0xC96C_5795_D787_0F42;

/// Slice-by-16 lookup tables: `t[0]` is the classic byte-at-a-time table;
/// `t[k][b]` advances the contribution of a byte that sits `k` positions
/// deeper in the 16-byte window.
fn tables() -> &'static [[u64; 256]; 16] {
    static TABLES: OnceLock<Box<[[u64; 256]; 16]>> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = Box::new([[0u64; 256]; 16]);
        for i in 0..256usize {
            let mut crc = i as u64;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            t[0][i] = crc;
        }
        for k in 1..16 {
            for i in 0..256usize {
                let prev = t[k - 1][i];
                t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            }
        }
        t
    })
}

/// CRC-64 of `bytes` (init and final XOR are all-ones, matching the
/// common `CRC-64/XZ` parameterization).
pub fn crc64(bytes: &[u8]) -> u64 {
    let t = tables();
    let mut crc = u64::MAX;
    let mut chunks = bytes.chunks_exact(16);
    for c in &mut chunks {
        let lo = u64::from_le_bytes(c[0..8].try_into().unwrap()) ^ crc;
        let hi = u64::from_le_bytes(c[8..16].try_into().unwrap());
        crc = t[15][(lo & 0xFF) as usize]
            ^ t[14][((lo >> 8) & 0xFF) as usize]
            ^ t[13][((lo >> 16) & 0xFF) as usize]
            ^ t[12][((lo >> 24) & 0xFF) as usize]
            ^ t[11][((lo >> 32) & 0xFF) as usize]
            ^ t[10][((lo >> 40) & 0xFF) as usize]
            ^ t[9][((lo >> 48) & 0xFF) as usize]
            ^ t[8][(lo >> 56) as usize]
            ^ t[7][(hi & 0xFF) as usize]
            ^ t[6][((hi >> 8) & 0xFF) as usize]
            ^ t[5][((hi >> 16) & 0xFF) as usize]
            ^ t[4][((hi >> 24) & 0xFF) as usize]
            ^ t[3][((hi >> 32) & 0xFF) as usize]
            ^ t[2][((hi >> 40) & 0xFF) as usize]
            ^ t[1][((hi >> 48) & 0xFF) as usize]
            ^ t[0][(hi >> 56) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// A 64×64 bit matrix over GF(2): `m[i]` is the image of bit `i`.
type Gf2Matrix = [u64; 64];

/// Matrix × vector over GF(2): XOR of the columns selected by `vec`.
fn gf2_times(mat: &Gf2Matrix, mut vec: u64) -> u64 {
    let mut sum = 0;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

/// Matrix square over GF(2).
fn gf2_square(out: &mut Gf2Matrix, mat: &Gf2Matrix) {
    for (o, &col) in out.iter_mut().zip(mat.iter()) {
        *o = gf2_times(mat, col);
    }
}

/// Advance a finalized CRC-64 through `len_bytes` zero bytes — the
/// zero-advance operator is linear, so `len` applications collapse into
/// `O(log len)` matrix squarings. Building block of [`crc64_combine`].
pub fn crc64_shift(mut crc: u64, len_bytes: u64) -> u64 {
    let mut nbits = len_bytes.wrapping_mul(8);
    if nbits == 0 {
        return crc;
    }
    // The operator for ONE zero bit in the reflected register:
    // r → (r >> 1) ^ (r & 1) · POLY.
    let mut mat: Gf2Matrix = [0; 64];
    mat[0] = POLY;
    for (i, col) in mat.iter_mut().enumerate().skip(1) {
        *col = 1u64 << (i - 1);
    }
    let mut sq: Gf2Matrix = [0; 64];
    loop {
        if nbits & 1 != 0 {
            crc = gf2_times(&mat, crc);
        }
        nbits >>= 1;
        if nbits == 0 {
            return crc;
        }
        gf2_square(&mut sq, &mat);
        mat = sq;
    }
}

/// CRC-64 of a concatenation from the CRCs of its halves:
/// `crc64(a ⧺ b) == crc64_combine(crc64(a), crc64(b), b.len())`.
///
/// With the CRC-64/XZ init/xorout convention the affine terms cancel and
/// the combination is exactly `shift(crc_a, |b|) ^ crc_b`. This lets the
/// reader *derive* the expected whole-file checksum from the per-segment
/// checksums it has already verified (header, block payloads, padding,
/// manifest) instead of re-reading every byte a second time — the
/// whole-file check keeps its full detection power at O(log n) cost.
pub fn crc64_combine(crc_a: u64, crc_b: u64, len_b: u64) -> u64 {
    crc64_shift(crc_a, len_b) ^ crc_b
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trusted-by-inspection reference the sliced loop must match.
    fn crc64_bytewise(bytes: &[u8]) -> u64 {
        let t = &tables()[0];
        let mut crc = u64::MAX;
        for &b in bytes {
            crc = t[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
        }
        !crc
    }

    #[test]
    fn known_vector() {
        // CRC-64/XZ("123456789") is a published check value.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn sliced_matches_bytewise_at_every_alignment() {
        // Lengths straddling the 16-byte chunking (0, partial, exact
        // multiples, exact-plus-remainder) over non-trivial content.
        let data: Vec<u8> =
            (0..1024u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        for len in (0..64).chain([127, 128, 255, 256, 1000, 1024]) {
            assert_eq!(
                crc64(&data[..len]),
                crc64_bytewise(&data[..len]),
                "sliced and bytewise CRCs disagree at length {len}"
            );
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0xABu8; 1024];
        let clean = crc64(&data);
        for pos in [0usize, 1, 511, 1023] {
            for bit in 0..8 {
                data[pos] ^= 1 << bit;
                assert_ne!(crc64(&data), clean, "flip at byte {pos} bit {bit} undetected");
                data[pos] ^= 1 << bit;
            }
        }
        assert_eq!(crc64(&data), clean);
    }

    #[test]
    fn empty_and_incremental_are_stable() {
        assert_eq!(crc64(b""), 0);
        assert_eq!(crc64(b"tabula"), crc64(b"tabula"));
        assert_ne!(crc64(b"tabula"), crc64(b"tabulb"));
    }

    #[test]
    fn combine_matches_direct_concatenation() {
        let data: Vec<u8> =
            (0..4096u32).map(|i| (i.wrapping_mul(0x9E37_79B9) >> 11) as u8).collect();
        // Split points exercising empty halves, sub-chunk and multi-chunk
        // lengths on both sides.
        for split in [0usize, 1, 7, 8, 15, 16, 17, 100, 1024, 4095, 4096] {
            let (a, b) = data.split_at(split);
            assert_eq!(
                crc64_combine(crc64(a), crc64(b), b.len() as u64),
                crc64(&data),
                "combine failed at split {split}"
            );
        }
        // Three-way: combine is associative with running lengths.
        let (a, rest) = data.split_at(33);
        let (b, c) = rest.split_at(2000);
        let ab = crc64_combine(crc64(a), crc64(b), b.len() as u64);
        assert_eq!(crc64_combine(ab, crc64(c), c.len() as u64), crc64(&data));
    }

    #[test]
    fn shift_zero_len_is_identity() {
        for crc in [0u64, 1, u64::MAX, 0xDEAD_BEEF_CAFE_F00D] {
            assert_eq!(crc64_shift(crc, 0), crc);
        }
    }
}
