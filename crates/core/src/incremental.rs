//! Incremental cube maintenance under appends — the natural extension of
//! the paper's system (its evaluation loads the table once; a production
//! dashboard keeps receiving new rides).
//!
//! [`refresh`] brings an existing [`SamplingCube`] up to date with an
//! *extended* table (the old rows first, in order, plus appended rows —
//! which keeps dictionary codes stable) while reusing as much prior work
//! as possible:
//!
//! * the dry run re-runs in full (it is the cheap, single-scan stage, and
//!   the global sample is redrawn over the grown table);
//! * iceberg cells **untouched by the appended rows** keep their old
//!   sample: the sample was within θ of exactly the same raw data before,
//!   so the guarantee carries over verbatim — no resampling, no data
//!   access;
//! * cells with appended rows, and cells that became iceberg only under
//!   the new global sample, get fresh local samples via the normal real
//!   run (restricted to just those cells) followed by representative
//!   selection among the fresh samples.
//!
//! The result satisfies the same invariant as a from-scratch build: every
//! query's answer is within θ of its raw answer *on the new table*.
//!
//! Refresh rounds ride the same vectorized storage kernels as the initial
//! build (the appended-row grouping in step 2 hashes bit-packed `u64`
//! keys), and repeated materializations across rounds can reuse buffer
//! capacity via [`Table::take_into`] /
//! [`QueryAnswer::materialize_into`](crate::cube::QueryAnswer::materialize_into).

use crate::builder::MaterializationMode;
use crate::cube::{BuildStats, SamplingCube};
use crate::dryrun::{dry_run, DryRun};
use crate::loss::AccuracyLoss;
use crate::realrun::real_run;
use crate::samgraph::{build_samgraph, SamGraphConfig};
use crate::selection::select_representatives;
use crate::serfling::{draw_global_sample, SerflingConfig};
use crate::{CoreError, Result};
use std::sync::Arc;
use tabula_obs::span;
use tabula_storage::cube::{CellKey, CuboidMask};
use tabula_storage::{FxHashMap, FxHashSet, RowId, Table, Value};

/// What a refresh did, for observability and tests.
#[derive(Debug, Clone, Default)]
pub struct RefreshStats {
    /// Iceberg cells that kept their previous sample untouched.
    pub reused_cells: usize,
    /// Iceberg cells whose own freshly drawn sample was persisted this
    /// round. Under representative selection (Tabula mode) several fresh
    /// cells may end up served by a single representative's sample, so
    /// this counts representatives — see [`fresh_samples`] for the number
    /// of cells that drew a sample at all.
    ///
    /// [`fresh_samples`]: RefreshStats::fresh_samples
    pub resampled_cells: usize,
    /// Fresh local samples drawn before representative selection (one per
    /// touched-or-new iceberg cell; `>= resampled_cells`).
    pub fresh_samples: usize,
    /// Previous iceberg cells that are no longer iceberg (their queries
    /// now ride the global sample).
    pub retired_cells: usize,
    /// Appended rows processed.
    pub appended_rows: usize,
    /// Wall time of the whole refresh.
    pub total: std::time::Duration,
}

/// Configuration of a refresh (mirrors the builder's knobs).
#[derive(Debug, Clone, Copy)]
pub struct RefreshConfig {
    /// Serfling parameters for the redrawn global sample.
    pub serfling: SerflingConfig,
    /// SamGraph knobs for selection among the fresh samples.
    pub samgraph: SamGraphConfig,
    /// Seed for the redrawn global sample.
    pub seed: u64,
    /// Parallelism for fresh-cell sampling (0 = all cores).
    pub parallelism: usize,
    /// Whether to run representative selection among fresh samples.
    pub mode: MaterializationMode,
}

impl Default for RefreshConfig {
    fn default() -> Self {
        RefreshConfig {
            serfling: SerflingConfig::default(),
            samgraph: SamGraphConfig::default(),
            seed: 42,
            parallelism: 0,
            mode: MaterializationMode::Tabula,
        }
    }
}

/// Rows spot-checked by [`verify_prefix`] (the first and last old row are
/// always probed in addition).
const PREFIX_SPOT_CHECKS: usize = 128;

/// Value equality for the prefix spot-check, tolerant of float payloads:
/// `NaN` compares by bits instead of IEEE `==`, so a valid prefix that
/// happens to carry `NaN` measures is not rejected.
fn value_eq(a: &Value, b: &Value) -> bool {
    fn feq(x: f64, y: f64) -> bool {
        x == y || x.to_bits() == y.to_bits()
    }
    match (a, b) {
        (Value::Float64(x), Value::Float64(y)) => feq(*x, *y),
        (Value::Point(p), Value::Point(q)) => feq(p.x, q.x) && feq(p.y, q.y),
        _ => a == b,
    }
}

/// Cheap guard that `new` really is `old` with rows appended, not a
/// reordered or replaced table of the same schema. Two necessary
/// conditions are verified:
///
/// * **dictionary stability** on the cubed columns (exact): appends only
///   ever *extend* a first-seen-order dictionary, so every old code must
///   still decode to the same value in the new table;
/// * **row spot-check** (sampled): the first and last old rows plus up to
///   [`PREFIX_SPOT_CHECKS`] deterministically chosen rows must match
///   across *all* columns.
///
/// Anything else silently voids the θ guarantee — reused samples would
/// reference row ids whose contents changed — which is exactly the
/// failure an automated ingest loop cannot be trusted to avoid on its
/// own. An exact O(rows × columns) comparison would defeat the point of
/// incremental maintenance; this check is O(dictionary + 130 rows)
/// regardless of table size.
fn verify_prefix(old: &Table, new: &Table, cols: &[usize]) -> Result<()> {
    let old_len = old.len();
    if old_len == 0 {
        return Ok(());
    }
    for &c in cols {
        let old_cat = old.cat(c)?;
        let new_cat = new.cat(c)?;
        let name = &old.schema().field(c).name;
        if old_cat.cardinality() > new_cat.cardinality() {
            return Err(CoreError::Config(format!(
                "refresh requires the old rows as an unmodified prefix: dictionary of cubed \
                 column {name} shrank ({} -> {} distinct values)",
                old_cat.cardinality(),
                new_cat.cardinality()
            )));
        }
        for code in 0..old_cat.cardinality() as u32 {
            if old_cat.decode(code) != new_cat.decode(code) {
                return Err(CoreError::Config(format!(
                    "refresh requires the old rows as an unmodified prefix: code {code} of cubed \
                     column {name} changed meaning (appends never reorder a dictionary)"
                )));
            }
        }
    }
    // Deterministic xorshift probe sequence; duplicate indices are
    // harmless, they just re-check a row.
    let mut probes = vec![0, old_len - 1];
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ old_len as u64;
    for _ in 0..PREFIX_SPOT_CHECKS.min(old_len) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        probes.push((state % old_len as u64) as usize);
    }
    let width = old.schema().fields().len();
    for r in probes {
        if !(0..width).all(|c| value_eq(&old.value(r, c), &new.value(r, c))) {
            return Err(CoreError::Config(format!(
                "refresh requires the old rows as an unmodified prefix: row {r} differs between \
                 the cube's table and the new table"
            )));
        }
    }
    Ok(())
}

/// Refresh `cube` against `new_table`, which must be the cube's table with
/// zero or more rows appended (same schema; old rows first, in order).
pub fn refresh<L: AccuracyLoss>(
    cube: &SamplingCube,
    new_table: Arc<Table>,
    loss: &L,
    config: RefreshConfig,
) -> Result<(SamplingCube, RefreshStats)> {
    let total_span = span!("refresh.total");
    let old_table = cube.table();
    if new_table.schema() != old_table.schema() {
        return Err(CoreError::Config(
            "refresh requires the same schema as the original table".into(),
        ));
    }
    if new_table.len() < old_table.len() {
        return Err(CoreError::Config("refresh requires an extended table (appends only)".into()));
    }
    let theta = cube.theta();
    let attrs: Vec<String> = cube.attrs().to_vec();
    let cols: Vec<usize> = attrs
        .iter()
        .map(|a| new_table.schema().index_of(a))
        .collect::<std::result::Result<_, _>>()?;
    let n = cols.len();
    verify_prefix(old_table, &new_table, &cols)?;
    let old_len = old_table.len() as RowId;
    let appended: Vec<RowId> = (old_len..new_table.len() as RowId).collect();

    // 1. Redraw the global sample over the grown table; full dry run.
    let global =
        Arc::new(draw_global_sample(&new_table, config.serfling.sample_size(), config.seed));
    let ctx = loss.prepare(&new_table, &global);
    let dry_span = span!("refresh.dry_run");
    let dry = dry_run(&new_table, &cols, loss, &ctx, theta)?;
    drop(dry_span);

    // 2. Which cells did the appended rows touch? (Every ancestor cell of
    //    every appended row, across all 2ⁿ cuboids.) Group the appended
    //    rows by their full attribute tuple first: the 2ⁿ projections (and
    //    their key allocations) then happen once per distinct tuple, not
    //    once per row.
    let mut touched: FxHashSet<CellKey> = FxHashSet::default();
    if !appended.is_empty() {
        let grouped = tabula_storage::group::group_rows(&new_table, &cols, &appended)?;
        let masks = CuboidMask::enumerate(n);
        for full in grouped.groups.keys() {
            for &mask in &masks {
                touched.insert(CellKey::project(mask, full));
            }
        }
    }

    // 3. Partition the new iceberg set into reusable and fresh cells.
    let old_cells: FxHashMap<CellKey, u32> =
        cube.cube_table().map(|(k, v)| (k.clone(), v)).collect();
    let mut reused: Vec<(CellKey, u32)> = Vec::new(); // cell → old sample id
    let mut fresh: FxHashMap<CuboidMask, Vec<Vec<u32>>> = FxHashMap::default();
    let mut new_iceberg_count = 0usize;
    for (mask, keys) in &dry.iceberg {
        for compact in keys {
            new_iceberg_count += 1;
            let cell = CellKey::from_compact(*mask, n, compact);
            match old_cells.get(&cell) {
                Some(&old_id) if !touched.contains(&cell) => {
                    // Same raw data, θ-good sample: carry it over.
                    reused.push((cell, old_id));
                }
                _ => fresh.entry(*mask).or_default().push(compact.clone()),
            }
        }
    }
    // Per-mask hash sets of the new iceberg compacts: membership is O(1)
    // per old cell instead of a linear scan over that cuboid's iceberg
    // keys (O(old_cells × iceberg_keys) blows up quadratically once an
    // ingest loop refreshes large cubes continuously).
    let iceberg_sets: FxHashMap<CuboidMask, FxHashSet<&Vec<u32>>> =
        dry.iceberg.iter().map(|(mask, keys)| (*mask, keys.iter().collect())).collect();
    let retired_cells = old_cells
        .keys()
        .filter(|cell| {
            iceberg_sets.get(&cell.mask()).is_none_or(|keys| !keys.contains(&cell.compact()))
        })
        .count();

    // 4. Real run restricted to the fresh cells.
    let dry_fresh = DryRun {
        states: dry.states.clone(),
        iceberg: fresh,
        total_cells: dry.total_cells,
        iceberg_count: new_iceberg_count - reused.len(),
    };
    let real_span = span!("refresh.real_run", "fresh_cells={}", dry_fresh.iceberg_count);
    let rr = real_run(&new_table, &cols, loss, theta, &dry_fresh, config.parallelism)?;
    drop(real_span);

    // 5. Selection among fresh samples only (reused samples stay as-is).
    let selection = if config.mode == MaterializationMode::Tabula {
        let _sel_span = span!("refresh.selection", "samples={}", rr.entries.len());
        let graph = build_samgraph(&new_table, loss, theta, &rr.entries, &config.samgraph);
        Some(select_representatives(&graph))
    } else {
        None
    };

    // 6. Assemble: old reused samples (deduplicated by old id) + fresh.
    let mut samples: Vec<Arc<Vec<RowId>>> = Vec::new();
    let mut cube_table: FxHashMap<CellKey, u32> = FxHashMap::default();
    let mut old_id_map: FxHashMap<u32, u32> = FxHashMap::default();
    for (cell, old_id) in reused.iter() {
        let new_id = *old_id_map.entry(*old_id).or_insert_with(|| {
            samples.push(Arc::clone(cube.sample(*old_id)));
            (samples.len() - 1) as u32
        });
        cube_table.insert(cell.clone(), new_id);
    }
    match &selection {
        Some(sel) => {
            let mut rep_id: FxHashMap<u32, u32> = FxHashMap::default();
            for &rep in &sel.representatives {
                rep_id.insert(rep, samples.len() as u32);
                samples.push(Arc::new(rr.entries[rep as usize].sample.clone()));
            }
            for (i, e) in rr.entries.iter().enumerate() {
                cube_table.insert(e.cell.clone(), rep_id[&sel.rep_of[i]]);
            }
        }
        None => {
            for e in &rr.entries {
                cube_table.insert(e.cell.clone(), samples.len() as u32);
                samples.push(Arc::new(e.sample.clone()));
            }
        }
    }

    // Every fresh cell drew a sample, but under representative selection
    // only the representatives' samples were persisted — the rest of the
    // fresh cells share them.
    let resampled_cells =
        selection.as_ref().map_or(rr.entries.len(), |sel| sel.representatives.len());
    let stats = RefreshStats {
        reused_cells: reused.len(),
        resampled_cells,
        fresh_samples: rr.entries.len(),
        retired_cells,
        appended_rows: appended.len(),
        total: total_span.stop(),
    };
    {
        // Refresh accounting in the process-wide registry: how much prior
        // work incremental maintenance is saving over full rebuilds.
        let registry = tabula_obs::global();
        registry.counter("refresh.count").inc();
        registry.counter("refresh.reused_cells").add(stats.reused_cells as u64);
        registry.counter("refresh.resampled_cells").add(stats.resampled_cells as u64);
        registry.counter("refresh.fresh_samples").add(stats.fresh_samples as u64);
        registry.counter("refresh.retired_cells").add(stats.retired_cells as u64);
        registry.counter("refresh.appended_rows").add(stats.appended_rows as u64);
        registry.histogram("refresh.total").record_duration(stats.total);
    }
    let build_stats = BuildStats {
        total: stats.total,
        total_cells: dry.total_cells,
        iceberg_cells: new_iceberg_count,
        samples_before_selection: reused.len() + rr.entries.len(),
        samples_after_selection: samples.len(),
        global_sample_size: global.len(),
        ..BuildStats::default()
    };
    let new_cube =
        SamplingCube::new(new_table, attrs, cols, theta, cube_table, samples, global, build_stats);
    Ok((new_cube, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::SampleProvenance;
    use crate::loss::MeanLoss;
    use crate::SamplingCubeBuilder;
    use tabula_data::{TaxiConfig, TaxiGenerator, Workload, CUBED_ATTRIBUTES};
    use tabula_storage::TableBuilder;

    /// Build `base` rows, then a second table extending them with `extra`
    /// differently-seeded rows (old rows first, in order, as `refresh`
    /// requires for stable dictionary codes).
    fn tables(base: usize, extra: usize) -> (Arc<Table>, Arc<Table>) {
        let old = TaxiGenerator::new(TaxiConfig { rows: base, seed: 51 }).generate();
        let extra_rows = TaxiGenerator::new(TaxiConfig { rows: extra, seed: 52 }).generate();
        let mut b = TableBuilder::with_capacity(old.schema().clone(), base + extra);
        for r in 0..old.len() {
            b.push_row(&old.row(r)).unwrap();
        }
        for r in 0..extra_rows.len() {
            b.push_row(&extra_rows.row(r)).unwrap();
        }
        (Arc::new(old), Arc::new(b.finish()))
    }

    #[test]
    fn refresh_preserves_the_guarantee_on_the_new_table() {
        let (old_t, new_t) = tables(6_000, 1_500);
        let fare = old_t.schema().index_of("fare_amount").unwrap();
        let loss = MeanLoss::new(fare);
        let theta = 0.05;
        let attrs = &CUBED_ATTRIBUTES[..4];
        let cube = SamplingCubeBuilder::new(Arc::clone(&old_t), attrs, loss.clone(), theta)
            .seed(9)
            .build()
            .unwrap();
        let (refreshed, stats) =
            refresh(&cube, Arc::clone(&new_t), &loss, RefreshConfig::default()).unwrap();
        assert_eq!(stats.appended_rows, 1_500);
        assert!(stats.reused_cells > 0, "untouched cells must be reused");
        assert!(stats.resampled_cells > 0, "touched cells must be resampled");
        assert!(
            stats.fresh_samples >= stats.resampled_cells,
            "selection can only shrink the persisted set"
        );

        // The invariant on the NEW table, over a workload.
        let workload = Workload::new(attrs);
        for q in workload.generate(&new_t, 60, 77).unwrap() {
            let raw = q.predicate.filter(&new_t).unwrap();
            let ans = refreshed.query_cell(&q.cell);
            let achieved = loss.loss(&new_t, &raw, &ans.rows);
            assert!(achieved <= theta + 1e-9, "query [{}]: {achieved} > {theta}", q.description);
        }
    }

    #[test]
    fn refresh_equals_rebuild_semantically() {
        let (old_t, new_t) = tables(4_000, 1_000);
        let fare = old_t.schema().index_of("fare_amount").unwrap();
        let loss = MeanLoss::new(fare);
        let theta = 0.05;
        let attrs = &CUBED_ATTRIBUTES[..3];
        let cube = SamplingCubeBuilder::new(Arc::clone(&old_t), attrs, loss.clone(), theta)
            .seed(9)
            .build()
            .unwrap();
        let (refreshed, _) = refresh(
            &cube,
            Arc::clone(&new_t),
            &loss,
            RefreshConfig { seed: 9, ..Default::default() },
        )
        .unwrap();
        let rebuilt = SamplingCubeBuilder::new(Arc::clone(&new_t), attrs, loss.clone(), theta)
            .seed(9)
            .build()
            .unwrap();
        // Same iceberg cell set (the dry run is identical).
        let mut a: Vec<_> = refreshed.cube_table().map(|(k, _)| k.clone()).collect();
        let mut b: Vec<_> = rebuilt.cube_table().map(|(k, _)| k.clone()).collect();
        a.sort_by(|x, y| x.codes.cmp(&y.codes));
        b.sort_by(|x, y| x.codes.cmp(&y.codes));
        assert_eq!(a, b);

        // Query answers over a workload agree semantically: same serving
        // path (materialized local sample vs global sample) and both
        // within θ of the raw answer on the new table. Byte equality is
        // NOT expected — refresh runs representative selection among the
        // fresh samples only, a rebuild selects among all of them.
        let workload = Workload::new(attrs);
        for q in workload.generate(&new_t, 50, 123).unwrap() {
            let raw = q.predicate.filter(&new_t).unwrap();
            let fa = refreshed.query_cell(&q.cell);
            let fb = rebuilt.query_cell(&q.cell);
            let local = |p: &SampleProvenance| matches!(p, SampleProvenance::Local(_));
            assert_eq!(
                local(&fa.provenance),
                local(&fb.provenance),
                "query [{}] served from different paths",
                q.description
            );
            for (which, ans) in [("refreshed", &fa), ("rebuilt", &fb)] {
                let achieved = loss.loss(&new_t, &raw, &ans.rows);
                assert!(
                    achieved <= theta + 1e-9,
                    "{which} query [{}]: {achieved} > {theta}",
                    q.description
                );
            }
        }
    }

    /// Append `extra` differently-seeded rows to `base` via the storage
    /// extension path the ingest loop uses.
    fn extend(base: &Table, extra: usize, seed: u64) -> Arc<Table> {
        let extra_rows = TaxiGenerator::new(TaxiConfig { rows: extra, seed }).generate();
        let rows: Vec<Vec<Value>> = (0..extra_rows.len()).map(|r| extra_rows.row(r)).collect();
        Arc::new(base.extend_rows(&rows).unwrap())
    }

    #[test]
    fn three_round_refresh_chain_holds_the_guarantee_every_round() {
        let mut table =
            Arc::new(TaxiGenerator::new(TaxiConfig { rows: 4_000, seed: 51 }).generate());
        let fare = table.schema().index_of("fare_amount").unwrap();
        let loss = MeanLoss::new(fare);
        let theta = 0.05;
        // 4 attrs: fine enough cells that each round's appends leave some
        // iceberg cells untouched (and therefore reused).
        let attrs = &CUBED_ATTRIBUTES[..4];
        let mut cube = SamplingCubeBuilder::new(Arc::clone(&table), attrs, loss.clone(), theta)
            .seed(9)
            .build()
            .unwrap();
        let workload = Workload::new(attrs);
        for round in 0..3u64 {
            let new_t = extend(&table, 800, 60 + round);
            let (refreshed, stats) = refresh(
                &cube,
                Arc::clone(&new_t),
                &loss,
                RefreshConfig { seed: 9, ..Default::default() },
            )
            .unwrap();
            assert_eq!(stats.appended_rows, 800, "round {round}");
            assert!(stats.reused_cells > 0, "round {round} reused nothing");
            assert!(stats.fresh_samples >= stats.resampled_cells, "round {round}");
            assert_eq!(
                stats.reused_cells + stats.fresh_samples,
                refreshed.materialized_cells(),
                "round {round}: every iceberg cell is either reused or freshly sampled"
            );
            for q in workload.generate(&new_t, 40, 100 + round).unwrap() {
                let raw = q.predicate.filter(&new_t).unwrap();
                let ans = refreshed.query_cell(&q.cell);
                let achieved = loss.loss(&new_t, &raw, &ans.rows);
                assert!(
                    achieved <= theta + 1e-9,
                    "round {round} [{}]: {achieved} > {theta}",
                    q.description
                );
            }
            table = new_t;
            cube = refreshed;
        }
    }

    #[test]
    fn retired_cells_matches_a_naive_recount() {
        let (old_t, new_t) = tables(4_000, 1_000);
        let fare = old_t.schema().index_of("fare_amount").unwrap();
        let loss = MeanLoss::new(fare);
        let cube = SamplingCubeBuilder::new(
            Arc::clone(&old_t),
            &CUBED_ATTRIBUTES[..3],
            loss.clone(),
            0.05,
        )
        .seed(9)
        .build()
        .unwrap();
        // A different global-sample seed shifts the iceberg boundary so
        // some old cells genuinely retire.
        let (refreshed, stats) = refresh(
            &cube,
            Arc::clone(&new_t),
            &loss,
            RefreshConfig { seed: 7, ..Default::default() },
        )
        .unwrap();
        // Every iceberg cell is materialized, so the retired count must
        // equal "old cube-table keys absent from the new cube table".
        let new_keys: FxHashSet<CellKey> = refreshed.cube_table().map(|(k, _)| k.clone()).collect();
        let naive = cube.cube_table().filter(|(k, _)| !new_keys.contains(*k)).count();
        assert_eq!(stats.retired_cells, naive);
    }

    #[test]
    fn zero_appends_reuses_everything_it_can() {
        let old_t = Arc::new(TaxiGenerator::new(TaxiConfig { rows: 5_000, seed: 51 }).generate());
        let fare = old_t.schema().index_of("fare_amount").unwrap();
        let loss = MeanLoss::new(fare);
        let cube = SamplingCubeBuilder::new(
            Arc::clone(&old_t),
            &CUBED_ATTRIBUTES[..3],
            loss.clone(),
            0.05,
        )
        .seed(9)
        .build()
        .unwrap();
        let (refreshed, stats) = refresh(
            &cube,
            Arc::clone(&old_t),
            &loss,
            RefreshConfig { seed: 9, ..Default::default() },
        )
        .unwrap();
        assert_eq!(stats.appended_rows, 0);
        assert_eq!(stats.resampled_cells, 0, "nothing was touched");
        assert_eq!(stats.fresh_samples, 0, "no fresh samples were drawn");
        assert_eq!(stats.retired_cells, 0);
        assert_eq!(refreshed.materialized_cells(), cube.materialized_cells());
    }

    #[test]
    fn shrunken_or_mismatched_tables_are_rejected() {
        let (old_t, new_t) = tables(3_000, 500);
        let fare = old_t.schema().index_of("fare_amount").unwrap();
        let loss = MeanLoss::new(fare);
        let cube = SamplingCubeBuilder::new(
            Arc::clone(&new_t),
            &CUBED_ATTRIBUTES[..3],
            loss.clone(),
            0.05,
        )
        .build()
        .unwrap();
        // new (old_t) is SHORTER than the cube's table (new_t): rejected.
        assert!(matches!(
            refresh(&cube, Arc::clone(&old_t), &loss, RefreshConfig::default()),
            Err(CoreError::Config(_))
        ));
    }

    #[test]
    fn reordered_or_replaced_tables_are_rejected() {
        let (old_t, new_t) = tables(3_000, 500);
        let fare = old_t.schema().index_of("fare_amount").unwrap();
        let loss = MeanLoss::new(fare);
        let cube = SamplingCubeBuilder::new(
            Arc::clone(&old_t),
            &CUBED_ATTRIBUTES[..3],
            loss.clone(),
            0.05,
        )
        .seed(9)
        .build()
        .unwrap();

        // (a) Same schema, longer, but a wholly different table: the old
        // rows are simply gone, and reusing their samples would be wrong.
        let replaced =
            Arc::new(TaxiGenerator::new(TaxiConfig { rows: 3_500, seed: 99 }).generate());
        assert!(matches!(
            refresh(&cube, replaced, &loss, RefreshConfig::default()),
            Err(CoreError::Config(_))
        ));

        // (b) Old rows present but reversed before the appends: row ids
        // no longer mean what the reused samples think they mean.
        let mut b = TableBuilder::with_capacity(old_t.schema().clone(), new_t.len());
        for r in (0..old_t.len()).rev() {
            b.push_row(&old_t.row(r)).unwrap();
        }
        for r in old_t.len()..new_t.len() {
            b.push_row(&new_t.row(r)).unwrap();
        }
        assert!(matches!(
            refresh(&cube, Arc::new(b.finish()), &loss, RefreshConfig::default()),
            Err(CoreError::Config(_))
        ));

        // (c) A single swapped pair among the old rows (first and last,
        // both always probed by the spot-check).
        let mut rows: Vec<Vec<Value>> = (0..new_t.len()).map(|r| new_t.row(r)).collect();
        rows.swap(0, old_t.len() - 1);
        let mut b = TableBuilder::with_capacity(old_t.schema().clone(), rows.len());
        for r in &rows {
            b.push_row(r).unwrap();
        }
        assert!(matches!(
            refresh(&cube, Arc::new(b.finish()), &loss, RefreshConfig::default()),
            Err(CoreError::Config(_))
        ));

        // The honest extension of the same cube still passes.
        assert!(refresh(&cube, new_t, &loss, RefreshConfig::default()).is_ok());
    }
}
