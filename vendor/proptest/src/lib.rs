//! Vendored, std-only stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), range and tuple strategies, `proptest::collection::vec`,
//! `Strategy::prop_map`, `Just`, and the `prop_assert*` macros.
//!
//! Differences from real proptest: cases are generated from a fixed seed
//! (deterministic across runs; override with `PROPTEST_SEED`), and there
//! is **no shrinking** — a failure reports the failing case's values via
//! `Debug` and the case index instead.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of cases to run, and the seed they derive from.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many generated cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The generator handed to strategies.
pub type TestRng = SmallRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `sizes`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: core::ops::Range<usize>,
    }

    /// `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, sizes: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.sizes.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drives a property's cases; used by the [`proptest!`] expansion.
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
}

impl TestRunner {
    /// A runner for `config`, seeded from `PROPTEST_SEED` or a fixed
    /// default.
    pub fn new(config: ProptestConfig) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x7A6B_0001_D00D_F00Du64);
        TestRunner { config, seed }
    }

    /// Run `case` for each generated input; panic on the first failure
    /// with the case index (re-runnable thanks to determinism).
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), String>,
    {
        for i in 0..self.config.cases {
            let mut rng =
                TestRng::seed_from_u64(self.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            if let Err(msg) = case(&mut rng) {
                panic!(
                    "proptest case {i}/{} failed (seed {:#x}): {msg}",
                    self.config.cases, self.seed
                );
            }
        }
    }
}

/// Assert inside a property; on failure the current case errors with the
/// formatted message (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} at {}:{}",
                format!($($fmt)+), file!(), line!()
            ));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?}) at {}:{}",
                stringify!($left), stringify!($right), l, r, file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: {} ({:?} vs {:?}) at {}:{}",
                format!($($fmt)+), l, r, file!(), line!()
            ));
        }
    }};
}

/// Declare property tests. Mirrors real proptest's surface for the shapes
/// this workspace uses.
#[macro_export]
macro_rules! proptest {
    // With a config header.
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    // Without one.
    (
        $(#[$first_meta:meta])* fn $($rest:tt)*
    ) => {
        $crate::proptest! {
            @cfg ($crate::ProptestConfig::default())
            $(#[$first_meta])* fn $($rest)*
        }
    };
    (
        @cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::TestRunner::new($cfg);
                runner.run(|__proptest_rng| {
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);
                    )+
                    #[allow(unreachable_code)]
                    (|| -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        Ok(())
                    })()
                });
            }
        )*
    };
}

/// The glob-imported surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

/// Namespace mirror (`proptest::prop::collection::vec` style paths).
pub mod prop {
    pub use crate::collection;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3..17usize, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_obeys_size(v in collection::vec(0u32..5, 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn prop_map_applies(v in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0);
            prop_assert!(v < 20);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_index() {
        let mut runner = crate::TestRunner::new(ProptestConfig::with_cases(4));
        runner.run(|_rng| Err("boom".to_owned()));
    }
}
