//! [`Snapshot`]: zero-copy snapshot reader.
//!
//! The file is read once into a single 8-byte-aligned buffer shared
//! behind an `Arc`; block payloads are typed reinterpretations of that
//! buffer (`&[u8] → &[u64]/&[i64]/&[f64]/&[u32]`), never per-row decoded.
//! Every checksum — per block, manifest, whole file — is verified before
//! [`Snapshot::open`] returns, so a snapshot in hand is a snapshot whose
//! bytes are exactly what the writer produced.
//!
//! Validation order (each step names its region in the error):
//! header magic → header version → footer bounds/magic/reserved →
//! manifest bounds → manifest CRC → manifest parse → per-block
//! bounds/alignment/CRC → whole-file CRC.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use tabula_storage::{Encoded, Point, SharedSlice};

use crate::blocks::{decode_dict_strings, rebuild_dict};
use crate::checksum::{crc64, crc64_combine};
use crate::format::{Manifest, FOOTER_LEN, FORMAT_VERSION, HEADER_LEN, MAGIC};
use crate::{Result, StoreError, STORE_BYTES, STORE_LOAD_NS};

/// Below this many total block bytes the per-block checksums are verified
/// sequentially; above it they fan out over the worker pool (one task per
/// block — column blocks are the natural parallel grain).
const PARALLEL_CRC_BYTES: u64 = 4 << 20;

/// File bytes in an 8-byte-aligned allocation (`Vec<u64>` backed), so
/// typed views of any 8-aligned block offset are themselves aligned.
struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    fn from_vec(bytes: Vec<u8>) -> Self {
        let len = bytes.len();
        let mut buf = Self::zeroed(len);
        // Safety: a `[u64]` of ⌈len/8⌉ words is at least `len` bytes and
        // u64 has no invalid byte patterns.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), buf.words.as_mut_ptr() as *mut u8, len);
        }
        buf
    }

    /// Read a whole file straight into an aligned buffer — one allocation,
    /// one copy (the kernel's), instead of `fs::read` + realign.
    fn read_file(path: &Path) -> std::io::Result<Self> {
        use std::io::Read;
        let mut file = std::fs::File::open(path)?;
        let len = file.metadata()?.len() as usize;
        let mut buf = Self::zeroed(len);
        // Safety: the u64 allocation holds ≥ `len` bytes, all initialized
        // (zeroed), and u8 has no alignment or validity requirements.
        let dst = unsafe { std::slice::from_raw_parts_mut(buf.words.as_mut_ptr() as *mut u8, len) };
        file.read_exact(dst)?;
        // A trailing byte would mean the file grew mid-read; surface it as
        // the standard "did not reach EOF" error rather than truncating.
        let mut probe = [0u8; 1];
        if file.read(&mut probe)? != 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "snapshot file changed size while being read",
            ));
        }
        Ok(buf)
    }

    fn zeroed(len: usize) -> Self {
        AlignedBytes { words: vec![0u64; len.div_ceil(8)], len }
    }

    fn bytes(&self) -> &[u8] {
        // Safety: the allocation holds at least `len` initialized bytes.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }
}

/// An opened, fully verified snapshot.
pub struct Snapshot {
    buf: Arc<AlignedBytes>,
    manifest: Manifest,
}

/// A view of one block's payload inside the snapshot buffer.
pub struct BlockView<'a> {
    region: String,
    bytes: &'a [u8],
    rows: u64,
    /// The buffer the view points into, for minting [`SharedSlice`]s
    /// that keep it alive beyond the `Snapshot`'s lifetime.
    owner: &'a Arc<AlignedBytes>,
}

impl Snapshot {
    /// Read and verify the snapshot at `path`. Records `store.load_ns`
    /// and `store.bytes`.
    pub fn open(path: &Path) -> Result<Snapshot> {
        let start = Instant::now();
        if cfg!(target_endian = "big") {
            return Err(StoreError::Unsupported(
                "snapshot format is little-endian; big-endian hosts are not supported".into(),
            ));
        }
        let buf = AlignedBytes::read_file(path)?;
        let n = buf.len as u64;
        let manifest = validate(buf.bytes())?;
        let reg = tabula_obs::global();
        reg.histogram(STORE_LOAD_NS).record_duration(start.elapsed());
        reg.counter(STORE_BYTES).add(n);
        Ok(Snapshot { buf: Arc::new(buf), manifest })
    }

    /// Verify a snapshot image already in memory.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Snapshot> {
        if cfg!(target_endian = "big") {
            return Err(StoreError::Unsupported(
                "snapshot format is little-endian; big-endian hosts are not supported".into(),
            ));
        }
        let buf = AlignedBytes::from_vec(bytes);
        let manifest = validate(buf.bytes())?;
        Ok(Snapshot { buf: Arc::new(buf), manifest })
    }

    /// The verified manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Serving-generation epoch stamped at write time.
    pub fn epoch(&self) -> u64 {
        self.manifest.epoch
    }

    /// The writer-defined meta payload.
    pub fn meta(&self) -> &str {
        &self.manifest.meta
    }

    /// Total file size in bytes.
    pub fn file_len(&self) -> u64 {
        self.buf.len as u64
    }

    /// Whether a block with this name exists.
    pub fn has_block(&self, name: &str) -> bool {
        self.manifest.block(name).is_some()
    }

    /// View a required block's payload.
    pub fn block(&self, name: &str) -> Result<BlockView<'_>> {
        let desc = self.manifest.require(name)?;
        // Bounds were verified at open; slicing cannot fail.
        let bytes = &self.buf.bytes()[desc.offset as usize..(desc.offset + desc.len) as usize];
        Ok(BlockView { region: format!("block:{name}"), bytes, rows: desc.rows, owner: &self.buf })
    }
}

impl<'a> BlockView<'a> {
    /// Raw payload bytes.
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Row / entry count recorded in the manifest.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    fn typed<T: Copy>(&self) -> Result<&'a [T]> {
        let width = std::mem::size_of::<T>();
        if !self.bytes.len().is_multiple_of(width) {
            return Err(StoreError::BadBlock {
                region: self.region.clone(),
                reason: format!(
                    "payload of {} bytes is not a multiple of element width {width}",
                    self.bytes.len()
                ),
            });
        }
        debug_assert_eq!(self.bytes.as_ptr() as usize % std::mem::align_of::<T>(), 0);
        // Safety: the buffer is 8-byte aligned and block offsets are
        // multiples of 8 (verified at open), so the pointer satisfies any
        // primitive alignment; length is an exact element multiple; the
        // target types (u32/u64/i64/f64 and repr(C) Point, i.e. two f64s)
        // have no invalid bit patterns.
        Ok(unsafe {
            std::slice::from_raw_parts(self.bytes.as_ptr() as *const T, self.bytes.len() / width)
        })
    }

    /// View as little-endian u32 words.
    pub fn u32s(&self) -> Result<&'a [u32]> {
        self.typed::<u32>()
    }

    /// View as little-endian u64 words.
    pub fn u64s(&self) -> Result<&'a [u64]> {
        self.typed::<u64>()
    }

    /// View as little-endian i64 words.
    pub fn i64s(&self) -> Result<&'a [i64]> {
        self.typed::<i64>()
    }

    /// View as f64 bit patterns (NaN payloads intact).
    pub fn f64s(&self) -> Result<&'a [f64]> {
        self.typed::<f64>()
    }

    /// Decode interleaved `x, y` pairs into points.
    pub fn points(&self) -> Result<Vec<Point>> {
        Ok(self.point_slice()?.to_vec())
    }

    /// View interleaved `x, y` pairs as `[Point]` without decoding
    /// (`Point` is `repr(C)` — two f64s, 16 bytes, 8-aligned).
    fn point_slice(&self) -> Result<&'a [Point]> {
        if !(self.bytes.len() / 8).is_multiple_of(2) {
            return Err(StoreError::BadBlock {
                region: self.region.clone(),
                reason: format!("{} f64 words is not an x,y pair multiple", self.bytes.len() / 8),
            });
        }
        self.typed::<Point>()
    }

    /// Mint a [`SharedSlice`] over `slice`, keeping the snapshot buffer
    /// alive for as long as the slice is held.
    fn shared<T>(&self, slice: &'a [T]) -> SharedSlice<T> {
        let owner: Arc<dyn std::any::Any + Send + Sync> = Arc::clone(self.owner) as _;
        // Safety: `slice` points into the `AlignedBytes` buffer the Arc
        // owns; the buffer is immutable and pinned for the Arc's life.
        unsafe { SharedSlice::new(owner, slice) }
    }

    /// Zero-copy u32 view that owns a reference to the snapshot buffer.
    pub fn shared_u32s(&self) -> Result<SharedSlice<u32>> {
        Ok(self.shared(self.typed::<u32>()?))
    }

    /// Zero-copy i64 view that owns a reference to the snapshot buffer.
    pub fn shared_i64s(&self) -> Result<SharedSlice<i64>> {
        Ok(self.shared(self.typed::<i64>()?))
    }

    /// Zero-copy f64 view that owns a reference to the snapshot buffer.
    pub fn shared_f64s(&self) -> Result<SharedSlice<f64>> {
        Ok(self.shared(self.typed::<f64>()?))
    }

    /// Zero-copy point view that owns a reference to the snapshot buffer.
    pub fn shared_points(&self) -> Result<SharedSlice<Point>> {
        Ok(self.shared(self.point_slice()?))
    }

    fn bad(&self, reason: String) -> StoreError {
        StoreError::BadBlock { region: self.region.clone(), reason }
    }

    /// Typed view of `count` elements starting at byte `offset`.
    fn typed_at<T: Copy>(&self, offset: usize, count: usize) -> Result<&'a [T]> {
        let width = std::mem::size_of::<T>();
        let end = count
            .checked_mul(width)
            .and_then(|n| n.checked_add(offset))
            .filter(|&e| e <= self.bytes.len());
        let Some(_) = end else {
            return Err(self.bad(format!(
                "{count} elements of {width} bytes at offset {offset} overrun payload of {} bytes",
                self.bytes.len()
            )));
        };
        // Safety: bounds checked above; the block start is 8-aligned and
        // every encoded-payload offset (16 or 24 plus whole-element
        // multiples) preserves the element alignment; the target types
        // have no invalid bit patterns.
        debug_assert_eq!((self.bytes.as_ptr() as usize + offset) % std::mem::align_of::<T>(), 0);
        Ok(unsafe { std::slice::from_raw_parts(self.bytes[offset..].as_ptr() as *const T, count) })
    }

    fn header_u64(&self, at: usize) -> Result<u64> {
        let end = at.checked_add(8).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(self.bad(format!("header u64 at byte {at} overruns block")));
        };
        Ok(u64::from_le_bytes(self.bytes[at..end].try_into().unwrap()))
    }

    /// Validate and view a self-describing RLE block
    /// (`[len u64][runs u64][values…][ends…]`) as a zero-copy
    /// [`Encoded::Rle`] payload. Every structural fault — truncated
    /// header, payload size mismatch, non-monotonic run ends, a last end
    /// that does not equal the row count, a row count that disagrees
    /// with the manifest — is a typed [`StoreError::BadBlock`].
    pub fn encoded_rle<T: tabula_storage::Codable>(&self) -> Result<Encoded<T>> {
        let len = self.header_u64(0)? as usize;
        let runs = self.header_u64(8)? as usize;
        let expect = runs
            .checked_mul(std::mem::size_of::<T>() + 4)
            .and_then(|n| n.checked_add(crate::blocks::RLE_HEADER));
        if expect != Some(self.bytes.len()) {
            return Err(
                self.bad(format!("{runs} runs do not tile payload of {} bytes", self.bytes.len()))
            );
        }
        if len as u64 != self.rows {
            return Err(
                self.bad(format!("header claims {len} rows, manifest records {}", self.rows))
            );
        }
        if (len == 0) != (runs == 0) {
            return Err(self.bad(format!("{runs} runs for {len} rows")));
        }
        let values: &[T] = self.typed_at(crate::blocks::RLE_HEADER, runs)?;
        let ends: &[u32] =
            self.typed_at(crate::blocks::RLE_HEADER + runs * std::mem::size_of::<T>(), runs)?;
        let mut prev = 0u32;
        for (i, &e) in ends.iter().enumerate() {
            if e <= prev {
                return Err(self.bad(format!("run end {e} at run {i} is not strictly increasing")));
            }
            prev = e;
        }
        if runs > 0 && prev as usize != len {
            return Err(self.bad(format!("last run end {prev} does not equal row count {len}")));
        }
        Ok(Encoded::Rle { len, values: self.shared(values).into(), ends: self.shared(ends).into() })
    }

    /// Validate and view a self-describing FOR block
    /// (`[len u64][base u64][width u64][words…]`) as a zero-copy
    /// [`Encoded::For`] payload. Beyond structure, every row's ordinal is
    /// checked to round-trip through `T` — which rejects, e.g., a
    /// corrupted u32-code block whose base+delta exceeds `u32::MAX` —
    /// so a block that loads can never decode to out-of-domain values.
    pub fn encoded_for<T: tabula_storage::Codable>(&self) -> Result<Encoded<T>> {
        let len = self.header_u64(0)? as usize;
        let base = self.header_u64(8)?;
        let width64 = self.header_u64(16)?;
        if width64 > 64 {
            return Err(self.bad(format!("delta width {width64} exceeds 64 bits")));
        }
        let width = width64 as u32;
        let nwords = len
            .checked_mul(width as usize)
            .map(|bits| bits.div_ceil(64))
            .ok_or_else(|| self.bad(format!("{len} rows × {width} bits overflows")))?;
        let expect = nwords.checked_mul(8).and_then(|n| n.checked_add(crate::blocks::FOR_HEADER));
        if expect != Some(self.bytes.len()) {
            return Err(self.bad(format!(
                "{len} rows × {width} bits do not tile payload of {} bytes",
                self.bytes.len()
            )));
        }
        if len as u64 != self.rows {
            return Err(
                self.bad(format!("header claims {len} rows, manifest records {}", self.rows))
            );
        }
        let words: &[u64] = self.typed_at(crate::blocks::FOR_HEADER, nwords)?;
        let enc = Encoded::For { len, base, width, words: self.shared(words).into() };
        if let Some(view) = enc.for_view() {
            for row in 0..len {
                let ord = view.get_ordinal(row);
                if T::from_ordinal(ord).to_ordinal() != ord {
                    return Err(self.bad(format!(
                        "ordinal {ord} at row {row} does not fit the column's value type"
                    )));
                }
            }
        }
        Ok(enc)
    }

    /// Decode a dictionary block into its strings, in code order.
    pub fn dict_strings(&self) -> Result<Vec<String>> {
        decode_dict_strings(&self.region, self.bytes)
    }

    /// Decode a dictionary block and rebuild the [`tabula_storage::Dictionary`].
    pub fn dict(&self) -> Result<tabula_storage::Dictionary> {
        rebuild_dict(&self.region, &self.dict_strings()?)
    }

    /// View a JSON/text block as UTF-8.
    pub fn utf8(&self) -> Result<&'a str> {
        std::str::from_utf8(self.bytes).map_err(|e| StoreError::BadBlock {
            region: self.region.clone(),
            reason: format!("not UTF-8: {e}"),
        })
    }
}

/// Run the full validation chain over the raw file image and return the
/// parsed manifest.
fn validate(bytes: &[u8]) -> Result<Manifest> {
    let file_len = bytes.len() as u64;
    // Header.
    if file_len < HEADER_LEN {
        return Err(StoreError::Truncated {
            region: "header".into(),
            need: HEADER_LEN,
            have: file_len,
        });
    }
    if bytes[..8] != MAGIC {
        return Err(StoreError::BadMagic { region: "magic" });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(StoreError::BadVersion { found: version, supported: FORMAT_VERSION });
    }
    // Footer.
    if file_len < HEADER_LEN + FOOTER_LEN {
        return Err(StoreError::Truncated {
            region: "footer".into(),
            need: HEADER_LEN + FOOTER_LEN,
            have: file_len,
        });
    }
    let footer_offset = (file_len - FOOTER_LEN) as usize;
    let footer = &bytes[footer_offset..];
    if footer[40..48] != MAGIC {
        return Err(StoreError::BadMagic { region: "footer" });
    }
    let read_u64 =
        |slice: &[u8], at: usize| u64::from_le_bytes(slice[at..at + 8].try_into().unwrap());
    let manifest_offset = read_u64(footer, 0);
    let manifest_len = read_u64(footer, 8);
    let manifest_crc = read_u64(footer, 16);
    let file_crc = read_u64(footer, 24);
    let reserved = read_u64(footer, 32);
    if reserved != 0 {
        return Err(StoreError::BadBlock {
            region: "footer".into(),
            reason: format!("reserved field is {reserved:#x}, expected 0"),
        });
    }
    // Manifest.
    let manifest_end = manifest_offset.checked_add(manifest_len);
    if manifest_offset < HEADER_LEN || manifest_end.is_none_or(|e| e > footer_offset as u64) {
        return Err(StoreError::Truncated {
            region: "manifest".into(),
            need: manifest_end.unwrap_or(u64::MAX),
            have: footer_offset as u64,
        });
    }
    let manifest_bytes =
        &bytes[manifest_offset as usize..(manifest_offset + manifest_len) as usize];
    let actual_manifest_crc = crc64(manifest_bytes);
    if actual_manifest_crc != manifest_crc {
        return Err(StoreError::ChecksumMismatch {
            region: "manifest".into(),
            expected: manifest_crc,
            actual: actual_manifest_crc,
        });
    }
    let manifest_str = std::str::from_utf8(manifest_bytes)
        .map_err(|e| StoreError::CorruptManifest(format!("not UTF-8: {e}")))?;
    let manifest: Manifest = serde_json::from_str(manifest_str)
        .map_err(|e| StoreError::CorruptManifest(format!("parse failed: {}", e.0)))?;
    if manifest.format_version != version {
        return Err(StoreError::CorruptManifest(format!(
            "manifest format_version {} disagrees with header version {version}",
            manifest.format_version
        )));
    }
    // Blocks: bounds, alignment, name uniqueness first (sequential,
    // manifest order), so structural lies are reported before checksums.
    for (i, desc) in manifest.blocks.iter().enumerate() {
        let region = format!("block:{}", desc.name);
        if manifest.blocks[..i].iter().any(|b| b.name == desc.name) {
            return Err(StoreError::CorruptManifest(format!(
                "duplicate block name {:?} in manifest",
                desc.name
            )));
        }
        if desc.offset % 8 != 0 {
            return Err(StoreError::BadBlock {
                region,
                reason: format!("offset {} is not 8-byte aligned", desc.offset),
            });
        }
        let end = desc.offset.checked_add(desc.len);
        if desc.offset < HEADER_LEN || end.is_none_or(|e| e > manifest_offset) {
            return Err(StoreError::Truncated {
                region,
                need: end.unwrap_or(u64::MAX),
                have: manifest_offset,
            });
        }
    }
    // Per-block CRCs, checked before the whole-file comparison so a
    // damaged block is named precisely. Fanned out over the worker pool
    // for large snapshots (column blocks are the parallel grain); the
    // first mismatch in manifest order is reported either way.
    let payload = |desc: &crate::format::BlockDesc| {
        &bytes[desc.offset as usize..(desc.offset + desc.len) as usize]
    };
    let total: u64 = manifest.blocks.iter().map(|b| b.len).sum();
    let actuals: Vec<u64> = if total >= PARALLEL_CRC_BYTES {
        tabula_par::par_map(&manifest.blocks, |desc| crc64(payload(desc)))
    } else {
        manifest.blocks.iter().map(|desc| crc64(payload(desc))).collect()
    };
    for (desc, &actual) in manifest.blocks.iter().zip(&actuals) {
        if actual != desc.crc64 {
            return Err(StoreError::ChecksumMismatch {
                region: format!("block:{}", desc.name),
                expected: desc.crc64,
                actual,
            });
        }
    }
    // Whole-file CRC last: catches damage outside any block (header
    // reserved bytes, inter-block padding, unreferenced regions). The
    // block payloads and the manifest were just CRC'd, so instead of
    // re-reading them the expected value is *derived*: walk the file in
    // offset order, CRC only the bytes no block covers (header, padding
    // gaps), and splice in the already-computed segment CRCs with the
    // O(log n) zero-shift combine. Bytewise-identical to `crc64` of the
    // whole prefix — any single damaged bit still lands here if no
    // earlier check owned it.
    let mut order: Vec<usize> = (0..manifest.blocks.len()).collect();
    order.sort_by_key(|&i| manifest.blocks[i].offset);
    let mut derived = crc64(&bytes[..HEADER_LEN as usize]);
    let mut cursor = HEADER_LEN;
    for &i in &order {
        let desc = &manifest.blocks[i];
        if desc.offset < cursor {
            return Err(StoreError::CorruptManifest(format!(
                "block {:?} at offset {} overlaps the previous region ending at {cursor}",
                desc.name, desc.offset
            )));
        }
        let gap = &bytes[cursor as usize..desc.offset as usize];
        derived = crc64_combine(derived, crc64(gap), gap.len() as u64);
        derived = crc64_combine(derived, desc.crc64, desc.len);
        cursor = desc.offset + desc.len;
    }
    let tail = &bytes[cursor as usize..manifest_offset as usize];
    derived = crc64_combine(derived, crc64(tail), tail.len() as u64);
    derived = crc64_combine(derived, manifest_crc, manifest_len);
    if derived != file_crc {
        return Err(StoreError::ChecksumMismatch {
            region: "file".into(),
            expected: file_crc,
            actual: derived,
        });
    }
    Ok(manifest)
}
