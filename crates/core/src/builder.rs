//! Orchestration of sampling-cube initialization.
//!
//! [`SamplingCubeBuilder`] runs the paper's pipeline — global sample →
//! dry run → real run → representative-sample selection — and also
//! implements the degraded materialization modes the paper evaluates
//! against (Tabula\*, FullSamCube, PartSamCube), so the baseline crate and
//! the benchmark harness share one code path per mode.
//!
//! The storage primitives the stages lean on — predicate filter, group-by,
//! finest-cuboid aggregation, lattice rollup, semi-join — all run as
//! chunked vectorized kernels over bit-packed dictionary codes when the
//! cubed attributes' packed key fits 64 bits (see
//! [`tabula_storage::kernel`]); the build produces byte-identical cubes in
//! either kernel mode and at any thread count.

use crate::cube::{BuildStats, SamplingCube};
use crate::dryrun::dry_run;
use crate::loss::AccuracyLoss;
use crate::realrun::{real_run, CubeEntry};
use crate::samgraph::{build_samgraph, SamGraphConfig};
use crate::selection::select_representatives;
use crate::serfling::{draw_global_sample, SerflingConfig};
use crate::{CoreError, Result};
use std::sync::Arc;
use tabula_obs as obs;
use tabula_obs::span;
use tabula_storage::cube::{CellKey, CuboidMask};
use tabula_storage::{group_by, FxHashMap, Table};

/// Which cube variant to materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaterializationMode {
    /// The full Tabula pipeline: dry run, real run, sample selection.
    Tabula,
    /// Tabula without the sample-selection stage (the paper's `Tabula*`):
    /// every iceberg cell persists its own local sample.
    TabulaStar,
    /// Fully materialized sampling cube: a local sample for *every* cell
    /// of every cuboid, iceberg or not (the paper's `FullSamCube`).
    FullSamCube,
    /// Partially materialized cube built naively: all `2ⁿ` cuboids are
    /// grouped directly from the raw table and each cell's loss against
    /// the global sample is evaluated from raw data — no dry run, no
    /// selection (the paper's `PartSamCube`).
    PartSamCube,
}

/// Builder for a [`SamplingCube`]. See the crate docs for the pipeline.
pub struct SamplingCubeBuilder<L: AccuracyLoss> {
    table: Arc<Table>,
    attrs: Vec<String>,
    loss: L,
    theta: f64,
    mode: MaterializationMode,
    serfling: SerflingConfig,
    samgraph: SamGraphConfig,
    seed: u64,
    parallelism: usize,
    registry: Option<Arc<obs::Registry>>,
}

impl<L: AccuracyLoss> SamplingCubeBuilder<L> {
    /// Start a builder over `table`, cubing `attrs`, with `loss` and the
    /// threshold `theta`.
    pub fn new(table: Arc<Table>, attrs: &[impl AsRef<str>], loss: L, theta: f64) -> Self {
        SamplingCubeBuilder {
            table,
            attrs: attrs.iter().map(|a| a.as_ref().to_owned()).collect(),
            loss,
            theta,
            mode: MaterializationMode::Tabula,
            serfling: SerflingConfig::default(),
            samgraph: SamGraphConfig::default(),
            seed: 42,
            parallelism: 0,
            registry: None,
        }
    }

    /// Select the materialization mode (default [`MaterializationMode::Tabula`]).
    pub fn mode(mut self, mode: MaterializationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Override the Serfling parameters sizing the global sample.
    pub fn serfling(mut self, config: SerflingConfig) -> Self {
        self.serfling = config;
        self
    }

    /// Override the SamGraph join configuration.
    pub fn samgraph(mut self, config: SamGraphConfig) -> Self {
        self.samgraph = config;
        self
    }

    /// RNG seed for the global sample (default 42).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads for per-cell sampling (0 = all cores, default).
    pub fn parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Metrics registry receiving build metrics and the cube's provenance
    /// counters (default: the process-wide [`tabula_obs::global`] registry).
    pub fn registry(mut self, registry: Arc<obs::Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Run the pipeline.
    pub fn build(self) -> Result<SamplingCube> {
        if self.theta < 0.0 || self.theta.is_nan() {
            return Err(CoreError::Config(format!(
                "accuracy loss threshold must be non-negative, got {}",
                self.theta
            )));
        }
        if self.attrs.is_empty() {
            return Err(CoreError::Config("at least one cubed attribute required".into()));
        }
        if self.attrs.len() > 31 {
            return Err(CoreError::Config("at most 31 cubed attributes supported".into()));
        }
        let cols: Vec<usize> = self
            .attrs
            .iter()
            .map(|a| self.table.schema().index_of(a))
            .collect::<std::result::Result<_, _>>()?;
        // Fail fast on non-categorical attributes.
        for (&c, name) in cols.iter().zip(&self.attrs) {
            self.table.cat(c).map_err(|_| {
                CoreError::Config(format!("cubed attribute {name} is not categorical"))
            })?;
        }

        let registry = self.registry.clone().unwrap_or_else(|| Arc::clone(obs::global()));
        let total_span = span!("build.total", "mode={:?} attrs={}", self.mode, self.attrs.len());
        let mut stats = BuildStats::default();
        let global_span = span!("build.global_sample");
        let global =
            Arc::new(draw_global_sample(&self.table, self.serfling.sample_size(), self.seed));
        drop(global_span);
        stats.global_sample_size = global.len();

        let (entries, selection) = match self.mode {
            MaterializationMode::Tabula | MaterializationMode::TabulaStar => {
                let ctx = self.loss.prepare(&self.table, &global);
                let dry_span = span!("build.dry_run");
                let dry = dry_run(&self.table, &cols, &self.loss, &ctx, self.theta)?;
                stats.dry_run = dry_span.stop();
                stats.total_cells = dry.total_cells;
                stats.iceberg_cells = dry.iceberg_count;

                let real_span = span!("build.real_run", "icebergs={}", dry.iceberg_count);
                let rr =
                    real_run(&self.table, &cols, &self.loss, self.theta, &dry, self.parallelism)?;
                stats.real_run = real_span.stop();
                stats.cuboids_processed = rr.stats.cuboids_processed;
                stats.cuboids_skipped = rr.stats.cuboids_skipped;
                stats.prune_plans = rr.stats.prune_plans;
                stats.group_all_plans = rr.stats.group_all_plans;

                let selection = if self.mode == MaterializationMode::Tabula {
                    let sel_span = span!("build.selection", "samples={}", rr.entries.len());
                    let graph = build_samgraph(
                        &self.table,
                        &self.loss,
                        self.theta,
                        &rr.entries,
                        &self.samgraph,
                    );
                    stats.samgraph_edges = graph.edge_count();
                    let sel = select_representatives(&graph);
                    stats.selection = sel_span.stop();
                    Some(sel)
                } else {
                    None
                };
                (rr.entries, selection)
            }
            MaterializationMode::FullSamCube => {
                let real_span = span!("build.real_run", "mode=FullSamCube");
                let entries = self.materialize_all_cells(&cols, None)?;
                stats.real_run = real_span.stop();
                stats.total_cells = entries.len();
                stats.iceberg_cells = entries.len();
                stats.cuboids_processed = 1 << cols.len();
                (entries, None)
            }
            MaterializationMode::PartSamCube => {
                let real_span = span!("build.real_run", "mode=PartSamCube");
                let ctx = self.loss.prepare(&self.table, &global);
                let entries = self.materialize_all_cells(&cols, Some(&ctx))?;
                stats.real_run = real_span.stop();
                stats.iceberg_cells = entries.len();
                stats.cuboids_processed = 1 << cols.len();
                (entries, None)
            }
        };
        stats.samples_before_selection = entries.len();

        // Assemble cube table + sample table.
        let (cube_table, samples) = match selection {
            Some(sel) => {
                let mut sample_id_of_rep: FxHashMap<u32, u32> = FxHashMap::default();
                let mut samples = Vec::with_capacity(sel.representatives.len());
                for &rep in &sel.representatives {
                    sample_id_of_rep.insert(rep, samples.len() as u32);
                    samples.push(Arc::new(entries[rep as usize].sample.clone()));
                }
                let cube_table: FxHashMap<CellKey, u32> = entries
                    .iter()
                    .enumerate()
                    .map(|(i, e)| (e.cell.clone(), sample_id_of_rep[&sel.rep_of[i]]))
                    .collect();
                (cube_table, samples)
            }
            None => {
                let samples: Vec<Arc<Vec<_>>> =
                    entries.iter().map(|e| Arc::new(e.sample.clone())).collect();
                let cube_table: FxHashMap<CellKey, u32> =
                    entries.iter().enumerate().map(|(i, e)| (e.cell.clone(), i as u32)).collect();
                (cube_table, samples)
            }
        };
        stats.samples_after_selection = samples.len();
        stats.total = total_span.stop();
        publish_build_metrics(&registry, &stats);

        Ok(SamplingCube::new(
            self.table, self.attrs, cols, self.theta, cube_table, samples, global, stats,
        )
        .with_registry(&registry))
    }

    /// Naive materialization used by FullSamCube / PartSamCube: run all
    /// `2ⁿ` group-bys directly on the raw table; draw a local sample for
    /// every cell (FullSamCube, `iceberg_ctx = None`) or for cells whose
    /// raw loss against the global sample exceeds θ (PartSamCube).
    fn materialize_all_cells(
        &self,
        cols: &[usize],
        iceberg_ctx: Option<&L::SampleCtx>,
    ) -> Result<Vec<CubeEntry>> {
        let n = cols.len();
        let mut entries = Vec::new();
        for mask in CuboidMask::enumerate(n) {
            let attrs: Vec<usize> = mask.attrs().iter().map(|&a| cols[a]).collect();
            let grouped = group_by(&self.table, &attrs)?;
            let mut cells: Vec<(Vec<u32>, Vec<tabula_storage::RowId>)> =
                grouped.groups.into_iter().collect();
            cells.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            for (compact, rows) in cells {
                if let Some(ctx) = iceberg_ctx {
                    // PartSamCube evaluates the iceberg condition from raw
                    // data — the expensive path the dry run exists to avoid.
                    // Same classifier predicate as the dry run, so both
                    // modes materialize exactly the same cells.
                    let cell_loss = self.loss.loss_with_ctx(&self.table, &rows, ctx);
                    if !crate::loss::exceeds_theta(cell_loss, self.theta) {
                        continue;
                    }
                }
                let sample = self.loss.sample_greedy(&self.table, &rows, self.theta);
                entries.push(CubeEntry {
                    cell: CellKey::from_compact(mask, n, &compact),
                    rows,
                    sample,
                });
            }
        }
        Ok(entries)
    }
}

/// Publish one build's statistics into `registry`: stage latencies as
/// histograms (so repeated builds accumulate distributions), structural
/// numbers as gauges, and plan choices as counters.
fn publish_build_metrics(registry: &obs::Registry, stats: &BuildStats) {
    registry.histogram("build.dry_run").record_duration(stats.dry_run);
    registry.histogram("build.real_run").record_duration(stats.real_run);
    registry.histogram("build.selection").record_duration(stats.selection);
    registry.histogram("build.total").record_duration(stats.total);
    registry.counter("build.count").inc();
    registry.counter("real_run.plan.prune").add(stats.prune_plans as u64);
    registry.counter("real_run.plan.group_all").add(stats.group_all_plans as u64);
    registry.counter("real_run.cuboids_skipped").add(stats.cuboids_skipped as u64);
    registry.gauge("cube.total_cells").set(stats.total_cells as i64);
    registry.gauge("cube.iceberg_cells").set(stats.iceberg_cells as i64);
    registry.gauge("cube.samples_before_selection").set(stats.samples_before_selection as i64);
    registry.gauge("cube.samples_after_selection").set(stats.samples_after_selection as i64);
    registry.gauge("cube.samgraph_edges").set(stats.samgraph_edges as i64);
    registry.gauge("cube.global_sample_size").set(stats.global_sample_size as i64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::SampleProvenance;
    use crate::loss::{HeatmapLoss, MeanLoss, Metric};
    use tabula_data::example_dcm_table;
    use tabula_storage::group::group_rows;

    fn mini() -> Arc<Table> {
        Arc::new(example_dcm_table())
    }

    fn mean_loss(t: &Table) -> MeanLoss {
        MeanLoss::new(t.schema().index_of("fare").unwrap())
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let t = mini();
        let loss = mean_loss(&t);
        assert!(matches!(
            SamplingCubeBuilder::new(Arc::clone(&t), &["D"], loss.clone(), -0.1).build(),
            Err(CoreError::Config(_))
        ));
        let empty: [&str; 0] = [];
        assert!(matches!(
            SamplingCubeBuilder::new(Arc::clone(&t), &empty, loss.clone(), 0.1).build(),
            Err(CoreError::Config(_))
        ));
        assert!(matches!(
            SamplingCubeBuilder::new(Arc::clone(&t), &["fare"], loss.clone(), 0.1).build(),
            Err(CoreError::Config(_))
        ));
        assert!(SamplingCubeBuilder::new(Arc::clone(&t), &["missing"], loss, 0.1).build().is_err());
    }

    /// The end-to-end guarantee: for EVERY cell of the full cube, the
    /// answer Tabula returns must be within θ of the cell's raw data.
    fn check_guarantee<LL: AccuracyLoss + Clone>(loss: LL, theta: f64, mode: MaterializationMode) {
        let t = mini();
        let cube = SamplingCubeBuilder::new(Arc::clone(&t), &["D", "C", "M"], loss.clone(), theta)
            .mode(mode)
            .seed(7)
            .build()
            .unwrap();
        for mask in CuboidMask::enumerate(3) {
            let attrs = mask.attrs();
            let grouped = group_by(&t, &attrs).unwrap();
            for (compact, rows) in &grouped.groups {
                let cell = CellKey::from_compact(mask, 3, compact);
                let ans = cube.query_cell(&cell);
                let achieved = loss.loss(&t, rows, &ans.rows);
                assert!(
                    achieved <= theta + crate::loss::LOSS_EPS,
                    "{mode:?} cell {cell}: loss {achieved} > θ {theta} (prov {:?})",
                    ans.provenance
                );
            }
        }
    }

    #[test]
    fn guarantee_holds_for_tabula_mode_mean_loss() {
        let t = mini();
        check_guarantee(mean_loss(&t), 0.10, MaterializationMode::Tabula);
    }

    #[test]
    fn guarantee_holds_for_tabula_star_mode() {
        let t = mini();
        check_guarantee(mean_loss(&t), 0.10, MaterializationMode::TabulaStar);
    }

    #[test]
    fn guarantee_holds_for_full_and_part_cubes() {
        let t = mini();
        check_guarantee(mean_loss(&t), 0.10, MaterializationMode::FullSamCube);
        check_guarantee(mean_loss(&t), 0.10, MaterializationMode::PartSamCube);
    }

    #[test]
    fn guarantee_holds_for_heatmap_loss() {
        let t = mini();
        let pickup = t.schema().index_of("pickup").unwrap();
        check_guarantee(
            HeatmapLoss::new(pickup, Metric::Euclidean),
            0.05,
            MaterializationMode::Tabula,
        );
    }

    #[test]
    fn selection_reduces_or_preserves_sample_count() {
        let t = mini();
        let tabula =
            SamplingCubeBuilder::new(Arc::clone(&t), &["D", "C", "M"], mean_loss(&t), 0.10)
                .seed(7)
                .build()
                .unwrap();
        let star = SamplingCubeBuilder::new(Arc::clone(&t), &["D", "C", "M"], mean_loss(&t), 0.10)
            .mode(MaterializationMode::TabulaStar)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(tabula.materialized_cells(), star.materialized_cells());
        assert!(tabula.persisted_samples() <= star.persisted_samples());
        let m_tabula = tabula.memory_breakdown().sample_table_bytes;
        let m_star = star.memory_breakdown().sample_table_bytes;
        assert!(m_tabula <= m_star);
    }

    #[test]
    fn full_cube_materializes_every_cell() {
        let t = mini();
        let full = SamplingCubeBuilder::new(Arc::clone(&t), &["D", "C", "M"], mean_loss(&t), 0.10)
            .mode(MaterializationMode::FullSamCube)
            .build()
            .unwrap();
        // Count cells directly.
        let mut expected = 0;
        for mask in CuboidMask::enumerate(3) {
            expected += group_by(&t, &mask.attrs()).unwrap().groups.len();
        }
        assert_eq!(full.materialized_cells(), expected);
        // Every query is answered locally.
        let ans = full.query_cell(&CellKey::new(vec![None, None, None]));
        assert!(matches!(ans.provenance, SampleProvenance::Local(_)));
    }

    #[test]
    fn part_cube_matches_tabula_star_cells() {
        let t = mini();
        let star = SamplingCubeBuilder::new(Arc::clone(&t), &["D", "C", "M"], mean_loss(&t), 0.10)
            .mode(MaterializationMode::TabulaStar)
            .seed(7)
            .build()
            .unwrap();
        let part = SamplingCubeBuilder::new(Arc::clone(&t), &["D", "C", "M"], mean_loss(&t), 0.10)
            .mode(MaterializationMode::PartSamCube)
            .seed(7)
            .build()
            .unwrap();
        // Same iceberg cells (both evaluate loss(cell, global) > θ; one
        // algebraically, one naively).
        let mut a: Vec<_> = star.cube_table().map(|(k, _)| k.clone()).collect();
        let mut b: Vec<_> = part.cube_table().map(|(k, _)| k.clone()).collect();
        a.sort_by(|x, y| x.codes.cmp(&y.codes));
        b.sort_by(|x, y| x.codes.cmp(&y.codes));
        assert_eq!(a, b);
    }

    #[test]
    fn stats_are_populated() {
        let t = mini();
        let cube = SamplingCubeBuilder::new(Arc::clone(&t), &["D", "C", "M"], mean_loss(&t), 0.10)
            .seed(7)
            .build()
            .unwrap();
        let s = cube.stats();
        assert!(s.total_cells > 0);
        assert!(s.iceberg_cells > 0);
        assert_eq!(s.cuboids_processed + s.cuboids_skipped, 8);
        assert_eq!(s.samples_after_selection, cube.persisted_samples());
        assert!(s.samples_after_selection <= s.samples_before_selection);
        assert!(s.global_sample_size > 0);
        assert!(s.total >= s.dry_run);
    }

    #[test]
    fn queries_on_grouped_subsets_match_entry_rows() {
        // Sanity for group_rows reuse in tests elsewhere.
        let t = mini();
        let g = group_rows(&t, &[2], &t.all_rows()).unwrap();
        assert_eq!(g.groups.len(), 3);
    }

    #[test]
    fn build_publishes_metrics_and_emits_spans() {
        let t = mini();
        // Subscribers are process-global, so concurrent tests may add
        // their own spans to this collector; assert presence, not counts.
        let collector = Arc::new(obs::MemoryCollector::new());
        obs::set_subscriber(Arc::clone(&collector) as Arc<dyn obs::Subscriber>);
        // The registry, by contrast, is private: exact numbers hold.
        let registry = Arc::new(obs::Registry::new());
        let cube = SamplingCubeBuilder::new(Arc::clone(&t), &["D", "C", "M"], mean_loss(&t), 0.10)
            .seed(7)
            .registry(Arc::clone(&registry))
            .build()
            .unwrap();
        obs::clear_subscriber();

        let s = cube.stats();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("build.count"), 1);
        assert_eq!(
            snap.counter("real_run.plan.prune") + snap.counter("real_run.plan.group_all"),
            s.cuboids_processed as u64
        );
        assert_eq!(snap.gauges["cube.total_cells"], s.total_cells as i64);
        assert_eq!(snap.gauges["cube.iceberg_cells"], s.iceberg_cells as i64);
        assert_eq!(snap.gauges["cube.samples_after_selection"], s.samples_after_selection as i64);
        for stage in ["build.dry_run", "build.real_run", "build.selection", "build.total"] {
            let h = &snap.histograms[stage];
            assert_eq!(h.count, 1, "{stage} recorded once");
        }
        assert_eq!(snap.histograms["build.total"].sum_ns, s.total.as_nanos() as u64);

        for span in [
            "build.total",
            "build.global_sample",
            "build.dry_run",
            "build.real_run",
            "build.selection",
        ] {
            assert!(collector.count_of(span) >= 1, "missing span {span}");
        }
        // Stage spans nest inside build.total.
        let records = collector.records();
        let total_depth =
            records.iter().find(|r| r.name == "build.total").expect("total span").depth;
        let dry_depth =
            records.iter().find(|r| r.name == "build.dry_run").expect("dry-run span").depth;
        assert!(dry_depth > total_depth);
    }
}
