//! The differential oracle wired into the integration suite: a handful
//! of pinned seeds run through the full `tabula-check` diff engine —
//! every materialization mode, thread counts 1 and 4, exhaustive
//! per-cell θ-guarantee against the naive reference implementation.
//!
//! The heavyweight sweep lives in the `fuzz_check` bench binary (and the
//! CI `fuzz-smoke` job); this test keeps a fast always-on slice of it in
//! plain `cargo test`.

use tabula_check::{diff_case, gen_case, shrink, LossSpec};

/// Ten pinned seeds — deterministically covering all four loss kernels —
/// must produce zero divergences.
#[test]
fn pinned_seeds_diverge_nowhere() {
    let mut losses_seen = std::collections::BTreeSet::new();
    for seed in 0..10 {
        let case = gen_case(seed);
        losses_seen.insert(case.loss.name());
        if let Err(d) = diff_case(&case) {
            // Shrink before failing so the assertion message is directly
            // actionable.
            let msg = match shrink(&case, |c| diff_case(c).err()) {
                Some(s) => s.case.to_regression_test(&format!("fuzz_seed_{seed}"), &s.divergence),
                None => format!("flaky divergence (vanished on re-run): {d}"),
            };
            panic!("seed {seed} diverged:\n{msg}");
        }
    }
    assert!(losses_seen.len() >= 3, "seed range covers too few kernels: {losses_seen:?}");
}

/// The oracle itself stays honest: a case whose θ is so loose that the
/// global sample serves everything, and one so tight that every
/// populated cell materializes, both pass — the harness is not trivially
/// green by construction, it checks different classification extremes.
#[test]
fn harness_covers_both_classification_extremes() {
    let mut loose = gen_case(2);
    loose.theta = 1e9;
    loose.loss = LossSpec::Mean { attr: "fare".to_string() };
    diff_case(&loose).expect("loose θ: no cell is iceberg, global sample everywhere");

    let mut tight = gen_case(2);
    tight.theta = 0.0;
    tight.loss = LossSpec::Mean { attr: "fare".to_string() };
    diff_case(&tight).expect("θ = 0: every populated cell is iceberg");
}
