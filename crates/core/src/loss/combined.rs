//! Combining two accuracy losses: `loss = max(norm_a·loss_a, norm_b·loss_b)`.
//!
//! A dashboard usually runs *several* visual-analysis tasks on the same
//! returned sample (the paper's Figure 1 shows three). A sample guaranteed
//! for the heat map alone may be terrible for the histogram. [`MaxLoss`]
//! composes two losses so one cube serves both guarantees at once:
//! thresholding the combined loss at `θ = 1` with `norm_x = 1/θ_x`
//! guarantees `loss_a ≤ θ_a` **and** `loss_b ≤ θ_b` simultaneously.
//!
//! The combination preserves the whole [`AccuracyLoss`] contract:
//!
//! * the paired state `(A::State, B::State)` is mergeable, so the one-scan
//!   dry run still works;
//! * `max` of two per-convention losses keeps the conventions (empty raw →
//!   0, unusable sample → ∞);
//! * the default greedy falls back to the literal Algorithm 1, which is
//!   correct for any loss — and `MaxLoss` overrides it with an alternating
//!   strategy: sample for the currently-worse component until both meet
//!   their bounds.

use super::AccuracyLoss;
use tabula_storage::agg::AggState;
use tabula_storage::{RowId, Table};

/// Mergeable pair of two component states.
#[derive(Debug, Clone, Default)]
pub struct PairState<A, B> {
    /// First component's state.
    pub a: A,
    /// Second component's state.
    pub b: B,
}

impl<A: AggState + Default, B: AggState + Default> AggState for PairState<A, B> {
    fn merge(&mut self, other: &Self) {
        self.a.merge(&other.a);
        self.b.merge(&other.b);
    }
}

/// The normalized maximum of two accuracy losses.
#[derive(Debug, Clone)]
pub struct MaxLoss<A, B> {
    a: A,
    b: B,
    /// Normalizer applied to the first loss (typically `1/θ_a`).
    norm_a: f64,
    /// Normalizer applied to the second loss (typically `1/θ_b`).
    norm_b: f64,
}

impl<A: AccuracyLoss, B: AccuracyLoss> MaxLoss<A, B> {
    /// Combine two losses with explicit normalizers. With
    /// `norm_x = 1/θ_x` and a combined threshold of `1.0`, both component
    /// bounds hold simultaneously.
    pub fn new(a: A, norm_a: f64, b: B, norm_b: f64) -> Self {
        assert!(norm_a > 0.0 && norm_b > 0.0, "normalizers must be positive");
        MaxLoss { a, b, norm_a, norm_b }
    }

    /// Convenience: combine with per-component thresholds; the resulting
    /// loss should then be thresholded at `1.0`.
    pub fn with_thresholds(a: A, theta_a: f64, b: B, theta_b: f64) -> Self {
        assert!(theta_a > 0.0 && theta_b > 0.0, "thresholds must be positive");
        Self::new(a, 1.0 / theta_a, b, 1.0 / theta_b)
    }
}

impl<A: AccuracyLoss, B: AccuracyLoss> AccuracyLoss for MaxLoss<A, B> {
    type State = PairState<A::State, B::State>;
    type SampleCtx = (A::SampleCtx, B::SampleCtx);

    fn name(&self) -> &'static str {
        "max_combined"
    }

    fn state_depends_on_sample(&self) -> bool {
        self.a.state_depends_on_sample() || self.b.state_depends_on_sample()
    }

    fn prepare(&self, table: &Table, sample: &[RowId]) -> Self::SampleCtx {
        (self.a.prepare(table, sample), self.b.prepare(table, sample))
    }

    fn fold(&self, ctx: &Self::SampleCtx, state: &mut Self::State, table: &Table, row: RowId) {
        self.a.fold(&ctx.0, &mut state.a, table, row);
        self.b.fold(&ctx.1, &mut state.b, table, row);
    }

    fn finish(&self, ctx: &Self::SampleCtx, state: &Self::State) -> f64 {
        let la = self.a.finish(&ctx.0, &state.a) * self.norm_a;
        let lb = self.b.finish(&ctx.1, &state.b) * self.norm_b;
        la.max(lb)
    }

    fn signature(&self, table: &Table, rows: &[RowId]) -> [f64; 2] {
        // One dimension from each component's signature.
        let sa = self.a.signature(table, rows);
        let sb = self.b.signature(table, rows);
        [sa[0] * self.norm_a, sb[0] * self.norm_b]
    }

    fn sample_greedy(&self, table: &Table, raw: &[RowId], theta: f64) -> Vec<RowId> {
        // Alternating strategy: let each component's specialized engine
        // sample for its own (scaled-back) threshold, union the picks,
        // then top up with the literal greedy if the combination still
        // misses the bound (it rarely does: each union member set already
        // satisfies its side).
        let theta_a = theta / self.norm_a;
        let theta_b = theta / self.norm_b;
        let mut sample = self.a.sample_greedy(table, raw, theta_a);
        let picked: std::collections::HashSet<RowId> = sample.iter().copied().collect();
        for r in self.b.sample_greedy(table, raw, theta_b) {
            if !picked.contains(&r) {
                sample.push(r);
            }
        }
        let mut current = self.loss(table, raw, &sample);
        if current <= theta {
            return sample;
        }
        // Top-up loop (guaranteed to terminate: it can add every row).
        let mut remaining: Vec<RowId> =
            raw.iter().copied().filter(|r| !sample.contains(r)).collect();
        while current > theta && !remaining.is_empty() {
            let mut best = (f64::INFINITY, 0usize);
            for (i, &cand) in remaining.iter().enumerate() {
                sample.push(cand);
                let l = self.loss(table, raw, &sample);
                sample.pop();
                if l < best.0 {
                    best = (l, i);
                }
            }
            sample.push(remaining.swap_remove(best.1));
            current = best.0;
        }
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{HeatmapLoss, HistogramLoss, MeanLoss, Metric};
    use tabula_data::{TaxiConfig, TaxiGenerator};

    fn taxi() -> tabula_storage::Table {
        TaxiGenerator::new(TaxiConfig { rows: 3_000, seed: 31 }).generate()
    }

    #[test]
    fn combined_loss_is_the_normalized_max() {
        let t = taxi();
        let fare = t.schema().index_of("fare_amount").unwrap();
        let pickup = t.schema().index_of("pickup").unwrap();
        let heat = HeatmapLoss::new(pickup, Metric::Euclidean);
        let hist = HistogramLoss::new(fare);
        let combined = MaxLoss::with_thresholds(heat.clone(), 0.01, hist.clone(), 0.5);
        let all: Vec<u32> = t.all_rows();
        let sample: Vec<u32> = (0..3000).step_by(30).collect();
        let la = heat.loss(&t, &all, &sample) / 0.01;
        let lb = hist.loss(&t, &all, &sample) / 0.5;
        let lc = combined.loss(&t, &all, &sample);
        assert!((lc - la.max(lb)).abs() < 1e-12);
    }

    #[test]
    fn thresholding_at_one_guarantees_both_components() {
        let t = taxi();
        let fare = t.schema().index_of("fare_amount").unwrap();
        let pickup = t.schema().index_of("pickup").unwrap();
        let heat = HeatmapLoss::new(pickup, Metric::Euclidean);
        let mean = MeanLoss::new(fare);
        let (theta_heat, theta_mean) = (0.02, 0.05);
        let combined = MaxLoss::with_thresholds(heat.clone(), theta_heat, mean.clone(), theta_mean);
        let all: Vec<u32> = t.all_rows();
        let sample = combined.sample_greedy(&t, &all, 1.0);
        assert!(combined.loss(&t, &all, &sample) <= 1.0 + 1e-9);
        assert!(heat.loss(&t, &all, &sample) <= theta_heat + 1e-9);
        assert!(mean.loss(&t, &all, &sample) <= theta_mean + 1e-9);
    }

    #[test]
    fn contract_conventions_hold() {
        let t = taxi();
        let fare = t.schema().index_of("fare_amount").unwrap();
        let pickup = t.schema().index_of("pickup").unwrap();
        let combined = MaxLoss::with_thresholds(
            HeatmapLoss::new(pickup, Metric::Euclidean),
            0.01,
            MeanLoss::new(fare),
            0.05,
        );
        let all: Vec<u32> = t.all_rows();
        assert_eq!(combined.loss(&t, &[], &all), 0.0);
        assert!(combined.loss(&t, &all, &[]).is_infinite());
        assert!(combined.loss(&t, &all, &all) < 1e-9);
        assert!(combined.state_depends_on_sample()); // heat map side
    }

    #[test]
    fn pair_state_merges_componentwise() {
        use tabula_storage::agg::SumCount;
        let mut p: PairState<SumCount, SumCount> = PairState::default();
        p.a.add(1.0);
        p.b.add(10.0);
        let mut q: PairState<SumCount, SumCount> = PairState::default();
        q.a.add(3.0);
        q.b.add(30.0);
        p.merge(&q);
        assert_eq!(p.a.mean(), Some(2.0));
        assert_eq!(p.b.mean(), Some(20.0));
    }

    #[test]
    fn works_end_to_end_in_a_cube() {
        use crate::SamplingCubeBuilder;
        use std::sync::Arc;
        let t = Arc::new(taxi());
        let fare = t.schema().index_of("fare_amount").unwrap();
        let pickup = t.schema().index_of("pickup").unwrap();
        let heat = HeatmapLoss::new(pickup, Metric::Euclidean);
        let mean = MeanLoss::new(fare);
        let combined = MaxLoss::with_thresholds(heat.clone(), 0.02, mean.clone(), 0.05);
        let cube =
            SamplingCubeBuilder::new(Arc::clone(&t), &["payment_type", "rate_code"], combined, 1.0)
                .seed(5)
                .build()
                .unwrap();
        // Both component guarantees hold for a few populations.
        for payment in ["cash", "credit", "dispute"] {
            let pred = tabula_storage::Predicate::eq("payment_type", payment);
            let raw = pred.filter(&t).unwrap();
            let ans = cube.query(&pred).unwrap();
            assert!(heat.loss(&t, &raw, &ans.rows) <= 0.02 + 1e-9, "{payment}");
            assert!(mean.loss(&t, &raw, &ans.rows) <= 0.05 + 1e-9, "{payment}");
        }
    }
}
