//! **Table I / Figure 5** illustration — the dry-run stage on the paper's
//! running example (trip-distance bins D, passenger count C, payment
//! method M): prints the iceberg-cell table, the per-cuboid iceberg-cell
//! tables, and the annotated cuboid lattice of Figure 5a.
//!
//! ```bash
//! cargo run --release -p tabula-bench --bin lattice_demo
//! ```

use tabula_core::dryrun::dry_run;
use tabula_core::loss::{AccuracyLoss, MeanLoss};
use tabula_core::serfling::draw_global_sample;
use tabula_data::example_dcm_table;
use tabula_storage::cube::CellKey;
use tabula_storage::Table;

/// Render a cell the way the paper's Table I does: values or `(null)`.
fn render_cell(table: &Table, cols: &[usize], cell: &CellKey) -> String {
    cell.codes
        .iter()
        .zip(cols)
        .map(|(code, &col)| match code {
            Some(c) => table.cat(col).unwrap().decode(*c).to_string(),
            None => "(null)".to_owned(),
        })
        .collect::<Vec<_>>()
        .join(" | ")
}

fn main() {
    let table = example_dcm_table();
    let cols = [0usize, 1, 2]; // D, C, M
    let fare = table.schema().index_of("fare").unwrap();
    let loss = MeanLoss::new(fare);
    let theta = 0.10;
    let global = draw_global_sample(&table, 8, 1);
    let ctx = loss.prepare(&table, &global);
    let dry = dry_run(&table, &cols, &loss, &ctx, theta).expect("dry run succeeds");

    println!("# Dry-run stage on the running example (D, C, M), mean loss, θ = 10%");
    println!(
        "\nTable Ia — iceberg cell table ({} of {} cells):",
        dry.iceberg_count, dry.total_cells
    );
    println!("{:<12} | {:<8} | {:<10}", "D", "C", "M");
    println!("{}", "-".repeat(36));
    let mut cells = dry.iceberg_cells();
    cells.sort_by(|a, b| a.codes.cmp(&b.codes));
    for cell in &cells {
        println!("{}", render_cell(&table, &cols, cell));
    }

    println!("\nFigure 5a — cuboid lattice, (all cells, iceberg cells) per cuboid:");
    for summary in dry.lattice_summary() {
        let attrs = summary.mask.attrs();
        let name: String = if attrs.is_empty() {
            "ALL".into()
        } else {
            attrs.iter().map(|&a| ["D", "C", "M"][a]).collect::<Vec<_>>().join(",")
        };
        let marker = if summary.iceberg_cells > 0 { " *" } else { "" };
        println!(
            "  {:<8} ({:>2}, {:>2}){marker}",
            name, summary.total_cells, summary.iceberg_cells
        );
    }
    println!("  (* = iceberg cuboid; the real run skips the rest entirely)");
}
