//! Stage 2 of sampling-cube initialization: the **real run** (paper
//! §III-B2, Algorithm 2) — materialize a local sample for every iceberg
//! cell found by the dry run.
//!
//! Non-iceberg cuboids are skipped outright. For each iceberg cuboid the
//! paper's cost model (Inequality 1) chooses between two plans for
//! fetching the cells' raw data:
//!
//! * **prune-then-group** — equi-join the raw table against the cuboid's
//!   iceberg-cell list, then group only the surviving rows (wins when the
//!   cuboid has few iceberg cells);
//! * **group-everything** — a plain full-table group-by.
//!
//! Both plans ride the vectorized storage kernels when the cuboid's
//! bit-packed key fits 64 bits: the semi-join probes a packed `u64` cell
//! set and the group-by hashes one packed word per row (see
//! [`tabula_storage::kernel`]), with identical results either way.
//!
//! Local samples are then drawn per cell with the accuracy-loss-aware
//! greedy sampler, scheduled on the shared `tabula-par` work-stealing
//! pool (the per-cell work is embarrassingly parallel, and each cell's
//! greedy draw is deterministic given its rows — so samples are
//! thread-count-independent).

use crate::dryrun::DryRun;
use crate::loss::AccuracyLoss;
use crate::Result;
use tabula_obs::span;
use tabula_par::Pool;
use tabula_storage::cube::{CellKey, CuboidMask};
use tabula_storage::group::group_rows;
use tabula_storage::join::semi_join as semi_join_rows;
use tabula_storage::{group_by, FxHashSet, RowId, Table};

/// One materialized iceberg cell: the paper's cube-table row, carrying the
/// cell's raw data (needed later by the SamGraph join) and its local
/// sample.
#[derive(Debug, Clone)]
pub struct CubeEntry {
    /// The cell.
    pub cell: CellKey,
    /// Row ids of the cell's raw data.
    pub rows: Vec<RowId>,
    /// Row ids of the cell's local sample (⊆ `rows`).
    pub sample: Vec<RowId>,
}

/// Which plan Algorithm 2's cost model chose for a cuboid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CuboidPlan {
    /// Equi-join against the iceberg-cell list, then group.
    PruneThenGroup,
    /// Full-table group-by.
    GroupAll,
}

/// Statistics of a real run.
#[derive(Debug, Clone, Default)]
pub struct RealRunStats {
    /// Cuboids that contained iceberg cells and were processed.
    pub cuboids_processed: usize,
    /// Cuboids skipped because the dry run found no icebergs in them.
    pub cuboids_skipped: usize,
    /// How many processed cuboids took the prune-then-group plan.
    pub prune_plans: usize,
    /// How many took the full group-by plan.
    pub group_all_plans: usize,
}

/// Output of the real run.
#[derive(Debug)]
pub struct RealRun {
    /// Materialized iceberg cells, in deterministic order.
    pub entries: Vec<CubeEntry>,
    /// Plan statistics.
    pub stats: RealRunStats,
}

/// The paper's Inequality 1. `n` = table cardinality, `i` = iceberg cells
/// in the cuboid, `k` = all cells in the cuboid. Returns the chosen plan.
pub fn choose_plan(n: usize, i: usize, k: usize) -> CuboidPlan {
    // Degenerate cuboids (k < 2) leave log_k undefined; a full group-by of
    // one group is trivially right.
    if k < 2 || i == 0 {
        return CuboidPlan::GroupAll;
    }
    let (n, i, k) = (n as f64, i as f64, k as f64);
    let log_k = |x: f64| x.max(1.0).ln() / k.ln();
    let pruned_rows = (i / k) * n; // expected rows surviving the prune
    let cost_prune = n * i + pruned_rows * log_k(pruned_rows);
    let cost_group_all = n * log_k(n);
    if cost_prune < cost_group_all {
        CuboidPlan::PruneThenGroup
    } else {
        CuboidPlan::GroupAll
    }
}

/// Run the real-run stage: materialize local samples for every iceberg
/// cell of `dry`, drawing them with `loss`'s Algorithm-1 sampler.
///
/// `parallelism` caps the worker threads used for per-cell sampling
/// (0 = number of available cores).
pub fn real_run<L: AccuracyLoss>(
    table: &Table,
    cols: &[usize],
    loss: &L,
    theta: f64,
    dry: &DryRun<L::State>,
    parallelism: usize,
) -> Result<RealRun> {
    let mut stats = RealRunStats::default();
    let n_cuboids = dry.states.cuboids.len();
    // Deterministic cuboid order: finest first, then by mask.
    let mut masks: Vec<CuboidMask> = dry.iceberg.keys().copied().collect();
    masks.sort_by_key(|m| (std::cmp::Reverse(m.arity()), *m));
    stats.cuboids_skipped = n_cuboids - masks.len();

    // Phase 1 (sequential, data-system work): fetch each iceberg cell's
    // raw rows, with the per-cuboid plan chosen by the cost model.
    let mut work: Vec<(CellKey, Vec<RowId>)> = Vec::with_capacity(dry.iceberg_count);
    for mask in masks {
        let iceberg_keys = &dry.iceberg[&mask];
        let attrs: Vec<usize> = mask.attrs().iter().map(|&a| cols[a]).collect();
        let k_cells = dry.states.cuboids[&mask].len();
        let plan = choose_plan(table.len(), iceberg_keys.len(), k_cells);
        let _cuboid_span =
            span!("real_run.cuboid", "mask={mask:?} plan={plan:?} icebergs={}", iceberg_keys.len());
        stats.cuboids_processed += 1;
        let iceberg_set: FxHashSet<Vec<u32>> = iceberg_keys.iter().cloned().collect();
        let grouped = match plan {
            CuboidPlan::PruneThenGroup => {
                stats.prune_plans += 1;
                let rows = semi_join_rows(table, &attrs, &iceberg_set)?;
                group_rows(table, &attrs, &rows)?
            }
            CuboidPlan::GroupAll => {
                stats.group_all_plans += 1;
                group_by(table, &attrs)?
            }
        };
        let n_attrs = cols.len();
        let mut cells: Vec<(Vec<u32>, Vec<RowId>)> =
            grouped.groups.into_iter().filter(|(key, _)| iceberg_set.contains(key)).collect();
        cells.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        for (compact, rows) in cells {
            work.push((CellKey::from_compact(mask, n_attrs, &compact), rows));
        }
    }

    // Phase 2 (parallel): draw a local sample per iceberg cell on the
    // shared work-stealing pool.
    let pool = if parallelism == 0 { Pool::global() } else { Pool::with_threads(parallelism) };
    let sample_span =
        span!("real_run.sample_cells", "cells={} threads={}", work.len(), pool.threads());
    let entries = sample_cells(table, loss, theta, work, &pool);
    drop(sample_span);
    Ok(RealRun { entries, stats })
}

/// Draw local samples for `work` on `pool`, preserving input order in the
/// output. Each cell's greedy draw sees exactly its own rows, so the
/// result is independent of scheduling.
fn sample_cells<L: AccuracyLoss>(
    table: &Table,
    loss: &L,
    theta: f64,
    work: Vec<(CellKey, Vec<RowId>)>,
    pool: &Pool,
) -> Vec<CubeEntry> {
    let samples: Vec<Vec<RowId>> =
        pool.run(work.len(), |i| loss.sample_greedy(table, &work[i].1, theta));
    work.into_iter()
        .zip(samples)
        .map(|((cell, rows), sample)| CubeEntry { cell, rows, sample })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dryrun::dry_run;
    use crate::loss::{HeatmapLoss, MeanLoss, Metric};
    use crate::serfling::draw_global_sample;
    use tabula_data::example_dcm_table;

    #[test]
    fn cost_model_prefers_prune_for_few_icebergs() {
        // A single iceberg cell in a wide cuboid: join wins. (The paper's
        // literal cost model prices the join at N·i, so prune only wins
        // for very small i relative to log_k(N).)
        assert_eq!(choose_plan(1_000_000, 1, 5_000), CuboidPlan::PruneThenGroup);
        // Most cells iceberg: group-all wins (the N·i term explodes).
        assert_eq!(choose_plan(1_000_000, 4_000, 5_000), CuboidPlan::GroupAll);
        // Degenerate cuboid.
        assert_eq!(choose_plan(100, 1, 1), CuboidPlan::GroupAll);
    }

    fn build(theta: f64) -> (tabula_storage::Table, Vec<CubeEntry>, RealRunStats) {
        let t = example_dcm_table();
        let fare = t.schema().index_of("fare").unwrap();
        let loss = MeanLoss::new(fare);
        let global = draw_global_sample(&t, 8, 1);
        let ctx = loss.prepare(&t, &global);
        let dry = dry_run(&t, &[0, 1, 2], &loss, &ctx, theta).unwrap();
        let rr = real_run(&t, &[0, 1, 2], &loss, theta, &dry, 2).unwrap();
        (t, rr.entries, rr.stats)
    }

    #[test]
    fn every_iceberg_cell_gets_a_sample_meeting_theta() {
        let theta = 0.10;
        let (t, entries, stats) = build(theta);
        assert!(!entries.is_empty());
        assert_eq!(stats.cuboids_processed + stats.cuboids_skipped, 8);
        let fare = t.schema().index_of("fare").unwrap();
        let loss = MeanLoss::new(fare);
        for e in &entries {
            assert!(!e.rows.is_empty());
            assert!(!e.sample.is_empty());
            // Sample rows are a subset of the cell's rows.
            assert!(e.sample.iter().all(|r| e.rows.contains(r)));
            let achieved = loss.loss(&t, &e.rows, &e.sample);
            assert!(achieved <= theta + 1e-12, "cell {}: {achieved}", e.cell);
        }
    }

    #[test]
    fn entry_rows_match_direct_filtering() {
        let (t, entries, _) = build(0.10);
        for e in &entries {
            // Reconstruct the cell's rows by scanning the whole table.
            let cats: Vec<_> = (0..3).map(|c| t.cat(c).unwrap()).collect();
            let expect: Vec<RowId> = (0..t.len() as RowId)
                .filter(|&r| {
                    e.cell
                        .codes
                        .iter()
                        .zip(&cats)
                        .all(|(code, cat)| code.is_none_or(|c| cat.codes()[r as usize] == c))
                })
                .collect();
            let mut got = e.rows.clone();
            got.sort_unstable();
            assert_eq!(got, expect, "cell {}", e.cell);
        }
    }

    #[test]
    fn parallel_and_serial_sampling_agree() {
        let t = example_dcm_table();
        let pickup = t.schema().index_of("pickup").unwrap();
        let loss = HeatmapLoss::new(pickup, Metric::Euclidean);
        let global = draw_global_sample(&t, 5, 3);
        let ctx = loss.prepare(&t, &global);
        let dry = dry_run(&t, &[0, 1, 2], &loss, &ctx, 0.02).unwrap();
        let serial = real_run(&t, &[0, 1, 2], &loss, 0.02, &dry, 1).unwrap();
        let parallel = real_run(&t, &[0, 1, 2], &loss, 0.02, &dry, 4).unwrap();
        assert_eq!(serial.entries.len(), parallel.entries.len());
        for (a, b) in serial.entries.iter().zip(&parallel.entries) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.sample, b.sample);
        }
    }

    #[test]
    fn no_icebergs_means_no_entries() {
        let (_, entries, stats) = build(f64::INFINITY);
        assert!(entries.is_empty());
        assert_eq!(stats.cuboids_processed, 0);
        assert_eq!(stats.cuboids_skipped, 8);
    }

    #[test]
    fn sample_cells_runs_on_the_shared_pool_in_order() {
        let t = example_dcm_table();
        let fare = t.schema().index_of("fare").unwrap();
        let loss = MeanLoss::new(fare);
        let work: Vec<(CellKey, Vec<RowId>)> =
            (0..6).map(|i| (CellKey::new(vec![Some(i)]), t.all_rows())).collect();
        let serial = sample_cells(&t, &loss, 0.1, work.clone(), &Pool::with_threads(1));
        let parallel = sample_cells(&t, &loss, 0.1, work, &Pool::with_threads(4));
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.sample, b.sample);
        }
    }
}
