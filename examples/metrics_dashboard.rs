//! End-to-end observability tour: build a sampling cube with tracing
//! enabled, run a 1 000-query dashboard workload against it (plus a
//! served pass with a fully-sampled query tracer), and dump the
//! resulting metrics snapshot as JSON and Prometheus text, the windowed
//! serve latency, and the flight recorder's last slow-query trace.
//!
//! ```bash
//! cargo run --release --example metrics_dashboard
//! ```
//!
//! Everything below uses a *private* [`tabula::obs::Registry`] so the
//! numbers printed are exactly this run's — the same instrumentation
//! reports into the process-global registry by default (see
//! `tabula::obs::global()`), which is what the REPL's `\metrics` command
//! prints.

use std::sync::Arc;
use std::time::Instant;
use tabula::core::loss::MeanLoss;
use tabula::core::SamplingCubeBuilder;
use tabula::data::{TaxiConfig, TaxiGenerator, Workload, CUBED_ATTRIBUTES};
use tabula::obs;

const ROWS: usize = 20_000;
const QUERIES: usize = 1_000;
const SERVED: usize = 200;

fn main() {
    // 1. Capture spans: the collector sees every stage of the build
    //    (build.total → build.dry_run / build.real_run / build.selection,
    //    plus per-cuboid spans beneath them).
    let collector = Arc::new(obs::MemoryCollector::new());
    obs::set_subscriber(Arc::clone(&collector) as Arc<dyn obs::Subscriber>);

    // 2. Metrics: a private registry isolates this run's numbers.
    let registry = Arc::new(obs::Registry::new());

    let table = Arc::new(TaxiGenerator::new(TaxiConfig { rows: ROWS, seed: 42 }).generate());
    let fare = table.schema().index_of("fare_amount").unwrap();
    let attrs: Vec<&str> = CUBED_ATTRIBUTES[..4].to_vec();

    let cube = SamplingCubeBuilder::new(Arc::clone(&table), &attrs, MeanLoss::new(fare), 0.05)
        .seed(42)
        .registry(Arc::clone(&registry))
        .build()
        .expect("cube build succeeds");

    // 3. A dashboard workload: 1 000 cell lookups, latency into a
    //    histogram, provenance tallied by the cube itself.
    let queries = Workload::new(&attrs)
        .generate(&table, QUERIES, 0xBEEF)
        .expect("workload generation succeeds");
    let latency = registry.histogram("query.latency");
    for q in &queries {
        let start = Instant::now();
        let _answer = cube.query_cell(&q.cell);
        latency.record_duration(start.elapsed());
    }

    // 4. The served path, with every query traced: slow threshold 0 ms
    //    means every trace also lands in the always-retained slow ring,
    //    so the flight recorder is guaranteed to have a capture to show.
    let cube = Arc::new(cube);
    let tracer = Arc::new(obs::Tracer::new(1, 0, 64));
    let server = tabula::serve::Server::with_cache(
        Arc::clone(&cube),
        tabula::serve::AnswerCache::new(4 << 20, 4),
        Arc::clone(&registry),
    )
    .expect("serving index build succeeds")
    .with_tracer(Arc::clone(&tracer));
    for q in &queries[..SERVED] {
        server.query(&q.predicate).expect("served query succeeds");
    }

    obs::clear_subscriber();

    // 5. The numbers. JSON snapshot first (what a dashboard would scrape) …
    let snapshot = registry.snapshot();
    println!("=== JSON metrics snapshot ===");
    println!("{}", snapshot.to_json());

    // … then the same registry in Prometheus text format …
    println!("\n=== Prometheus exposition ===");
    print!("{}", snapshot.to_prometheus());

    // … and a human-readable digest.
    let prov = cube.provenance_counters();
    println!("\n=== digest ===");
    println!("build stages (spans recorded by the collector):");
    for record in collector.records() {
        if record.name.starts_with("build.") {
            println!(
                "  {:indent$}{} {:?} {}",
                "",
                record.name,
                record.duration,
                record.detail,
                indent = record.depth * 2
            );
        }
    }
    let lat = &snapshot.histograms["query.latency"];
    println!("query latency over {} queries:", lat.count);
    println!(
        "  p50 = {}ns   p95 = {}ns   p99 = {}ns   max = {}ns",
        lat.p50(),
        lat.p95(),
        lat.p99(),
        lat.max_ns
    );
    println!(
        "provenance: {} local hits + {} global fallbacks + {} misses + {} cache hits = {}",
        prov.local_hits(),
        prov.global_hits(),
        prov.cell_misses(),
        prov.serve_cache_hits(),
        prov.total()
    );
    let window = &snapshot.windows[tabula::serve::SERVE_QUERY_NS];
    println!(
        "served latency (sliding {}s window, {} queries): p50 = {}ns   p99 = {}ns",
        window.window_secs,
        window.hist.count,
        window.hist.p50(),
        window.hist.p99()
    );
    let slow = tracer.recorder().last_slow().expect("slow threshold 0 captures every query");
    println!("last slow-query trace (flight recorder holds {}):", tracer.recorder().len());
    println!("  {}", slow.to_json());
    assert_eq!(prov.total(), (QUERIES + SERVED) as u64, "every query is tallied exactly once");
}
