//! The naive reference implementation ("oracle") side of the differential
//! harness.
//!
//! Everything here is deliberately brute force and shares **no code** with
//! the production pipeline: losses are recomputed from the raw filtered
//! rows with linear scans (no grid/sorted indexes, no algebraic states, no
//! incremental greedy bookkeeping), the cube is an exhaustive group-by over
//! every cuboid of the lattice, and SQL `WHERE` clauses are evaluated by a
//! per-row tree walk. If the real pipeline and this module ever disagree
//! beyond float slack ([`tabula_core::loss::LOSS_EPS`]), one of them has a
//! bug — and the oracle is simple enough to be trusted by inspection.

use std::collections::BTreeMap;
use tabula_sql::ast::WhereTerm;
use tabula_storage::{CmpOp, RowId, StorageError, Table, Value};

/// Which accuracy-loss function a differential case exercises, by column
/// *name* (the oracle resolves names itself so a shrunk case stays
/// readable).
#[derive(Debug, Clone, PartialEq)]
pub enum LossSpec {
    /// Statistical-mean relative error over a numeric attribute.
    Mean {
        /// Numeric (Float64) column name.
        attr: String,
    },
    /// 1-D average-minimum-distance over a numeric attribute.
    Histogram {
        /// Numeric (Float64) column name.
        attr: String,
    },
    /// Geospatial average-minimum-distance over a Point attribute.
    Heatmap {
        /// Point column name.
        attr: String,
        /// Use Manhattan distance instead of Euclidean.
        manhattan: bool,
    },
    /// OLS regression-angle difference over two numeric attributes.
    Regression {
        /// Independent (x) column name.
        x: String,
        /// Dependent (y) column name.
        y: String,
    },
}

impl LossSpec {
    /// Short kernel name, matching `AccuracyLoss::name` conventions.
    pub fn name(&self) -> &'static str {
        match self {
            LossSpec::Mean { .. } => "mean_relative_error",
            LossSpec::Histogram { .. } => "histogram_avg_min_dist",
            LossSpec::Heatmap { .. } => "heatmap_avg_min_dist",
            LossSpec::Regression { .. } => "regression_angle",
        }
    }

    /// Brute-force loss of `sample` as an approximation of `raw`,
    /// following the exact degenerate-case conventions of the production
    /// kernels (empty raw → 0, raw answer exists but sample's does not →
    /// +∞) so that equality is expected up to float slack only.
    pub fn naive_loss(&self, table: &Table, raw: &[RowId], sample: &[RowId]) -> f64 {
        match self {
            LossSpec::Mean { attr } => {
                let vals = f64_col(table, attr);
                match (naive_mean(vals, raw), naive_mean(vals, sample)) {
                    (None, _) => 0.0,
                    (Some(_), None) => f64::INFINITY,
                    (Some(r), Some(s)) => (r - s).abs() / r.abs().max(1e-12),
                }
            }
            LossSpec::Histogram { attr } => {
                let vals = f64_col(table, attr);
                avg_min_dist(raw, sample, |a, b| (vals[a] - vals[b]).abs())
            }
            LossSpec::Heatmap { attr, manhattan } => {
                let col = table.schema().index_of(attr).expect("heatmap attr");
                let pts = table.column(col).as_point_slice().expect("heatmap attr must be Point");
                avg_min_dist(raw, sample, |a, b| {
                    let (dx, dy) = (pts[a].x - pts[b].x, pts[a].y - pts[b].y);
                    if *manhattan {
                        dx.abs() + dy.abs()
                    } else {
                        (dx * dx + dy * dy).sqrt()
                    }
                })
            }
            LossSpec::Regression { x, y } => {
                let (xs, ys) = (f64_col(table, x), f64_col(table, y));
                match (naive_angle(xs, ys, raw), naive_angle(xs, ys, sample)) {
                    (None, _) => 0.0,
                    (Some(_), None) => f64::INFINITY,
                    (Some(r), Some(s)) => (r - s).abs(),
                }
            }
        }
    }

    /// Column names the loss reads (used by the shrinker to keep them).
    pub fn columns(&self) -> Vec<&str> {
        match self {
            LossSpec::Mean { attr } | LossSpec::Histogram { attr } => vec![attr],
            LossSpec::Heatmap { attr, .. } => vec![attr],
            LossSpec::Regression { x, y } => vec![x, y],
        }
    }
}

fn f64_col<'t>(table: &'t Table, name: &str) -> &'t [f64] {
    let col = table.schema().index_of(name).unwrap_or_else(|_| panic!("unknown column {name}"));
    table.column(col).as_f64_slice().expect("loss attr must be Float64")
}

fn naive_mean(vals: &[f64], rows: &[RowId]) -> Option<f64> {
    if rows.is_empty() {
        return None;
    }
    let mut sum = 0.0;
    for &r in rows {
        sum += vals[r as usize];
    }
    Some(sum / rows.len() as f64)
}

/// Average over raw rows of the distance to the nearest sample row.
/// Empty raw → 0 (nothing to approximate); empty sample with non-empty
/// raw → +∞ (every minimum distance is infinite).
fn avg_min_dist(raw: &[RowId], sample: &[RowId], dist: impl Fn(usize, usize) -> f64) -> f64 {
    if raw.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0;
    for &r in raw {
        let mut best = f64::INFINITY;
        for &s in sample {
            let d = dist(r as usize, s as usize);
            if d < best {
                best = d;
            }
        }
        sum += best;
    }
    sum / raw.len() as f64
}

/// OLS regression-line angle in degrees, mirroring `Moments2D` exactly —
/// same accumulation order, same degeneracy guards — so the float result
/// is bit-identical to the kernel's direct path.
fn naive_angle(xs: &[f64], ys: &[f64], rows: &[RowId]) -> Option<f64> {
    if rows.len() < 2 {
        return None;
    }
    let (mut sx, mut sy, mut sxy, mut sxx) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for &r in rows {
        let (x, y) = (xs[r as usize], ys[r as usize]);
        sx += x;
        sy += y;
        sxy += x * y;
        sxx += x * x;
    }
    let n = rows.len() as f64;
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON * n.max(1.0) {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    Some(slope.atan().to_degrees())
}

/// The exhaustive reference cube: every cell of every cuboid of the
/// lattice over `attrs`, with the full raw row list per cell.
#[derive(Debug)]
pub struct NaiveCube {
    /// Cells keyed by per-attribute code assignment (`None` = rolled up),
    /// aligned with the attribute order given to [`naive_cube`]. Sorted.
    pub cells: BTreeMap<Vec<Option<u32>>, Vec<RowId>>,
}

/// Build the reference cube by brute force: one full pass per cuboid
/// (2ⁿ passes), no rollup, no sharing with the production lattice code.
pub fn naive_cube(table: &Table, attrs: &[String]) -> Result<NaiveCube, StorageError> {
    let mut codes_per_attr = Vec::with_capacity(attrs.len());
    for a in attrs {
        let col = table.schema().index_of(a)?;
        codes_per_attr.push(table.cat(col)?.codes().to_vec());
    }
    let n = attrs.len();
    let mut cells: BTreeMap<Vec<Option<u32>>, Vec<RowId>> = BTreeMap::new();
    for mask in 0u32..(1 << n) {
        for row in 0..table.len() as u32 {
            let key: Vec<Option<u32>> = (0..n)
                .map(|i| (mask & (1 << i) != 0).then(|| codes_per_attr[i][row as usize]))
                .collect();
            cells.entry(key).or_default().push(row);
        }
    }
    Ok(NaiveCube { cells })
}

/// Evaluate one `column <op> literal` term against one row by tree walk,
/// reproducing the typed-comparison semantics of the storage predicate
/// compiler: Int64/Int64 and Str/Str compare directly, any pairing that
/// involves a Float64 promotes both sides to f64, and every other pairing
/// (including anything with a Point) matches nothing.
pub fn naive_term_matches(table: &Table, row: RowId, term: &WhereTerm) -> Result<bool, String> {
    let col = table
        .schema()
        .index_of(&term.column)
        .map_err(|_| format!("unknown column {}", term.column))?;
    let lhs = table.value(row as usize, col);
    let ord = match (&lhs, &term.value) {
        (Value::Int64(a), Value::Int64(b)) => a.partial_cmp(b),
        (Value::Str(a), Value::Str(b)) => a.partial_cmp(b),
        (Value::Float64(_), Value::Int64(_) | Value::Float64(_))
        | (Value::Int64(_), Value::Float64(_)) => as_f64(&lhs).partial_cmp(&as_f64(&term.value)),
        _ => None,
    };
    let Some(ord) = ord else { return Ok(false) };
    Ok(match term.op {
        CmpOp::Eq => ord.is_eq(),
        CmpOp::Ne => ord.is_ne(),
        CmpOp::Lt => ord.is_lt(),
        CmpOp::Le => ord.is_le(),
        CmpOp::Gt => ord.is_gt(),
        CmpOp::Ge => ord.is_ge(),
    })
}

fn as_f64(v: &Value) -> f64 {
    match v {
        Value::Int64(i) => *i as f64,
        Value::Float64(x) => *x,
        _ => unreachable!("as_f64 only called on numeric values"),
    }
}

/// Tree-walking evaluation of `SELECT * FROM t WHERE <conditions>`:
/// ascending row ids of the rows where every term matches.
pub fn naive_filter(table: &Table, conditions: &[WhereTerm]) -> Result<Vec<RowId>, String> {
    let mut out = Vec::new();
    'rows: for row in 0..table.len() as u32 {
        for term in conditions {
            if !naive_term_matches(table, row, term)? {
                continue 'rows;
            }
        }
        out.push(row);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabula_storage::{ColumnType, Field, Predicate, Schema, TableBuilder};

    fn small_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("city", ColumnType::Str),
            Field::new("k", ColumnType::Int64),
            Field::new("fare", ColumnType::Float64),
        ]);
        let mut b = TableBuilder::new(schema);
        let rows = [("a", 0i64, 10.0), ("a", 1, 20.0), ("b", 0, 30.0), ("b", 1, 40.0)];
        for (c, k, f) in rows {
            b.push_row(&[Value::Str(c.into()), Value::Int64(k), Value::Float64(f)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn naive_cube_enumerates_every_cuboid_cell() {
        let t = small_table();
        let cube = naive_cube(&t, &["city".into(), "k".into()]).unwrap();
        // 1 apex + 2 + 2 + 4 finest cells.
        assert_eq!(cube.cells.len(), 9);
        assert_eq!(cube.cells[&vec![None, None]], vec![0, 1, 2, 3]);
        let finest: Vec<_> = cube.cells.keys().filter(|k| k.iter().all(Option::is_some)).collect();
        assert_eq!(finest.len(), 4);
    }

    #[test]
    fn naive_filter_agrees_with_the_vectorised_predicate() {
        let t = small_table();
        let cases = [
            vec![],
            vec![WhereTerm { column: "city".into(), op: CmpOp::Eq, value: Value::Str("a".into()) }],
            vec![WhereTerm { column: "fare".into(), op: CmpOp::Ge, value: Value::Int64(20) }],
            vec![
                WhereTerm { column: "k".into(), op: CmpOp::Ne, value: Value::Int64(0) },
                WhereTerm { column: "fare".into(), op: CmpOp::Lt, value: Value::Float64(35.5) },
            ],
            // Out-of-domain literal matches nothing.
            vec![WhereTerm { column: "city".into(), op: CmpOp::Eq, value: Value::Str("z".into()) }],
            // Type-incomparable pairing matches nothing.
            vec![WhereTerm { column: "city".into(), op: CmpOp::Eq, value: Value::Int64(1) }],
        ];
        for terms in cases {
            let mut pred = Predicate::all();
            for t2 in &terms {
                pred = pred.and(t2.column.clone(), t2.op, t2.value.clone());
            }
            assert_eq!(
                naive_filter(&t, &terms).unwrap(),
                pred.filter(&t).unwrap(),
                "terms: {terms:?}"
            );
        }
    }

    #[test]
    fn naive_mean_loss_degenerate_conventions() {
        let t = small_table();
        let spec = LossSpec::Mean { attr: "fare".into() };
        assert_eq!(spec.naive_loss(&t, &[], &[0]), 0.0);
        assert_eq!(spec.naive_loss(&t, &[0, 1], &[]), f64::INFINITY);
        let l = spec.naive_loss(&t, &[0, 1], &[0]);
        assert!((l - (15.0 - 10.0) / 15.0).abs() < 1e-12);
    }
}
