//! Predicates and vectorised filtering.
//!
//! Dashboard queries against Tabula constrain cubed (categorical)
//! attributes with equality, and baselines additionally filter measure
//! columns by range, so the predicate language covers conjunctions of
//! per-column comparisons.
//!
//! Full-table filtering runs as a chunked columnar kernel (see
//! [`crate::kernel`]): each term compiles to a typed kernel over the
//! column's native slice (dictionary codes, `i64`, `f64` — string
//! ordering terms precompute a per-code lookup table so no row ever
//! materializes a `String`), and a [`SelectionVector`] carries the
//! surviving row ids of each chunk through the conjunction. The
//! row-at-a-time scalar path remains as the `TABULA_KERNELS=scalar`
//! reference; both produce identical row sets by construction (each
//! kernel replicates [`compare`]'s exact semantics, `NaN` and
//! mixed-type cases included).

use crate::dictionary::Dictionary;
use crate::encoding::{Codable, ForView};
use crate::kernel::{self, SelectionVector};
use crate::table::{RowId, Table};
use crate::types::Value;
use crate::{Result, StorageError};
use tabula_par::{Pool, DEFAULT_MORSEL_ROWS};

/// Comparison operator of a single predicate term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn eval_ord(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// One `column <op> literal` term.
#[derive(Debug, Clone, PartialEq)]
pub struct Term {
    /// Column name.
    pub column: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub value: Value,
}

/// A conjunction of comparison terms (`WHERE a = x AND b < y ...`).
///
/// An empty predicate matches every row.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Predicate {
    terms: Vec<Term>,
}

impl Predicate {
    /// The always-true predicate.
    pub fn all() -> Self {
        Predicate::default()
    }

    /// A single equality predicate.
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::all().and(column, CmpOp::Eq, value)
    }

    /// Add a term to the conjunction (builder style).
    pub fn and(mut self, column: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Self {
        self.terms.push(Term { column: column.into(), op, value: value.into() });
        self
    }

    /// The conjunction's terms.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Whether this predicate matches every row trivially.
    pub fn is_trivial(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluate over `table`, returning matching row ids in ascending order.
    ///
    /// Categorical equality terms are evaluated on dictionary codes (one
    /// integer compare per row); other terms run typed chunk kernels.
    /// The scan is morsel-parallel; per-morsel matches concatenate in
    /// morsel order, so output order is ascending regardless of thread
    /// count.
    pub fn filter(&self, table: &Table) -> Result<Vec<RowId>> {
        Ok(self.filter_impl(table)?.0)
    }

    /// [`filter`](Self::filter) plus a [`ScanStats`] accounting of the work
    /// done — the scan-path stage hook the tracing layer records (rows,
    /// bytes, chunk count, and kernel selection of a raw-table fallback
    /// query). Compiles the predicate once; the stats ride along for free.
    pub fn filter_with_stats(&self, table: &Table) -> Result<(Vec<RowId>, ScanStats)> {
        self.filter_impl(table)
    }

    fn filter_impl(&self, table: &Table) -> Result<(Vec<RowId>, ScanStats)> {
        let compiled = self.compile(table)?;
        let started = std::time::Instant::now();
        let vec_terms =
            if kernel::vectorize() { Some(compile_vectorized(&compiled, table)) } else { None };
        let (rows, used, chunks, bytes, runs, encoded_bytes) = match &vec_terms {
            Some(terms) => {
                let cost = scan_cost(terms);
                let used = if cost.rle_terms > 0 {
                    ScanKernel::Rle
                } else if cost.for_terms > 0 {
                    ScanKernel::For
                } else {
                    ScanKernel::Vectorized
                };
                (
                    filter_vectorized(table.len(), terms),
                    used,
                    kernel::chunk_count(table.len(), DEFAULT_MORSEL_ROWS),
                    cost.bytes,
                    cost.runs,
                    cost.encoded_bytes,
                )
            }
            None => {
                // The scalar reference dereferences every column, so it
                // touches the decoded (plain) payload whatever the
                // column's physical encoding.
                let bytes = table.len() as u64 * decoded_row_bytes(&compiled, table);
                (filter_scalar(table, &compiled), ScanKernel::Scalar, 0, bytes, 0, 0)
            }
        };
        let metrics = tabula_obs::global();
        metrics.counter("predicate.scan_rows").add(table.len() as u64);
        metrics.counter("predicate.kernel_ns").add(started.elapsed().as_nanos() as u64);
        metrics
            .counter(match used {
                ScanKernel::Vectorized => "predicate.kernel.vectorized",
                ScanKernel::Scalar => "predicate.kernel.scalar",
                ScanKernel::Rle => "predicate.kernel.rle",
                ScanKernel::For => "predicate.kernel.for",
            })
            .inc();
        if runs > 0 {
            metrics.counter("scan.runs").add(runs);
        }
        if encoded_bytes > 0 {
            metrics.counter("scan.encoded_bytes").add(encoded_bytes);
        }
        let stats = ScanStats {
            rows_scanned: table.len() as u64,
            rows_matched: rows.len() as u64,
            bytes_scanned: bytes,
            runs_scanned: runs,
            chunks,
            kernel: used,
        };
        Ok((rows, stats))
    }

    /// Evaluate over an explicit subset of rows of `table`, preserving order.
    pub fn filter_rows(&self, table: &Table, rows: &[RowId]) -> Result<Vec<RowId>> {
        let compiled = self.compile(table)?;
        let mut out = Vec::new();
        'rows: for &row in rows {
            for term in &compiled {
                if !term.matches(table, row as usize) {
                    continue 'rows;
                }
            }
            out.push(row);
        }
        Ok(out)
    }

    /// Whether a single row matches.
    pub fn matches(&self, table: &Table, row: usize) -> Result<bool> {
        let compiled = self.compile(table)?;
        Ok(compiled.iter().all(|t| t.matches(table, row)))
    }

    fn compile(&self, table: &Table) -> Result<Vec<CompiledTerm>> {
        self.terms
            .iter()
            .map(|t| {
                let col = table.schema().index_of(&t.column)?;
                // Fast path: categorical equality compiled to a code compare.
                if t.op == CmpOp::Eq {
                    if let Ok(cat) = table.cat(col) {
                        return Ok(match cat.lookup(&t.value) {
                            Some(code) => CompiledTerm::CatEq { col, code },
                            // Value absent from the column's domain: the
                            // term can never match.
                            None => CompiledTerm::Never,
                        });
                    }
                }
                Ok(CompiledTerm::General { col, op: t.op, value: t.value.clone() })
            })
            .collect()
    }
}

/// Row-at-a-time reference scan.
fn filter_scalar(table: &Table, compiled: &[CompiledTerm]) -> Vec<RowId> {
    let pool = Pool::global();
    let partials = pool.par_chunks(table.len(), DEFAULT_MORSEL_ROWS, |range| {
        let mut out = Vec::new();
        'rows: for row in range {
            for term in compiled {
                if !term.matches(table, row) {
                    continue 'rows;
                }
            }
            out.push(row as RowId);
        }
        out
    });
    partials.concat()
}

/// Chunked columnar scan: per chunk, the first term seeds the selection
/// vector (run-encoded terms emit their kept row *ranges* directly, so a
/// clustered scan never evaluates a per-row predicate), then each
/// remaining term kernel narrows it in place. Surviving ids append in
/// chunk (hence row) order.
fn filter_vectorized(len: usize, terms: &[VecTerm<'_>]) -> Vec<RowId> {
    let chunk = kernel::chunk_rows();
    let pool = Pool::global();
    let partials = pool.par_chunks(len, DEFAULT_MORSEL_ROWS, |range| {
        let mut out = Vec::new();
        let mut sel = SelectionVector::with_capacity(chunk);
        let mut start = range.start;
        while start < range.end {
            let end = range.end.min(start + chunk);
            match terms.first() {
                Some(first) => first.apply_full(start..end, &mut sel),
                None => sel.fill_range(start..end),
            }
            for term in terms.iter().skip(1) {
                if sel.is_empty() {
                    break;
                }
                term.apply(&mut sel);
            }
            out.extend_from_slice(sel.as_slice());
            start = end;
        }
        out
    });
    partials.concat()
}

/// Work accounting for one [`Predicate::filter_with_stats`] scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanStats {
    /// Rows the scan visited (the whole table for a full filter).
    pub rows_scanned: u64,
    /// Rows that matched the predicate.
    pub rows_matched: u64,
    /// Physical bytes of column payload a full evaluation of every term
    /// touches: the encoded payload size for run/frame-encoded columns,
    /// `rows × value width` for plain ones. (Term short-circuiting can
    /// touch less; this is the stable full-scan figure.)
    pub bytes_scanned: u64,
    /// RLE runs the encoded terms processed (0 when no term ran on
    /// run-encoded data).
    pub runs_scanned: u64,
    /// Execution chunks the scan was carved into (0 for the scalar path,
    /// which iterates rows directly).
    pub chunks: u64,
    /// Which kernel implementation ran.
    pub kernel: ScanKernel,
}

/// Which filter implementation a scan ran (reported by EXPLAIN ANALYZE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanKernel {
    /// Row-at-a-time reference path.
    #[default]
    Scalar,
    /// Chunked columnar kernels over a selection vector.
    Vectorized,
    /// Chunked kernels with at least one term evaluated per RLE run.
    Rle,
    /// Chunked kernels with at least one term evaluated on bit-packed
    /// frame-of-reference deltas (and none on RLE runs).
    For,
}

impl ScanKernel {
    /// Short lowercase name for traces and EXPLAIN output.
    pub fn name(self) -> &'static str {
        match self {
            ScanKernel::Scalar => "scalar",
            ScanKernel::Vectorized => "vectorized",
            ScanKernel::Rle => "rle",
            ScanKernel::For => "for",
        }
    }
}

enum CompiledTerm {
    CatEq { col: usize, code: u32 },
    General { col: usize, op: CmpOp, value: Value },
    Never,
}

impl CompiledTerm {
    #[inline]
    fn matches(&self, table: &Table, row: usize) -> bool {
        match self {
            CompiledTerm::Never => false,
            CompiledTerm::CatEq { col, code } => {
                // cat() is infallible here: compile() verified the column.
                table.cat(*col).map(|c| c.codes()[row] == *code).unwrap_or(false)
            }
            CompiledTerm::General { col, op, value } => {
                compare(&table.value(row, *col), value).map(|ord| op.eval_ord(ord)).unwrap_or(false)
            }
        }
    }
}

/// A term lowered onto its column's native (possibly encoded) payload.
/// Each variant replicates the exact row-at-a-time semantics of
/// [`CompiledTerm::matches`] / [`compare`] for its (column type, literal
/// type) pair; combinations `compare` deems incomparable lower to
/// `Never`. Byte/run figures are the payload the variant touches over a
/// full scan (see [`ScanStats::bytes_scanned`]).
enum VecTerm<'t> {
    Never,
    CatEq { codes: &'t [u32], code: u32 },
    I64 { data: &'t [i64], op: CmpOp, rhs: i64 },
    I64AsF64 { data: &'t [i64], op: CmpOp, rhs: f64 },
    F64 { data: &'t [f64], op: CmpOp, rhs: f64 },
    // String ordering against a literal: one `&str` compare per *distinct
    // code* at compile time, then a per-row table lookup — the scalar path
    // allocates a `String` per row here.
    StrLut { codes: &'t [u32], lut: Vec<bool> },
    // A term over an RLE column, any payload type: the comparison ran
    // once per run at compile time, so a scan consults one bool per run
    // — and when this is the leading term it emits kept row ranges
    // without any per-row work.
    RleKeep { keep: Vec<bool>, ends: &'t [u32], bytes: u64 },
    // Terms over FOR bit-packed columns: per selected row, a shift/mask
    // ordinal extraction — no decode, `width/8` bytes per row.
    ForI64 { view: ForView<'t>, op: CmpOp, rhs: i64 },
    ForI64AsF64 { view: ForView<'t>, op: CmpOp, rhs: f64 },
    ForF64 { view: ForView<'t>, op: CmpOp, rhs: f64 },
    ForCatEq { view: ForView<'t>, code: u32 },
    ForStrLut { view: ForView<'t>, lut: Vec<bool> },
}

/// Evaluate a term once per RLE run, yielding the per-run keep table.
fn rle_keep<'t, T: Copy>(
    runs: crate::encoding::RunsView<'t, T>,
    pred: impl Fn(T) -> bool,
) -> VecTerm<'t> {
    let keep = runs.values.iter().map(|&v| pred(v)).collect();
    let bytes = (std::mem::size_of_val(runs.values) + runs.ends.len() * 4) as u64;
    VecTerm::RleKeep { keep, ends: runs.ends, bytes }
}

fn compile_vectorized<'t>(compiled: &[CompiledTerm], table: &'t Table) -> Vec<VecTerm<'t>> {
    compiled
        .iter()
        .map(|term| match term {
            CompiledTerm::Never => VecTerm::Never,
            CompiledTerm::CatEq { col, code } => {
                let cat = table.cat(*col).expect("compile() verified the column is categorical");
                let code = *code;
                if let Some(runs) = cat.runs() {
                    return rle_keep(runs, |c| c == code);
                }
                if let Some(view) = for_codes(table, *col) {
                    return VecTerm::ForCatEq { view, code };
                }
                VecTerm::CatEq { codes: cat.codes(), code }
            }
            CompiledTerm::General { col, op, value } => {
                let column = table.column(*col);
                if let Some(data) = column.as_i64_buf() {
                    let rle = data.runs();
                    let fo = data.encoded().and_then(|e| e.for_view());
                    return match value {
                        Value::Int64(rhs) => {
                            let (op, rhs) = (*op, *rhs);
                            match (rle, fo) {
                                (Some(runs), _) => rle_keep(runs, |x| cmp_i64(op, x, rhs)),
                                (None, Some(view)) => VecTerm::ForI64 { view, op, rhs },
                                (None, None) => VecTerm::I64 { data, op, rhs },
                            }
                        }
                        Value::Float64(rhs) => {
                            let (op, rhs) = (*op, *rhs);
                            match (rle, fo) {
                                (Some(runs), _) => rle_keep(runs, |x| cmp_f64(op, x as f64, rhs)),
                                (None, Some(view)) => VecTerm::ForI64AsF64 { view, op, rhs },
                                (None, None) => VecTerm::I64AsF64 { data, op, rhs },
                            }
                        }
                        _ => VecTerm::Never,
                    };
                }
                if let Some(data) = column.as_f64_buf() {
                    // as_f64 widens Int64 literals; Str/Point have no
                    // float form, so compare() never matches them.
                    return match value.as_f64() {
                        Some(rhs) => {
                            let op = *op;
                            match (data.runs(), data.encoded().and_then(|e| e.for_view())) {
                                (Some(runs), _) => rle_keep(runs, |x| cmp_f64(op, x, rhs)),
                                (None, Some(view)) => VecTerm::ForF64 { view, op, rhs },
                                (None, None) => VecTerm::F64 { data, op, rhs },
                            }
                        }
                        None => VecTerm::Never,
                    };
                }
                if let Some((codes, dict)) = column.as_code_buf() {
                    return match value {
                        Value::Str(rhs) => {
                            let lut = str_lut(dict, *op, rhs);
                            match (codes.runs(), codes.encoded().and_then(|e| e.for_view())) {
                                (Some(runs), _) => rle_keep(runs, |c| lut[c as usize]),
                                (None, Some(view)) => VecTerm::ForStrLut { view, lut },
                                (None, None) => VecTerm::StrLut { codes, lut },
                            }
                        }
                        _ => VecTerm::Never,
                    };
                }
                // Point columns: no total order, nothing ever matches.
                VecTerm::Never
            }
        })
        .collect()
}

/// The FOR view of a *string* column's code payload, if that is how it
/// is encoded. (Integer categorical attributes go through the cached
/// `IntCatIndex`, whose expanded codes are always plain.)
fn for_codes<'t>(table: &'t Table, col: usize) -> Option<ForView<'t>> {
    table.column(col).as_code_buf().and_then(|(codes, _)| codes.encoded()?.for_view())
}

/// Scalar [`CmpOp`] evaluation on `i64`, matching [`retain_i64`].
#[inline]
fn cmp_i64(op: CmpOp, x: i64, rhs: i64) -> bool {
    match op {
        CmpOp::Eq => x == rhs,
        CmpOp::Ne => x != rhs,
        CmpOp::Lt => x < rhs,
        CmpOp::Le => x <= rhs,
        CmpOp::Gt => x > rhs,
        CmpOp::Ge => x >= rhs,
    }
}

/// Scalar [`CmpOp`] evaluation on `f64`, matching [`retain_f64`]'s
/// partial-order semantics exactly: a `NaN` on either side matches
/// nothing, `Ne` included.
#[inline]
fn cmp_f64(op: CmpOp, x: f64, rhs: f64) -> bool {
    match op {
        CmpOp::Eq => x == rhs,
        #[allow(clippy::double_comparisons)]
        CmpOp::Ne => x < rhs || x > rhs,
        CmpOp::Lt => x < rhs,
        CmpOp::Le => x <= rhs,
        CmpOp::Gt => x > rhs,
        CmpOp::Ge => x >= rhs,
    }
}

/// Aggregate cost of one compiled vectorized term list.
#[derive(Default)]
struct ScanCost {
    bytes: u64,
    runs: u64,
    encoded_bytes: u64,
    rle_terms: u32,
    for_terms: u32,
}

/// Physical payload each term touches over a full scan.
fn scan_cost(terms: &[VecTerm<'_>]) -> ScanCost {
    let mut cost = ScanCost::default();
    for t in terms {
        match t {
            VecTerm::Never => {}
            VecTerm::CatEq { codes, .. } => cost.bytes += codes.len() as u64 * 4,
            VecTerm::StrLut { codes, .. } => cost.bytes += codes.len() as u64 * 4,
            VecTerm::I64 { data, .. } | VecTerm::I64AsF64 { data, .. } => {
                cost.bytes += data.len() as u64 * 8;
            }
            VecTerm::F64 { data, .. } => cost.bytes += data.len() as u64 * 8,
            VecTerm::RleKeep { keep, bytes, .. } => {
                cost.bytes += bytes;
                cost.encoded_bytes += bytes;
                cost.runs += keep.len() as u64;
                cost.rle_terms += 1;
            }
            VecTerm::ForI64 { view, .. }
            | VecTerm::ForI64AsF64 { view, .. }
            | VecTerm::ForF64 { view, .. }
            | VecTerm::ForCatEq { view, .. }
            | VecTerm::ForStrLut { view, .. } => {
                let b = view.words.len() as u64 * 8;
                cost.bytes += b;
                cost.encoded_bytes += b;
                cost.for_terms += 1;
            }
        }
    }
    cost
}

/// Decoded bytes per row the scalar reference touches per term: one
/// dictionary code (4 B) for categorical equality and string terms, one
/// typed value otherwise.
fn decoded_row_bytes(compiled: &[CompiledTerm], table: &Table) -> u64 {
    compiled
        .iter()
        .map(|t| match t {
            CompiledTerm::CatEq { .. } => 4,
            CompiledTerm::General { col, .. } => match table.column(*col).column_type() {
                crate::types::ColumnType::Str => 4,
                crate::types::ColumnType::Point => 16,
                _ => 8,
            },
            CompiledTerm::Never => 0,
        })
        .sum()
}

/// Per-code match table for a string ordering term.
fn str_lut(dict: &Dictionary, op: CmpOp, rhs: &str) -> Vec<bool> {
    (0..dict.len() as u32).map(|c| op.eval_ord(dict.decode(c).cmp(rhs))).collect()
}

impl VecTerm<'_> {
    /// Seed `sel` with the rows of `range` this term keeps — the
    /// chunk-leading position. A run-encoded term emits its kept row
    /// *ranges* directly (one branch per run, zero per-row work on a
    /// clustered scan); every other variant fills the range and narrows.
    fn apply_full(&self, range: std::ops::Range<usize>, sel: &mut SelectionVector) {
        match self {
            VecTerm::Never => sel.clear(),
            VecTerm::RleKeep { keep, ends, .. } => {
                sel.clear();
                let mut run = ends.partition_point(|&e| (e as usize) <= range.start);
                let mut pos = range.start;
                while pos < range.end {
                    let run_end = (ends[run] as usize).min(range.end);
                    if keep[run] {
                        sel.push_range(pos..run_end);
                    }
                    pos = run_end;
                    run += 1;
                }
            }
            _ => {
                sel.fill_range(range);
                self.apply(sel);
            }
        }
    }

    #[inline]
    fn apply(&self, sel: &mut SelectionVector) {
        match self {
            VecTerm::Never => sel.clear(),
            VecTerm::CatEq { codes, code } => sel.retain(|r| codes[r as usize] == *code),
            VecTerm::I64 { data, op, rhs } => retain_i64(sel, data, *op, *rhs),
            VecTerm::I64AsF64 { data, op, rhs } => {
                retain_f64(sel, *op, *rhs, |r| data[r as usize] as f64)
            }
            VecTerm::F64 { data, op, rhs } => retain_f64(sel, *op, *rhs, |r| data[r as usize]),
            VecTerm::StrLut { codes, lut } => sel.retain(|r| lut[codes[r as usize] as usize]),
            VecTerm::RleKeep { keep, ends, .. } => {
                // Selection ids are ascending, so a forward cursor over
                // the runs suffices; seed it with a binary search at the
                // first id (the selection may start mid-table).
                let mut run = usize::MAX;
                sel.retain(|r| {
                    if run == usize::MAX {
                        run = ends.partition_point(|&e| e <= r);
                    } else {
                        while ends[run] <= r {
                            run += 1;
                        }
                    }
                    keep[run]
                });
            }
            VecTerm::ForI64 { view, op, rhs } => {
                let (op, rhs) = (*op, *rhs);
                sel.retain(|r| cmp_i64(op, i64::from_ordinal(view.get_ordinal(r as usize)), rhs));
            }
            VecTerm::ForI64AsF64 { view, op, rhs } => {
                let (op, rhs) = (*op, *rhs);
                sel.retain(|r| {
                    cmp_f64(op, i64::from_ordinal(view.get_ordinal(r as usize)) as f64, rhs)
                });
            }
            VecTerm::ForF64 { view, op, rhs } => {
                let (op, rhs) = (*op, *rhs);
                sel.retain(|r| cmp_f64(op, f64::from_ordinal(view.get_ordinal(r as usize)), rhs));
            }
            VecTerm::ForCatEq { view, code } => {
                sel.retain(|r| u32::from_ordinal(view.get_ordinal(r as usize)) == *code);
            }
            VecTerm::ForStrLut { view, lut } => {
                sel.retain(|r| lut[u32::from_ordinal(view.get_ordinal(r as usize)) as usize]);
            }
        }
    }
}

/// Integer comparison kernels: the op is dispatched once per chunk, so
/// each arm is a tight monomorphic loop.
fn retain_i64(sel: &mut SelectionVector, data: &[i64], op: CmpOp, rhs: i64) {
    match op {
        CmpOp::Eq => sel.retain(|r| data[r as usize] == rhs),
        CmpOp::Ne => sel.retain(|r| data[r as usize] != rhs),
        CmpOp::Lt => sel.retain(|r| data[r as usize] < rhs),
        CmpOp::Le => sel.retain(|r| data[r as usize] <= rhs),
        CmpOp::Gt => sel.retain(|r| data[r as usize] > rhs),
        CmpOp::Ge => sel.retain(|r| data[r as usize] >= rhs),
    }
}

/// Float comparison kernels with `partial_cmp` semantics: a `NaN` on
/// either side matches nothing — note `Ne` is `x < rhs || x > rhs`, *not*
/// `x != rhs` (which would match `NaN`, unlike the scalar reference).
fn retain_f64(sel: &mut SelectionVector, op: CmpOp, rhs: f64, at: impl Fn(u32) -> f64) {
    match op {
        CmpOp::Eq => sel.retain(|r| at(r) == rhs),
        // Not `x != rhs`: clippy's simplification is true for NaN, this
        // form is not — and NaN must match nothing.
        #[allow(clippy::double_comparisons)]
        CmpOp::Ne => sel.retain(|r| {
            let x = at(r);
            x < rhs || x > rhs
        }),
        CmpOp::Lt => sel.retain(|r| at(r) < rhs),
        CmpOp::Le => sel.retain(|r| at(r) <= rhs),
        CmpOp::Gt => sel.retain(|r| at(r) > rhs),
        CmpOp::Ge => sel.retain(|r| at(r) >= rhs),
    }
}

/// Typed three-way comparison between two values; `None` when incomparable
/// (different types, or points, which have no total order).
fn compare(a: &Value, b: &Value) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (Value::Int64(x), Value::Int64(y)) => Some(x.cmp(y)),
        (Value::Str(x), Value::Str(y)) => Some(x.cmp(y)),
        (Value::Float64(_), _) | (_, Value::Float64(_)) => {
            a.as_f64().zip(b.as_f64()).and_then(|(x, y)| x.partial_cmp(&y))
        }
        _ => None,
    }
}

/// Convenience: validate that every predicate column exists and is one of
/// `allowed` (used by the cube query path, where WHERE columns must be a
/// subset of the cubed attributes).
pub fn validate_columns(pred: &Predicate, allowed: &[String]) -> Result<()> {
    for term in pred.terms() {
        if !allowed.iter().any(|a| a == &term.column) {
            return Err(StorageError::UnknownColumn(term.column.clone()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::table::TableBuilder;
    use crate::types::{ColumnType, Point};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("payment", ColumnType::Str),
            Field::new("passengers", ColumnType::Int64),
            Field::new("fare", ColumnType::Float64),
        ]);
        let mut b = TableBuilder::new(schema);
        let data: [(&str, i64, f64); 5] = [
            ("cash", 1, 5.0),
            ("credit", 2, 9.5),
            ("cash", 1, 7.25),
            ("dispute", 3, 12.0),
            ("cash", 2, 3.0),
        ];
        for (p, n, f) in data {
            b.push_row(&[p.into(), n.into(), f.into()]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn trivial_predicate_matches_all() {
        let t = table();
        assert_eq!(Predicate::all().filter(&t).unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn categorical_equality() {
        let t = table();
        assert_eq!(Predicate::eq("payment", "cash").filter(&t).unwrap(), vec![0, 2, 4]);
        assert_eq!(Predicate::eq("passengers", 2i64).filter(&t).unwrap(), vec![1, 4]);
    }

    #[test]
    fn value_outside_domain_matches_nothing() {
        let t = table();
        assert!(Predicate::eq("payment", "bitcoin").filter(&t).unwrap().is_empty());
        assert!(Predicate::eq("passengers", 99i64).filter(&t).unwrap().is_empty());
    }

    #[test]
    fn conjunction_and_ranges() {
        let t = table();
        let p = Predicate::eq("payment", "cash").and("fare", CmpOp::Gt, 4.0);
        assert_eq!(p.filter(&t).unwrap(), vec![0, 2]);
        let p = Predicate::all().and("fare", CmpOp::Le, 7.25).and("fare", CmpOp::Ge, 5.0);
        assert_eq!(p.filter(&t).unwrap(), vec![0, 2]);
        let p = Predicate::all().and("passengers", CmpOp::Ne, 1i64);
        assert_eq!(p.filter(&t).unwrap(), vec![1, 3, 4]);
    }

    #[test]
    fn int_compares_against_float_literal() {
        let t = table();
        let p = Predicate::all().and("passengers", CmpOp::Ge, 2.5f64);
        assert_eq!(p.filter(&t).unwrap(), vec![3]);
    }

    #[test]
    fn filter_rows_subset() {
        let t = table();
        let p = Predicate::eq("payment", "cash");
        assert_eq!(p.filter_rows(&t, &[4, 3, 0]).unwrap(), vec![4, 0]);
    }

    #[test]
    fn unknown_column_is_an_error() {
        let t = table();
        assert!(matches!(
            Predicate::eq("nope", 1i64).filter(&t),
            Err(StorageError::UnknownColumn(_))
        ));
    }

    #[test]
    fn validate_columns_enforces_subset() {
        let allowed = vec!["payment".to_owned(), "passengers".to_owned()];
        assert!(validate_columns(&Predicate::eq("payment", "cash"), &allowed).is_ok());
        assert!(validate_columns(&Predicate::eq("fare", 1.0), &allowed).is_err());
    }

    #[test]
    fn filter_with_stats_accounts_for_the_scan() {
        let t = table();
        let p = Predicate::eq("payment", "cash").and("fare", CmpOp::Gt, 4.0);
        let (rows, stats) = p.filter_with_stats(&t).unwrap();
        assert_eq!(rows, p.filter(&t).unwrap());
        assert_eq!(stats.rows_scanned, 5);
        assert_eq!(stats.rows_matched, 2);
        // One cat-eq term (4 B/row) + one general term (8 B/row).
        assert_eq!(stats.bytes_scanned, 5 * 12);
    }

    #[test]
    fn stats_report_kernel_and_chunks() {
        use crate::kernel::{set_kernel_mode, KernelMode};
        let t = table();
        let p = Predicate::eq("payment", "cash");
        let prev = crate::kernel::kernel_mode();
        set_kernel_mode(KernelMode::ForceVectorized);
        let (_, vstats) = p.filter_with_stats(&t).unwrap();
        set_kernel_mode(KernelMode::ForceScalar);
        let (_, sstats) = p.filter_with_stats(&t).unwrap();
        set_kernel_mode(prev);
        assert_eq!(vstats.kernel, ScanKernel::Vectorized);
        assert_eq!(vstats.chunks, 1); // 5 rows fit one chunk
        assert_eq!(sstats.kernel, ScanKernel::Scalar);
        assert_eq!(sstats.chunks, 0);
        assert_eq!(vstats.rows_matched, sstats.rows_matched);
    }

    #[test]
    fn matches_single_row() {
        let t = table();
        let p = Predicate::eq("payment", "dispute");
        assert!(p.matches(&t, 3).unwrap());
        assert!(!p.matches(&t, 0).unwrap());
    }

    /// Every (column type, literal type, op) combination must agree
    /// between the scalar reference and the vectorized kernels — NaN,
    /// string ordering, and incomparable pairs included.
    #[test]
    fn scalar_and_vectorized_filters_agree() {
        use crate::kernel::{set_kernel_mode, KernelMode};
        let schema = Schema::new(vec![
            Field::new("s", ColumnType::Str),
            Field::new("i", ColumnType::Int64),
            Field::new("f", ColumnType::Float64),
            Field::new("p", ColumnType::Point),
        ]);
        let mut b = TableBuilder::new(schema);
        for (s, i, f) in
            [("b", 5i64, 1.5), ("a", -2, f64::NAN), ("c", 5, -0.0), ("a", 0, 2.5), ("bb", 9, 1.5)]
        {
            b.push_row(&[s.into(), i.into(), f.into(), Value::Point(Point::new(1.0, 2.0))])
                .unwrap();
        }
        let t = b.finish();
        let ops = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
        let lits: Vec<Value> =
            vec!["b".into(), "aa".into(), 5i64.into(), 1.5f64.into(), f64::NAN.into(), 0i64.into()];
        let prev = crate::kernel::kernel_mode();
        for col in ["s", "i", "f", "p"] {
            for &op in &ops {
                for lit in &lits {
                    let p = Predicate::all().and(col, op, lit.clone());
                    set_kernel_mode(KernelMode::ForceScalar);
                    let scalar = p.filter(&t).unwrap();
                    set_kernel_mode(KernelMode::ForceVectorized);
                    let vector = p.filter(&t).unwrap();
                    assert_eq!(scalar, vector, "col={col} op={op:?} lit={lit:?}");
                }
            }
        }
        set_kernel_mode(prev);
    }

    /// A clone of `t` with every encodable column force-encoded — built
    /// without touching the global encoding mode, so parallel tests are
    /// undisturbed. Force picks the smaller of RLE/FOR per column.
    fn force_encoded(t: &Table) -> Table {
        let cols = (0..t.schema().fields().len())
            .map(|i| {
                let mut c = t.column(i).clone();
                c.encode_for_freeze(crate::encoding::EncodingMode::Force);
                c
            })
            .collect();
        Table::from_columns(t.schema().clone(), cols).unwrap()
    }

    /// 3 000 rows spanning every pushdown shape: `s` and `grp` cluster in
    /// 97-row blocks (RLE; prime length so chunk boundaries fall mid-run),
    /// `id` is distinct ascending (FOR), `s2` is a high-cardinality
    /// unclustered string (FOR codes), `f` clusters with NaN blocks (RLE)
    /// and `fd` holds distinct floats (FOR bit patterns).
    fn run_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("s", ColumnType::Str),
            Field::new("grp", ColumnType::Int64),
            Field::new("id", ColumnType::Int64),
            Field::new("s2", ColumnType::Str),
            Field::new("f", ColumnType::Float64),
            Field::new("fd", ColumnType::Float64),
        ]);
        let pay = ["cash", "credit", "dispute", "unknown"];
        let mut b = TableBuilder::new(schema);
        for row in 0..3000usize {
            let block = row / 97;
            let f = match block % 3 {
                0 => 5.5,
                1 => f64::NAN,
                _ => -0.0,
            };
            b.push_row(&[
                pay[block % pay.len()].into(),
                ((block % 7) as i64).into(),
                (1000 + row as i64).into(),
                format!("v{}", row % 347).as_str().into(),
                f.into(),
                (0.5 + row as f64 * 0.25).into(),
            ])
            .unwrap();
        }
        b.finish()
    }

    /// Every pushdown variant must agree with the row-at-a-time scalar
    /// reference ([`Predicate::matches`]) on a force-encoded table —
    /// RLE range emission, run-cursor narrowing, and FOR bit extraction,
    /// across chunk boundaries, NaN runs, and `-0.0`.
    #[test]
    fn encoded_filters_agree_with_scalar_reference() {
        let t = force_encoded(&run_table());
        let preds = vec![
            Predicate::eq("s", "cash"),
            Predicate::eq("s", "credit").and("grp", CmpOp::Ge, 2i64),
            Predicate::eq("grp", 3i64),
            Predicate::all().and("grp", CmpOp::Ne, 4i64),
            Predicate::all().and("id", CmpOp::Lt, 2500i64),
            Predicate::all().and("id", CmpOp::Ge, 1500.5f64),
            Predicate::eq("s2", "v123"),
            Predicate::all().and("s2", CmpOp::Lt, "v2"),
            Predicate::all().and("f", CmpOp::Eq, 5.5f64),
            Predicate::all().and("f", CmpOp::Ne, 5.5f64),
            Predicate::all().and("f", CmpOp::Ge, -0.0f64),
            Predicate::all().and("f", CmpOp::Eq, f64::NAN),
            Predicate::all().and("fd", CmpOp::Gt, 400.0f64),
            Predicate::all().and("fd", CmpOp::Ne, 0.75f64),
            Predicate::eq("s", "dispute").and("id", CmpOp::Lt, 2200i64).and("f", CmpOp::Gt, 0.0f64),
        ];
        for p in preds {
            let expect: Vec<RowId> =
                (0..t.len()).filter(|&r| p.matches(&t, r).unwrap()).map(|r| r as RowId).collect();
            assert_eq!(p.filter(&t).unwrap(), expect, "pred={p:?}");
        }
    }

    /// Stats over encoded scans report the run kernel, the runs walked,
    /// and the *physical* (encoded) bytes — strictly fewer than a plain
    /// scan of the same column would touch.
    #[test]
    fn encoded_scan_stats_report_kernel_runs_and_physical_bytes() {
        let t = force_encoded(&run_table());
        // Clustered string column: RLE pushdown.
        let (rows, stats) = Predicate::eq("s", "cash").filter_with_stats(&t).unwrap();
        assert!(!rows.is_empty());
        assert_eq!(stats.kernel, ScanKernel::Rle);
        assert!(stats.runs_scanned > 0);
        assert!(stats.bytes_scanned < t.len() as u64 * 4, "encoded scan must beat 4 B/row");
        // Distinct ascending ints: FOR pushdown, no runs.
        let (rows, stats) =
            Predicate::all().and("id", CmpOp::Lt, 2000i64).filter_with_stats(&t).unwrap();
        assert_eq!(rows.len(), 1000);
        assert_eq!(stats.kernel, ScanKernel::For);
        assert_eq!(stats.runs_scanned, 0);
        assert!(stats.bytes_scanned < t.len() as u64 * 8, "packed scan must beat 8 B/row");
        // Mixed RLE + FOR terms report the RLE kernel (coarsest win).
        let (_, stats) =
            Predicate::eq("s", "cash").and("id", CmpOp::Ge, 1500i64).filter_with_stats(&t).unwrap();
        assert_eq!(stats.kernel, ScanKernel::Rle);
    }

    /// An RLE leading term emits kept ranges; narrowing terms use the
    /// run cursor. Both must agree with the same filter on the plain
    /// (never-encoded) build of the same rows.
    #[test]
    fn encoded_and_plain_filters_agree() {
        let plain = run_table();
        let enc = force_encoded(&plain);
        let preds = vec![
            Predicate::eq("s", "unknown"),
            Predicate::all().and("grp", CmpOp::Le, 3i64).and("s2", CmpOp::Ge, "v30"),
            Predicate::all().and("f", CmpOp::Lt, 6.0f64).and("id", CmpOp::Ne, 1700i64),
        ];
        for p in preds {
            assert_eq!(p.filter(&enc).unwrap(), p.filter(&plain).unwrap(), "pred={p:?}");
        }
    }
}
