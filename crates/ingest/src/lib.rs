//! Continuous streaming ingestion for the materialized sampling cube.
//!
//! The paper loads its table once; a live dashboard keeps receiving
//! rides. This crate closes that gap with a classic three-piece
//! pipeline:
//!
//! * **[`IngestLog`]** — a bounded multi-producer append log. Every
//!   appended batch gets a dense *barrier sequence number*; producers
//!   block once the unfolded backlog exceeds the pending-row bound, so
//!   staleness is bounded, not merely measured.
//! * **[`Ingestor`]** — a background maintenance thread that drains
//!   pending batches, extends the served table
//!   ([`Table::extend_rows`](tabula_storage::Table::extend_rows) keeps
//!   dictionary codes stable, satisfying the incremental-refresh prefix
//!   contract by construction), refreshes the cube incrementally on the
//!   tabula-par pool, and publishes each new generation through
//!   [`Server::install`](tabula_serve::Server)'s epoch swap — readers
//!   never block, and the answer cache is invalidated exactly once per
//!   generation.
//! * **[`IngestStats`]** and the `ingest.*` metrics — per-fold latency
//!   and per-batch *freshness lag* (append → visible-to-readers),
//!   recorded as both lifetime histograms and 60 s sliding windows in
//!   the server's registry, so `\metrics` and the Prometheus export show
//!   the staleness knob's live p99.
//!
//! Correctness is anchored by the ingest lane in `tabula-check`: at
//! every barrier the streamed cube must be differentially equivalent —
//! θ guarantee, iceberg set, query answers — to a from-scratch build on
//! the same prefix, across thread counts.

pub mod log;
pub mod pipeline;

pub use log::{Batch, IngestLog};
pub use pipeline::{
    IngestConfig, IngestStats, Ingestor, INGEST_BATCHES, INGEST_FOLDED_ROWS, INGEST_FOLDS,
    INGEST_FOLD_ERRORS, INGEST_FOLD_NS, INGEST_FRESHNESS_NS, INGEST_ROWS,
};

use tabula_storage::StorageError;

/// Errors surfaced by the ingest pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// The log was closed; no further appends are accepted.
    Closed,
    /// Empty batches carry no barrier meaning and are rejected.
    EmptyBatch,
    /// A row failed schema validation at the producer.
    Row(StorageError),
    /// The maintenance thread halted on a fold failure (rendered
    /// [`CoreError`](tabula_core::CoreError) message).
    Fold(String),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Closed => write!(f, "ingest log is closed"),
            IngestError::EmptyBatch => write!(f, "empty batches are not accepted"),
            IngestError::Row(e) => write!(f, "row rejected: {e}"),
            IngestError::Fold(msg) => write!(f, "ingest maintenance halted: {msg}"),
        }
    }
}

impl std::error::Error for IngestError {}
