//! OLS regression fitting (the paper's tip-vs-fare analysis task,
//! evaluated with scikit-learn in the original).

use tabula_storage::agg::Moments2D;

/// A fitted regression line `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressionFit {
    /// Line slope.
    pub slope: f64,
    /// Line intercept.
    pub intercept: f64,
    /// Angle of the line in degrees (`atan(slope)`).
    pub angle_degrees: f64,
    /// Number of points fitted.
    pub n: u64,
}

impl RegressionFit {
    /// Fit a line to `(x, y)` pairs. `None` when the fit is degenerate
    /// (fewer than two points or zero x-variance).
    pub fn fit(xys: &[(f64, f64)]) -> Option<RegressionFit> {
        let mut m = Moments2D::default();
        for &(x, y) in xys {
            m.add(x, y);
        }
        Some(RegressionFit {
            slope: m.slope()?,
            intercept: m.intercept()?,
            angle_degrees: m.angle_degrees()?,
            n: m.n,
        })
    }

    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Absolute angle difference to another fit, in degrees — the paper's
    /// Function 3 applied to two fitted lines.
    pub fn angle_difference(&self, other: &RegressionFit) -> f64 {
        (self.angle_degrees - other.angle_degrees).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_an_exact_line() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 3.0 * i as f64 - 2.0)).collect();
        let fit = RegressionFit::fit(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-9);
        assert!((fit.intercept + 2.0).abs() < 1e-9);
        assert!((fit.predict(10.0) - 28.0).abs() < 1e-9);
        assert_eq!(fit.n, 50);
    }

    #[test]
    fn degenerate_fits_return_none() {
        assert!(RegressionFit::fit(&[]).is_none());
        assert!(RegressionFit::fit(&[(1.0, 1.0)]).is_none());
        assert!(RegressionFit::fit(&[(2.0, 1.0), (2.0, 5.0)]).is_none());
    }

    #[test]
    fn angle_difference_is_symmetric() {
        let a = RegressionFit::fit(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]).unwrap();
        let b = RegressionFit::fit(&[(0.0, 0.0), (1.0, 0.5), (2.0, 1.0)]).unwrap();
        assert!((a.angle_difference(&b) - b.angle_difference(&a)).abs() < 1e-12);
        assert!((a.angle_difference(&b) - (45.0 - 0.5f64.atan().to_degrees())).abs() < 1e-9);
    }
}
