//! Incremental cube maintenance: the dashboard keeps serving guaranteed
//! samples while new taxi rides stream in. `tabula::core::refresh` reuses
//! every local sample whose cell the appended rows did not touch and
//! resamples only what changed — instead of rebuilding the cube from
//! scratch.
//!
//! ```bash
//! cargo run --release --example incremental_refresh
//! ```

use std::sync::Arc;
use tabula::core::loss::{AccuracyLoss, HeatmapLoss, Metric};
use tabula::core::{refresh, RefreshConfig, SamplingCubeBuilder};
use tabula::data::{TaxiConfig, TaxiGenerator, Workload, CUBED_ATTRIBUTES};
use tabula::storage::TableBuilder;
use tabula::viz::timed;

fn main() {
    // Day 1: 60 k rides.
    let day1 = Arc::new(TaxiGenerator::new(TaxiConfig { rows: 60_000, seed: 71 }).generate());
    let pickup = day1.schema().index_of("pickup").unwrap();
    let loss = HeatmapLoss::new(pickup, Metric::Euclidean);
    let theta = tabula::data::meters_to_norm(400.0);
    let attrs = &CUBED_ATTRIBUTES[..5];

    let (cube, t_build) = timed(|| {
        SamplingCubeBuilder::new(Arc::clone(&day1), attrs, loss.clone(), theta)
            .seed(7)
            .build()
            .unwrap()
    });
    println!(
        "day 1: built over {} rows in {t_build:.2?} ({} iceberg cells, {} samples)",
        day1.len(),
        cube.stats().iceberg_cells,
        cube.persisted_samples()
    );

    // Overnight: 3 k new rides arrive. Extend the table (old rows first).
    let fresh = TaxiGenerator::new(TaxiConfig { rows: 3_000, seed: 72 }).generate();
    let mut b = TableBuilder::with_capacity(day1.schema().clone(), day1.len() + fresh.len());
    for r in 0..day1.len() {
        b.push_row(&day1.row(r)).unwrap();
    }
    for r in 0..fresh.len() {
        b.push_row(&fresh.row(r)).unwrap();
    }
    let day2 = Arc::new(b.finish());

    let ((refreshed, stats), t_refresh) = timed(|| {
        refresh(&cube, Arc::clone(&day2), &loss, RefreshConfig { seed: 7, ..Default::default() })
            .unwrap()
    });
    println!(
        "day 2: refreshed over {} rows in {t_refresh:.2?} — {} cells reused, {} resampled, \
         {} retired",
        day2.len(),
        stats.reused_cells,
        stats.resampled_cells,
        stats.retired_cells
    );

    // Compare with a from-scratch rebuild.
    let (_, t_rebuild) = timed(|| {
        SamplingCubeBuilder::new(Arc::clone(&day2), attrs, loss.clone(), theta)
            .seed(7)
            .build()
            .unwrap()
    });
    println!("from-scratch rebuild takes {t_rebuild:.2?} for comparison");
    println!(
        "(the win is the {} cells served without touching their data; wall-clock \
savings grow with tighter θ, larger cells and localized appends — uniform \
appends touch every coarse cell, which must be resampled)",
        stats.reused_cells
    );

    // The guarantee holds on the refreshed cube, over the new table.
    let workload = Workload::new(attrs);
    let queries = workload.generate(&day2, 50, 99).unwrap();
    let mut worst: f64 = 0.0;
    for q in &queries {
        let raw = q.predicate.filter(&day2).unwrap();
        let ans = refreshed.query_cell(&q.cell);
        worst = worst.max(loss.loss(&day2, &raw, &ans.rows));
    }
    println!("worst actual loss over 50 random queries: {worst:.5} (θ = {theta:.4})");
    assert!(worst <= theta + 1e-9);
    // Savings grow when appends are localized (fine cells dominate the
    // sampling cost under visualization losses); uniform appends still
    // touch every coarse cell, which is resampled.
}
