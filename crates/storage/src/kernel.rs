//! Chunked-execution plumbing shared by the vectorized build kernels.
//!
//! The storage hot loops (scan, filter, group-by, finest-cuboid
//! aggregation) process each `tabula-par` morsel in fixed-size *chunks* of
//! [`chunk_rows`] rows. A chunk is small enough that its packed keys, its
//! [`SelectionVector`], and the touched column slices stay cache-resident,
//! while still amortizing per-batch dispatch over thousands of rows.
//!
//! Chunk boundaries — like morsel boundaries — are a pure function of the
//! input length and the `TABULA_CHUNK_ROWS` knob, never of the thread
//! count, so chunking preserves the tabula-par determinism contract:
//! results are byte-identical for any `TABULA_THREADS`.
//!
//! [`KernelMode`] selects between the vectorized kernels and the original
//! row-at-a-time scalar paths. Both produce *identical* results (the
//! differential lane in tabula-check replays every fuzz case through both);
//! the override exists for benchmarking ([`crate::predicate`] vs the
//! scalar reference) and for pinning one path in regression tests.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Default number of rows per execution chunk.
pub const DEFAULT_CHUNK_ROWS: usize = 2048;

static CHUNK_ROWS: OnceLock<usize> = OnceLock::new();

/// Rows per execution chunk: `TABULA_CHUNK_ROWS` if set (clamped to ≥ 1),
/// else [`DEFAULT_CHUNK_ROWS`]. Read once and cached for the process
/// lifetime, so every scan in a run chunks identically.
pub fn chunk_rows() -> usize {
    *CHUNK_ROWS.get_or_init(|| {
        std::env::var("TABULA_CHUNK_ROWS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|v| v.max(1))
            .unwrap_or(DEFAULT_CHUNK_ROWS)
    })
}

/// Number of chunks a scan over `len` rows visits, given the morsel size
/// `morsel` — per-morsel chunking restarts at each morsel boundary, so the
/// count is `Σ ⌈morsel_len / chunk_rows⌉`. Pure arithmetic (no scan-side
/// accounting), hence identical at any thread count.
pub fn chunk_count(len: usize, morsel: usize) -> u64 {
    if len == 0 {
        return 0;
    }
    let chunk = chunk_rows();
    let morsel = morsel.max(1);
    let full = len / morsel;
    let tail = len % morsel;
    let per_full = morsel.div_ceil(chunk) as u64;
    full as u64 * per_full + if tail > 0 { tail.div_ceil(chunk) as u64 } else { 0 }
}

/// Which implementation the storage hot loops run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Vectorized when the operator supports it (packed key fits 64 bits,
    /// all predicate terms have a typed kernel), scalar otherwise.
    Auto,
    /// Always the row-at-a-time scalar reference path.
    ForceScalar,
    /// Vectorized whenever possible (same selection rule as `Auto`; the
    /// scalar fallback still covers shapes with no vectorized form).
    ForceVectorized,
}

const MODE_UNSET: u8 = u8::MAX;
static KERNEL_MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

fn mode_from_env() -> KernelMode {
    match std::env::var("TABULA_KERNELS").ok().as_deref() {
        Some("scalar") => KernelMode::ForceScalar,
        Some("vectorized") => KernelMode::ForceVectorized,
        _ => KernelMode::Auto,
    }
}

/// The active [`KernelMode`]: the last [`set_kernel_mode`] override, else
/// the `TABULA_KERNELS` env knob (`scalar` / `vectorized` / `auto`).
pub fn kernel_mode() -> KernelMode {
    match KERNEL_MODE.load(Ordering::Relaxed) {
        0 => KernelMode::Auto,
        1 => KernelMode::ForceScalar,
        2 => KernelMode::ForceVectorized,
        _ => {
            let m = mode_from_env();
            set_kernel_mode(m);
            m
        }
    }
}

/// Override the kernel mode at runtime (used by the differential harness
/// and the `build_kernels` micro-benchmark to pin one path per run).
pub fn set_kernel_mode(mode: KernelMode) {
    let v = match mode {
        KernelMode::Auto => 0,
        KernelMode::ForceScalar => 1,
        KernelMode::ForceVectorized => 2,
    };
    KERNEL_MODE.store(v, Ordering::Relaxed);
}

/// Whether operators should *try* the vectorized path (they still fall
/// back to scalar when no vectorized form exists for the input shape).
#[inline]
pub fn vectorize() -> bool {
    kernel_mode() != KernelMode::ForceScalar
}

/// A selection vector: the row ids (ascending) of one chunk that survive
/// the predicate terms applied so far. Filters narrow it in place —
/// conjunction evaluation is "fill from the chunk range, then each term
/// retains its matches" — so one buffer is reused across every chunk of a
/// morsel with no per-chunk allocation.
#[derive(Debug, Default)]
pub struct SelectionVector {
    ids: Vec<u32>,
}

impl SelectionVector {
    /// An empty selection with room for one chunk.
    pub fn with_capacity(capacity: usize) -> Self {
        SelectionVector { ids: Vec::with_capacity(capacity) }
    }

    /// Reset to all rows of `range` (the start of a chunk's evaluation).
    pub fn fill_range(&mut self, range: std::ops::Range<usize>) {
        self.ids.clear();
        self.ids.extend(range.map(|r| r as u32));
    }

    /// Append every row id in `range`, without clearing first — used by
    /// run-encoded predicate terms that emit kept row *ranges* directly.
    #[inline]
    pub fn push_range(&mut self, range: std::ops::Range<usize>) {
        self.ids.extend(range.map(|r| r as u32));
    }

    /// Keep only the selected rows for which `keep` holds, preserving
    /// ascending order.
    #[inline]
    pub fn retain(&mut self, mut keep: impl FnMut(u32) -> bool) {
        self.ids.retain(|&r| keep(r));
    }

    /// Selected row ids, ascending.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.ids
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Drop all selected rows.
    pub fn clear(&mut self) {
        self.ids.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_count_is_sum_over_morsels() {
        let chunk = chunk_rows();
        // One exact morsel of 4 chunks.
        assert_eq!(chunk_count(4 * chunk, 4 * chunk), 4);
        // Two morsels: 4 full chunks + a 1-row tail chunk.
        assert_eq!(chunk_count(4 * chunk + 1, 4 * chunk), 5);
        assert_eq!(chunk_count(0, 4 * chunk), 0);
        // A partial chunk still counts.
        assert_eq!(chunk_count(1, 4 * chunk), 1);
    }

    #[test]
    fn selection_vector_narrows_in_place() {
        let mut sel = SelectionVector::with_capacity(8);
        sel.fill_range(10..18);
        assert_eq!(sel.len(), 8);
        sel.retain(|r| r % 2 == 0);
        assert_eq!(sel.as_slice(), &[10, 12, 14, 16]);
        sel.retain(|r| r > 12);
        assert_eq!(sel.as_slice(), &[14, 16]);
        sel.clear();
        assert!(sel.is_empty());
    }

    #[test]
    fn mode_round_trips() {
        let prev = kernel_mode();
        set_kernel_mode(KernelMode::ForceScalar);
        assert_eq!(kernel_mode(), KernelMode::ForceScalar);
        assert!(!vectorize());
        set_kernel_mode(KernelMode::ForceVectorized);
        assert!(vectorize());
        set_kernel_mode(prev);
    }
}
