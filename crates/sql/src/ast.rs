//! Abstract syntax of the Tabula SQL dialect.

use tabula_core::loss::expr::Expr;
use tabula_storage::{CmpOp, Value};

/// Reference to a loss function in a `HAVING` clause: the function's
/// registered name plus the target attribute(s) it measures.
#[derive(Debug, Clone, PartialEq)]
pub struct LossRef {
    /// Registered loss-function name.
    pub name: String,
    /// Target attributes (one for mean/heat-map/histogram losses, two —
    /// x then y — for the regression loss).
    pub target_attrs: Vec<String>,
}

/// One `column <op> literal` WHERE term.
#[derive(Debug, Clone, PartialEq)]
pub struct WhereTerm {
    /// Column name.
    pub column: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal.
    pub value: Value,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE <name> AS SELECT <attrs>, SAMPLING(*, θ) AS sample
    /// FROM <source> GROUPBY CUBE(<attrs>) HAVING <loss>(<attr>,
    /// Sam_global) > θ` — sampling-cube initialization (paper Query 1).
    CreateCube {
        /// Name of the cube being created.
        name: String,
        /// Source table.
        source: String,
        /// Cubed attributes (must match the SELECT list and CUBE list).
        cubed_attrs: Vec<String>,
        /// Accuracy-loss threshold θ.
        theta: f64,
        /// The HAVING clause's loss reference.
        loss: LossRef,
    },
    /// `CREATE AGGREGATE <name>(Raw, Sam) RETURN decimal_value AS BEGIN
    /// <expr> END` — user-defined accuracy loss declaration.
    CreateAggregate {
        /// Loss-function name being declared.
        name: String,
        /// The scalar-expression body.
        body: Expr,
    },
    /// `SELECT sample FROM <cube> WHERE ...` — dashboard query (paper
    /// Query 2).
    SelectSample {
        /// Cube name.
        cube: String,
        /// Equality conditions over cubed attributes.
        conditions: Vec<WhereTerm>,
    },
    /// `SELECT * FROM <table> WHERE ...` — plain scan over a raw table
    /// (used by baselines and for debugging).
    SelectRaw {
        /// Table name.
        table: String,
        /// Filter conditions (empty = all rows).
        conditions: Vec<WhereTerm>,
    },
    /// `DROP CUBE <name>` / `DROP AGGREGATE <name>` — remove an object.
    Drop {
        /// `"CUBE"` or `"AGGREGATE"`.
        kind: DropKind,
        /// Object name.
        name: String,
    },
    /// `SHOW CUBES` / `SHOW TABLES` / `SHOW AGGREGATES` — list objects.
    Show(ShowKind),
    /// `EXPLAIN CUBE <name>` — the cube's build statistics and layout.
    ExplainCube(String),
    /// `EXPLAIN ANALYZE <select>` — execute the inner statement under a
    /// forced trace and print its stage-by-stage breakdown and provenance.
    /// Only `SELECT sample` and `SELECT *` statements can be analyzed.
    ExplainAnalyze(Box<Statement>),
}

/// What a `DROP` statement removes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropKind {
    /// A sampling cube.
    Cube,
    /// A user-declared loss aggregate.
    Aggregate,
}

/// What a `SHOW` statement lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShowKind {
    /// Built sampling cubes.
    Cubes,
    /// Registered raw tables.
    Tables,
    /// Registered loss functions.
    Aggregates,
}
