//! Vendored, std-only stand-in for `criterion`.
//!
//! Implements the API subset this workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `black_box` — over a simple wall-clock harness: per benchmark it
//! auto-scales the iteration count to a target measurement window, runs
//! `sample_size` samples, and prints mean / median / p95 per iteration.
//!
//! Not statistically rigorous like real criterion; good enough to compare
//! alternatives in one run, which is what the harness is for here.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, measurement_time: Duration::from_millis(500) }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup { criterion: self, name, sample_size: None }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_bench(&id.label, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Ignored in the shim (accepted for API compatibility).
    pub fn final_summary(&self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Shrink/grow the per-benchmark measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(&label, samples, self.criterion.measurement_time, &mut f);
        self
    }

    /// Benchmark `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// A benchmark's identifier: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{parameter}", name.into()) }
    }

    /// Just a parameter (used inside groups).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to the closure; `iter` runs the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `f` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    measurement_time: Duration,
    f: &mut F,
) {
    // Calibrate: grow the iteration count until one sample is long enough
    // to time reliably.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        let per_sample = measurement_time.as_nanos() / samples.max(1) as u128;
        if b.elapsed.as_nanos() * 20 >= per_sample || iters >= 1 << 30 {
            break;
        }
        iters = iters.saturating_mul(4).max(iters + 1);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let median = per_iter[per_iter.len() / 2];
    let p95 = per_iter[(per_iter.len() * 95 / 100).min(per_iter.len() - 1)];
    println!(
        "{label:<44} {:>12}/iter  median {:>10}  p95 {:>10}  ({} iters x {} samples)",
        fmt_ns(mean),
        fmt_ns(median),
        fmt_ns(p95),
        iters,
        per_iter.len(),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(5);
        group.measurement_time(Duration::from_millis(20));
        let mut ran = 0u64;
        group.bench_function(BenchmarkId::new("add", 1), |b| {
            b.iter(|| black_box(2u64 + 2));
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| {
                ran += 1;
                black_box(x * 2)
            });
        });
        group.finish();
        assert!(ran > 0);
    }
}
