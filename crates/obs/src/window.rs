//! Sliding-window histograms: "what is p99 over the last N seconds?".
//!
//! The cumulative [`Histogram`](crate::Histogram) answers lifetime questions;
//! operators watching a dashboard need *current* latency. A
//! [`WindowedHistogram`] keeps one log₂-bucketed histogram per one-second
//! slot in a ring of `window_secs + 1` slots. Recording stamps the slot with
//! the current absolute second (CAS-claimed; the winner zeroes the slot's
//! buckets on rollover) and then does the same three relaxed `fetch_add`s as
//! the cumulative histogram. A snapshot merges every slot whose stamp falls
//! inside the window into an ordinary [`HistogramSnapshot`], so all the
//! quantile machinery is reused unchanged.
//!
//! The rollover reset is best-effort: a recorder racing the slot winner
//! across a second boundary can lose or double-count a handful of samples.
//! Windows feed operator dashboards, not accounting invariants, so this is
//! the right trade for a lock-free hot path.

use crate::metrics::{bucket_index, HistogramSnapshot, HISTOGRAM_BUCKETS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Default window length for registry-created windows.
pub const DEFAULT_WINDOW_SECS: u64 = 60;

/// Widest supported window; keeps the slot ring's footprint bounded
/// (~520 B per slot).
pub const MAX_WINDOW_SECS: u64 = 600;

/// Seconds since the process-wide epoch (first use of any window).
fn now_secs() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_secs()
}

/// One second's worth of samples. `stamp` holds `absolute_second + 1`
/// (0 = never used) so a freshly zeroed ring is distinguishable from second 0.
struct Slot {
    stamp: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            stamp: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn zero(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A latency histogram that only remembers the last `window_secs` seconds.
pub struct WindowedHistogram {
    window_secs: u64,
    /// `window_secs + 1` slots: the extra slot lets the current second be
    /// claimed while the slot falling out of the window is still readable.
    slots: Vec<Slot>,
}

impl std::fmt::Debug for WindowedHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowedHistogram").field("window_secs", &self.window_secs).finish()
    }
}

impl WindowedHistogram {
    /// A window covering the last `window_secs` seconds (clamped to
    /// `1..=`[`MAX_WINDOW_SECS`]).
    pub fn new(window_secs: u64) -> Self {
        let window_secs = window_secs.clamp(1, MAX_WINDOW_SECS);
        let slots = (0..window_secs + 1).map(|_| Slot::new()).collect();
        WindowedHistogram { window_secs, slots }
    }

    /// The configured window length in seconds.
    pub fn window_secs(&self) -> u64 {
        self.window_secs
    }

    /// Record a value in nanoseconds at the current wall-clock second.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.record_at(ns, now_secs());
    }

    /// Record a [`std::time::Duration`] at the current wall-clock second.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Record at an explicit second (the deterministic hook tests and replay
    /// tooling use; `record` passes the process clock).
    pub fn record_at(&self, ns: u64, at_secs: u64) {
        let slot = &self.slots[(at_secs % self.slots.len() as u64) as usize];
        let stamp = at_secs + 1;
        let seen = slot.stamp.load(Ordering::Acquire);
        if seen != stamp {
            // First writer of this second claims the slot and zeroes the
            // previous tenant's samples; losers just record into it.
            if slot.stamp.compare_exchange(seen, stamp, Ordering::AcqRel, Ordering::Acquire).is_ok()
            {
                slot.zero();
            }
        }
        slot.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(ns, Ordering::Relaxed);
        slot.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Merge all in-window slots into a [`HistogramSnapshot`] as of now.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.snapshot_at(now_secs())
    }

    /// Merge all slots stamped within `(now_secs - window_secs, now_secs]`.
    pub fn snapshot_at(&self, now_secs: u64) -> HistogramSnapshot {
        let newest = now_secs + 1; // stamp encoding
        let oldest = newest.saturating_sub(self.window_secs - 1);
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        let mut sum = 0u64;
        let mut max = 0u64;
        for slot in &self.slots {
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == 0 || stamp < oldest || stamp > newest {
                continue;
            }
            for (i, b) in slot.buckets.iter().enumerate() {
                buckets[i] += b.load(Ordering::Relaxed);
            }
            sum = sum.saturating_add(slot.sum.load(Ordering::Relaxed));
            max = max.max(slot.max.load(Ordering::Relaxed));
        }
        let count = buckets.iter().sum();
        HistogramSnapshot { count, sum_ns: sum, max_ns: max, buckets }
    }

    /// Forget everything (used by `Registry::reset`).
    pub fn reset(&self) {
        for slot in &self.slots {
            slot.stamp.store(0, Ordering::Release);
            slot.zero();
        }
    }
}

/// A [`WindowedHistogram`] snapshot plus its window length, as stored in
/// [`MetricsSnapshot::windows`](crate::MetricsSnapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// Window length the histogram was configured with.
    pub window_secs: u64,
    /// Merged in-window samples.
    pub hist: HistogramSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_inside_window_are_visible() {
        let w = WindowedHistogram::new(60);
        w.record_at(1_000, 100);
        w.record_at(3_000, 130);
        let s = w.snapshot_at(130);
        assert_eq!(s.count, 2);
        assert_eq!(s.max_ns, 3_000);
        assert_eq!(s.sum_ns, 4_000);
    }

    #[test]
    fn samples_age_out_of_the_window() {
        let w = WindowedHistogram::new(60);
        w.record_at(1_000, 100);
        // 59 seconds later it is still in a 60 s window …
        assert_eq!(w.snapshot_at(159).count, 1);
        // … 60 seconds later it is not.
        assert_eq!(w.snapshot_at(160).count, 0);
    }

    #[test]
    fn slot_reuse_zeroes_the_previous_tenant() {
        let w = WindowedHistogram::new(2);
        // Ring has 3 slots; seconds 0 and 3 share slot 0.
        w.record_at(1_000, 0);
        w.record_at(2_000, 3);
        let s = w.snapshot_at(3);
        assert_eq!(s.count, 1, "second 0's sample must not leak into second 3");
        assert_eq!(s.max_ns, 2_000);
    }

    #[test]
    fn quantiles_track_recent_mass() {
        let w = WindowedHistogram::new(10);
        for _ in 0..100 {
            w.record_at(1_000_000, 5); // a slow past
        }
        for _ in 0..100 {
            w.record_at(1_000, 20); // a fast present
        }
        let s = w.snapshot_at(25);
        assert_eq!(s.count, 100);
        assert!(s.p99() < 10_000, "p99 = {} must reflect only the fast window", s.p99());
    }

    #[test]
    fn reset_clears_all_slots() {
        let w = WindowedHistogram::new(60);
        w.record_at(500, 10);
        w.reset();
        assert_eq!(w.snapshot_at(10).count, 0);
    }

    #[test]
    fn window_secs_is_clamped() {
        assert_eq!(WindowedHistogram::new(0).window_secs(), 1);
        assert_eq!(WindowedHistogram::new(10_000).window_secs(), MAX_WINDOW_SECS);
    }

    #[test]
    fn live_clock_record_is_visible() {
        let w = WindowedHistogram::new(60);
        w.record(42);
        assert_eq!(w.snapshot().count, 1);
    }
}
