//! RAII tracing spans with a pluggable [`Subscriber`].
//!
//! A span measures one region of work. Entering returns a [`SpanGuard`];
//! dropping it computes the elapsed time and delivers a [`SpanRecord`] to the
//! installed subscriber (if any). Nesting depth is tracked per thread so
//! subscribers can reconstruct the call tree.
//!
//! When no subscriber is installed and tracing is disabled, entering a span
//! is one atomic load plus one clock read — cheap enough to leave
//! instrumentation in place permanently. The guard still measures: `stop()`
//! and `elapsed()` return real durations either way, so code can derive its
//! own timing statistics from the same spans subscribers observe.

use std::borrow::Cow;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// A completed span, as delivered to [`Subscriber::on_exit`].
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Static-ish span name, e.g. `"build.dry_run"`. Low cardinality by
    /// convention: put variable data in `detail`, not the name.
    pub name: Cow<'static, str>,
    /// Free-form detail for this particular span instance (may be empty).
    pub detail: String,
    /// Nesting depth on the recording thread (0 = top level).
    pub depth: usize,
    /// Start time, relative to an arbitrary per-process epoch.
    pub start: Instant,
    /// Wall-clock duration of the span.
    pub duration: Duration,
}

/// Receives span lifecycle events. Implementations must be cheap and
/// thread-safe; `on_exit` is called from whichever thread ran the span.
pub trait Subscriber: Send + Sync {
    /// Called when a span is entered. Default: no-op.
    fn on_enter(&self, _name: &str, _depth: usize) {}
    /// Called when a span ends.
    fn on_exit(&self, span: &SpanRecord);
}

/// Default subscriber: appends every finished span to an in-memory list.
#[derive(Debug, Default)]
pub struct MemoryCollector {
    records: Mutex<Vec<SpanRecord>>,
}

impl MemoryCollector {
    pub fn new() -> Self {
        Self::default()
    }

    /// All finished spans, in completion order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.records.lock().unwrap().clone()
    }

    /// Total recorded duration of spans with the given name.
    pub fn total_of(&self, name: &str) -> Duration {
        self.records.lock().unwrap().iter().filter(|r| r.name == name).map(|r| r.duration).sum()
    }

    /// Number of finished spans with the given name.
    pub fn count_of(&self, name: &str) -> usize {
        self.records.lock().unwrap().iter().filter(|r| r.name == name).count()
    }

    pub fn clear(&self) {
        self.records.lock().unwrap().clear();
    }
}

impl Subscriber for MemoryCollector {
    fn on_exit(&self, span: &SpanRecord) {
        self.records.lock().unwrap().push(span.clone());
    }
}

static TRACING_ON: AtomicBool = AtomicBool::new(false);
static SUBSCRIBER: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Install the process-wide subscriber and enable tracing. Replaces any
/// previous subscriber; returns the old one if present.
pub fn set_subscriber(sub: Arc<dyn Subscriber>) -> Option<Arc<dyn Subscriber>> {
    let old = SUBSCRIBER.write().unwrap().replace(sub);
    TRACING_ON.store(true, Ordering::Release);
    old
}

/// Remove the subscriber and disable tracing.
pub fn clear_subscriber() -> Option<Arc<dyn Subscriber>> {
    TRACING_ON.store(false, Ordering::Release);
    SUBSCRIBER.write().unwrap().take()
}

/// Whether a subscriber is currently installed.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING_ON.load(Ordering::Acquire)
}

fn current_subscriber() -> Option<Arc<dyn Subscriber>> {
    SUBSCRIBER.read().unwrap().clone()
}

/// RAII guard for an in-flight span. Created by [`SpanGuard::enter`] or the
/// [`span!`](crate::span!) macro; the span ends when the guard drops.
///
/// The guard *always* measures wall time — [`SpanGuard::stop`] and
/// [`SpanGuard::elapsed`] report real durations whether or not a subscriber
/// is installed (callers like the cube builder derive their stage statistics
/// from these). Only the subscriber delivery and depth bookkeeping are gated
/// on tracing being enabled.
#[derive(Debug)]
#[must_use = "a span measures nothing unless the guard is held"]
pub struct SpanGuard {
    start: Instant,
    finished: bool,
    /// Present only while tracing is enabled.
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    name: Cow<'static, str>,
    detail: String,
    depth: usize,
}

impl SpanGuard {
    /// Enter a span. When tracing is disabled this is one atomic load plus
    /// one clock read; the guard still times, but delivers nothing.
    pub fn enter(name: impl Into<Cow<'static, str>>, detail: String) -> Self {
        let inner = if tracing_enabled() {
            let name = name.into();
            let depth = DEPTH.with(|d| {
                let cur = d.get();
                d.set(cur + 1);
                cur
            });
            if let Some(sub) = current_subscriber() {
                sub.on_enter(&name, depth);
            }
            Some(SpanInner { name, detail, depth })
        } else {
            None
        };
        Self { start: Instant::now(), finished: false, inner }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// End the span now, returning its duration.
    pub fn stop(mut self) -> Duration {
        self.finish().unwrap_or_default()
    }

    fn finish(&mut self) -> Option<Duration> {
        if self.finished {
            return None;
        }
        self.finished = true;
        let duration = self.start.elapsed();
        if let Some(inner) = self.inner.take() {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            if let Some(sub) = current_subscriber() {
                sub.on_exit(&SpanRecord {
                    name: inner.name,
                    detail: inner.detail,
                    depth: inner.depth,
                    start: self.start,
                    duration,
                });
            }
        }
        Some(duration)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Run `f` inside a span named `name`, returning its result and the measured
/// duration. The duration is measured even when tracing is disabled, so this
/// doubles as a plain timing helper.
pub fn timed<T>(name: impl Into<Cow<'static, str>>, f: impl FnOnce() -> T) -> (T, Duration) {
    let guard = SpanGuard::enter(name, String::new());
    let out = f();
    (out, guard.stop())
}

/// Enter a span: `span!("name")` or `span!("name", "detail {}", x)`.
/// Binds nothing — assign the result (`let _span = span!("x");`) so the guard
/// lives until the end of the scope.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name, ::std::string::String::new())
    };
    ($name:expr, $($detail:tt)+) => {
        $crate::SpanGuard::enter($name, ::std::format!($($detail)+))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Subscriber state is process-global, so every test that installs one
    // runs under this lock to avoid cross-test interference.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_still_time_but_deliver_nothing() {
        let _l = TEST_LOCK.lock().unwrap();
        clear_subscriber();
        let g = SpanGuard::enter("nothing", String::new());
        std::thread::sleep(Duration::from_millis(1));
        let d = g.stop();
        assert!(d >= Duration::from_millis(1), "disabled span must still measure, got {d:?}");
    }

    #[test]
    fn collector_sees_nested_spans_in_exit_order_with_depths() {
        let _l = TEST_LOCK.lock().unwrap();
        let collector = Arc::new(MemoryCollector::new());
        set_subscriber(collector.clone());
        {
            let _outer = span!("outer");
            {
                let _inner = span!("inner", "cuboid={}", 3);
            }
        }
        clear_subscriber();
        let recs = collector.records();
        assert_eq!(recs.len(), 2);
        // Inner exits first.
        assert_eq!(recs[0].name, "inner");
        assert_eq!(recs[0].detail, "cuboid=3");
        assert_eq!(recs[0].depth, 1);
        assert_eq!(recs[1].name, "outer");
        assert_eq!(recs[1].depth, 0);
        assert!(recs[1].duration >= recs[0].duration);
        assert!(collector.total_of("outer") >= collector.total_of("inner"));
        assert_eq!(collector.count_of("inner"), 1);
    }

    #[test]
    fn stop_returns_duration_and_depth_unwinds() {
        let _l = TEST_LOCK.lock().unwrap();
        let collector = Arc::new(MemoryCollector::new());
        set_subscriber(collector.clone());
        let g = span!("timed");
        let d = g.stop();
        // Depth restored: a fresh span is top-level again.
        let _g2 = span!("after");
        drop(_g2);
        clear_subscriber();
        let recs = collector.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].duration, d);
        assert_eq!(recs[1].depth, 0);
    }

    #[test]
    fn timed_measures_even_without_subscriber() {
        let _l = TEST_LOCK.lock().unwrap();
        clear_subscriber();
        let (val, dur) = timed("work", || {
            std::thread::sleep(Duration::from_millis(1));
            7
        });
        assert_eq!(val, 7);
        assert!(dur >= Duration::from_millis(1));
    }
}
