//! The frozen serving index: a read-optimized replacement for the cube
//! table's global `FxHashMap` probe.
//!
//! Built once from a [`SamplingCube`], the index partitions the cube
//! table by cuboid and stores each cuboid's cells in one of two dense
//! layouts:
//!
//! * **Direct** — when the cuboid's key domain (the product of its
//!   grouping attributes' cardinalities) is small, a flat slot array
//!   indexed by the mixed-radix compact key. A probe is one multiply-add
//!   chain plus one load: no hashing, no comparison, no branches.
//! * **Sorted** — otherwise, the cuboid's compact keys as a flat,
//!   lexicographically sorted, fixed-width `u32` array probed by
//!   branch-free binary search. Cache behaviour is sequential-ish and
//!   the comparator is a short fixed-width slice compare, against the
//!   hash map's pointer-chasing and per-probe `CellKey` hashing.
//!
//! Probes are read-only and lock-free; the index never mutates after
//! construction (refreshes build a new index and swap it in — see
//! [`crate::Server`]).

use crate::compile::{CompiledCell, MAX_CUBED_ATTRS};
use tabula_core::{Result, SamplingCube};

/// Domain-size ceiling for the direct (slot-array) layout, in slots.
/// 64 Ki slots is 256 KiB per cuboid worst case — cheap enough to buy the
/// O(1) probe on every low-cardinality cuboid (where most dashboard
/// zoom-out queries land).
const DIRECT_SLOTS_CAP: u64 = 1 << 16;

/// One cuboid's cells in a read-optimized layout.
#[derive(Debug)]
enum Cuboid {
    /// No materialized cells: every probe falls through to the global
    /// sample.
    Empty,
    /// Slot array indexed by mixed-radix compact key; a slot holds
    /// `sample_id + 1`, with 0 meaning "not materialized".
    Direct { strides: Vec<u64>, slots: Vec<u32> },
    /// Fixed-width sorted keys (`arity` words per entry) with parallel
    /// sample ids.
    Sorted { arity: usize, keys: Vec<u32>, ids: Vec<u32> },
}

/// The layout kind serving a cuboid's probes (see [`ServeIndex::layout`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexLayout {
    /// No materialized cells: probes fall through to the global sample.
    Empty,
    /// Direct slot array — O(1) mixed-radix indexing.
    Direct,
    /// Sorted fixed-width keys — branch-free binary search (dense probe).
    Sorted,
}

/// The frozen per-cuboid serving index of one cube generation.
#[derive(Debug)]
pub struct ServeIndex {
    n: usize,
    cuboids: Vec<Cuboid>,
    cells: usize,
}

impl ServeIndex {
    /// Freeze `cube`'s cube table into the read-optimized layout.
    pub fn build(cube: &SamplingCube) -> Result<Self> {
        let n = cube.attrs().len();
        assert!(
            n < MAX_CUBED_ATTRS,
            "serving index supports at most {} cubed attributes",
            MAX_CUBED_ATTRS - 1
        );
        let table = cube.table();
        let cards: Vec<u64> = cube
            .cubed_cols()
            .iter()
            .map(|&c| Ok(table.cat(c)?.cardinality() as u64))
            .collect::<Result<_>>()?;

        // Partition the cube table by cuboid mask, in compact-key form.
        let mut per_mask: Vec<Vec<([u32; MAX_CUBED_ATTRS], u32)>> = Vec::new();
        per_mask.resize_with(1usize << n, Vec::new);
        let mut cells = 0usize;
        for (key, sample_id) in cube.cube_table() {
            let cell = CompiledCell::from_cell_key(key);
            let mut buf = [0u32; MAX_CUBED_ATTRS];
            let compact = cell.compact_into(&mut buf);
            let mut fixed = [0u32; MAX_CUBED_ATTRS];
            fixed[..compact.len()].copy_from_slice(compact);
            per_mask[cell.mask() as usize].push((fixed, sample_id));
            cells += 1;
        }

        let cuboids = per_mask
            .into_iter()
            .enumerate()
            .map(|(mask, mut entries)| {
                if entries.is_empty() {
                    return Cuboid::Empty;
                }
                let attr_ids: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
                let arity = attr_ids.len();
                // Mixed-radix strides over the grouping attributes'
                // cardinalities; `domain` is the total slot count.
                let mut strides = vec![1u64; arity];
                let mut domain = 1u64;
                for k in (0..arity).rev() {
                    strides[k] = domain;
                    domain = domain.saturating_mul(cards[attr_ids[k]]);
                }
                if domain <= DIRECT_SLOTS_CAP {
                    let mut slots = vec![0u32; domain as usize];
                    for (key, id) in &entries {
                        let slot: u64 =
                            key[..arity].iter().zip(&strides).map(|(&c, &s)| c as u64 * s).sum();
                        slots[slot as usize] = id + 1;
                    }
                    Cuboid::Direct { strides, slots }
                } else {
                    entries.sort_unstable_by(|a, b| a.0[..arity].cmp(&b.0[..arity]));
                    let mut keys = Vec::with_capacity(entries.len() * arity);
                    let mut ids = Vec::with_capacity(entries.len());
                    for (key, id) in &entries {
                        keys.extend_from_slice(&key[..arity]);
                        ids.push(*id);
                    }
                    Cuboid::Sorted { arity, keys, ids }
                }
            })
            .collect();
        Ok(ServeIndex { n, cuboids, cells })
    }

    /// Number of cubed attributes.
    pub fn arity(&self) -> usize {
        self.n
    }

    /// Number of indexed (materialized) cells.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Look up the sample id serving `cell`, or `None` when the cell is
    /// not materialized (the global-sample fallback). Byte-identical to
    /// the cube table's own `FxHashMap::get`.
    #[inline]
    pub fn probe(&self, cell: &CompiledCell) -> Option<u32> {
        debug_assert_eq!(cell.arity(), self.n);
        match &self.cuboids[cell.mask() as usize] {
            Cuboid::Empty => None,
            Cuboid::Direct { strides, slots } => {
                let mut slot = 0u64;
                let mut k = 0;
                let mut bits = cell.mask();
                while bits != 0 {
                    let i = bits.trailing_zeros() as usize;
                    // Codes come from dictionary lookups, so they are
                    // always inside the attribute's cardinality — the
                    // slot index cannot escape the array.
                    slot += cell.code(i).unwrap_or(0) as u64 * strides[k];
                    k += 1;
                    bits &= bits - 1;
                }
                let v = slots[slot as usize];
                (v != 0).then(|| v - 1)
            }
            Cuboid::Sorted { arity, keys, ids } => {
                let mut buf = [0u32; MAX_CUBED_ATTRS];
                let probe = cell.compact_into(&mut buf);
                probe_sorted(keys, ids, *arity, probe)
            }
        }
    }

    /// Which layout serves probes for cuboid `mask` — the trace-level
    /// distinction between a "direct index" lookup and a "dense probe"
    /// binary search.
    #[inline]
    pub fn layout(&self, mask: u32) -> IndexLayout {
        match &self.cuboids[mask as usize] {
            Cuboid::Empty => IndexLayout::Empty,
            Cuboid::Direct { .. } => IndexLayout::Direct,
            Cuboid::Sorted { .. } => IndexLayout::Sorted,
        }
    }

    /// Approximate heap bytes of the index payload.
    pub fn heap_bytes(&self) -> usize {
        self.cuboids
            .iter()
            .map(|c| match c {
                Cuboid::Empty => 0,
                Cuboid::Direct { strides, slots } => strides.len() * 8 + slots.len() * 4,
                Cuboid::Sorted { keys, ids, .. } => keys.len() * 4 + ids.len() * 4,
            })
            .sum()
    }
}

/// Branch-free lower-bound search over fixed-width sorted keys: halving
/// steps conditionally advance `base`, and the final slot is checked for
/// equality once. The comparison is a fixed-`arity` slice compare the
/// compiler unrolls for small arities.
#[inline]
fn probe_sorted(keys: &[u32], ids: &[u32], arity: usize, probe: &[u32]) -> Option<u32> {
    let mut size = ids.len();
    if size == 0 {
        return None;
    }
    let mut base = 0usize;
    while size > 1 {
        let half = size / 2;
        let mid = base + half;
        // Move base up when keys[mid] <= probe; compiles to a
        // conditional move — no unpredictable branch in the loop body.
        if &keys[mid * arity..mid * arity + arity] <= probe {
            base = mid;
        }
        size -= half;
    }
    (&keys[base * arity..base * arity + arity] == probe).then(|| ids[base])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_probe_finds_every_key_and_only_those() {
        // 3-wide keys, a few hundred entries.
        let mut entries: Vec<[u32; 3]> = Vec::new();
        for a in 0..8u32 {
            for b in 0..6u32 {
                for c in 0..5u32 {
                    if (a + b + c) % 3 == 0 {
                        entries.push([a, b, c]);
                    }
                }
            }
        }
        entries.sort_unstable();
        let keys: Vec<u32> = entries.iter().flatten().copied().collect();
        let ids: Vec<u32> = (0..entries.len() as u32).collect();
        for a in 0..8u32 {
            for b in 0..6u32 {
                for c in 0..5u32 {
                    let probe = [a, b, c];
                    let want = entries.iter().position(|e| *e == probe).map(|i| i as u32);
                    assert_eq!(probe_sorted(&keys, &ids, 3, &probe), want, "{probe:?}");
                }
            }
        }
    }

    #[test]
    fn sorted_probe_handles_edges() {
        assert_eq!(probe_sorted(&[], &[], 2, &[0, 0]), None);
        // Single zero-arity entry (the ALL cell): the empty probe matches.
        assert_eq!(probe_sorted(&[], &[7], 0, &[]), Some(7));
        let keys = vec![5u32];
        let ids = vec![3u32];
        assert_eq!(probe_sorted(&keys, &ids, 1, &[5]), Some(3));
        assert_eq!(probe_sorted(&keys, &ids, 1, &[4]), None);
        assert_eq!(probe_sorted(&keys, &ids, 1, &[6]), None);
    }
}
