//! The ingest lane: stream a generated case's rows through the real
//! `tabula-ingest` pipeline and, **at every barrier**, require the
//! streamed cube to be differentially equivalent to a from-scratch build
//! on the same prefix — θ guarantee over every lattice cell, identical
//! iceberg set, identical served workload answers — and byte-identical
//! across thread counts (the risinglight-style barrier-aligned
//! consistency check).
//!
//! The lane splits a case's rows into a base prefix plus up to
//! [`INGEST_BARRIERS`] batches, builds a cube and [`Server`] on the
//! prefix, starts an [`Ingestor`] with one-batch folds, then appends one
//! batch at a time and blocks on its barrier before checking. Folding
//! batch-by-batch makes the streamed cube a pure function of the prefix
//! (representative selection scopes per fold), so the same sweep at a
//! different thread count must reproduce it byte for byte.

use crate::diff::{Divergence, Fingerprint, NaiveEval, THREAD_COUNTS};
use crate::generate::CaseSpec;
use crate::oracle::{naive_cube, LossSpec};
use std::sync::Arc;
use tabula_core::loss::{
    AccuracyLoss, HeatmapLoss, HistogramLoss, MeanLoss, Metric, RegressionLoss, LOSS_EPS,
};
use tabula_core::{MaterializationMode, RefreshConfig, SamplingCubeBuilder};
use tabula_ingest::{IngestConfig, Ingestor};
use tabula_serve::{AnswerCache, Server};
use tabula_storage::cube::CellKey;
use tabula_storage::{CmpOp, Field, Predicate, Schema, Table, TableBuilder};

/// Most batches (= barriers) a case's streamed suffix is split into.
pub const INGEST_BARRIERS: usize = 3;

/// What a clean ingest-lane run covered.
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestReport {
    /// Barriers reached and checked (per thread count).
    pub barriers: usize,
    /// Reference-cube cells verified across all barriers.
    pub cells_checked: usize,
    /// Served workload queries verified across all barriers.
    pub queries_checked: usize,
}

/// Run the ingest lane for one case, dispatching its [`LossSpec`] to the
/// matching production kernel.
pub fn diff_ingest_case(case: &CaseSpec) -> Result<IngestReport, Divergence> {
    let table = case.table();
    let col = |name: &str| {
        table.schema().index_of(name).unwrap_or_else(|_| panic!("case column {name} missing"))
    };
    match &case.loss {
        LossSpec::Mean { attr } => ingest_with_loss(case, MeanLoss::new(col(attr)), &case.loss),
        LossSpec::Histogram { attr } => {
            ingest_with_loss(case, HistogramLoss::new(col(attr)), &case.loss)
        }
        LossSpec::Heatmap { attr, manhattan } => {
            let metric = if *manhattan { Metric::Manhattan } else { Metric::Euclidean };
            ingest_with_loss(case, HeatmapLoss::new(col(attr), metric), &case.loss)
        }
        LossSpec::Regression { x, y } => {
            ingest_with_loss(case, RegressionLoss::new(col(x), col(y)), &case.loss)
        }
    }
}

/// Materialize the first `len` case rows as a table.
fn prefix_table(case: &CaseSpec, len: usize) -> Arc<Table> {
    let fields = case.schema.iter().map(|(n, ty)| Field::new(n.clone(), *ty)).collect::<Vec<_>>();
    let mut b = TableBuilder::with_capacity(Schema::new(fields), len);
    for row in &case.rows[..len] {
        b.push_row(row).expect("case rows match case schema");
    }
    Arc::new(b.finish())
}

/// Batch end offsets: the streamed suffix `base..total` split into up to
/// [`INGEST_BARRIERS`] non-empty batches.
fn batch_bounds(base: usize, total: usize) -> Vec<usize> {
    let stream = total - base;
    let n = INGEST_BARRIERS.min(stream);
    let mut bounds = Vec::with_capacity(n);
    let mut at = base;
    for i in 0..n {
        at += stream / n + usize::from(i < stream % n);
        bounds.push(at);
    }
    bounds
}

fn ingest_with_loss<L: AccuracyLoss + Clone>(
    case: &CaseSpec,
    loss: L,
    oracle: &dyn NaiveEval,
) -> Result<IngestReport, Divergence> {
    let total = case.rows.len();
    let base = (total / 2).max(4.min(total));
    if base >= total {
        // Nothing to stream: the case is degenerate for this lane.
        return Ok(IngestReport::default());
    }
    let bounds = batch_bounds(base, total);
    let attr_refs: Vec<&str> = case.attrs.iter().map(String::as_str).collect();

    let mut report = IngestReport::default();
    // fingerprints[thread sweep][barrier]
    let mut fingerprints: Vec<Vec<Fingerprint>> = Vec::new();
    for &threads in &THREAD_COUNTS {
        tabula_par::set_threads(threads);
        let result =
            stream_one_sweep(case, &loss, oracle, &attr_refs, base, &bounds, threads, &mut report);
        // Restore the default before propagating, so a divergence does
        // not leak a thread override into the caller.
        match result {
            Ok(per_barrier) => fingerprints.push(per_barrier),
            Err(e) => {
                tabula_par::set_threads(0);
                return Err(e);
            }
        }
    }
    tabula_par::set_threads(0);

    for t in 1..THREAD_COUNTS.len() {
        for (b, fp) in fingerprints[t].iter().enumerate() {
            if *fp != fingerprints[0][b] {
                return Err(Divergence {
                    check: "ingest_thread_determinism",
                    detail: format!(
                        "barrier {}: streamed cube at {} threads differs from {} threads",
                        b + 1,
                        THREAD_COUNTS[t],
                        THREAD_COUNTS[0]
                    ),
                });
            }
        }
    }
    report.barriers = fingerprints[0].len();
    Ok(report)
}

/// One thread-count sweep: build on the prefix, stream every batch,
/// check at every barrier. Returns the per-barrier fingerprints.
#[allow(clippy::too_many_arguments)]
fn stream_one_sweep<L: AccuracyLoss + Clone>(
    case: &CaseSpec,
    loss: &L,
    oracle: &dyn NaiveEval,
    attr_refs: &[&str],
    base: usize,
    bounds: &[usize],
    threads: usize,
    report: &mut IngestReport,
) -> Result<Vec<Fingerprint>, Divergence> {
    let theta = case.theta;
    let build = |table: Arc<Table>| {
        SamplingCubeBuilder::new(table, attr_refs, loss.clone(), theta)
            .mode(MaterializationMode::Tabula)
            .serfling(case.serfling_config())
            .seed(case.build_seed)
            .parallelism(threads)
            .build()
            .map_err(|e| Divergence {
                check: "ingest_build",
                detail: format!("threads={threads}: build failed: {e:?}"),
            })
    };
    let base_cube = build(prefix_table(case, base))?;
    // Private cache and registry, like the serve lane: the sweep must not
    // depend on (or pollute) process-wide state.
    let server = Arc::new(
        Server::with_cache(
            Arc::new(base_cube),
            AnswerCache::new(8 << 20, 4),
            Arc::new(tabula_obs::Registry::new()),
        )
        .map_err(|e| Divergence {
            check: "ingest_build",
            detail: format!("threads={threads}: serving index build failed: {e:?}"),
        })?,
    );
    let config = IngestConfig {
        refresh: RefreshConfig {
            serfling: case.serfling_config(),
            seed: case.build_seed,
            parallelism: threads,
            mode: MaterializationMode::Tabula,
            ..RefreshConfig::default()
        },
        // Barrier-aligned: exactly one batch per fold, so the streamed
        // cube is a deterministic function of the prefix length.
        fold_batches: 1,
        ..IngestConfig::default()
    };
    let ingestor = Ingestor::start(Arc::clone(&server), loss.clone(), config);
    let pipeline_err = |stage: &str, e: tabula_ingest::IngestError| Divergence {
        check: "ingest_pipeline",
        detail: format!("threads={threads} {stage}: {e}"),
    };

    let mut per_barrier = Vec::with_capacity(bounds.len());
    let mut fed = base;
    let mut epoch = server.epoch();
    for (bi, &end) in bounds.iter().enumerate() {
        let barrier = bi + 1;
        let seq =
            ingestor.append(case.rows[fed..end].to_vec()).map_err(|e| pipeline_err("append", e))?;
        ingestor.wait_folded(seq).map_err(|e| pipeline_err("wait_folded", e))?;
        fed = end;

        let streamed = server.cube();
        if streamed.table().len() != fed {
            return Err(Divergence {
                check: "ingest_table",
                detail: format!(
                    "threads={threads} barrier {barrier}: served table has {} rows, fed {fed}",
                    streamed.table().len()
                ),
            });
        }
        // The answer cache must be invalidated exactly once per published
        // generation: one batch = one fold = one epoch bump.
        let now = server.epoch();
        if now != epoch + 1 {
            return Err(Divergence {
                check: "ingest_epoch",
                detail: format!(
                    "threads={threads} barrier {barrier}: cache epoch went {epoch} -> {now}, \
                     expected exactly one bump per generation"
                ),
            });
        }
        epoch = now;

        // Differential equivalence against a from-scratch build on the
        // same prefix: identical iceberg set (the dry run sees identical
        // inputs), θ guarantee over every lattice cell, and identical
        // served workload answers.
        let prefix = prefix_table(case, fed);
        let rebuilt = build(Arc::clone(&prefix))?;
        let mut streamed_keys: Vec<_> =
            streamed.cube_table().map(|(k, _)| k.codes.clone()).collect();
        let mut rebuilt_keys: Vec<_> = rebuilt.cube_table().map(|(k, _)| k.codes.clone()).collect();
        streamed_keys.sort();
        rebuilt_keys.sort();
        if streamed_keys != rebuilt_keys {
            return Err(Divergence {
                check: "ingest_iceberg_set",
                detail: format!(
                    "threads={threads} barrier {barrier}: streamed cube materializes {} cells, \
                     a from-scratch build on the same prefix materializes {}",
                    streamed_keys.len(),
                    rebuilt_keys.len()
                ),
            });
        }

        let reference = naive_cube(&prefix, &case.attrs)
            .unwrap_or_else(|e| panic!("case {} is malformed: {e}", case.name));
        for (key, raw) in &reference.cells {
            let answer = streamed.query_cell(&CellKey::new(key.clone()));
            let achieved = oracle.eval(&prefix, raw, &answer.rows);
            if achieved > theta + LOSS_EPS {
                return Err(Divergence {
                    check: "ingest_guarantee",
                    detail: format!(
                        "threads={threads} barrier {barrier} cell {key:?} ({} raw rows, {:?}): \
                         naive loss {achieved} > θ {theta}",
                        raw.len(),
                        answer.provenance
                    ),
                });
            }
        }
        report.cells_checked += reference.cells.len();

        for q in &case.queries {
            let mut pred = Predicate::all();
            for (column, value) in q {
                pred = pred.and(column.clone(), CmpOp::Eq, value.clone());
            }
            let raw = pred.filter(&prefix).unwrap_or_else(|e| panic!("workload predicate: {e}"));
            let direct = streamed.query(&pred).map_err(|e| Divergence {
                check: "ingest_query",
                detail: format!("threads={threads} barrier {barrier} query {q:?}: {e:?}"),
            })?;
            let served = server.query(&pred).map_err(|e| Divergence {
                check: "ingest_query",
                detail: format!("threads={threads} barrier {barrier} served query {q:?}: {e:?}"),
            })?;
            if served.rows != direct.rows || served.provenance != direct.provenance {
                return Err(Divergence {
                    check: "ingest_serve",
                    detail: format!(
                        "threads={threads} barrier {barrier} query {q:?}: served answer \
                         ({} rows, {:?}) differs from the streamed cube's direct answer \
                         ({} rows, {:?})",
                        served.rows.len(),
                        served.provenance,
                        direct.rows.len(),
                        direct.provenance
                    ),
                });
            }
            let achieved = oracle.eval(&prefix, &raw, &served.rows);
            if achieved > theta + LOSS_EPS {
                return Err(Divergence {
                    check: "ingest_query_guarantee",
                    detail: format!(
                        "threads={threads} barrier {barrier} query {q:?} ({} raw rows, {:?}): \
                         naive loss {achieved} > θ {theta}",
                        raw.len(),
                        served.provenance
                    ),
                });
            }
        }
        report.queries_checked += case.queries.len();
        per_barrier.push(Fingerprint::of(&streamed));
    }
    ingestor.shutdown().map_err(|e| pipeline_err("shutdown", e))?;
    Ok(per_barrier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::gen_case;

    #[test]
    fn pinned_seeds_pass_the_ingest_lane() {
        for seed in [11u64, 42, 1337] {
            let case = gen_case(seed);
            let report = diff_ingest_case(&case)
                .unwrap_or_else(|d| panic!("seed {seed} ({}): {d}", case.loss.name()));
            assert!(report.barriers > 0, "seed {seed}: no barriers streamed");
            assert!(report.cells_checked > 0, "seed {seed}: no cells checked");
        }
    }

    #[test]
    fn batch_bounds_cover_the_suffix_without_empties() {
        assert_eq!(batch_bounds(10, 13), vec![11, 12, 13]);
        assert_eq!(batch_bounds(10, 12), vec![11, 12]);
        assert_eq!(batch_bounds(10, 11), vec![11]);
        assert_eq!(batch_bounds(12, 55), vec![27, 41, 55]);
    }
}
