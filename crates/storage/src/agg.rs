//! Mergeable (distributive / algebraic) aggregate states.
//!
//! The paper's dry-run stage depends on the accuracy-loss measure being
//! *algebraic*: the measure of a cube cell must be computable from a
//! bounded-size state that can be merged across the cell's descendants.
//! This module defines the [`AggState`] merge contract that the generic
//! CUBE rollup in [`crate::cube`] operates on, plus the stock states the
//! built-in loss functions are assembled from:
//!
//! * [`SumCount`] — powers `AVG` (Function 1: statistical-mean loss) and the
//!   per-tuple-decomposed visualization losses (Functions 2/histogram),
//! * [`Moments2D`] — the five regression moments `(n, Σx, Σy, Σxy, Σx²)`
//!   (Function 3: regression-angle loss),
//! * [`Count`], [`MinMax`] — bookkeeping used by cost models and tests.

use serde::{Deserialize, Serialize};

/// A mergeable aggregate state. `merge` must be associative and commutative
/// with `Default::default()` as identity, so that cuboids can be derived
/// from any parent in the lattice in any order.
pub trait AggState: Clone + Send + Sync {
    /// Fold `other` into `self`.
    fn merge(&mut self, other: &Self);
}

/// Plain row count (distributive).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Count {
    /// Number of rows folded in.
    pub n: u64,
}

impl Count {
    /// Account one row.
    #[inline]
    pub fn add(&mut self) {
        self.n += 1;
    }

    /// Account `n` rows at once (chunk kernels fold whole runs per call).
    #[inline]
    pub fn add_n(&mut self, n: u64) {
        self.n += n;
    }
}

impl AggState for Count {
    #[inline]
    fn merge(&mut self, other: &Self) {
        self.n += other.n;
    }
}

/// Sum and count of a scalar (algebraic; yields `AVG`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SumCount {
    /// Running sum.
    pub sum: f64,
    /// Number of values folded in.
    pub count: u64,
}

impl SumCount {
    /// Account one value.
    #[inline]
    pub fn add(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
    }

    /// Account a whole chunk of values in slice order. Accumulation is a
    /// strict left-to-right fold — bit-identical to calling
    /// [`add`](Self::add) per element, so chunked kernels and the scalar
    /// path produce the same float bits.
    #[inline]
    pub fn add_slice(&mut self, values: &[f64]) {
        for &v in values {
            self.sum += v;
        }
        self.count += values.len() as u64;
    }

    /// The mean, or `None` for an empty state.
    #[inline]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

impl AggState for SumCount {
    #[inline]
    fn merge(&mut self, other: &Self) {
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// The 2-D regression moments `(n, Σx, Σy, Σxy, Σx²)` — exactly the
/// quantities the paper's slope formula consumes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Moments2D {
    /// Number of points.
    pub n: u64,
    /// Σx.
    pub sx: f64,
    /// Σy.
    pub sy: f64,
    /// Σxy.
    pub sxy: f64,
    /// Σx².
    pub sxx: f64,
}

impl Moments2D {
    /// Account one `(x, y)` point.
    #[inline]
    pub fn add(&mut self, x: f64, y: f64) {
        self.n += 1;
        self.sx += x;
        self.sy += y;
        self.sxy += x * y;
        self.sxx += x * x;
    }

    /// Account a whole chunk of `(x, y)` points pairwise in slice order —
    /// strict left-to-right, bit-identical to per-point [`add`](Self::add).
    /// Panics if the slices differ in length.
    #[inline]
    pub fn add_slices(&mut self, xs: &[f64], ys: &[f64]) {
        assert_eq!(xs.len(), ys.len());
        for (&x, &y) in xs.iter().zip(ys) {
            self.sx += x;
            self.sy += y;
            self.sxy += x * y;
            self.sxx += x * x;
        }
        self.n += xs.len() as u64;
    }

    /// OLS slope `(nΣxy − ΣxΣy) / (nΣx² − (Σx)²)`; `None` when degenerate
    /// (fewer than two points, or zero x-variance).
    pub fn slope(&self) -> Option<f64> {
        if self.n < 2 {
            return None;
        }
        let n = self.n as f64;
        let denom = n * self.sxx - self.sx * self.sx;
        if denom.abs() < f64::EPSILON * n.max(1.0) {
            return None;
        }
        Some((n * self.sxy - self.sx * self.sy) / denom)
    }

    /// OLS intercept; `None` when the slope is degenerate.
    pub fn intercept(&self) -> Option<f64> {
        let slope = self.slope()?;
        let n = self.n as f64;
        Some((self.sy - slope * self.sx) / n)
    }

    /// The regression line's angle in degrees, `atan(slope)·180/π`.
    pub fn angle_degrees(&self) -> Option<f64> {
        self.slope().map(|s| s.atan().to_degrees())
    }
}

impl AggState for Moments2D {
    #[inline]
    fn merge(&mut self, other: &Self) {
        self.n += other.n;
        self.sx += other.sx;
        self.sy += other.sy;
        self.sxy += other.sxy;
        self.sxx += other.sxx;
    }
}

/// Minimum and maximum of a scalar (distributive).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinMax {
    /// Smallest value seen, `+∞` when empty.
    pub min: f64,
    /// Largest value seen, `−∞` when empty.
    pub max: f64,
}

impl Default for MinMax {
    fn default() -> Self {
        MinMax { min: f64::INFINITY, max: f64::NEG_INFINITY }
    }
}

impl MinMax {
    /// Account one value.
    #[inline]
    pub fn add(&mut self, v: f64) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Account a whole chunk of values (min/max are order-insensitive, but
    /// the fold is left-to-right anyway for uniformity).
    #[inline]
    pub fn add_slice(&mut self, values: &[f64]) {
        for &v in values {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Whether any value has been folded in.
    pub fn is_populated(&self) -> bool {
        self.min <= self.max
    }
}

impl AggState for MinMax {
    #[inline]
    fn merge(&mut self, other: &Self) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_count_mean_and_merge() {
        let mut a = SumCount::default();
        a.add(2.0);
        a.add(4.0);
        assert_eq!(a.mean(), Some(3.0));
        let mut b = SumCount::default();
        b.add(12.0);
        a.merge(&b);
        assert_eq!(a.mean(), Some(6.0));
        assert_eq!(SumCount::default().mean(), None);
    }

    #[test]
    fn merge_is_associative_and_has_identity() {
        let mut parts = Vec::new();
        for i in 0..10 {
            let mut s = SumCount::default();
            s.add(i as f64);
            parts.push(s);
        }
        // ((a⊕b)⊕c) == (a⊕(b⊕c)) and identity ⊕ x == x.
        let mut left = parts[0];
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        let mut right_tail = parts[1];
        right_tail.merge(&parts[2]);
        let mut right = parts[0];
        right.merge(&right_tail);
        assert_eq!(left, right);

        let mut id = SumCount::default();
        id.merge(&parts[3]);
        assert_eq!(id, parts[3]);
    }

    #[test]
    fn moments_recover_exact_line() {
        // y = 2x + 1 exactly.
        let mut m = Moments2D::default();
        for x in 0..20 {
            let x = x as f64;
            m.add(x, 2.0 * x + 1.0);
        }
        let slope = m.slope().unwrap();
        let intercept = m.intercept().unwrap();
        assert!((slope - 2.0).abs() < 1e-9);
        assert!((intercept - 1.0).abs() < 1e-9);
        let angle = m.angle_degrees().unwrap();
        assert!((angle - 2.0f64.atan().to_degrees()).abs() < 1e-9);
    }

    #[test]
    fn moments_degenerate_cases() {
        let mut m = Moments2D::default();
        assert_eq!(m.slope(), None);
        m.add(1.0, 1.0);
        assert_eq!(m.slope(), None); // one point
        m.add(1.0, 5.0);
        assert_eq!(m.slope(), None); // vertical: zero x-variance
    }

    #[test]
    fn moments_merge_equals_bulk() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, (i * i) as f64)).collect();
        let mut bulk = Moments2D::default();
        for &(x, y) in &pts {
            bulk.add(x, y);
        }
        let mut a = Moments2D::default();
        let mut b = Moments2D::default();
        for &(x, y) in &pts[..20] {
            a.add(x, y);
        }
        for &(x, y) in &pts[20..] {
            b.add(x, y);
        }
        a.merge(&b);
        assert!((a.slope().unwrap() - bulk.slope().unwrap()).abs() < 1e-9);
        assert_eq!(a.n, bulk.n);
    }

    #[test]
    fn slice_folds_match_per_element_adds_exactly() {
        // Values chosen so float addition order matters; the slice fold
        // must be bit-identical to the element-at-a-time fold.
        let xs: Vec<f64> = (0..100).map(|i| 1.0 + (i as f64) * 1e-13).collect();
        let ys: Vec<f64> = (0..100).map(|i| 3.0 - (i as f64) * 1e-13).collect();

        let mut bulk = SumCount::default();
        bulk.add_slice(&xs);
        let mut one = SumCount::default();
        xs.iter().for_each(|&v| one.add(v));
        assert_eq!(bulk.sum.to_bits(), one.sum.to_bits());
        assert_eq!(bulk.count, one.count);

        let mut bulk = Moments2D::default();
        bulk.add_slices(&xs, &ys);
        let mut one = Moments2D::default();
        xs.iter().zip(&ys).for_each(|(&x, &y)| one.add(x, y));
        assert_eq!(bulk.sxy.to_bits(), one.sxy.to_bits());
        assert_eq!(bulk.sxx.to_bits(), one.sxx.to_bits());
        assert_eq!(bulk.n, one.n);

        let mut bulk = MinMax::default();
        bulk.add_slice(&xs);
        assert_eq!(bulk.min, xs[0]);
        assert_eq!(bulk.max, xs[99]);

        let mut c = Count::default();
        c.add_n(7);
        c.add();
        assert_eq!(c.n, 8);
    }

    #[test]
    fn minmax_tracks_extremes() {
        let mut m = MinMax::default();
        assert!(!m.is_populated());
        m.add(3.0);
        m.add(-1.0);
        let mut other = MinMax::default();
        other.add(10.0);
        m.merge(&other);
        assert_eq!(m.min, -1.0);
        assert_eq!(m.max, 10.0);
        assert!(m.is_populated());
    }

    #[test]
    fn count_merge() {
        let mut c = Count::default();
        c.add();
        c.add();
        let mut d = Count::default();
        d.add();
        c.merge(&d);
        assert_eq!(c.n, 3);
    }
}
