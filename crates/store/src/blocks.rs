//! Block encoders: fixed-width column payloads and the dictionary block.
//!
//! Everything is little-endian raw words. Encoding is a cast + copy;
//! decoding on the read side is a typed reinterpretation of the mapped
//! bytes (see [`crate::reader::BlockView`]) — the functions here exist so
//! the writer, the reader's validators, and the property tests all agree
//! on one byte layout.

use tabula_storage::{Codable, Column, ColumnBuf, Dictionary, Encoded};

use crate::{Result, StoreError};

/// Byte length of the `[len u64][runs u64]` header of an RLE block.
pub const RLE_HEADER: usize = 16;
/// Byte length of the `[len u64][base u64][width u64]` header of a FOR
/// block.
pub const FOR_HEADER: usize = 24;

/// Little-endian serialization of one fixed-width payload word — the
/// bridge that lets the encoded-block writer stay generic over the
/// column payload types (`u32` codes, `i64`/`f64` values, `u64` packed
/// words). Floats write their bit patterns, so NaN payloads and signed
/// zeros survive.
pub trait Word: Copy {
    /// Append this word's little-endian bytes.
    fn put(self, out: &mut Vec<u8>);
}

impl Word for u32 {
    fn put(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Word for u64 {
    fn put(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Word for i64 {
    fn put(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Word for f64 {
    fn put(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
}

fn put_words<T: Word>(values: &[T], out: &mut Vec<u8>) {
    for &v in values {
        v.put(out);
    }
}

/// Encode a `&[u32]` as little-endian bytes.
pub fn encode_u32s(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encode a `&[u64]` as little-endian bytes.
pub fn encode_u64s(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encode a `&[i64]` as little-endian bytes.
pub fn encode_i64s(values: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encode a `&[f64]` as little-endian **bit patterns** — NaN payloads and
/// signed zeros survive the round trip untouched.
pub fn encode_f64s(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// One column data payload: the column's *current* physical
/// representation, serialized verbatim. A column that froze encoded
/// persists its encoded payload (no re-choosing — so a load/re-freeze
/// cycle is byte-identical); a plain column persists raw words.
#[derive(Debug)]
pub enum ColumnData {
    /// Raw little-endian words — block `col:<i>:data` / `col:<i>:codes`.
    Plain(Vec<u8>),
    /// Self-describing RLE block (`…:rle`):
    /// `[len u64][runs u64][values: runs × width][ends: runs × u32]`.
    Rle(Vec<u8>),
    /// Self-describing FOR block (`…:for`):
    /// `[len u64][base u64][width u64][words: ⌈len·width/64⌉ × u64]`.
    For(Vec<u8>),
}

impl ColumnData {
    /// The block-name suffix for this representation (`""`, `":rle"`,
    /// `":for"`) and the payload bytes.
    pub fn into_parts(self) -> (&'static str, Vec<u8>) {
        match self {
            ColumnData::Plain(b) => ("", b),
            ColumnData::Rle(b) => (":rle", b),
            ColumnData::For(b) => (":for", b),
        }
    }
}

/// Serialize one column buffer in its current representation.
pub fn encode_column_data<T: Codable + Word>(buf: &ColumnBuf<T>) -> ColumnData {
    match buf.encoded() {
        Some(Encoded::Rle { len, values, ends }) => {
            let mut out = Vec::with_capacity(
                RLE_HEADER + values.len() * std::mem::size_of::<T>() + ends.len() * 4,
            );
            out.extend_from_slice(&(*len as u64).to_le_bytes());
            out.extend_from_slice(&(values.len() as u64).to_le_bytes());
            put_words(values, &mut out);
            put_words(ends, &mut out);
            ColumnData::Rle(out)
        }
        Some(Encoded::For { len, base, width, words }) => {
            let mut out = Vec::with_capacity(FOR_HEADER + words.len() * 8);
            out.extend_from_slice(&(*len as u64).to_le_bytes());
            out.extend_from_slice(&base.to_le_bytes());
            out.extend_from_slice(&(*width as u64).to_le_bytes());
            put_words(words, &mut out);
            ColumnData::For(out)
        }
        None => {
            let mut out = Vec::with_capacity(buf.row_count() * std::mem::size_of::<T>());
            put_words(buf, &mut out);
            ColumnData::Plain(out)
        }
    }
}

/// The encoded payload(s) of one [`Column`]. `Str` columns produce two
/// blocks (codes + dictionary); every other type produces one.
#[derive(Debug)]
pub enum ColumnBlocks {
    /// i64 words, plain or encoded.
    Int64(ColumnData),
    /// f64 bit patterns, plain or encoded.
    Float64(ColumnData),
    /// Dictionary codes plus the dictionary block itself.
    Str {
        /// u32 codes, one per row, plain or encoded.
        codes: ColumnData,
        /// Dictionary block (see [`encode_dict`]).
        dict: Vec<u8>,
    },
    /// Interleaved `x, y` f64 bit patterns, two words per point. Point
    /// columns never encode.
    Point(Vec<u8>),
}

/// Encode a column into its block payload(s).
pub fn encode_column(col: &Column) -> ColumnBlocks {
    match col {
        Column::Int64(v) => ColumnBlocks::Int64(encode_column_data(v)),
        Column::Float64(v) => ColumnBlocks::Float64(encode_column_data(v)),
        Column::Str { codes, dict } => {
            ColumnBlocks::Str { codes: encode_column_data(codes), dict: encode_dict(dict) }
        }
        Column::Point(pts) => {
            let mut out = Vec::with_capacity(pts.len() * 16);
            for p in pts.iter() {
                out.extend_from_slice(&p.x.to_bits().to_le_bytes());
                out.extend_from_slice(&p.y.to_bits().to_le_bytes());
            }
            ColumnBlocks::Point(out)
        }
    }
}

/// Encode a dictionary: `[count: u64][offsets: (count+1) × u64][utf8]`.
///
/// Offsets are cumulative byte positions into the trailing UTF-8 heap;
/// entry `i` is `bytes[offsets[i]..offsets[i+1]]`. Entries appear in code
/// order, so re-encoding them in sequence on load reproduces the exact
/// same code assignment (codes are dense and first-seen ordered).
pub fn encode_dict(dict: &Dictionary) -> Vec<u8> {
    let count = dict.len();
    let mut offsets = Vec::with_capacity(count + 1);
    let mut heap = Vec::new();
    offsets.push(0u64);
    for code in 0..count as u32 {
        heap.extend_from_slice(dict.decode(code).as_bytes());
        offsets.push(heap.len() as u64);
    }
    let mut out = Vec::with_capacity(8 + offsets.len() * 8 + heap.len());
    out.extend_from_slice(&(count as u64).to_le_bytes());
    for off in &offsets {
        out.extend_from_slice(&off.to_le_bytes());
    }
    out.extend_from_slice(&heap);
    out
}

/// Decode a dictionary block into its strings, in code order. Every
/// structural fault (short header, non-monotonic offsets, heap overrun,
/// invalid UTF-8) is a typed [`StoreError::BadBlock`].
pub fn decode_dict_strings(region: &str, bytes: &[u8]) -> Result<Vec<String>> {
    let bad = |reason: String| StoreError::BadBlock { region: region.to_string(), reason };
    let read_u64 = |at: usize| -> Result<u64> {
        let end = at.checked_add(8).filter(|&e| e <= bytes.len());
        let end = end.ok_or_else(|| bad(format!("u64 at byte {at} overruns block")))?;
        Ok(u64::from_le_bytes(bytes[at..end].try_into().unwrap()))
    };
    let count = read_u64(0)? as usize;
    let table_end = count
        .checked_add(2)
        .and_then(|n| n.checked_mul(8))
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| bad(format!("offset table for {count} entries overruns block")))?;
    let heap = &bytes[table_end..];
    let mut strings = Vec::with_capacity(count);
    let mut prev = read_u64(8)?;
    if prev != 0 {
        return Err(bad(format!("first offset is {prev}, expected 0")));
    }
    for i in 0..count {
        let next = read_u64(16 + i * 8)?;
        if next < prev || next as usize > heap.len() {
            return Err(bad(format!(
                "offset {next} for entry {i} is non-monotonic or overruns heap of {} bytes",
                heap.len()
            )));
        }
        let s = std::str::from_utf8(&heap[prev as usize..next as usize])
            .map_err(|e| bad(format!("entry {i} is not UTF-8: {e}")))?;
        strings.push(s.to_string());
        prev = next;
    }
    if prev as usize != heap.len() {
        return Err(bad(format!(
            "heap has {} trailing bytes past the last offset",
            heap.len() - prev as usize
        )));
    }
    Ok(strings)
}

/// Rebuild a [`Dictionary`] from its decoded strings. Codes are assigned
/// first-seen, so encoding in code order reproduces the original mapping;
/// a duplicate entry means the block lies about its own structure.
pub fn rebuild_dict(region: &str, strings: &[String]) -> Result<Dictionary> {
    let mut dict = Dictionary::new();
    for (i, s) in strings.iter().enumerate() {
        let code = dict.encode(s);
        if code != i as u32 {
            return Err(StoreError::BadBlock {
                region: region.to_string(),
                reason: format!("duplicate dictionary entry {s:?} at code {i}"),
            });
        }
    }
    Ok(dict)
}
