//! Regression analysis with a guaranteed sample (the paper's Function 3):
//! fit tip-vs-fare regression lines per payment population, comparing the
//! line fitted on Tabula's sample against the raw line — the angle
//! difference is guaranteed within θ degrees.
//!
//! ```bash
//! cargo run --release --example regression_analysis
//! ```

use std::sync::Arc;
use tabula::core::loss::RegressionLoss;
use tabula::core::SamplingCubeBuilder;
use tabula::data::{TaxiConfig, TaxiGenerator, CUBED_ATTRIBUTES};
use tabula::storage::{Predicate, RowId, Table};
use tabula::viz::RegressionFit;

fn xy(table: &Table, rows: &[RowId]) -> Vec<(f64, f64)> {
    let fares = table.column_by_name("fare_amount").unwrap().as_f64_slice().unwrap();
    let tips = table.column_by_name("tip_amount").unwrap().as_f64_slice().unwrap();
    rows.iter().map(|&r| (fares[r as usize], tips[r as usize])).collect()
}

fn main() {
    let table = Arc::new(TaxiGenerator::new(TaxiConfig { rows: 80_000, seed: 3 }).generate());
    let fare = table.schema().index_of("fare_amount").unwrap();
    let tip = table.schema().index_of("tip_amount").unwrap();
    let theta_degrees = 2.0;

    let cube = SamplingCubeBuilder::new(
        Arc::clone(&table),
        &CUBED_ATTRIBUTES[..5],
        RegressionLoss::new(fare, tip),
        theta_degrees,
    )
    .build()
    .unwrap();
    println!(
        "cube built: {} cells, {} icebergs, {} persisted samples (θ = {theta_degrees}°)",
        cube.stats().total_cells,
        cube.stats().iceberg_cells,
        cube.persisted_samples()
    );

    println!(
        "{:<12} {:>9} {:>9} {:>12} {:>12} {:>8}",
        "population", "raw n", "sample n", "raw angle", "sam angle", "Δ°"
    );
    for payment in ["credit", "cash", "dispute", "no_charge"] {
        let pred = Predicate::eq("payment_type", payment);
        let raw_rows = pred.filter(&table).unwrap();
        let answer = cube.query(&pred).unwrap();

        let raw_fit = RegressionFit::fit(&xy(&table, &raw_rows));
        let sam_fit = RegressionFit::fit(&xy(&table, &answer.rows));
        match (raw_fit, sam_fit) {
            (Some(raw), Some(sam)) => {
                let delta = raw.angle_difference(&sam);
                assert!(delta <= theta_degrees + 1e-9, "guarantee violated");
                println!(
                    "{payment:<12} {:>9} {:>9} {:>11.3}° {:>11.3}° {:>7.3}°",
                    raw_rows.len(),
                    answer.len(),
                    raw.angle_degrees,
                    sam.angle_degrees,
                    delta
                );
            }
            _ => println!("{payment:<12} degenerate regression (no spread in x)"),
        }
    }

    // Credit tips are ~20 % of fare, cash tips unrecorded: the analyst's
    // takeaway survives sampling.
    let credit = cube.query(&Predicate::eq("payment_type", "credit")).unwrap();
    let fit = RegressionFit::fit(&xy(&table, &credit.rows)).unwrap();
    println!(
        "\ncredit-card tip model from the sample: tip ≈ {:.3}·fare + {:.2} \
         (n = {} tuples instead of the raw population)",
        fit.slope,
        fit.intercept,
        credit.len()
    );
}
