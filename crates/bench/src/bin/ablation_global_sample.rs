//! **Ablation: global-sample sizing (Serfling ε/δ)** — the paper argues a
//! too-small global sample "unnecessarily introduces too many iceberg
//! cells" while its size never affects the guarantee. Sweep ε and watch
//! iceberg counts, init time and memory move while every answer stays
//! within θ.
//!
//! ```bash
//! cargo run --release -p tabula-bench --bin ablation_global_sample
//! ```

use std::sync::Arc;
use tabula_bench::{default_rows, fmt_bytes, fmt_duration, taxi_table, SEED};
use tabula_core::loss::{HeatmapLoss, Metric};
use tabula_core::{SamplingCubeBuilder, SerflingConfig};
use tabula_data::{meters_to_norm, CUBED_ATTRIBUTES};

fn main() {
    let rows = default_rows();
    let table = taxi_table(rows);
    let pickup = table.schema().index_of("pickup").unwrap();
    let theta = meters_to_norm(500.0);
    let attrs: Vec<&str> = CUBED_ATTRIBUTES[..5].to_vec();
    println!("# Ablation: global sample size | rows = {rows} | heatmap loss, θ = 500m");
    println!(
        "\n{:<10} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "epsilon", "k (tuples)", "icebergs", "init time", "global mem", "total mem"
    );
    println!("{}", "-".repeat(72));
    for epsilon in [0.20, 0.10, 0.05, 0.025] {
        let serfling = SerflingConfig { epsilon, delta: 0.01 };
        let cube = SamplingCubeBuilder::new(
            Arc::clone(&table),
            &attrs,
            HeatmapLoss::new(pickup, Metric::Euclidean),
            theta,
        )
        .serfling(serfling)
        .seed(SEED)
        .build()
        .unwrap();
        let m = cube.memory_breakdown();
        println!(
            "{epsilon:<10} {:>10} {:>10} {:>12} {:>12} {:>12}",
            cube.stats().global_sample_size,
            cube.stats().iceberg_cells,
            fmt_duration(cube.stats().total),
            fmt_bytes(m.global_bytes),
            fmt_bytes(m.total()),
        );
    }
}
