//! Property tests: every block encoder round-trips **bit-identically**
//! through encode → checksum → decode.
//!
//! Each case goes through the full production pipeline — payloads are
//! written with [`SnapshotWriter`] (which checksums every block, the
//! manifest, and the whole file) and read back through
//! [`Snapshot::from_bytes`] (which verifies all of it) — so these
//! properties cover the writer, the CRCs, and the zero-copy typed views
//! in one pass. Floats are compared by bit pattern: NaN payloads and
//! signed zeros must survive unchanged.

use proptest::prelude::*;
use tabula_storage::{Column, Dictionary, Point};
use tabula_store::{
    decode_dict_strings, encode_column, encode_dict, encode_f64s, encode_i64s, encode_u32s,
    encode_u64s, rebuild_dict, ColumnBlocks, Snapshot, SnapshotWriter,
};

/// Round-trip a single payload through writer → verified reader.
fn round_trip(payload: &[u8], rows: u64) -> Snapshot {
    let mut w = SnapshotWriter::new();
    w.add_block("b", rows, payload).unwrap();
    Snapshot::from_bytes(w.finish().unwrap()).unwrap()
}

/// f64s that hit the hard cases: NaNs with arbitrary payloads, ±0.0,
/// ±∞, subnormals, and plain garbage bit patterns.
fn arb_f64() -> impl Strategy<Value = f64> {
    (0u64..u64::MAX).prop_map(|s| match s % 8 {
        0 => f64::NAN,
        1 => -0.0,
        2 => 0.0,
        3 => f64::INFINITY,
        4 => f64::NEG_INFINITY,
        // NaN with a nonzero payload — must survive bit-for-bit.
        5 => f64::from_bits(0x7FF8_0000_0000_0000 | (s >> 12)),
        // Subnormal.
        6 => f64::from_bits(s & 0x000F_FFFF_FFFF_FFFF),
        _ => f64::from_bits(s),
    })
}

/// Strings over an alphabet with multi-byte UTF-8, empties included.
fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec((0u64..u64::MAX, 0usize..8), 0..4).prop_map(|parts| {
        const ALPHABET: [&str; 8] = ["a", "B", "0", " ", "é", "漢", "🚕", "\u{0}"];
        parts.iter().map(|&(s, i)| ALPHABET[(s as usize ^ i) % ALPHABET.len()]).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn i64_blocks_round_trip(values in proptest::collection::vec(
        (0u64..u64::MAX).prop_map(|s| s as i64), 0..200)) {
        let snap = round_trip(&encode_i64s(&values), values.len() as u64);
        prop_assert_eq!(snap.block("b").unwrap().i64s().unwrap(), &values[..]);
    }

    #[test]
    fn u64_blocks_round_trip(values in proptest::collection::vec(0u64..u64::MAX, 0..200)) {
        let snap = round_trip(&encode_u64s(&values), values.len() as u64);
        prop_assert_eq!(snap.block("b").unwrap().u64s().unwrap(), &values[..]);
    }

    #[test]
    fn u32_blocks_round_trip(values in proptest::collection::vec(0u32..u32::MAX, 0..200)) {
        let snap = round_trip(&encode_u32s(&values), values.len() as u64);
        prop_assert_eq!(snap.block("b").unwrap().u32s().unwrap(), &values[..]);
    }

    #[test]
    fn f64_blocks_round_trip_bit_identically(
        values in proptest::collection::vec(arb_f64(), 0..200)) {
        let snap = round_trip(&encode_f64s(&values), values.len() as u64);
        let back = snap.block("b").unwrap().f64s().unwrap();
        prop_assert_eq!(back.len(), values.len());
        for (a, b) in values.iter().zip(back) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn point_blocks_round_trip_bit_identically(
        coords in proptest::collection::vec((arb_f64(), arb_f64()), 0..100)) {
        let points: Vec<Point> = coords.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let blocks = encode_column(&Column::Point(points.clone().into()));
        let payload = match blocks {
            ColumnBlocks::Point(p) => p,
            other => panic!("expected Point blocks, got {other:?}"),
        };
        let snap = round_trip(&payload, points.len() as u64);
        let back = snap.block("b").unwrap().points().unwrap();
        prop_assert_eq!(back.len(), points.len());
        for (a, b) in points.iter().zip(&back) {
            prop_assert_eq!(a.x.to_bits(), b.x.to_bits());
            prop_assert_eq!(a.y.to_bits(), b.y.to_bits());
        }
    }

    #[test]
    fn dictionary_blocks_round_trip(raw in proptest::collection::vec(arb_string(), 0..60)) {
        // Build a dictionary the production way: first-seen dense codes.
        let mut dict = Dictionary::new();
        let codes: Vec<u32> = raw.iter().map(|s| dict.encode(s)).collect();
        let entries: Vec<String> = dict.iter().map(|(_, s)| s.to_string()).collect();

        let payload = encode_dict(&dict);
        let snap = round_trip(&payload, dict.len() as u64);
        let view = snap.block("b").unwrap();

        // Strings come back in code order…
        let strings = view.dict_strings().unwrap();
        prop_assert_eq!(&strings, &entries);
        prop_assert_eq!(decode_dict_strings("block:b", view.bytes()).unwrap(), entries);
        // …and the rebuilt dictionary reproduces the exact code mapping.
        let rebuilt = rebuild_dict("block:b", &strings).unwrap();
        prop_assert_eq!(rebuilt.len(), dict.len());
        for (s, &code) in raw.iter().zip(&codes) {
            prop_assert_eq!(rebuilt.lookup(s), Some(code));
        }
    }

    #[test]
    fn str_column_codes_round_trip(raw in proptest::collection::vec(arb_string(), 0..60)) {
        let mut dict = Dictionary::new();
        let codes: Vec<u32> = raw.iter().map(|s| dict.encode(s)).collect();
        let col = Column::Str { codes: codes.clone().into(), dict };
        let (codes_block, dict_block) = match encode_column(&col) {
            ColumnBlocks::Str { codes, dict } => (codes, dict),
            other => panic!("expected Str blocks, got {other:?}"),
        };
        // Plain (owned) codes serialize as a raw-words block: no suffix.
        let (suffix, codes_block) = codes_block.into_parts();
        prop_assert_eq!(suffix, "");
        let mut w = SnapshotWriter::new();
        w.add_block("codes", codes.len() as u64, &codes_block).unwrap();
        w.add_block("dict", 0, &dict_block).unwrap();
        let snap = Snapshot::from_bytes(w.finish().unwrap()).unwrap();
        prop_assert_eq!(snap.block("codes").unwrap().u32s().unwrap(), &codes[..]);
        let back = snap.block("dict").unwrap().dict().unwrap();
        for (s, &code) in raw.iter().zip(&codes) {
            prop_assert_eq!(back.lookup(s), Some(code));
            prop_assert_eq!(back.decode(code), s.as_str());
        }
    }
}
