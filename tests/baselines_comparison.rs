//! Cross-approach invariants from the paper's evaluation, checked on the
//! synthetic workload (no wall-clock assertions — those belong to the
//! benchmark harness; these are the *semantic* relationships).

use std::sync::Arc;
use tabula::baselines::{Approach, PoiSam, SampleFirst, SampleOnTheFly, SnappyLike};
use tabula::core::loss::{AccuracyLoss, HeatmapLoss, HistogramLoss, Metric};
use tabula::core::{MaterializationMode, SamplingCubeBuilder};
use tabula::data::{meters_to_norm, TaxiConfig, TaxiGenerator, Workload, CUBED_ATTRIBUTES};
use tabula::storage::{Predicate, Table};

fn taxi(rows: usize, seed: u64) -> Arc<Table> {
    Arc::new(TaxiGenerator::new(TaxiConfig { rows, seed }).generate())
}

#[test]
fn samfly_always_meets_theta_poisam_usually_does() {
    let t = taxi(10_000, 11);
    let pickup = t.schema().index_of("pickup").unwrap();
    let loss = HeatmapLoss::new(pickup, Metric::Euclidean);
    let theta = meters_to_norm(1_000.0);
    let fly = SampleOnTheFly::new(Arc::clone(&t), loss.clone(), theta);
    let poisam = PoiSam::new(Arc::clone(&t), loss.clone(), theta, 2);

    let workload = Workload::new(&CUBED_ATTRIBUTES[..4]);
    let queries = workload.generate(&t, 25, 77).unwrap();
    let mut poi_ratios = Vec::new();
    for q in &queries {
        let raw = q.predicate.filter(&t).unwrap();
        let fly_ans = fly.query(&q.predicate);
        let fly_loss = loss.loss(&t, &raw, &fly_ans.rows);
        assert!(fly_loss <= theta + 1e-9, "SamFly violated θ on [{}]", q.description);

        let poi_ans = poisam.query(&q.predicate);
        let poi_loss = loss.loss(&t, &raw, &poi_ans.rows);
        // POIsam's guarantee holds only against its random pre-sample, so
        // the true loss often lands slightly above θ — but the *magnitude*
        // of the excess stays small (the paper reports 1–5 %).
        assert!(poi_loss <= theta * 2.0, "[{}]: {poi_loss}", q.description);
        poi_ratios.push(poi_loss / theta);
    }
    let avg_ratio = poi_ratios.iter().sum::<f64>() / poi_ratios.len() as f64;
    assert!(avg_ratio <= 1.25, "POIsam's average loss is {avg_ratio:.3}×θ");
}

#[test]
fn memory_ordering_matches_the_paper() {
    // FullSamCube ≥ PartSamCube ≥ Tabula* ≥ Tabula (sample-table bytes),
    // and online approaches hold nothing.
    let t = taxi(8_000, 12);
    let fare = t.schema().index_of("fare_amount").unwrap();
    let loss = HistogramLoss::new(fare);
    let theta = 0.1; // tight enough ($0.10) to force a real iceberg set
    let attrs = &CUBED_ATTRIBUTES[..4];
    let build = |mode| {
        SamplingCubeBuilder::new(Arc::clone(&t), attrs, loss.clone(), theta)
            .mode(mode)
            .seed(3)
            .build()
            .unwrap()
            .memory_breakdown()
    };
    let full = build(MaterializationMode::FullSamCube);
    let part = build(MaterializationMode::PartSamCube);
    let star = build(MaterializationMode::TabulaStar);
    let tabula = build(MaterializationMode::Tabula);
    assert!(
        full.sample_table_bytes >= part.sample_table_bytes,
        "full {} < part {}",
        full.sample_table_bytes,
        part.sample_table_bytes
    );
    assert!(part.sample_table_bytes >= star.sample_table_bytes);
    assert!(star.sample_table_bytes >= tabula.sample_table_bytes);
    assert!(star.sample_table_bytes > 0, "θ must produce iceberg cells");

    let fly = SampleOnTheFly::new(Arc::clone(&t), loss.clone(), theta);
    let poisam = PoiSam::new(Arc::clone(&t), loss, theta, 5);
    assert_eq!(fly.memory_bytes(), 0);
    assert_eq!(poisam.memory_bytes(), 0);
}

#[test]
fn sample_first_answers_shrink_with_budget_and_lose_accuracy() {
    let t = taxi(20_000, 13);
    let small = SampleFirst::with_rows(Arc::clone(&t), 200, 1).named("small");
    let large = SampleFirst::with_rows(Arc::clone(&t), 5_000, 1).named("large");
    assert!(small.memory_bytes() < large.memory_bytes());

    let pred = Predicate::eq("rate_code", "jfk");
    let raw = pred.filter(&t).unwrap();
    let s_ans = small.query(&pred);
    let l_ans = large.query(&pred);
    assert!(s_ans.rows.len() < l_ans.rows.len());
    // The heat-map loss of SampleFirst's answers degrades as the budget
    // shrinks (the paper omits SampleFirst from its loss plots because it
    // is ~20× worse).
    let pickup = t.schema().index_of("pickup").unwrap();
    let loss = HeatmapLoss::new(pickup, Metric::Euclidean);
    let l_small = loss.loss(&t, &raw, &s_ans.rows);
    let l_large = loss.loss(&t, &raw, &l_ans.rows);
    assert!(l_small >= l_large);
}

#[test]
fn snappy_fallback_rate_drops_with_looser_bounds() {
    let t = taxi(15_000, 14);
    let attrs = &CUBED_ATTRIBUTES[..4];
    let workload = Workload::new(attrs);
    let queries = workload.generate(&t, 40, 5).unwrap();
    let fallbacks = |bound: f64| -> usize {
        let snappy = SnappyLike::build(Arc::clone(&t), attrs, "fare_amount", 40, bound, 6).unwrap();
        queries.iter().filter(|q| snappy.query_avg(&q.predicate).fell_back_to_raw).count()
    };
    let tight = fallbacks(0.005);
    let loose = fallbacks(0.20);
    assert!(tight > loose, "tight {tight} vs loose {loose}");
}

#[test]
fn tabula_returns_global_sample_for_non_iceberg_hits() {
    // The paper's Table II explanation: Tabula's visualization time is the
    // highest because non-iceberg queries get the ~1000-tuple global
    // sample rather than a ~100-tuple local sample.
    let t = taxi(10_000, 15);
    let pickup = t.schema().index_of("pickup").unwrap();
    let loss = HeatmapLoss::new(pickup, Metric::Euclidean);
    let cube = SamplingCubeBuilder::new(
        Arc::clone(&t),
        &CUBED_ATTRIBUTES[..5],
        loss,
        meters_to_norm(1_000.0),
    )
    .seed(2)
    .build()
    .unwrap();
    let global_answer = cube.query(&Predicate::all()).unwrap();
    if matches!(global_answer.provenance, tabula::core::SampleProvenance::Global) {
        assert_eq!(global_answer.len(), cube.stats().global_sample_size);
        assert!(global_answer.len() > 900, "Serfling default ≈ 1060 tuples");
    }
}

/// The paper's Table II contrast, as a *negative* guarantee: on a planted
/// iceberg cell — a rare population whose mean is dominated by a few
/// heavy outliers — the probabilistic baselines serve answers that
/// violate θ while claiming otherwise, and Tabula does not.
///
/// * `SampleFirst` filters a global pre-drawn sample, so the planted
///   cell's outliers are almost surely absent and the served mean is
///   wildly off.
/// * `SnappyLike` stratifies over the QCS, but its per-stratum sample
///   misses every outlier; the within-sample variance is then zero, the
///   CLT error estimate reads ≈ 0, and the engine confidently skips the
///   raw-scan fallback — a wrong answer with a clean bill of health.
/// * Tabula's dry run flags the cell as iceberg (its loss against the
///   global sample exceeds θ) and materializes a greedy local sample
///   that is within θ by construction.
#[test]
fn baselines_violate_theta_on_planted_iceberg_cell_while_tabula_does_not() {
    use tabula::core::loss::{MeanLoss, LOSS_EPS};
    use tabula::storage::{ColumnType, Field, Schema, TableBuilder, Value};

    let theta = 0.1;
    let schema = Schema::new(vec![
        Field::new("city", ColumnType::Str),
        Field::new("payment", ColumnType::Str),
        Field::new("fare", ColumnType::Float64),
    ]);
    let mut b = TableBuilder::new(schema);
    // 4 000 unremarkable rows across 8×4 ordinary cells.
    for i in 0..4_000usize {
        b.push_row(&[
            Value::Str(format!("c{}", i % 8)),
            Value::Str(format!("p{}", i % 4)),
            Value::Float64(9.0 + (i % 5) as f64 * 0.5),
        ])
        .unwrap();
    }
    // The planted cell: 294 ordinary fares plus 6 heavy outliers. Raw
    // mean ≈ 49.8; any sample that misses the outliers answers ≈ 10.
    for i in 0..300usize {
        let fare = if i % 50 == 49 { 2_000.0 } else { 10.0 };
        b.push_row(&[Value::Str("z".into()), Value::Str("dispute".into()), Value::Float64(fare)])
            .unwrap();
    }
    let t = Arc::new(b.finish());
    let fare = t.schema().index_of("fare").unwrap();
    let loss = MeanLoss::new(fare);
    let pred = Predicate::eq("city", "z").and("payment", tabula::storage::CmpOp::Eq, "dispute");
    let raw = pred.filter(&t).unwrap();
    let raw_mean = raw
        .iter()
        .map(|&r| match t.value(r as usize, fare) {
            Value::Float64(v) => v,
            _ => unreachable!(),
        })
        .sum::<f64>()
        / raw.len() as f64;
    assert!(raw_mean > 45.0, "planted outliers must dominate the cell mean, got {raw_mean}");

    // SampleFirst: a 200-row global pre-sample (≈ 4.6 % of the table)
    // almost surely carries none of the 6 outliers.
    let sample_first = SampleFirst::with_rows(Arc::clone(&t), 200, 7);
    let sf_loss = loss.loss(&t, &raw, &sample_first.query(&pred).rows);
    assert!(
        sf_loss > theta,
        "SampleFirst should violate θ on the planted cell, achieved loss {sf_loss}"
    );

    // SnappyLike: 20-row strata miss every outlier, variance reads zero,
    // the error estimate claims (near) perfection — and the answer is
    // off by ~5×.
    let snappy =
        SnappyLike::build(Arc::clone(&t), &["city", "payment"], "fare", 20, theta, 1).unwrap();
    let answer = snappy.query_avg(&pred);
    assert!(
        !answer.fell_back_to_raw,
        "the CLT estimate must (wrongly) clear the bound for the contrast to bite"
    );
    assert!(answer.estimated_error <= theta, "claimed error {}", answer.estimated_error);
    let true_rel_err = (answer.avg - raw_mean).abs() / raw_mean.abs();
    assert!(
        true_rel_err > theta,
        "SnappyLike should violate θ on the planted cell: avg {} vs raw mean {raw_mean}",
        answer.avg
    );

    // Tabula: the cell is iceberg, gets a local greedy sample, and the
    // served answer respects θ — with certainty, not confidence.
    let cube = SamplingCubeBuilder::new(Arc::clone(&t), &["city", "payment"], loss.clone(), theta)
        .seed(9)
        .build()
        .unwrap();
    let cube_answer = cube.query(&pred).unwrap();
    assert!(
        matches!(cube_answer.provenance, tabula::core::SampleProvenance::Local(_)),
        "the planted cell must be materialized as iceberg, got {:?}",
        cube_answer.provenance
    );
    let tabula_loss = loss.loss(&t, &raw, &cube_answer.rows);
    assert!(tabula_loss <= theta + LOSS_EPS, "Tabula violated θ: {tabula_loss}");
}
