//! Analytics workload generation: the "randomly pick 100 SQL queries
//! (cells) from the cube" workload of the paper's Section V.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tabula_storage::{CellKey, CuboidMask, Predicate, Result, Table, Value};

/// One workload query: a cube cell plus the equivalent SQL-style predicate
/// over the cubed attributes.
#[derive(Debug, Clone)]
pub struct QueryCell {
    /// The cell in code space (aligned with the workload's attribute list).
    pub cell: CellKey,
    /// The same cell as an equality conjunction in value space.
    pub predicate: Predicate,
    /// Human-readable rendering, e.g. `payment_type = cash AND rate_code = jfk`.
    pub description: String,
}

/// Generates workload queries over a table's cubed attributes.
#[derive(Debug, Clone)]
pub struct Workload {
    attrs: Vec<String>,
}

impl Workload {
    /// A workload over the given cubed attributes (order defines code
    /// alignment with [`CellKey`]).
    pub fn new(attrs: &[impl AsRef<str>]) -> Self {
        Workload { attrs: attrs.iter().map(|a| a.as_ref().to_owned()).collect() }
    }

    /// The cubed attribute names.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Draw `n` random, guaranteed-non-empty query cells.
    ///
    /// Sampling picks a random row and projects it onto a random non-empty
    /// cuboid, so every generated query hits a populated cell — matching
    /// the paper, which samples cells *from the cube* (all of which are
    /// populated by construction).
    pub fn generate(&self, table: &Table, n: usize, seed: u64) -> Result<Vec<QueryCell>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cols: Vec<usize> =
            self.attrs.iter().map(|a| table.schema().index_of(a)).collect::<Result<_>>()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let row = rng.gen_range(0..table.len());
            // Random cuboid: any subset of attributes, including ALL (the
            // paper's workloads include coarse cells).
            let mask = CuboidMask(rng.gen_range(0..(1u64 << cols.len())) as u32);
            out.push(self.cell_for_row(table, &cols, row, mask)?);
        }
        Ok(out)
    }

    /// Draw `n` queries simulating a dashboard **zoom/pan session** — the
    /// temporally-local access pattern a serving-layer cache sees.
    ///
    /// The generator random-walks the cuboid lattice anchored at a raw
    /// row: a *zoom in* constrains one more attribute, a *zoom out*
    /// releases one, a *pan* re-anchors to a different row at the same
    /// zoom level, and with probability `revisit` the session re-issues a
    /// recently seen query verbatim (the user panning back). Every query
    /// is still guaranteed non-empty (cells are projections of real
    /// rows), and generation is deterministic in `seed`.
    pub fn generate_session(
        &self,
        table: &Table,
        n: usize,
        seed: u64,
        revisit: f64,
    ) -> Result<Vec<QueryCell>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cols: Vec<usize> =
            self.attrs.iter().map(|a| table.schema().index_of(a)).collect::<Result<_>>()?;
        let n_attrs = cols.len();
        let mut out: Vec<QueryCell> = Vec::with_capacity(n);
        // Sliding window of recent queries a "pan back" can revisit.
        const WINDOW: usize = 16;
        let mut row = rng.gen_range(0..table.len());
        let mut mask = CuboidMask(0);
        for _ in 0..n {
            if !out.is_empty() && rng.gen_bool(revisit.clamp(0.0, 1.0)) {
                let back = rng.gen_range(0..out.len().min(WINDOW));
                let q = out[out.len() - 1 - back].clone();
                out.push(q);
                continue;
            }
            match rng.gen_range(0..3u32) {
                // Zoom in: constrain one currently-free attribute.
                0 if (mask.0.count_ones() as usize) < n_attrs => {
                    let free: Vec<usize> = (0..n_attrs).filter(|&i| !mask.contains(i)).collect();
                    mask = CuboidMask(mask.0 | (1 << free[rng.gen_range(0..free.len())]));
                }
                // Zoom out: release one constrained attribute.
                1 if mask.0 != 0 => {
                    let held: Vec<usize> = (0..n_attrs).filter(|&i| mask.contains(i)).collect();
                    mask = CuboidMask(mask.0 & !(1 << held[rng.gen_range(0..held.len())]));
                }
                // Pan: same zoom level, different anchor row.
                _ => row = rng.gen_range(0..table.len()),
            }
            out.push(self.cell_for_row(table, &cols, row, mask)?);
        }
        Ok(out)
    }

    /// Build the query cell obtained by projecting `row` onto `mask`.
    pub fn cell_for_row(
        &self,
        table: &Table,
        cols: &[usize],
        row: usize,
        mask: CuboidMask,
    ) -> Result<QueryCell> {
        let mut codes = Vec::with_capacity(cols.len());
        let mut predicate = Predicate::all();
        let mut parts: Vec<String> = Vec::new();
        for (i, &col) in cols.iter().enumerate() {
            if mask.contains(i) {
                let cat = table.cat(col)?;
                let code = cat.codes()[row];
                codes.push(Some(code));
                let value: Value = cat.decode(code);
                parts.push(format!("{} = {}", self.attrs[i], value));
                predicate = predicate.and(self.attrs[i].clone(), tabula_storage::CmpOp::Eq, value);
            } else {
                codes.push(None);
            }
        }
        let description =
            if parts.is_empty() { "<all rows>".to_owned() } else { parts.join(" AND ") };
        Ok(QueryCell { cell: CellKey::new(codes), predicate, description })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mini::example_dcm_table;

    #[test]
    fn queries_are_deterministic_and_non_empty() {
        let t = example_dcm_table();
        let w = Workload::new(&["D", "C", "M"]);
        let a = w.generate(&t, 50, 3).unwrap();
        let b = w.generate(&t, 50, 3).unwrap();
        assert_eq!(a.len(), 50);
        for (qa, qb) in a.iter().zip(&b) {
            assert_eq!(qa.cell, qb.cell);
            // Every query must match at least one row.
            assert!(
                !qa.predicate.filter(&t).unwrap().is_empty(),
                "query {} matched nothing",
                qa.description
            );
        }
    }

    #[test]
    fn predicate_matches_exactly_the_cells_rows() {
        let t = example_dcm_table();
        let w = Workload::new(&["D", "C", "M"]);
        let cols = [0usize, 1, 2];
        let q = w.cell_for_row(&t, &cols, 0, CuboidMask(0b101)).unwrap();
        // Row 0 is ("[0,5)", 1, "credit"); mask 0b101 keeps D and M.
        assert_eq!(q.cell.codes, vec![Some(0), None, Some(0)]);
        let rows = q.predicate.filter(&t).unwrap();
        // All rows with D=[0,5), M=credit: rows 0, 1, 5.
        assert_eq!(rows, vec![0, 1, 5]);
        assert!(q.description.contains("D = [0,5)"));
        assert!(q.description.contains("M = credit"));
        assert!(!q.description.contains("C ="));
    }

    #[test]
    fn all_mask_yields_trivial_predicate() {
        let t = example_dcm_table();
        let w = Workload::new(&["D", "C", "M"]);
        let q = w.cell_for_row(&t, &[0, 1, 2], 3, CuboidMask(0)).unwrap();
        assert!(q.predicate.is_trivial());
        assert_eq!(q.description, "<all rows>");
        assert_eq!(q.predicate.filter(&t).unwrap().len(), t.len());
    }

    #[test]
    fn sessions_are_deterministic_local_and_non_empty() {
        let t = example_dcm_table();
        let w = Workload::new(&["D", "C", "M"]);
        let a = w.generate_session(&t, 200, 7, 0.4).unwrap();
        let b = w.generate_session(&t, 200, 7, 0.4).unwrap();
        assert_eq!(a.len(), 200);
        let mut repeats = 0;
        let mut seen: Vec<&CellKey> = Vec::new();
        for (qa, qb) in a.iter().zip(&b) {
            assert_eq!(qa.cell, qb.cell, "session must be deterministic in seed");
            assert!(!qa.predicate.filter(&t).unwrap().is_empty(), "{}", qa.description);
            if seen.contains(&&qa.cell) {
                repeats += 1;
            }
            seen.push(&qa.cell);
        }
        // Zoom/pan locality: a large share of the session re-hits cells.
        assert!(repeats > 40, "expected cache-friendly locality, got {repeats} repeats");
    }

    #[test]
    fn session_with_zero_revisit_still_works() {
        let t = example_dcm_table();
        let w = Workload::new(&["D", "C"]);
        let qs = w.generate_session(&t, 50, 11, 0.0).unwrap();
        assert_eq!(qs.len(), 50);
    }

    #[test]
    fn unknown_attribute_is_error() {
        let t = example_dcm_table();
        let w = Workload::new(&["D", "missing"]);
        assert!(w.generate(&t, 1, 0).is_err());
    }
}
