//! Histogram construction over scalar data (the paper's Figure 1 fare
//! histogram task).

/// An equi-width histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Build a histogram of `values` with `buckets` equi-width buckets
    /// over `[min, max]`. Values outside the range clamp into the edge
    /// buckets (matching typical plotting-tool behaviour).
    pub fn build(values: &[f64], buckets: usize, min: f64, max: f64) -> Self {
        assert!(buckets > 0, "at least one bucket required");
        assert!(max > min, "empty value range");
        let mut counts = vec![0u64; buckets];
        let span = max - min;
        for &v in values {
            let idx = (((v - min) / span * buckets as f64).floor() as isize)
                .clamp(0, buckets as isize - 1) as usize;
            counts[idx] += 1;
        }
        Histogram { min, max, counts }
    }

    /// Build with the range taken from the data itself.
    pub fn auto(values: &[f64], buckets: usize) -> Self {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if !lo.is_finite() || hi <= lo {
            // Degenerate: a single bucket around the lone value (or zero).
            let center = if lo.is_finite() { lo } else { 0.0 };
            return Histogram::build(values, buckets, center - 0.5, center + 0.5);
        }
        Histogram::build(values, buckets, lo, hi)
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Normalized bucket frequencies (sum 1, or all zeros when empty).
    pub fn frequencies(&self) -> Vec<f64> {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / total as f64).collect()
    }

    /// The `[min, max]` range.
    pub fn range(&self) -> (f64, f64) {
        (self.min, self.max)
    }

    /// L1 distance between two histograms' frequency vectors — how
    /// different the plotted shapes look (0 = identical, 2 = disjoint).
    pub fn shape_distance(&self, other: &Histogram) -> f64 {
        assert_eq!(self.counts.len(), other.counts.len(), "bucket counts differ");
        self.frequencies().iter().zip(other.frequencies()).map(|(a, b)| (a - b).abs()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_the_right_buckets() {
        let h = Histogram::build(&[0.5, 1.5, 1.6, 9.9], 10, 0.0, 10.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts().iter().sum::<u64>(), 4);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let h = Histogram::build(&[-5.0, 15.0], 10, 0.0, 10.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
    }

    #[test]
    fn auto_range_and_degenerate_input() {
        let h = Histogram::auto(&[2.0, 2.0, 2.0], 5);
        assert_eq!(h.counts().iter().sum::<u64>(), 3);
        let h = Histogram::auto(&[], 5);
        assert_eq!(h.counts().iter().sum::<u64>(), 0);
        assert_eq!(h.frequencies(), vec![0.0; 5]);
    }

    #[test]
    fn shape_distance_reflects_similarity() {
        let raw: Vec<f64> = (0..1000).map(|i| (i % 100) as f64).collect();
        // step 7 is coprime with the 100-value cycle, so the subsample
        // covers every residue and keeps the shape; step 10 would alias.
        let good: Vec<f64> = raw.iter().step_by(7).cloned().collect();
        let skewed: Vec<f64> = raw.iter().filter(|&&v| v < 20.0).cloned().collect();
        let hr = Histogram::build(&raw, 20, 0.0, 100.0);
        let hg = Histogram::build(&good, 20, 0.0, 100.0);
        let hs = Histogram::build(&skewed, 20, 0.0, 100.0);
        assert!(hr.shape_distance(&hg) < 0.05);
        assert!(hr.shape_distance(&hs) > 1.0);
    }
}
