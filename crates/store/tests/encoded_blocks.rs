//! Encoded column blocks through a real snapshot: zero-copy views,
//! byte-identical re-serialization, copy-on-write decode accounting, and
//! rejection of structurally corrupt encoded payloads.
//!
//! Whole-file corruption (bit flips, truncation) is caught upstream by
//! the snapshot checksums — see `tests/snapshot_corruption.rs` at the
//! workspace root. The cases here are the ones checksums *cannot* catch:
//! a block that was checksummed after it was written wrong, i.e. an
//! internally inconsistent encoded payload behind a valid footer. Every
//! one must surface as a typed [`StoreError::BadBlock`] at load — never
//! a panic, never a silently wrong column.

use tabula_storage::{decode_count, ColumnBuf, EncodedBuf, EncodingMode};
use tabula_store::blocks::{encode_column_data, ColumnData, FOR_HEADER, RLE_HEADER};
use tabula_store::{Snapshot, SnapshotWriter, StoreError};

/// Ten long runs — Force picks RLE.
fn clustered() -> Vec<i64> {
    (0..1_000).map(|i| (i / 100) * 7 - 3).collect()
}

/// Scattered small values — Force picks FOR.
fn scattered() -> Vec<u32> {
    (0..1_000).map(|i| (i * 37) % 101).collect()
}

fn force<T: tabula_storage::Codable>(values: Vec<T>) -> ColumnBuf<T> {
    let mut buf: ColumnBuf<T> = values.into();
    buf.encode_in_place(EncodingMode::Force);
    buf
}

fn snapshot_with(name: &str, rows: u64, payload: &[u8]) -> Snapshot {
    let mut w = SnapshotWriter::new();
    w.add_block(name, rows, payload).unwrap();
    Snapshot::from_bytes(w.finish().unwrap()).unwrap()
}

#[test]
fn rle_block_round_trips_zero_copy_and_reserializes_identically() {
    let values = clustered();
    let buf = force(values.clone());
    let ColumnData::Rle(bytes) = encode_column_data(&buf) else {
        panic!("clustered i64s must RLE-encode")
    };
    let snap = snapshot_with("col:0:data:rle", values.len() as u64, &bytes);
    let enc = snap.block("col:0:data:rle").unwrap().encoded_rle::<i64>().unwrap();
    assert_eq!(enc.len(), values.len());
    // Per-row access reads the mapped bytes directly — no decode.
    for (i, &v) in values.iter().enumerate() {
        assert_eq!(enc.get(i), v);
    }
    // Re-serializing the loaded view reproduces the block byte-for-byte,
    // so a load → re-freeze cycle cannot drift.
    let restored: ColumnBuf<i64> = EncodedBuf::new(enc).into();
    let ColumnData::Rle(again) = encode_column_data(&restored) else {
        panic!("restored buffer must still be RLE")
    };
    assert_eq!(again, bytes);
}

#[test]
fn for_block_round_trips_zero_copy_and_reserializes_identically() {
    let values = scattered();
    let buf = force(values.clone());
    let ColumnData::For(bytes) = encode_column_data(&buf) else {
        panic!("scattered u32s must FOR-encode")
    };
    let snap = snapshot_with("col:0:codes:for", values.len() as u64, &bytes);
    let enc = snap.block("col:0:codes:for").unwrap().encoded_for::<u32>().unwrap();
    assert_eq!(enc.len(), values.len());
    for (i, &v) in values.iter().enumerate() {
        assert_eq!(enc.get(i), v);
    }
    let restored: ColumnBuf<u32> = EncodedBuf::new(enc).into();
    let ColumnData::For(again) = encode_column_data(&restored) else {
        panic!("restored buffer must still be FOR")
    };
    assert_eq!(again, bytes);
}

/// The one test in this binary that decodes: a snapshot-backed encoded
/// buffer decodes exactly once — the deref fills the shared cache and
/// `to_mut` (copy-on-write) reuses it instead of decoding again.
#[test]
fn snapshot_backed_buffer_decodes_once_on_write() {
    let values = clustered();
    let buf = force(values.clone());
    let ColumnData::Rle(bytes) = encode_column_data(&buf) else { panic!() };
    let snap = snapshot_with("col:0:data:rle", values.len() as u64, &bytes);
    let enc = snap.block("col:0:data:rle").unwrap().encoded_rle::<i64>().unwrap();
    let mut restored: ColumnBuf<i64> = EncodedBuf::new(enc).into();

    let before = decode_count();
    assert_eq!(&restored[..], &values[..]); // deref: the one decode
    let rows = restored.to_mut(); // CoW: reuses the cached decode
    rows[0] += 1;
    assert_eq!(decode_count() - before, 1, "deref + to_mut must share one decode");
    assert_eq!(restored[0], values[0] + 1);
}

/// Every structural fault in an encoded block is a typed `BadBlock`
/// naming the damaged region.
fn expect_bad_rle(name: &str, rows: u64, payload: &[u8]) -> String {
    let snap = snapshot_with(name, rows, payload);
    match snap.block(name).unwrap().encoded_rle::<i64>() {
        Err(StoreError::BadBlock { region, reason }) => {
            assert_eq!(region, format!("block:{name}"));
            reason
        }
        other => panic!("corrupt RLE block must be BadBlock, got {other:?}"),
    }
}

#[test]
fn truncated_rle_payload_is_rejected() {
    let values = clustered();
    let ColumnData::Rle(bytes) = encode_column_data(&force(values.clone())) else { panic!() };
    // Drop the final run-end word: header still claims 10 runs.
    let reason = expect_bad_rle("c", values.len() as u64, &bytes[..bytes.len() - 4]);
    assert!(reason.contains("do not tile"), "{reason}");
    // Truncate into the header itself.
    let reason = expect_bad_rle("c", values.len() as u64, &bytes[..RLE_HEADER - 8]);
    assert!(reason.contains("overruns"), "{reason}");
}

#[test]
fn non_monotonic_rle_run_ends_are_rejected() {
    let values = clustered();
    let ColumnData::Rle(mut bytes) = encode_column_data(&force(values.clone())) else { panic!() };
    // Swap the first two run ends (they live after 10 × i64 run values).
    let ends_at = RLE_HEADER + 10 * 8;
    let (a, b) = (ends_at, ends_at + 4);
    for k in 0..4 {
        bytes.swap(a + k, b + k);
    }
    let reason = expect_bad_rle("c", values.len() as u64, &bytes);
    assert!(reason.contains("not strictly increasing"), "{reason}");
}

#[test]
fn rle_row_count_mismatch_with_manifest_is_rejected() {
    let values = clustered();
    let ColumnData::Rle(bytes) = encode_column_data(&force(values.clone())) else { panic!() };
    let reason = expect_bad_rle("c", values.len() as u64 + 1, &bytes);
    assert!(reason.contains("manifest"), "{reason}");
}

#[test]
fn rle_last_end_must_equal_row_count() {
    let values = clustered();
    let ColumnData::Rle(mut bytes) = encode_column_data(&force(values.clone())) else { panic!() };
    // Shrink the final run end by one row; lie about the row count in the
    // header too so the ends are the only inconsistency left.
    let last_end_at = RLE_HEADER + 10 * 8 + 9 * 4;
    let mut last = u32::from_le_bytes(bytes[last_end_at..last_end_at + 4].try_into().unwrap());
    last -= 1;
    bytes[last_end_at..last_end_at + 4].copy_from_slice(&last.to_le_bytes());
    let reason = expect_bad_rle("c", values.len() as u64, &bytes);
    assert!(reason.contains("does not equal row count"), "{reason}");
}

#[test]
fn truncated_for_payload_is_rejected() {
    let values = scattered();
    let ColumnData::For(bytes) = encode_column_data(&force(values.clone())) else { panic!() };
    let snap = snapshot_with("c", values.len() as u64, &bytes[..bytes.len() - 8]);
    match snap.block("c").unwrap().encoded_for::<u32>() {
        Err(StoreError::BadBlock { reason, .. }) => {
            assert!(reason.contains("do not tile"), "{reason}")
        }
        other => panic!("truncated FOR block must be BadBlock, got {other:?}"),
    }
}

#[test]
fn for_width_over_64_bits_is_rejected() {
    let values = scattered();
    let ColumnData::For(mut bytes) = encode_column_data(&force(values.clone())) else { panic!() };
    bytes[16..24].copy_from_slice(&65u64.to_le_bytes());
    let snap = snapshot_with("c", values.len() as u64, &bytes);
    match snap.block("c").unwrap().encoded_for::<u32>() {
        Err(StoreError::BadBlock { reason, .. }) => {
            assert!(reason.contains("exceeds 64 bits"), "{reason}")
        }
        other => panic!("width=65 FOR block must be BadBlock, got {other:?}"),
    }
}

#[test]
fn for_ordinal_overflowing_the_value_type_is_rejected() {
    // A hand-built FOR block whose base + delta exceeds u32::MAX: four
    // rows, width 8, base u32::MAX - 1. Row deltas 0..4 push rows 2 and 3
    // past the u32 domain — structurally valid, semantically impossible.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&4u64.to_le_bytes()); // len
    bytes.extend_from_slice(&(u32::MAX as u64 - 1).to_le_bytes()); // base
    bytes.extend_from_slice(&8u64.to_le_bytes()); // width
    bytes.extend_from_slice(&u64::from_le_bytes([0, 1, 2, 3, 0, 0, 0, 0]).to_le_bytes());
    assert_eq!(bytes.len(), FOR_HEADER + 8);
    let snap = snapshot_with("c", 4, &bytes);
    match snap.block("c").unwrap().encoded_for::<u32>() {
        Err(StoreError::BadBlock { reason, .. }) => {
            assert!(reason.contains("does not fit"), "{reason}")
        }
        other => panic!("overflowing FOR ordinals must be BadBlock, got {other:?}"),
    }
}
