//! **Ablation: the real-run cost model (Inequality 1)** — for every
//! iceberg cuboid of a dry run, time BOTH fetch plans (prune-then-group
//! vs. group-everything) and report which one the paper's cost model
//! picked vs. which actually won. Quantifies how often the literal model
//! is right on this engine.
//!
//! ```bash
//! cargo run --release -p tabula-bench --bin ablation_cost_model
//! ```

use std::time::Instant;
use tabula_bench::{default_rows, fmt_duration, taxi_table, SEED};
use tabula_core::dryrun::dry_run;
use tabula_core::loss::MeanLoss;
use tabula_core::realrun::{choose_plan, CuboidPlan};
use tabula_core::serfling::draw_global_sample;
use tabula_core::AccuracyLoss;
use tabula_data::CUBED_ATTRIBUTES;
use tabula_storage::group::group_rows;
use tabula_storage::join::semi_join;
use tabula_storage::{group_by, FxHashSet};

fn main() {
    let rows = default_rows();
    let table = taxi_table(rows);
    let fare = table.schema().index_of("fare_amount").unwrap();
    let loss = MeanLoss::new(fare);
    let theta = 0.05;
    let cols: Vec<usize> =
        CUBED_ATTRIBUTES[..5].iter().map(|a| table.schema().index_of(a).unwrap()).collect();
    let global = draw_global_sample(&table, 1060, SEED);
    let ctx = loss.prepare(&table, &global);
    let dry = dry_run(&table, &cols, &loss, &ctx, theta).unwrap();

    println!("# Ablation: Inequality-1 cost model | rows = {rows} | mean loss, θ = 5%");
    println!(
        "\n{:<10} {:>8} {:>8} {:>12} {:>12} {:>14} {:>8}",
        "cuboid", "cells", "iceberg", "prune time", "group time", "model picked", "right?"
    );
    println!("{}", "-".repeat(78));
    let mut agree = 0usize;
    let mut total = 0usize;
    let mut masks: Vec<_> = dry.iceberg.keys().copied().collect();
    masks.sort_by_key(|m| (std::cmp::Reverse(m.arity()), *m));
    for mask in masks {
        let iceberg_keys = &dry.iceberg[&mask];
        let attrs: Vec<usize> = mask.attrs().iter().map(|&a| cols[a]).collect();
        let k_cells = dry.states.cuboids[&mask].len();
        let iceberg_set: FxHashSet<Vec<u32>> = iceberg_keys.iter().cloned().collect();

        let t0 = Instant::now();
        let joined = semi_join(&table, &attrs, &iceberg_set).unwrap();
        let _pruned = group_rows(&table, &attrs, &joined).unwrap();
        let prune_t = t0.elapsed();

        let t0 = Instant::now();
        let _all = group_by(&table, &attrs).unwrap();
        let group_t = t0.elapsed();

        let picked = choose_plan(table.len(), iceberg_keys.len(), k_cells);
        let actual_winner =
            if prune_t < group_t { CuboidPlan::PruneThenGroup } else { CuboidPlan::GroupAll };
        let right = picked == actual_winner;
        agree += usize::from(right);
        total += 1;
        println!(
            "{:<10} {:>8} {:>8} {:>12} {:>12} {:>14} {:>8}",
            mask.to_string(),
            k_cells,
            iceberg_keys.len(),
            fmt_duration(prune_t),
            fmt_duration(group_t),
            match picked {
                CuboidPlan::PruneThenGroup => "prune",
                CuboidPlan::GroupAll => "group-all",
            },
            if right { "yes" } else { "NO" },
        );
    }
    println!("\nmodel agreed with the measured winner on {agree}/{total} cuboids");
}
