//! Query provenance accounting.
//!
//! Every cube query answer is served from one of three sources (the paper's
//! Section V taxonomy): a materialized *local* sample for the queried cell, a
//! fallback to the *global* sample, or nothing at all because the cell's
//! domain is empty. A serving layer in front of the cube adds a fourth
//! outcome: the answer came straight from its answer cache, without touching
//! the cube at all. [`ProvenanceCounters`] tallies those outcomes with one
//! relaxed `fetch_add` per query — cheap enough to stay on permanently inside
//! `SamplingCube::query_cell`.
//!
//! Accounting is exact: each query increments exactly one of the four
//! counters, so [`ProvenanceCounters::total`] always equals the number of
//! queries served.

use crate::metrics::{Counter, Registry};
use std::sync::Arc;

/// Counter name for answers served from a cell's local sample.
pub const LOCAL_HIT: &str = "query.provenance.local_hit";
/// Counter name for answers that fell back to the global sample.
pub const GLOBAL_HIT: &str = "query.provenance.global_hit";
/// Counter name for queries on cells with an empty domain.
pub const CELL_MISS: &str = "query.provenance.cell_miss";
/// Counter name for answers served from a serving layer's answer cache
/// (the cube itself was not consulted).
pub const SERVE_CACHE_HIT: &str = "query.provenance.serve_cache_hit";

/// Pre-resolved handles to the provenance counters of a [`Registry`].
///
/// Resolve once (at cube construction), then tally lock-free. Cloning shares
/// the underlying counters.
#[derive(Debug, Clone)]
pub struct ProvenanceCounters {
    local_hit: Arc<Counter>,
    global_hit: Arc<Counter>,
    cell_miss: Arc<Counter>,
    serve_cache_hit: Arc<Counter>,
}

impl ProvenanceCounters {
    /// Resolve the provenance counters in `registry`.
    pub fn in_registry(registry: &Registry) -> Self {
        Self {
            local_hit: registry.counter(LOCAL_HIT),
            global_hit: registry.counter(GLOBAL_HIT),
            cell_miss: registry.counter(CELL_MISS),
            serve_cache_hit: registry.counter(SERVE_CACHE_HIT),
        }
    }

    /// Resolve against the process-wide registry.
    pub fn global() -> Self {
        Self::in_registry(crate::metrics::global())
    }

    #[inline]
    pub fn record_local_hit(&self) {
        self.local_hit.inc();
    }

    #[inline]
    pub fn record_global_hit(&self) {
        self.global_hit.inc();
    }

    #[inline]
    pub fn record_cell_miss(&self) {
        self.cell_miss.inc();
    }

    /// Tally an answer served from a serving layer's cache. The cached
    /// answer's original provenance was already tallied when it was first
    /// computed, so a cache hit bumps *only* this counter — keeping
    /// [`ProvenanceCounters::total`] equal to the number of queries.
    #[inline]
    pub fn record_serve_cache_hit(&self) {
        self.serve_cache_hit.inc();
    }

    pub fn local_hits(&self) -> u64 {
        self.local_hit.get()
    }

    pub fn global_hits(&self) -> u64 {
        self.global_hit.get()
    }

    pub fn cell_misses(&self) -> u64 {
        self.cell_miss.get()
    }

    pub fn serve_cache_hits(&self) -> u64 {
        self.serve_cache_hit.get()
    }

    /// Total queries accounted for. For a workload whose every query goes
    /// through the cube (or a serving layer in front of it), this equals
    /// the workload size exactly.
    pub fn total(&self) -> u64 {
        self.local_hits() + self.global_hits() + self.cell_misses() + self.serve_cache_hits()
    }
}

impl Default for ProvenanceCounters {
    fn default() -> Self {
        Self::global()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_land_in_owning_registry() {
        let r = Registry::new();
        let p = ProvenanceCounters::in_registry(&r);
        p.record_local_hit();
        p.record_local_hit();
        p.record_global_hit();
        p.record_cell_miss();
        p.record_serve_cache_hit();
        assert_eq!(p.local_hits(), 2);
        assert_eq!(p.global_hits(), 1);
        assert_eq!(p.cell_misses(), 1);
        assert_eq!(p.serve_cache_hits(), 1);
        assert_eq!(p.total(), 5);
        let snap = r.snapshot();
        assert_eq!(snap.counter(LOCAL_HIT), 2);
        assert_eq!(snap.counter(GLOBAL_HIT), 1);
        assert_eq!(snap.counter(CELL_MISS), 1);
        assert_eq!(snap.counter(SERVE_CACHE_HIT), 1);
    }

    #[test]
    fn clones_share_counters() {
        let r = Registry::new();
        let a = ProvenanceCounters::in_registry(&r);
        let b = a.clone();
        a.record_local_hit();
        b.record_local_hit();
        assert_eq!(a.local_hits(), 2);
    }
}
