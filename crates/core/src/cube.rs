//! The materialized sampling cube: the artifact queried by the dashboard.
//!
//! Physical layout (paper Figure 4): a **cube table** mapping each iceberg
//! cell to a sample id, and a **sample table** holding the persisted
//! representative samples. Queries whose cell is *not* in the cube table
//! are answered with the **global sample** — the dry run proved its loss
//! is within θ for those cells, so the guarantee holds either way.

use crate::{CoreError, Result};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;
use tabula_obs::ProvenanceCounters;
use tabula_storage::cube::CellKey;
use tabula_storage::{CmpOp, FxHashMap, Predicate, RowId, Table};

/// Where a query answer's sample came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleProvenance {
    /// A materialized local (representative) sample; payload is the
    /// sample-table id.
    Local(u32),
    /// The global random sample.
    Global,
    /// The query's cell cannot exist (a predicate value outside the
    /// attribute's domain), so the raw answer is empty.
    EmptyDomain,
}

/// Answer to a dashboard query: row ids of the sample plus provenance.
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// Sample rows (ids into the raw table the cube was built over).
    pub rows: Arc<Vec<RowId>>,
    /// Which path produced them.
    pub provenance: SampleProvenance,
}

impl QueryAnswer {
    /// Number of tuples the dashboard will receive.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the answer carries no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Materialize the sample as a standalone table (what actually gets
    /// shipped to the visualization tool).
    pub fn materialize(&self, table: &Table) -> Table {
        table.take(&self.rows)
    }

    /// [`materialize`](Self::materialize) into an existing table of the
    /// same schema, reusing its column buffer capacity — the serving and
    /// incremental-refresh paths rematerialize answers round after round,
    /// and a kept scratch table makes that allocation-free at steady state.
    /// Returns `false` (leaving `out` untouched beyond cleared columns) on
    /// a schema mismatch.
    pub fn materialize_into(&self, table: &Table, out: &mut Table) -> bool {
        table.take_into(&self.rows, out)
    }
}

/// Per-stage build statistics reported by the benchmark harness.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BuildStats {
    /// Wall time of the dry-run stage.
    pub dry_run: Duration,
    /// Wall time of the real-run stage.
    pub real_run: Duration,
    /// Wall time of SamGraph construction + Algorithm 3.
    pub selection: Duration,
    /// Total initialization wall time.
    pub total: Duration,
    /// Populated cells across the whole cube lattice.
    pub total_cells: usize,
    /// Iceberg cells found by the dry run.
    pub iceberg_cells: usize,
    /// Cuboids processed / skipped by the real run.
    pub cuboids_processed: usize,
    /// Cuboids skipped because they held no iceberg cells.
    pub cuboids_skipped: usize,
    /// Real-run cuboids that took the prune-then-group plan.
    pub prune_plans: usize,
    /// Real-run cuboids that took the full group-by plan.
    pub group_all_plans: usize,
    /// Local samples drawn before representative selection.
    pub samples_before_selection: usize,
    /// Samples persisted after selection.
    pub samples_after_selection: usize,
    /// Edges of the SamGraph (0 when selection is disabled).
    pub samgraph_edges: usize,
    /// Tuples in the global sample.
    pub global_sample_size: usize,
}

/// Memory footprint of the cube's three physical components (paper §V-B).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct MemoryBreakdown {
    /// Bytes of the global sample's tuples.
    pub global_bytes: usize,
    /// Bytes of the cube table (cell keys + sample ids).
    pub cube_table_bytes: usize,
    /// Bytes of the persisted samples' tuples.
    pub sample_table_bytes: usize,
}

impl MemoryBreakdown {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.global_bytes + self.cube_table_bytes + self.sample_table_bytes
    }
}

/// The queryable materialized sampling cube.
#[derive(Debug, Clone)]
pub struct SamplingCube {
    table: Arc<Table>,
    attrs: Vec<String>,
    cols: Vec<usize>,
    theta: f64,
    cube_table: FxHashMap<CellKey, u32>,
    samples: Vec<Arc<Vec<RowId>>>,
    global_sample: Arc<Vec<RowId>>,
    stats: BuildStats,
    /// Where each query answer came from (one relaxed counter bump per
    /// query; clones share the same counters).
    provenance: ProvenanceCounters,
}

impl SamplingCube {
    /// Assemble a cube. Used by the builder; not part of the typical user
    /// path.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        table: Arc<Table>,
        attrs: Vec<String>,
        cols: Vec<usize>,
        theta: f64,
        cube_table: FxHashMap<CellKey, u32>,
        samples: Vec<Arc<Vec<RowId>>>,
        global_sample: Arc<Vec<RowId>>,
        stats: BuildStats,
    ) -> Self {
        SamplingCube {
            table,
            attrs,
            cols,
            theta,
            cube_table,
            samples,
            global_sample,
            stats,
            provenance: ProvenanceCounters::global(),
        }
    }

    /// Re-home this cube's provenance counters in `registry` (they default
    /// to the process-wide registry). Use a private [`tabula_obs::Registry`]
    /// when isolated accounting is needed, e.g. in tests or benchmarks.
    pub fn with_registry(mut self, registry: &tabula_obs::Registry) -> Self {
        self.provenance = ProvenanceCounters::in_registry(registry);
        self
    }

    /// The cube's provenance counters (local hits / global-sample
    /// fallbacks / empty-domain misses).
    pub fn provenance_counters(&self) -> &ProvenanceCounters {
        &self.provenance
    }

    /// The raw table the cube was built over.
    pub fn table(&self) -> &Arc<Table> {
        &self.table
    }

    /// The cubed attribute names, in cube order.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// The cubed attributes' column indexes in the raw table, in cube
    /// order (parallel to [`SamplingCube::attrs`]).
    pub fn cubed_cols(&self) -> &[usize] {
        &self.cols
    }

    /// The accuracy-loss threshold the cube guarantees.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Build statistics.
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// Number of materialized (iceberg) cells in the cube table.
    pub fn materialized_cells(&self) -> usize {
        self.cube_table.len()
    }

    /// Number of persisted samples in the sample table.
    pub fn persisted_samples(&self) -> usize {
        self.samples.len()
    }

    /// The global sample's row ids.
    pub fn global_sample(&self) -> &Arc<Vec<RowId>> {
        &self.global_sample
    }

    /// Answer `SELECT sample FROM cube WHERE <pred>`.
    ///
    /// Every predicate term must be an equality on a cubed attribute (the
    /// paper: "the attributes in the WHERE clause must be a subset of the
    /// cubed attributes").
    pub fn query(&self, pred: &Predicate) -> Result<QueryAnswer> {
        let cell = self.cell_for_predicate(pred)?;
        match cell {
            Some(cell) => Ok(self.query_cell(&cell)),
            None => {
                self.provenance.record_cell_miss();
                Ok(QueryAnswer {
                    rows: Arc::new(Vec::new()),
                    provenance: SampleProvenance::EmptyDomain,
                })
            }
        }
    }

    /// Answer a query already resolved to a cube cell.
    pub fn query_cell(&self, cell: &CellKey) -> QueryAnswer {
        match self.cube_table.get(cell) {
            Some(&sample_id) => {
                self.provenance.record_local_hit();
                QueryAnswer {
                    rows: Arc::clone(&self.samples[sample_id as usize]),
                    provenance: SampleProvenance::Local(sample_id),
                }
            }
            None => {
                self.provenance.record_global_hit();
                QueryAnswer {
                    rows: Arc::clone(&self.global_sample),
                    provenance: SampleProvenance::Global,
                }
            }
        }
    }

    /// Resolve a predicate to a cube cell. `Ok(None)` means some predicate
    /// value is outside its attribute's domain (the raw answer is empty).
    pub fn cell_for_predicate(&self, pred: &Predicate) -> Result<Option<CellKey>> {
        let mut codes: Vec<Option<u32>> = vec![None; self.attrs.len()];
        for term in pred.terms() {
            if term.op != CmpOp::Eq {
                return Err(CoreError::Config(format!(
                    "sampling-cube queries support equality predicates only (column {})",
                    term.column
                )));
            }
            let pos = self
                .attrs
                .iter()
                .position(|a| a == &term.column)
                .ok_or_else(|| CoreError::NotCubedAttribute(term.column.clone()))?;
            let cat = self.table.cat(self.cols[pos])?;
            match cat.lookup(&term.value) {
                Some(code) => {
                    if codes[pos].is_some_and(|c| c != code) {
                        // Contradictory equality terms: empty answer.
                        return Ok(None);
                    }
                    codes[pos] = Some(code);
                }
                None => return Ok(None),
            }
        }
        Ok(Some(CellKey::new(codes)))
    }

    /// The paper's memory-footprint accounting: bytes of the three
    /// physical components, counting each persisted sample tuple at the
    /// table's row width (what materializing it in the data system costs).
    pub fn memory_breakdown(&self) -> MemoryBreakdown {
        let row = self.table.row_bytes();
        let n = self.attrs.len();
        // Cell key: n × (1 presence byte + 4 code bytes), plus a 4-byte
        // sample id and nominal hash-table slot overhead.
        let per_entry = n * 5 + 4 + 16;
        MemoryBreakdown {
            global_bytes: self.global_sample.len() * row,
            cube_table_bytes: self.cube_table.len() * per_entry,
            sample_table_bytes: self.samples.iter().map(|s| s.len() * row).sum(),
        }
    }

    /// Iterate the cube table (cell → sample id) in unspecified order.
    pub fn cube_table(&self) -> impl Iterator<Item = (&CellKey, u32)> + '_ {
        self.cube_table.iter().map(|(k, &v)| (k, v))
    }

    /// A persisted sample's rows by id.
    pub fn sample(&self, id: u32) -> &Arc<Vec<RowId>> {
        &self.samples[id as usize]
    }
}

/// Serializable form of a cube (row ids only; pair with the same raw
/// table when loading).
#[derive(Serialize, Deserialize)]
pub struct CubePersist {
    /// Cubed attribute names.
    pub attrs: Vec<String>,
    /// Loss threshold.
    pub theta: f64,
    /// Cube table as (cell, sample id) pairs.
    pub cube_table: Vec<(CellKey, u32)>,
    /// Sample table.
    pub samples: Vec<Vec<RowId>>,
    /// Global sample.
    pub global_sample: Vec<RowId>,
    /// Build statistics.
    pub stats: BuildStats,
}

impl SamplingCube {
    /// Extract the serializable state.
    pub fn to_persist(&self) -> CubePersist {
        let mut cube_table: Vec<(CellKey, u32)> =
            self.cube_table.iter().map(|(k, &v)| (k.clone(), v)).collect();
        cube_table.sort_by(|a, b| a.0.codes.cmp(&b.0.codes));
        CubePersist {
            attrs: self.attrs.clone(),
            theta: self.theta,
            cube_table,
            samples: self.samples.iter().map(|s| s.as_ref().clone()).collect(),
            global_sample: self.global_sample.as_ref().clone(),
            stats: self.stats.clone(),
        }
    }

    /// Rebuild a cube from persisted state plus the raw table it was
    /// built over.
    pub fn from_persist(persist: CubePersist, table: Arc<Table>) -> Result<Self> {
        let cols: Vec<usize> = persist
            .attrs
            .iter()
            .map(|a| table.schema().index_of(a))
            .collect::<std::result::Result<_, _>>()?;
        Ok(SamplingCube {
            table,
            attrs: persist.attrs,
            cols,
            theta: persist.theta,
            cube_table: persist.cube_table.into_iter().collect(),
            samples: persist.samples.into_iter().map(Arc::new).collect(),
            global_sample: Arc::new(persist.global_sample),
            stats: persist.stats,
            provenance: ProvenanceCounters::global(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{MaterializationMode, SamplingCubeBuilder};
    use crate::loss::MeanLoss;
    use tabula_data::example_dcm_table;

    fn cube() -> SamplingCube {
        let t = Arc::new(example_dcm_table());
        let fare = t.schema().index_of("fare").unwrap();
        SamplingCubeBuilder::new(Arc::clone(&t), &["D", "C", "M"], MeanLoss::new(fare), 0.10)
            .seed(1)
            .mode(MaterializationMode::Tabula)
            .build()
            .unwrap()
    }

    #[test]
    fn query_hits_local_sample_for_iceberg_cells() {
        let c = cube();
        assert!(c.materialized_cells() > 0);
        // Find some materialized cell and query it by predicate.
        let (cell, sample_id) = {
            let (k, v) = c.cube_table().next().unwrap();
            (k.clone(), v)
        };
        let answer = c.query_cell(&cell);
        assert_eq!(answer.provenance, SampleProvenance::Local(sample_id));
        assert!(!answer.is_empty());
    }

    #[test]
    fn query_falls_back_to_global_sample() {
        let c = cube();
        // Query a cell that should not be iceberg: the D = "[5,10)" slice
        // (fares near the global mean in the mini table). If it happens to
        // be materialized under this seed, use ALL instead — whichever is
        // absent from the cube table.
        let all_cell = CellKey::new(vec![None, None, None]);
        let ans = c.query_cell(&all_cell);
        match ans.provenance {
            SampleProvenance::Global => {
                assert_eq!(ans.rows.len(), c.global_sample().len());
            }
            SampleProvenance::Local(_) => { /* legitimate if ALL is iceberg */ }
            SampleProvenance::EmptyDomain => panic!("ALL cell cannot be empty-domain"),
        }
    }

    #[test]
    fn out_of_domain_value_yields_empty_answer() {
        let c = cube();
        let ans = c.query(&Predicate::eq("M", "bitcoin")).unwrap();
        assert_eq!(ans.provenance, SampleProvenance::EmptyDomain);
        assert!(ans.is_empty());
        assert_eq!(ans.materialize(c.table()).len(), 0);
    }

    #[test]
    fn non_cubed_attribute_is_rejected() {
        let c = cube();
        assert!(matches!(
            c.query(&Predicate::eq("fare", 5.0)),
            Err(CoreError::NotCubedAttribute(_))
        ));
        let range = Predicate::all().and("C", CmpOp::Gt, 1i64);
        assert!(matches!(c.query(&range), Err(CoreError::Config(_))));
    }

    #[test]
    fn contradictory_equalities_are_empty() {
        let c = cube();
        let p = Predicate::eq("M", "cash").and("M", CmpOp::Eq, "credit");
        let ans = c.query(&p).unwrap();
        assert_eq!(ans.provenance, SampleProvenance::EmptyDomain);
    }

    #[test]
    fn memory_breakdown_is_consistent() {
        let c = cube();
        let m = c.memory_breakdown();
        assert!(m.global_bytes > 0);
        assert_eq!(m.total(), m.global_bytes + m.cube_table_bytes + m.sample_table_bytes);
        // Sample table dominated by actual tuples.
        let row = c.table().row_bytes();
        let expected: usize =
            (0..c.persisted_samples() as u32).map(|i| c.sample(i).len() * row).sum();
        assert_eq!(m.sample_table_bytes, expected);
    }

    #[test]
    fn persistence_round_trip() {
        let c = cube();
        let json = serde_json::to_string(&c.to_persist()).unwrap();
        let persist: CubePersist = serde_json::from_str(&json).unwrap();
        let back = SamplingCube::from_persist(persist, Arc::clone(c.table())).unwrap();
        assert_eq!(back.materialized_cells(), c.materialized_cells());
        assert_eq!(back.persisted_samples(), c.persisted_samples());
        // Same query, same answer.
        let p = Predicate::eq("M", "dispute");
        let a = c.query(&p).unwrap();
        let b = back.query(&p).unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.provenance, b.provenance);
    }

    #[test]
    fn materialized_answer_has_sample_tuples() {
        let c = cube();
        let ans = c.query(&Predicate::eq("M", "dispute")).unwrap();
        let mat = ans.materialize(c.table());
        assert_eq!(mat.len(), ans.len());
        assert_eq!(mat.schema(), c.table().schema());
    }
}
