//! The predicate compiler: resolve a dashboard predicate to a
//! stack-allocated cell reference in one pass, with zero heap allocation
//! per query.
//!
//! [`SamplingCube::cell_for_predicate`] allocates a fresh
//! `Vec<Option<u32>>` per query and re-walks the attribute list through
//! `String` comparisons. On the serving hot path that allocation (and the
//! `CellKey` clone it feeds into the hash probe) dominates the probe
//! itself. [`CompiledCell`] is the allocation-free replacement: a fixed
//! `[u32; MAX_CUBED_ATTRS]` code buffer plus a presence bitmask, built on
//! the stack, hashed and compared without touching the heap.
//!
//! Compilation short-circuits to `None` (the **EmptyDomain** answer) as
//! soon as a predicate value falls outside its attribute's dictionary or
//! two equality terms contradict — exactly the cases where
//! [`SamplingCube::cell_for_predicate`] returns `Ok(None)`.
//!
//! [`SamplingCube::cell_for_predicate`]: tabula_core::SamplingCube::cell_for_predicate

use std::hash::{Hash, Hasher};
use tabula_core::{CoreError, Result};
use tabula_storage::cube::CellKey;
use tabula_storage::{CmpOp, Predicate, Table};

/// Upper bound on cubed attributes a compiled cell can carry. Matches the
/// cube layer's own 31-attribute ceiling ([`CuboidMask::finest`]); one
/// extra slot keeps the buffer a round power of two.
///
/// [`CuboidMask::finest`]: tabula_storage::cube::CuboidMask::finest
pub const MAX_CUBED_ATTRS: usize = 32;

/// A query cell resolved to code space, entirely on the stack.
///
/// Bit `i` of `mask` set means cubed attribute `i` is constrained to
/// `codes[i]`; unset positions are the cell's `*` wildcards and their
/// `codes` slots are always zero (which keeps `Eq`/`Hash` a plain prefix
/// comparison). `Copy` by design: the answer cache stores the key inline,
/// so a cache insert allocates nothing for the key either.
#[derive(Debug, Clone, Copy)]
pub struct CompiledCell {
    mask: u32,
    codes: [u32; MAX_CUBED_ATTRS],
    n: u8,
}

impl CompiledCell {
    /// The wildcard-only cell over `n` attributes (the `ALL` cell).
    #[inline]
    pub fn all(n: usize) -> Self {
        debug_assert!(n < MAX_CUBED_ATTRS);
        CompiledCell { mask: 0, codes: [0; MAX_CUBED_ATTRS], n: n as u8 }
    }

    /// Constrain attribute `i` to `code`.
    #[inline]
    pub fn set(&mut self, i: usize, code: u32) {
        self.mask |= 1 << i;
        self.codes[i] = code;
    }

    /// Human-readable rendering for traces and `EXPLAIN ANALYZE`, e.g.
    /// `cell{mask=0b101, codes=[0:3, 2:7]}` (attribute index : code).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(32);
        let _ = write!(out, "cell{{mask=0b{:b}, codes=[", self.mask);
        let mut first = true;
        for i in 0..self.n as usize {
            if self.mask & (1 << i) != 0 {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(out, "{}:{}", i, self.codes[i]);
            }
        }
        out.push_str("]}");
        out
    }

    /// The presence bitmask (equals the owning cuboid's mask).
    #[inline]
    pub fn mask(&self) -> u32 {
        self.mask
    }

    /// Number of cubed attributes (constrained or not).
    #[inline]
    pub fn arity(&self) -> usize {
        self.n as usize
    }

    /// The code constraining attribute `i`, if any.
    #[inline]
    pub fn code(&self, i: usize) -> Option<u32> {
        (self.mask & (1 << i) != 0).then(|| self.codes[i])
    }

    /// Gather the present codes (ascending attribute order) into `buf`,
    /// returning the filled prefix — the compact key probed against the
    /// serving index. No allocation: `buf` lives on the caller's stack.
    #[inline]
    pub fn compact_into<'b>(&self, buf: &'b mut [u32; MAX_CUBED_ATTRS]) -> &'b [u32] {
        let mut k = 0;
        let mut bits = self.mask;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            buf[k] = self.codes[i];
            k += 1;
            bits &= bits - 1;
        }
        &buf[..k]
    }

    /// Lossless conversion from the heap cell key (test/compat path).
    pub fn from_cell_key(key: &CellKey) -> Self {
        let mut cell = CompiledCell::all(key.codes.len());
        for (i, code) in key.codes.iter().enumerate() {
            if let Some(c) = code {
                cell.set(i, *c);
            }
        }
        cell
    }

    /// Lossless conversion to the heap cell key (test/compat path).
    pub fn to_cell_key(&self) -> CellKey {
        CellKey::new((0..self.n as usize).map(|i| self.code(i)).collect())
    }
}

impl PartialEq for CompiledCell {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        // Wildcard slots are zero by construction, so comparing the full
        // attribute prefix is equivalent to comparing per-bit assignments.
        self.mask == other.mask
            && self.n == other.n
            && self.codes[..self.n as usize] == other.codes[..other.n as usize]
    }
}

impl Eq for CompiledCell {}

impl Hash for CompiledCell {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u32(self.mask);
        let mut bits = self.mask;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            state.write_u32(self.codes[i]);
            bits &= bits - 1;
        }
    }
}

/// Resolve `pred` to a [`CompiledCell`] over the cubed attributes
/// `attrs`/`cols` of `table`.
///
/// `Ok(None)` is the EmptyDomain short-circuit: some value is outside its
/// attribute's domain, or two equality terms contradict — the raw answer
/// is provably empty, no probe needed. Errors mirror
/// [`SamplingCube::cell_for_predicate`] exactly: non-equality terms are a
/// configuration error, non-cubed columns are `NotCubedAttribute`.
///
/// [`SamplingCube::cell_for_predicate`]: tabula_core::SamplingCube::cell_for_predicate
pub fn compile_predicate(
    table: &Table,
    attrs: &[String],
    cols: &[usize],
    pred: &Predicate,
) -> Result<Option<CompiledCell>> {
    let mut cell = CompiledCell::all(attrs.len());
    for term in pred.terms() {
        if term.op != CmpOp::Eq {
            return Err(CoreError::Config(format!(
                "sampling-cube queries support equality predicates only (column {})",
                term.column
            )));
        }
        // Linear scan: the attribute list is tiny (≤ a handful), so this
        // beats a map lookup and allocates nothing.
        let pos = attrs
            .iter()
            .position(|a| a == &term.column)
            .ok_or_else(|| CoreError::NotCubedAttribute(term.column.clone()))?;
        let cat = table.cat(cols[pos])?;
        match cat.lookup(&term.value) {
            Some(code) => {
                if cell.code(pos).is_some_and(|c| c != code) {
                    // Contradictory equality terms: empty answer.
                    return Ok(None);
                }
                cell.set(pos, code);
            }
            None => return Ok(None),
        }
    }
    Ok(Some(cell))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabula_storage::schema::{Field, Schema};
    use tabula_storage::{ColumnType, TableBuilder};

    fn table() -> Table {
        let schema =
            Schema::new(vec![Field::new("a", ColumnType::Str), Field::new("b", ColumnType::Int64)]);
        let mut b = TableBuilder::new(schema);
        for (s, i) in [("x", 1i64), ("y", 2), ("x", 2)] {
            b.push_row(&[s.into(), i.into()]).unwrap();
        }
        b.finish()
    }

    fn attrs() -> (Vec<String>, Vec<usize>) {
        (vec!["a".into(), "b".into()], vec![0, 1])
    }

    #[test]
    fn compiles_to_the_same_cell_as_the_cube_resolver() {
        let t = table();
        let (attrs, cols) = attrs();
        let pred = Predicate::eq("b", 2i64).and("a", CmpOp::Eq, "y");
        let cell = compile_predicate(&t, &attrs, &cols, &pred).unwrap().unwrap();
        assert_eq!(cell.to_cell_key(), CellKey::new(vec![Some(1), Some(1)]));
        assert_eq!(cell.mask(), 0b11);
        let mut buf = [0u32; MAX_CUBED_ATTRS];
        assert_eq!(cell.compact_into(&mut buf), &[1, 1]);
    }

    #[test]
    fn empty_domain_and_contradiction_short_circuit() {
        let t = table();
        let (attrs, cols) = attrs();
        let missing = Predicate::eq("a", "nope");
        assert!(compile_predicate(&t, &attrs, &cols, &missing).unwrap().is_none());
        let contradiction = Predicate::eq("a", "x").and("a", CmpOp::Eq, "y");
        assert!(compile_predicate(&t, &attrs, &cols, &contradiction).unwrap().is_none());
        // Repeating the same equality is not a contradiction.
        let repeat = Predicate::eq("a", "x").and("a", CmpOp::Eq, "x");
        assert!(compile_predicate(&t, &attrs, &cols, &repeat).unwrap().is_some());
    }

    #[test]
    fn rejects_ranges_and_non_cubed_columns() {
        let t = table();
        let (attrs, cols) = attrs();
        let range = Predicate::all().and("b", CmpOp::Gt, 1i64);
        assert!(matches!(compile_predicate(&t, &attrs, &cols, &range), Err(CoreError::Config(_))));
        let unknown = Predicate::eq("zzz", 1i64);
        assert!(matches!(
            compile_predicate(&t, &attrs, &cols, &unknown),
            Err(CoreError::NotCubedAttribute(_))
        ));
    }

    #[test]
    fn round_trips_cell_keys_and_hashes_consistently() {
        let key = CellKey::new(vec![Some(7), None, Some(0)]);
        let cell = CompiledCell::from_cell_key(&key);
        assert_eq!(cell.to_cell_key(), key);
        assert_eq!(cell.arity(), 3);
        // A wildcard in position 1 differs from code 0 in position 1.
        let zero = CompiledCell::from_cell_key(&CellKey::new(vec![Some(7), Some(0), Some(0)]));
        assert_ne!(cell, zero);
        let same = CompiledCell::from_cell_key(&CellKey::new(vec![Some(7), None, Some(0)]));
        assert_eq!(cell, same);
        let mut set = tabula_storage::FxHashSet::default();
        set.insert(cell);
        assert!(set.contains(&same));
        assert!(!set.contains(&zero));
    }
}
