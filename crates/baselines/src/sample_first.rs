//! The **SampleFirst** baseline: draw one random sample of the whole
//! table up front, then run every dashboard query against that sample
//! instead of the raw data. Fast and memory-bounded, but with *no*
//! accuracy guarantee — small populations can be missed entirely (the
//! paper's Figure 2 airport artifact).

use crate::{Approach, ApproachAnswer};
use std::sync::Arc;
use std::time::Instant;
use tabula_core::serfling::draw_global_sample;
use tabula_storage::{Predicate, RowId, Table};

/// SampleFirst with a byte-budgeted pre-built sample (the paper evaluates
/// 100 MB and 1 GB variants).
#[derive(Debug, Clone)]
pub struct SampleFirst {
    table: Arc<Table>,
    sample: Vec<RowId>,
    name: &'static str,
}

impl SampleFirst {
    /// Pre-build a random sample of roughly `budget_bytes` worth of
    /// tuples.
    pub fn with_bytes(table: Arc<Table>, budget_bytes: usize, seed: u64) -> Self {
        let rows = (budget_bytes / table.row_bytes().max(1)).max(1);
        Self::with_rows(table, rows, seed)
    }

    /// Pre-build a random sample of `rows` tuples.
    pub fn with_rows(table: Arc<Table>, rows: usize, seed: u64) -> Self {
        let sample = draw_global_sample(&table, rows, seed);
        SampleFirst { table, sample, name: "SampleFirst" }
    }

    /// Override the display name (e.g. `"SamFirst-100MB"`).
    pub fn named(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// Number of tuples in the pre-built sample.
    pub fn sample_size(&self) -> usize {
        self.sample.len()
    }
}

impl Approach for SampleFirst {
    fn name(&self) -> &'static str {
        self.name
    }

    fn memory_bytes(&self) -> usize {
        self.sample.len() * self.table.row_bytes()
    }

    fn query(&self, pred: &Predicate) -> ApproachAnswer {
        let start = Instant::now();
        // A full sequential filter over the pre-built sample — constant
        // per query regardless of predicate selectivity, as the paper
        // observes.
        let rows = pred
            .filter_rows(&self.table, &self.sample)
            .expect("workload predicates reference valid columns");
        ApproachAnswer { rows, data_system_time: start.elapsed() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabula_data::{TaxiConfig, TaxiGenerator};

    fn table() -> Arc<Table> {
        Arc::new(TaxiGenerator::new(TaxiConfig { rows: 5_000, seed: 1 }).generate())
    }

    #[test]
    fn sample_is_budgeted_and_queryable() {
        let t = table();
        let sf = SampleFirst::with_bytes(Arc::clone(&t), 50_000, 7).named("SamFirst-50KB");
        assert_eq!(sf.name(), "SamFirst-50KB");
        assert!(sf.sample_size() > 0);
        assert!(sf.memory_bytes() <= 50_000 + t.row_bytes());
        let ans = sf.query(&Predicate::eq("payment_type", "credit"));
        // Only rows from the pre-built sample are returned, and they all
        // match the predicate.
        for &r in &ans.rows {
            assert_eq!(t.value(r as usize, 3).as_str(), Some("credit"));
        }
        assert!(ans.rows.len() < sf.sample_size());
    }

    #[test]
    fn small_populations_can_vanish() {
        // The core failure mode SampleFirst exhibits: with a tiny sample,
        // a rare population (dispute ≈ 2%) can disappear.
        let t = table();
        let sf = SampleFirst::with_rows(Arc::clone(&t), 20, 3);
        let ans = sf.query(&Predicate::eq("payment_type", "dispute"));
        // 20 × 2% ≈ 0.4 expected tuples; the raw population is ~100.
        let raw = Predicate::eq("payment_type", "dispute").filter(&t).unwrap();
        assert!(raw.len() > 20);
        assert!(ans.rows.len() <= 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let t = table();
        let a = SampleFirst::with_rows(Arc::clone(&t), 100, 5);
        let b = SampleFirst::with_rows(Arc::clone(&t), 100, 5);
        assert_eq!(a.sample, b.sample);
    }
}
