//! # tabula-data
//!
//! Synthetic data and workloads for the Tabula reproduction.
//!
//! The paper evaluates on the 700 M-row NYC taxi-trip table. That table is
//! not shipped here, so [`taxi`] provides a seeded generator producing the
//! same relational shape at configurable scale: the seven categorical
//! attributes used in the paper's experiments, the fare/tip/distance
//! measures, and a pickup location drawn from a mixture of spatial clusters
//! (Manhattan, the airports, diffuse outer boroughs) whose mixture weights
//! are *conditioned on the categorical attributes*. That conditioning is
//! what makes sub-populations deviate from the global distribution and
//! therefore produces iceberg cells — the phenomenon the whole system is
//! built around.
//!
//! [`workload`] draws the "100 random SQL queries (cells)" analytics
//! workload of Section V, and [`mini`] rebuilds the paper's tiny running
//! example (trip distance D, passenger count C, payment method M) used by
//! Table I / Figure 5 illustrations and many unit tests.

pub mod csv;
pub mod mini;
pub mod taxi;
pub mod workload;

pub use csv::{read_table, write_table, CsvError};
pub use mini::example_dcm_table;
pub use taxi::{
    meters_to_norm, norm_to_meters, TaxiConfig, TaxiGenerator, CUBED_ATTRIBUTES, EXTENT_KM,
};
pub use workload::{QueryCell, Workload};
